"""Tests for ParameterizedSystem and CycleOutcome."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CycleOutcome,
    DeadlineFunction,
    InvalidTimingError,
    ParameterizedSystem,
    QualitySet,
    ScheduledSequence,
    TimingModel,
    TimingTable,
)

from helpers import make_deadline, make_synthetic_system


class TestConstruction:
    def test_from_tables(self):
        qualities = QualitySet(0, 1)
        system = ParameterizedSystem.from_tables(
            ["a", "b"], qualities, np.array([[2.0, 2.0], [4.0, 4.0]]), np.array([[1.0, 1.0], [2.0, 2.0]])
        )
        assert system.n_actions == 2
        assert system.qualities == qualities

    def test_mismatched_sequence_and_timing(self):
        qualities = QualitySet(0, 1)
        sequence = ScheduledSequence.uniform(3)
        timing = TimingModel(
            TimingTable(qualities, np.ones((2, 2))),
            TimingTable(qualities, np.ones((2, 2)) * 0.5),
        )
        with pytest.raises(InvalidTimingError):
            ParameterizedSystem(sequence, timing)

    def test_repr(self):
        system = make_synthetic_system(n_actions=5, n_levels=3)
        assert "actions=5" in repr(system)


class TestFeasibility:
    def test_feasible_when_slack_positive(self):
        system = make_synthetic_system()
        deadlines = make_deadline(system, slack=1.5)
        assert system.is_feasible(deadlines)
        assert system.minimal_completion_bound(deadlines) > 0.0

    def test_infeasible_when_deadline_too_tight(self):
        system = make_synthetic_system()
        qmin_total = system.worst_case.total(1, system.n_actions, 0)
        deadlines = DeadlineFunction.single(system.n_actions, qmin_total * 0.5)
        assert not system.is_feasible(deadlines)

    def test_bound_is_minimum_over_deadlines(self):
        system = make_synthetic_system(n_actions=10)
        qmin_total_5 = system.worst_case.total(1, 5, 0)
        qmin_total_10 = system.worst_case.total(1, 10, 0)
        deadlines = DeadlineFunction({5: qmin_total_5 + 1.0, 10: qmin_total_10 + 3.0})
        assert system.minimal_completion_bound(deadlines) == pytest.approx(1.0)

    def test_deadline_beyond_actions_rejected(self):
        system = make_synthetic_system(n_actions=4)
        with pytest.raises(InvalidTimingError):
            system.minimal_completion_bound(DeadlineFunction.single(9, 100.0))


class TestDerivedSystems:
    def test_rescaled_scales_all_tables(self):
        system = make_synthetic_system(n_actions=6)
        slower = system.rescaled(2.0)
        assert np.allclose(slower.average.values, system.average.values * 2.0)
        assert np.allclose(slower.worst_case.values, system.worst_case.values * 2.0)

    def test_rescaled_scales_scenarios(self):
        system = make_synthetic_system(n_actions=6, seed=11)
        slower = system.rescaled(3.0)
        original = system.draw_scenario(np.random.default_rng(5)).matrix
        scaled = slower.draw_scenario(np.random.default_rng(5)).matrix
        assert np.allclose(scaled, original * 3.0)

    def test_rescaled_rejects_non_positive(self):
        system = make_synthetic_system(n_actions=3)
        with pytest.raises(InvalidTimingError):
            system.rescaled(0.0)

    def test_truncated(self):
        system = make_synthetic_system(n_actions=10)
        short = system.truncated(4)
        assert short.n_actions == 4
        assert np.allclose(short.average.values, system.average.values[:, :4])

    def test_truncated_scenarios_match_prefix(self):
        system = make_synthetic_system(n_actions=10, seed=2)
        short = system.truncated(4)
        full = system.draw_scenario(np.random.default_rng(9)).matrix
        part = short.draw_scenario(np.random.default_rng(9)).matrix
        assert np.allclose(part, full[:, :4])

    def test_truncated_bounds(self):
        system = make_synthetic_system(n_actions=5)
        with pytest.raises(ValueError):
            system.truncated(0)
        with pytest.raises(ValueError):
            system.truncated(6)


class TestSampling:
    def test_scenario_within_worst_case(self):
        system = make_synthetic_system(seed=4)
        scenario = system.draw_scenario(np.random.default_rng(0))
        assert np.all(scenario.matrix <= system.worst_case.values + 1e-12)
        assert np.all(scenario.matrix >= 0.0)

    def test_sample_actual_times_shape_and_levels(self):
        system = make_synthetic_system(n_actions=8, n_levels=3)
        times = system.sample_actual_times([0, 1, 2, 0, 1, 2, 0, 1], np.random.default_rng(0))
        assert times.shape == (8,)

    def test_sample_actual_times_validates_levels(self):
        system = make_synthetic_system(n_actions=3, n_levels=3)
        with pytest.raises(ValueError):
            system.sample_actual_times([0, 1], np.random.default_rng(0))
        with pytest.raises(ValueError):
            system.sample_actual_times([0, 1, 9], np.random.default_rng(0))


class TestCycleOutcome:
    def make_outcome(self) -> CycleOutcome:
        return CycleOutcome(
            qualities=np.array([2, 2, 3, 1]),
            durations=np.array([1.0, 1.5, 2.0, 0.5]),
            completion_times=np.array([1.0, 2.5, 4.5, 5.0]),
            manager_invocations=np.array([0, 2]),
            manager_overheads=np.array([0.1, 0.2]),
        )

    def test_basic_properties(self):
        outcome = self.make_outcome()
        assert outcome.n_actions == 4
        assert outcome.makespan == pytest.approx(5.0)
        assert outcome.total_overhead == pytest.approx(0.3)
        assert outcome.mean_quality == pytest.approx(2.0)

    def test_quality_changes(self):
        outcome = self.make_outcome()
        assert outcome.quality_changes() == 2

    def test_single_action_outcome(self):
        outcome = CycleOutcome(
            qualities=np.array([1]),
            durations=np.array([2.0]),
            completion_times=np.array([2.0]),
            manager_invocations=np.array([0]),
            manager_overheads=np.array([0.0]),
        )
        assert outcome.quality_changes() == 0
        assert outcome.mean_quality == 1.0
