"""Tests for the quality-management policies.

Every vectorised policy computation is checked against a direct, loop-based
transcription of the paper's formulas.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AveragePolicy,
    MixedPolicy,
    SafePolicy,
    delta_max_suffix,
    delta_suffix,
)

from helpers import make_synthetic_system


# --------------------------------------------------------------------------- #
# brute-force reference implementations of the paper's formulas
# --------------------------------------------------------------------------- #
def brute_csf(system, first: int, last: int, quality: int) -> float:
    """C^sf(a_first..a_last, q) = C^wc(a_first, q) + C^wc(a_{first+1}..a_last, q_min)."""
    qmin = system.qualities.minimum
    return system.worst_case.of(first, quality) + sum(
        system.worst_case.of(j, qmin) for j in range(first + 1, last + 1)
    )


def brute_cav(system, first: int, last: int, quality: int) -> float:
    """C^av(a_first..a_last, q)."""
    return sum(system.average.of(j, quality) for j in range(first, last + 1))


def brute_delta(system, first: int, last: int, quality: int) -> float:
    """δ(a_first..a_last, q) = C^sf - C^av."""
    return brute_csf(system, first, last, quality) - brute_cav(system, first, last, quality)


def brute_delta_max(system, first: int, last: int, quality: int) -> float:
    """δ_max(a_first..a_last, q) = max_{first <= j <= last} δ(a_j..a_last, q)."""
    return max(brute_delta(system, j, last, quality) for j in range(first, last + 1))


def brute_mixed(system, first: int, last: int, quality: int) -> float:
    """C^D = C^av + δ_max."""
    return brute_cav(system, first, last, quality) + brute_delta_max(system, first, last, quality)


@pytest.fixture(scope="module")
def system():
    return make_synthetic_system(n_actions=15, n_levels=4, seed=7)


class TestDeltaFunctions:
    def test_delta_suffix_matches_brute_force(self, system):
        horizon = 10
        for quality in system.qualities:
            computed = delta_suffix(system.timing, horizon, quality)
            expected = [brute_delta(system, j, horizon, quality) for j in range(1, horizon + 1)]
            assert np.allclose(computed, expected)

    def test_delta_max_suffix_matches_brute_force(self, system):
        horizon = 12
        for quality in system.qualities:
            computed = delta_max_suffix(system.timing, horizon, quality)
            expected = [
                brute_delta_max(system, i + 1, horizon, quality) for i in range(horizon)
            ]
            assert np.allclose(computed, expected)

    def test_delta_max_is_upper_bound_of_delta(self, system):
        horizon = system.n_actions
        for quality in system.qualities:
            deltas = delta_suffix(system.timing, horizon, quality)
            maxima = delta_max_suffix(system.timing, horizon, quality)
            assert np.all(maxima >= deltas - 1e-12)

    def test_delta_max_non_negative_when_wc_exceeds_av(self, system):
        # δ(a_k..a_k, q) = Cwc(a_k, q) - Cav(a_k, q) >= 0, so δ_max >= 0
        horizon = system.n_actions
        for quality in system.qualities:
            assert np.all(delta_max_suffix(system.timing, horizon, quality) >= -1e-12)

    def test_horizon_bounds_checked(self, system):
        with pytest.raises(ValueError):
            delta_suffix(system.timing, 0, 0)
        with pytest.raises(ValueError):
            delta_suffix(system.timing, system.n_actions + 1, 0)


class TestSafePolicy:
    def test_matches_brute_force(self, system):
        policy = SafePolicy()
        horizon = 9
        costs = policy.horizon_costs(system.timing, horizon)
        for qi, quality in enumerate(system.qualities):
            for state in range(horizon):
                assert costs[qi, state] == pytest.approx(
                    brute_csf(system, state + 1, horizon, quality)
                )

    def test_guarantees_safety_flag(self):
        assert SafePolicy().guarantees_safety is True

    def test_non_decreasing_in_quality(self, system):
        costs = SafePolicy().horizon_costs(system.timing, system.n_actions)
        assert np.all(np.diff(costs, axis=0) >= -1e-12)


class TestAveragePolicy:
    def test_matches_brute_force(self, system):
        policy = AveragePolicy()
        horizon = 11
        costs = policy.horizon_costs(system.timing, horizon)
        for qi, quality in enumerate(system.qualities):
            for state in range(horizon):
                assert costs[qi, state] == pytest.approx(
                    brute_cav(system, state + 1, horizon, quality)
                )

    def test_does_not_guarantee_safety(self):
        assert AveragePolicy().guarantees_safety is False

    def test_average_below_safe_at_min_quality_start(self, system):
        # At q = q_min the safe cost equals the all-q_min worst case, which
        # dominates the average cost.
        horizon = system.n_actions
        safe = SafePolicy().horizon_costs(system.timing, horizon)
        avg = AveragePolicy().horizon_costs(system.timing, horizon)
        assert np.all(safe[0] >= avg[0] - 1e-12)


class TestMixedPolicy:
    def test_matches_brute_force(self, system):
        policy = MixedPolicy()
        horizon = 8
        costs = policy.horizon_costs(system.timing, horizon)
        for qi, quality in enumerate(system.qualities):
            for state in range(horizon):
                assert costs[qi, state] == pytest.approx(
                    brute_mixed(system, state + 1, horizon, quality)
                )

    def test_guarantees_safety_flag(self):
        assert MixedPolicy().guarantees_safety is True

    def test_mixed_at_least_average(self, system):
        horizon = system.n_actions
        mixed = MixedPolicy().horizon_costs(system.timing, horizon)
        avg = AveragePolicy().horizon_costs(system.timing, horizon)
        assert np.all(mixed >= avg - 1e-12)

    def test_mixed_at_least_safe(self, system):
        # C^D = C^av + δ_max >= C^av + δ(a_{i+1}..a_k) = C^sf
        horizon = system.n_actions
        mixed = MixedPolicy().horizon_costs(system.timing, horizon)
        safe = SafePolicy().horizon_costs(system.timing, horizon)
        assert np.all(mixed >= safe - 1e-9)

    def test_safety_margins_match_delta_max(self, system):
        policy = MixedPolicy()
        horizon = 10
        margins = policy.safety_margins(system.timing, horizon)
        for qi, quality in enumerate(system.qualities):
            expected = delta_max_suffix(system.timing, horizon, quality)
            assert np.allclose(margins[qi], expected)

    def test_horizon_validation(self, system):
        with pytest.raises(ValueError):
            MixedPolicy().horizon_costs(system.timing, 0)
        with pytest.raises(ValueError):
            MixedPolicy().safety_margins(system.timing, system.n_actions + 5)
