"""Tests for fleet-scale multi-session execution (:mod:`repro.core.fleet`).

The differential fuzz harness (``test_fleet_differential.py``) proves the
parity contract across the whole registry; this module covers the planner
and executor surface directly — bucketing by kernel-spec shape, padding
and masking of ragged buckets, fallback routing, validation errors, the
obs counters, the :mod:`repro.api.fleet` facade and the CLI subcommand.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Session, run_fleet as api_run_fleet
from repro.api.registry import available_managers
from repro.core import QualityManager
from repro.core.engine import EngineError
from repro.core.fleet import (
    DEFAULT_FLEET_CHUNK,
    FleetBucket,
    FleetError,
    FleetMember,
    FleetPlan,
    bucket_key,
    run_fleet,
)
from repro.obs import enable as obs_enable
from repro.obs import metrics as obs_metrics
from repro.obs import reset_enabled as obs_reset
from repro.platform.overhead import IPOD_LIKE, LinearOverheadModel

from helpers import make_deadline, make_synthetic_system

ALL_KEYS = sorted(available_managers())


def make_member(
    key: str,
    label: str,
    *,
    n_actions: int = 12,
    n_levels: int = 5,
    cycles: int = 9,
    seed: int = 0,
    system_seed: int = 0,
    **extra,
):
    """One fleet member driving manager ``key`` on a fresh synthetic system."""
    system = make_synthetic_system(n_actions, n_levels, seed=system_seed)
    deadlines = make_deadline(system)
    manager = Session().system(system).deadlines(deadlines).manager(key).build()
    return FleetMember(
        label=label,
        system=system,
        manager=manager,
        deadlines=deadlines,
        cycles=cycles,
        seed=seed,
        **extra,
    )


def solo_summary(member: FleetMember):
    """The member's summary from a solo streamed run (the parity baseline)."""
    from repro.core.streaming import run_cycles_streamed

    return run_cycles_streamed(
        member.system,
        member.manager,
        member.cycles,
        deadlines=member.deadlines,
        chunk_size=member.effective_chunk(),
        scenarios=member.scenarios,
        rng=member.make_rng() if member.scenarios is None else None,
        overhead_model=member.overhead_model,
        vectorize=member.vectorize,
        backend=member.backend,
    )


class OpaqueManager(QualityManager):
    """A decide()-only wrapper: no kernel spec, so it cannot join a bucket."""

    name = "opaque"

    def __init__(self, inner):
        self._inner = inner

    @property
    def qualities(self):
        return self._inner.qualities

    def reset(self):
        self._inner.reset()

    def decide(self, state_index, time):
        return self._inner.decide(state_index, time)

    def memory_footprint(self):
        return self._inner.memory_footprint()


class TestFleetMemberValidation:
    def test_cycles_floor(self):
        with pytest.raises(FleetError, match="cycles >= 1"):
            make_member("relaxation", "m", cycles=0)

    def test_chunk_floor(self):
        with pytest.raises(FleetError, match="chunk_size >= 1"):
            make_member("relaxation", "m", chunk_size=0)

    def test_scenario_length_mismatch(self):
        system = make_synthetic_system(8, 4)
        batch = system.draw_scenarios(3, np.random.default_rng(0))
        deadlines = make_deadline(system)
        manager = (
            Session().system(system).deadlines(deadlines).manager("numeric").build()
        )
        with pytest.raises(FleetError, match="3 scenarios for 5 cycles"):
            FleetMember(
                label="m",
                system=system,
                manager=manager,
                deadlines=deadlines,
                cycles=5,
                scenarios=batch,
            )

    def test_effective_chunk_defaults(self):
        assert make_member("numeric", "m").effective_chunk() == DEFAULT_FLEET_CHUNK
        assert make_member("numeric", "m", chunk_size=7).effective_chunk() == 7

    def test_make_rng_streams_match_default_rng(self):
        member = make_member("numeric", "m", seed=41)
        expected = np.random.default_rng(41).uniform(size=4)
        assert np.array_equal(member.make_rng().uniform(size=4), expected)
        unseeded = make_member("numeric", "n", seed=None)
        assert np.array_equal(
            unseeded.make_rng().uniform(size=4),
            np.random.default_rng(0).uniform(size=4),
        )


class TestBucketing:
    def test_same_shape_same_bucket(self):
        """Table values never enter the key — only their dimensions."""
        a = make_member("numeric", "a", system_seed=1)
        b = make_member("numeric", "b", system_seed=2)
        plan = FleetPlan.plan([a, b])
        assert len(plan.buckets) == 1
        assert plan.buckets[0].indices == (0, 1)
        assert plan.fallback == ()

    def test_cross_manager_fusion(self):
        """Managers lowering to the same op and shape share a bucket."""
        members = [
            make_member(key, key) for key in ("numeric", "safe-only", "average-only")
        ]
        plan = FleetPlan.plan(members)
        assert len(plan.buckets) == 1

    def test_ragged_shapes_split_buckets(self):
        a = make_member("numeric", "a", n_actions=6)
        b = make_member("numeric", "b", n_actions=7)
        c = make_member("numeric", "c", n_levels=4)
        plan = FleetPlan.plan([a, b, c])
        assert len(plan.buckets) == 3
        keys = {bucket.key for bucket in plan.buckets}
        assert len(keys) == 3

    def test_bucket_key_work_structure(self):
        per_state = make_member("numeric", "a").manager.lower()
        single = make_member("relaxation", "b").manager.lower()
        # one work record per decision state (n_actions states here)
        assert bucket_key(per_state, 12)[-1] == ("per-state", 12)
        assert bucket_key(single, 12)[-1][0] == "single"

    def test_empty_fleet_rejected(self):
        with pytest.raises(FleetError, match="at least one member"):
            FleetPlan.plan([])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(FleetError, match="duplicate fleet member label"):
            FleetPlan.plan([make_member("numeric", "m"), make_member("skip", "m")])

    def test_vectorize_never_routes_to_fallback(self):
        member = make_member("numeric", "m", vectorize="never")
        plan = FleetPlan.plan([member])
        assert plan.buckets == ()
        assert plan.fallback == (0,)

    def test_opaque_manager_routes_to_fallback(self):
        inner = make_member("region", "m")
        member = FleetMember(
            label="m",
            system=inner.system,
            manager=OpaqueManager(inner.manager),
            deadlines=inner.deadlines,
            cycles=inner.cycles,
            seed=inner.seed,
        )
        plan = FleetPlan.plan([member])
        assert plan.fallback == (0,)

    def test_vectorize_always_rejects_opaque_manager(self):
        inner = make_member("region", "m")
        member = FleetMember(
            label="m",
            system=inner.system,
            manager=OpaqueManager(inner.manager),
            deadlines=inner.deadlines,
            cycles=inner.cycles,
            vectorize="always",
        )
        with pytest.raises(EngineError, match="no vectorised decision kernel"):
            FleetPlan.plan([member])

    def test_stateful_overhead_model_routes_to_fallback(self):
        class StatefulModel:
            def charge(self, work):
                return 0.0

        member = make_member("numeric", "m", overhead_model=StatefulModel())
        plan = FleetPlan.plan([member])
        assert plan.fallback == (0,)

    def test_unknown_backend_rejected_at_plan_time(self):
        member = make_member("numeric", "m", backend="no-such-backend")
        with pytest.raises(Exception, match="no-such-backend"):
            FleetPlan.plan([member])


class TestRunFleet:
    def test_parity_across_every_key_in_one_fleet(self):
        members = [
            make_member(key, key, cycles=5 + i, seed=10 + i, system_seed=i)
            for i, key in enumerate(ALL_KEYS)
        ]
        summaries = run_fleet(members)
        assert len(summaries) == len(members)
        for member, summary in zip(members, summaries):
            expected = solo_summary(member)
            assert summary.metrics() == expected.metrics(), member.label
            assert summary.quality_level_counts == expected.quality_level_counts

    def test_ragged_cycles_padding_masked_out(self):
        """A bucket of very different run lengths pads — without leaking."""
        members = [
            make_member("numeric", f"m{i}", cycles=c, seed=i, system_seed=9)
            for i, c in enumerate((1, 37, 8, 100))
        ]
        plan = FleetPlan.plan(members)
        assert len(plan.buckets) == 1
        summaries = run_fleet(members, plan=plan)
        for member, summary in zip(members, summaries):
            assert summary.n_cycles == member.cycles
            expected = solo_summary(member)
            assert summary.metrics() == expected.metrics(), member.label

    def test_fallback_members_interleaved_with_buckets(self):
        stacked = make_member("relaxation", "a", seed=3)
        solo = make_member("numeric", "b", seed=4, vectorize="never")
        summaries = run_fleet([solo, stacked])
        assert summaries[0].metrics() == solo_summary(solo).metrics()
        assert summaries[1].metrics() == solo_summary(stacked).metrics()

    def test_scenarios_by_value(self):
        system = make_synthetic_system(10, 4, seed=5)
        deadlines = make_deadline(system)
        batch = system.draw_scenarios(11, np.random.default_rng(2))
        manager = (
            Session().system(system).deadlines(deadlines).manager("numeric").build()
        )
        member = FleetMember(
            label="m",
            system=system,
            manager=manager,
            deadlines=deadlines,
            cycles=11,
            scenarios=batch,
            chunk_size=4,
        )
        (summary,) = run_fleet([member])
        assert summary.metrics() == solo_summary(member).metrics()

    def test_overhead_model_accounting_excludes_padding(self):
        model = LinearOverheadModel(IPOD_LIKE)
        solo_model = LinearOverheadModel(IPOD_LIKE)
        members = [
            make_member(
                "numeric", f"m{i}", cycles=c, seed=i, overhead_model=model
            )
            for i, c in enumerate((3, 17))
        ]
        run_fleet(members)
        expected_calls = 0
        for member in members:
            clone = FleetMember(
                label=member.label,
                system=member.system,
                manager=member.manager,
                deadlines=member.deadlines,
                cycles=member.cycles,
                seed=member.seed,
                overhead_model=solo_model,
            )
            solo_summary(clone)
        expected_calls = solo_model.calls
        assert model.calls == expected_calls
        assert model.total_seconds == pytest.approx(solo_model.total_seconds)

    def test_mismatched_plan_rejected(self):
        members = [make_member("numeric", "a")]
        other = FleetPlan.plan([make_member("numeric", "b")])
        with pytest.raises(FleetError, match="different members"):
            run_fleet(members, plan=other)

    def test_obs_counters_and_padding_gauge(self):
        obs_reset()
        obs_metrics.registry().reset()
        obs_enable()
        try:
            members = [
                make_member("numeric", "a", cycles=10, seed=1),
                make_member("numeric", "b", cycles=4, seed=2),
                make_member("region", "c", cycles=6, seed=3, vectorize="never"),
            ]
            run_fleet(members)
            snap = obs_metrics.registry().snapshot()["metrics"]
            assert snap["fleet.buckets"]["value"] == 1
            assert snap["fleet.sessions"]["value"] == 3
            assert snap["fleet.fallback_sessions"]["value"] == 1
            waste = snap["fleet.padding_waste"]
            assert waste["kind"] == "gauge"
            # lanes: width 10 for both members of the bucket, member b real
            # in only 4 of its 10 lanes -> 6 padded of 20 total
            assert waste["value"] == pytest.approx(6 / 20)
        finally:
            obs_reset()
            obs_metrics.registry().reset()


class TestFleetApi:
    def _sessions(self):
        system = make_synthetic_system(10, 4, seed=8)
        deadlines = make_deadline(system)
        return {
            "lo": Session()
            .system(system)
            .deadlines(deadlines)
            .manager("relaxation")
            .seed(5)
            .cycles(7),
            "hi": Session()
            .system(make_synthetic_system(10, 4, seed=9))
            .deadlines(deadlines)
            .manager("numeric")
            .seed(6)
            .cycles(12),
        }

    def test_mapping_input_parity_with_solo_run(self):
        sessions = self._sessions()
        batch = Session.fleet(sessions)
        assert batch.labels == ("lo", "hi")
        for label, session in sessions.items():
            solo = session.run(chunk_size=64)
            result = batch[label]
            assert result.is_summary
            assert result.summary.metrics() == solo.summary.metrics()
            assert result.manager_key == session._spec.key
            assert result.seed == session.current_seed

    def test_sequence_and_pair_inputs(self):
        sessions = self._sessions()
        by_order = api_run_fleet(list(sessions.values()))
        assert by_order.labels == ("session-0", "session-1")
        by_pairs = api_run_fleet(list(sessions.items()))
        assert by_pairs.labels == ("lo", "hi")
        for a, b in zip(by_order.runs.values(), by_pairs.runs.values()):
            assert a.summary.metrics() == b.summary.metrics()

    def test_duplicate_labels_suffixed(self):
        sessions = self._sessions()
        batch = api_run_fleet(
            [("same", sessions["lo"]), ("same", sessions["hi"])], cycles=4
        )
        assert len(batch.labels) == 2
        assert batch.labels[0] == "same"
        assert batch.labels[1] != "same"

    def test_seed_spawning_matches_plan_rule(self):
        from repro.runtime.plan import spawn_seeds

        sessions = self._sessions()
        batch = api_run_fleet(sessions, seed=123, cycles=6)
        children = spawn_seeds(123, len(sessions))
        for (label, session), child in zip(sessions.items(), children):
            solo = session.run(6, seed=child, chunk_size=64)
            assert batch[label].summary.metrics() == solo.summary.metrics()
            assert batch[label].seed == child

    def test_cycles_and_chunk_overrides(self):
        sessions = self._sessions()
        batch = api_run_fleet(sessions, cycles=3, chunk_size=2)
        assert all(run.n_cycles == 3 for run in batch.runs.values())

    def test_cloned_sessions_with_shared_stateful_sampler(self):
        """Clones sharing one encoder sampler still match solo runs."""
        from repro.media import small_encoder

        base = (
            Session()
            .system(small_encoder(seed=0, n_frames=4))
            .machine("ipod")
            .seed(0)
            .cycles(4)
        )
        clones = {f"c{i}": base.clone().seed(20 + i) for i in range(3)}
        batch = Session.fleet(clones)
        for label, clone in clones.items():
            solo = clone.run(chunk_size=16)
            assert batch[label].summary.metrics() == solo.summary.metrics(), label


class TestFleetCli:
    def test_fleet_subcommand_prints_throughput(self, capsys):
        from repro.cli import main

        code = main(
            ["fleet", "--small", "--sessions", "4", "--cycles", "3", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fleet throughput" in out
        assert "sessions/sec" in out
        assert "s000-relaxation" in out

    def test_fleet_subcommand_rejects_bad_manager(self, capsys):
        from repro.cli import main

        code = main(["fleet", "--small", "--managers", "no-such-key"])
        assert code == 2
        assert "error:" in capsys.readouterr().out

    def test_fleet_subcommand_rejects_bad_counts(self, capsys):
        from repro.cli import main

        assert main(["fleet", "--small", "--sessions", "0"]) == 2
        assert main(["fleet", "--small", "--managers", " , "]) == 2
        capsys.readouterr()
