"""Tests for the :mod:`repro.api` facade: registry, session, batched runs."""

from __future__ import annotations

import numpy as np
import pytest

from helpers import make_deadline, make_synthetic_system

import repro
from repro.api import (
    BatchResult,
    BuildContext,
    ManagerSpec,
    RegistryError,
    ScenarioSpec,
    Session,
    SessionError,
    available_managers,
    build_baseline,
    build_manager,
    compile_controllers,
    manager_info,
    register_manager,
    registry_table,
    run_controlled,
    unregister_manager,
    validate_spec,
)
from repro.core import CycleOutcome, DeadlineFunction, QualityManager, audit_trace

EXPECTED_KEYS = {
    "numeric",
    "region",
    "relaxation",
    "constant",
    "elastic",
    "feedback",
    "skip",
    "safe-only",
    "average-only",
}


@pytest.fixture(scope="module")
def system():
    return make_synthetic_system()


@pytest.fixture(scope="module")
def deadlines(system):
    return make_deadline(system)


@pytest.fixture(scope="module")
def context(system, deadlines):
    return BuildContext.create(system, deadlines)


class TestRegistry:
    def test_all_expected_keys_registered(self):
        assert EXPECTED_KEYS <= set(available_managers())

    def test_every_key_builds_a_working_manager(self, system, deadlines, context):
        """Registry round-trip: every key produces a manager that runs a cycle."""
        for key in available_managers():
            manager = build_manager(key, context)
            assert isinstance(manager, QualityManager)
            outcome = next(
                Session().system(system).deadlines(deadlines).manager(key).stream(1)
            )
            assert isinstance(outcome, CycleOutcome)
            assert outcome.n_actions == system.n_actions

    def test_aliases_resolve_to_canonical_entry(self):
        assert manager_info("safe_only").key == "safe-only"
        assert manager_info("average_only").key == "average-only"

    def test_unknown_key_raises_with_known_keys_listed(self, context):
        with pytest.raises(RegistryError, match="relaxation"):
            build_manager("frobnicate", context)

    def test_unknown_param_rejected_eagerly(self):
        with pytest.raises(RegistryError, match="does not accept"):
            validate_spec(ManagerSpec("constant", {"levle": 3}))

    def test_spec_string_round_trip(self):
        spec = ManagerSpec.parse("constant:level=3,consult_every_action=false")
        assert spec.key == "constant"
        assert spec.params == {"level": 3, "consult_every_action": False}
        assert ManagerSpec.parse(str(spec)) == spec

    def test_spec_scientific_notation_stays_a_float(self):
        spec = ManagerSpec.parse("feedback:kp=1.5e+2,ki=-2e+0")
        assert spec.params == {"kp": 150.0, "ki": -2.0}

    def test_spec_parse_rejects_malformed_params(self):
        with pytest.raises(RegistryError, match="malformed"):
            ManagerSpec.parse("constant:level")
        with pytest.raises(RegistryError, match="empty"):
            ManagerSpec.parse(":level=3")

    def test_constant_param_reaches_the_manager(self, context):
        manager = build_manager("constant:level=4", context)
        assert manager.level == 4

    def test_relaxation_steps_param_changes_the_table(self, context):
        manager = build_manager("relaxation", context, steps=(1, 2))
        assert manager.relaxation.steps == (1, 2)

    def test_relaxation_steps_via_spec_string(self, context):
        """The spec-string sequence syntax reaches the relaxation table."""
        manager = build_manager("relaxation:steps=1+2+4", context)
        assert manager.relaxation.steps == (1, 2, 4)
        scalar = build_manager("relaxation:steps=2", context)
        assert scalar.relaxation.steps == (2,)
        with pytest.raises(RegistryError, match="positive integers"):
            build_manager("relaxation:steps=0", context)
        with pytest.raises(RegistryError, match="integers"):
            build_manager("relaxation:steps=fast", context)
        spec = ManagerSpec("relaxation", {"steps": (1, 2, 4)})
        assert ManagerSpec.parse(str(spec)) == spec

    def test_register_and_unregister_custom_manager(self, system, deadlines):
        @register_manager("test-custom", description="a test double")
        def _build(context, *, level=0):
            from repro.baselines import ConstantQualityManager

            return ConstantQualityManager(context.system.qualities, level)

        try:
            assert "test-custom" in available_managers()
            manager = build_manager(
                "test-custom", BuildContext.create(system, deadlines), level=1
            )
            assert manager.level == 1
            with pytest.raises(RegistryError, match="already registered"):
                register_manager("test-custom")(_build)
        finally:
            unregister_manager("test-custom")
        assert "test-custom" not in available_managers()

    def test_registry_table_covers_all_keys(self):
        keys = {row[0] for row in registry_table()}
        assert EXPECTED_KEYS <= keys


class TestSessionValidation:
    def test_run_without_system_raises(self):
        with pytest.raises(SessionError, match="no system configured"):
            Session().run()

    def test_system_without_deadlines_raises(self, system):
        with pytest.raises(SessionError, match="no deadlines"):
            Session().system(system).run()

    def test_unknown_workload_name(self):
        with pytest.raises(SessionError, match="unknown workload"):
            Session().system("hdtv")

    def test_unknown_manager_key_fails_at_builder_time(self):
        with pytest.raises(RegistryError):
            Session().manager("frobnicate")

    def test_unknown_manager_param_fails_at_builder_time(self):
        with pytest.raises(RegistryError, match="does not accept"):
            Session().manager("skip", window=3)

    def test_unknown_policy(self):
        with pytest.raises(SessionError, match="unknown policy"):
            Session().policy("pessimistic")

    def test_bad_deadline_period(self):
        with pytest.raises(SessionError, match="> 0"):
            Session().deadlines(period=-1.0)

    def test_deadlines_needs_exactly_one_argument(self, deadlines):
        with pytest.raises(SessionError, match="exactly one"):
            Session().deadlines(deadlines, period=3.0)
        with pytest.raises(SessionError, match="exactly one"):
            Session().deadlines()

    def test_bad_relaxation_steps(self):
        with pytest.raises(SessionError, match=">= 1"):
            Session().relaxation_steps(0, 5)

    def test_bad_machine_and_overhead_names(self):
        with pytest.raises(SessionError, match="unknown machine"):
            Session().machine("cray")
        with pytest.raises(SessionError, match="unknown overhead"):
            Session().overhead("cray")

    def test_bad_cycle_counts(self, system, deadlines):
        with pytest.raises(SessionError, match=">= 1"):
            Session().cycles(0)
        with pytest.raises(SessionError, match=">= 1"):
            Session().system(system).deadlines(deadlines).run(cycles=0)


class TestSessionCompileCaching:
    def test_repeated_runs_reuse_the_compilation(self, system, deadlines):
        session = Session().system(system).deadlines(deadlines)
        first = session.compile()
        session.run(cycles=2)
        session.manager("numeric").run(cycles=1)
        assert session.compile() is first

    def test_policy_change_invalidates(self, system, deadlines):
        session = Session().system(system).deadlines(deadlines)
        first = session.compile()
        session.policy("safe")
        assert session.compile() is not first

    def test_deadline_change_invalidates(self, system, deadlines):
        session = Session().system(system).deadlines(deadlines)
        first = session.compile()
        session.deadlines(period=deadlines.final_deadline * 1.5)
        assert session.compile() is not first

    def test_same_relaxation_steps_do_not_invalidate(self, system, deadlines):
        session = Session().system(system).deadlines(deadlines)
        first = session.compile()
        session.relaxation_steps(*first.report.relaxation_steps)
        assert session.compile() is first

    def test_step_override_is_cached_separately(self, system, deadlines):
        session = Session().system(system).deadlines(deadlines)
        a = session.compile(steps_override=(1, 2))
        b = session.compile(steps_override=(1, 2))
        assert a is b
        assert a is not session.compile()

    def test_clone_shares_cache_until_it_diverges(self, system, deadlines):
        session = Session().system(system).deadlines(deadlines)
        first = session.compile()
        clone = session.clone()
        assert clone.compile() is first
        # the clone reconfigures: it detaches, the original keeps its cache
        clone.policy("safe")
        assert clone.compile() is not first
        assert session.compile() is first

    def test_clone_does_not_advance_the_callers_frame_sampler(self):
        """A clone rebuilds workload systems: its runs must not consume the
        caller's (stateful) video sequence, and vice versa."""
        session = Session().system("small").seed(0)
        baseline = session.run(cycles=1).outcomes[0]
        fresh = Session().system("small").seed(0)
        fresh.clone().run(cycles=3)  # must not touch fresh's sampler
        replay = fresh.run(cycles=1).outcomes[0]
        np.testing.assert_array_equal(baseline.qualities, replay.qualities)

    def test_seed_change_rebuilds_named_workload(self):
        session = Session().system("small").seed(0)
        first = session.compile()
        session.seed(1)
        assert session.compile() is not first
        # setting the same seed again must NOT invalidate
        second = session.compile()
        session.seed(1)
        assert session.compile() is second


class TestRunLayer:
    def test_run_collects_outcomes_and_metrics(self, system, deadlines):
        result = (
            Session().system(system).deadlines(deadlines).manager("relaxation").run(cycles=3)
        )
        assert result.n_cycles == 3
        assert result.manager_key == "relaxation"
        assert result.metrics.n_cycles == 3
        assert sum(result.quality_histogram.values()) == 3 * system.n_actions
        assert result.mean_quality_per_cycle.shape == (3,)
        assert "relaxation" in result.render()

    def test_stream_validates_before_iteration(self, system, deadlines):
        session = Session().system(system).deadlines(deadlines)
        with pytest.raises(SessionError, match=">= 1"):
            session.stream(0)  # fails here, not at first next()
        with pytest.raises(SessionError, match="scenarios"):
            session.stream(2, scenarios=[])

    def test_stream_is_lazy_and_matches_run(self, system, deadlines):
        session = Session().system(system).deadlines(deadlines).seed(7)
        iterator = session.stream(2)
        outcomes = list(iterator)
        assert len(outcomes) == 2
        result = session.run(cycles=2, seed=7)
        for streamed, collected in zip(outcomes, result.outcomes):
            np.testing.assert_array_equal(streamed.qualities, collected.qualities)

    def test_run_determinism_under_fixed_seed(self, system, deadlines):
        def once():
            return Session().system(system).deadlines(deadlines).seed(11).run(cycles=3)

        a, b = once(), once()
        for left, right in zip(a.outcomes, b.outcomes):
            np.testing.assert_array_equal(left.qualities, right.qualities)
            np.testing.assert_array_equal(left.durations, right.durations)

    def test_compare_uses_identical_scenarios(self, system, deadlines):
        batch = Session().system(system).deadlines(deadlines).compare(cycles=2, seed=5)
        assert batch.labels == ("numeric", "region", "relaxation")
        durations = {
            label: np.concatenate([o.durations for o in run.outcomes])
            for label, run in batch.runs.items()
        }
        # identical inputs: all three managers saw scenarios drawn once; the
        # numeric and region managers make identical choices, so durations match
        np.testing.assert_array_equal(durations["numeric"], durations["region"])

    def test_compare_matches_platform_executor(self):
        """The facade reproduces the pre-facade executor numbers bit-exactly."""
        from repro.analysis import compute_metrics
        from repro.core import QualityManagerCompiler
        from repro.media import small_encoder
        from repro.platform import PlatformExecutor, ipod_video

        workload = small_encoder(seed=0, n_frames=2)
        system = workload.build_system()
        deadlines = workload.deadlines()
        compiled = QualityManagerCompiler().compile(system, deadlines)
        old = PlatformExecutor(ipod_video()).compare(
            system, deadlines, compiled.managers(), n_cycles=2, seed=1
        )
        new = Session().system(workload).machine("ipod").compare(cycles=2, seed=1)
        for name in ("numeric", "region", "relaxation"):
            assert compute_metrics(old[name].outcomes, deadlines) == new[name].metrics

    def test_run_many_determinism_and_labels(self, system, deadlines):
        def sweep():
            session = Session().system(system).deadlines(deadlines).manager("region")
            return session.run_many(
                [
                    1,
                    2,
                    "skip",
                    ScenarioSpec(label="late", manager="constant:level=4", seed=3),
                    {"label": "short", "cycles": 1, "seed": 4},
                ]
            )

        a, b = sweep(), sweep()
        assert a.labels == ("seed=1", "seed=2", "skip", "late", "short")
        assert a.total_cycles == b.total_cycles == 5
        for label in a.labels:
            for left, right in zip(a[label].outcomes, b[label].outcomes):
                np.testing.assert_array_equal(left.qualities, right.qualities)
        assert a["late"].manager_key == "constant"
        assert a["short"].n_cycles == 1

    def test_run_many_fresh_session_deterministic_on_encoder_workload(self):
        """Encoder samplers are stateful (frame cursor), but a fresh session
        under a fixed seed always replays the same sequence."""

        def sweep():
            return Session().system("small").seed(0).manager("region").run_many([5, 6])

        a, b = sweep(), sweep()
        for label in a.labels:
            for left, right in zip(a[label].outcomes, b[label].outcomes):
                np.testing.assert_array_equal(left.qualities, right.qualities)

    def test_run_many_validates_before_running(self, system, deadlines):
        session = Session().system(system).deadlines(deadlines)
        with pytest.raises(RegistryError):
            session.run_many(["region", "frobnicate"])
        with pytest.raises(SessionError, match="scenario"):
            session.run_many([{"label": "x", "frames": 2}])

    def test_run_many_label_collisions_never_overwrite(self, system, deadlines):
        """Regression: the old ``f"{label}-{index}"`` fallback could collide
        with a user-supplied label and silently drop a run."""
        session = Session().system(system).deadlines(deadlines).manager("region")
        batch = session.run_many(
            [
                {"label": "a", "seed": 1},
                {"label": "a-2", "seed": 2},  # occupies the old fallback name
                {"label": "a", "seed": 3},
                {"label": "a", "seed": 4},
            ]
        )
        assert len(batch) == 4
        assert batch.labels == ("a", "a-2", "a-3", "a-4")
        assert [batch[label].seed for label in batch.labels] == [1, 2, 3, 4]

    def test_compare_label_collisions_never_overwrite(self, system, deadlines):
        session = Session().system(system).deadlines(deadlines)
        batch = session.compare("relaxation", "relaxation", "relaxation", cycles=1)
        assert len(batch) == 3
        assert batch.labels == ("relaxation", "relaxation-1", "relaxation-2")

    def test_batch_result_aggregates(self, system, deadlines):
        batch = Session().system(system).deadlines(deadlines).compare(cycles=2)
        assert isinstance(batch, BatchResult)
        assert batch.total_cycles == 6
        assert set(batch.deadline_misses) == set(batch.labels)
        assert set(batch.quality_histograms()) == set(batch.labels)
        assert "numeric" in batch.render()

    def test_overhead_model_charged_without_machine(self, system, deadlines):
        free = Session().system(system).deadlines(deadlines).run(cycles=1)
        charged = (
            Session().system(system).deadlines(deadlines).overhead("ipod").run(cycles=1)
        )
        assert free.total_overhead_seconds == 0.0
        assert charged.total_overhead_seconds > 0.0

    def test_run_outcomes_stay_safe(self, system, deadlines):
        result = Session().system(system).deadlines(deadlines).seed(2).run(cycles=4)
        for outcome in result.outcomes:
            assert audit_trace(outcome, deadlines).is_safe
        assert result.all_deadlines_met


class TestLazyPackageSurface:
    def test_lazy_submodules_importable(self):
        for name in ("api", "media", "platform", "baselines", "analysis", "extensions"):
            module = getattr(repro, name)
            assert module.__name__ == f"repro.{name}"

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.frobnicate

    def test_dir_lists_submodules(self):
        listed = dir(repro)
        assert "api" in listed and "media" in listed


class TestDeprecationShims:
    def test_compile_controllers_warns_and_works(self, system, deadlines):
        with pytest.warns(DeprecationWarning, match="Session"):
            controllers = compile_controllers(system, deadlines)
        assert controllers.numeric.name == "numeric"

    def test_build_baseline_warns_and_uses_registry(self, system, deadlines):
        with pytest.warns(DeprecationWarning, match="build_manager"):
            manager = build_baseline("skip", system, deadlines, skip_window=4)
        assert manager.name == "skip"

    def test_run_controlled_warns_and_matches_session(self, system, deadlines):
        session = Session().system(system).deadlines(deadlines).manager("region").seed(9)
        manager = session.build()
        with pytest.warns(DeprecationWarning, match="Session.run"):
            outcomes = run_controlled(system, deadlines, manager, n_cycles=2, seed=9)
        result = session.run(cycles=2, seed=9)
        for old, new in zip(outcomes, result.outcomes):
            np.testing.assert_array_equal(old.qualities, new.qualities)


class TestDeadlinePeriod:
    def test_period_builds_single_deadline(self, system):
        budget = system.worst_case.total(1, system.n_actions, 0) * 1.4
        session = Session().system(system).deadlines(period=budget)
        resolved = session.resolved_deadlines()
        assert isinstance(resolved, DeadlineFunction)
        assert resolved.final_deadline == pytest.approx(budget)
        assert session.run(cycles=1).n_cycles == 1
