"""Tests for quality regions (Proposition 2) and the region manager."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    NumericQualityManager,
    QualityRegionTable,
    RegionQualityManager,
    compute_td_table,
)

from helpers import make_deadline, make_synthetic_system


@pytest.fixture(scope="module")
def setup():
    system = make_synthetic_system(n_actions=25, n_levels=5, seed=9)
    deadlines = make_deadline(system, slack=1.3)
    td = compute_td_table(system, deadlines)
    return system, deadlines, td, QualityRegionTable(td)


class TestRegionBounds:
    def test_upper_bound_is_td(self, setup):
        system, _, td, regions = setup
        for state in (0, 5, system.n_actions - 1):
            for quality in system.qualities:
                _, upper = regions.bounds(state, quality)
                assert upper == pytest.approx(td.td(state, quality))

    def test_lower_bound_is_next_level_td(self, setup):
        system, _, td, regions = setup
        state = 3
        for quality in list(system.qualities)[:-1]:
            lower, _ = regions.bounds(state, quality)
            assert lower == pytest.approx(td.td(state, quality + 1))

    def test_max_quality_has_open_lower_bound(self, setup):
        system, _, _, regions = setup
        lower, _ = regions.bounds(0, system.qualities.maximum)
        assert lower == -np.inf

    def test_partition_consistency(self, setup):
        _, _, _, regions = setup
        assert regions.partition_is_consistent()


class TestRegionMembership:
    def test_region_of_matches_td_choice(self, setup):
        system, _, td, regions = setup
        rng = np.random.default_rng(1)
        for state in range(system.n_actions):
            upper = td.values[0, state]
            for time in rng.uniform(0.0, max(upper, 1e-6), size=5):
                region = regions.region_of(state, float(time))
                chosen = td.choose_quality(state, float(time))
                assert region == chosen

    def test_region_of_none_when_late(self, setup):
        system, _, td, regions = setup
        state = system.n_actions - 1
        assert regions.region_of(state, td.values[0, state] + 1.0) is None

    def test_contains_consistent_with_region_of(self, setup):
        system, _, td, regions = setup
        state = 4
        time = td.values[-1, state] * 0.9  # inside the q_max region for sure
        region = regions.region_of(state, time)
        assert region is not None
        assert regions.contains(state, time, region)
        for other in system.qualities:
            if other != region:
                assert not regions.contains(state, time, other)

    def test_regions_tile_without_overlap(self, setup):
        """Any admissible time belongs to exactly one region."""
        system, _, td, regions = setup
        state = 7
        times = np.linspace(0.0, td.values[0, state], 60)
        for time in times:
            memberships = [q for q in system.qualities if regions.contains(state, float(time), q)]
            assert len(memberships) == 1

    def test_boundaries_non_increasing(self, setup):
        system, _, _, regions = setup
        for state in range(0, system.n_actions, 5):
            boundaries = regions.boundaries(state)
            assert np.all(np.diff(boundaries) <= 1e-9)


class TestRegionManager:
    def test_same_choice_as_numeric_manager(self, setup):
        system, _, td, regions = setup
        numeric = NumericQualityManager(td)
        symbolic = RegionQualityManager(regions)
        rng = np.random.default_rng(3)
        for state in range(system.n_actions):
            horizon = td.values[0, state] * 1.1
            for time in rng.uniform(0.0, max(horizon, 1e-6), size=4):
                assert (
                    symbolic.decide(state, float(time)).quality
                    == numeric.decide(state, float(time)).quality
                )

    def test_single_step_decisions(self, setup):
        _, _, _, regions = setup
        manager = RegionQualityManager(regions)
        assert manager.decide(0, 0.0).steps == 1

    def test_work_is_constant_per_call(self, setup):
        system, _, _, regions = setup
        manager = RegionQualityManager(regions)
        early = manager.decide(0, 0.0).work
        late = manager.decide(system.n_actions - 1, 0.0).work
        assert early.comparisons == late.comparisons
        assert early.table_lookups == late.table_lookups
        assert early.arithmetic_ops == 0

    def test_numeric_work_shrinks_with_progress(self, setup):
        _, _, td, _ = setup
        numeric = NumericQualityManager(td)
        early = numeric.decide(0, 0.0).work
        late = numeric.decide(td.n_states - 1, 0.0).work
        assert early.arithmetic_ops > late.arithmetic_ops

    def test_late_state_falls_back_to_minimum(self, setup):
        system, _, td, regions = setup
        manager = RegionQualityManager(regions)
        state = system.n_actions - 1
        decision = manager.decide(state, td.values[0, state] + 5.0)
        assert decision.quality == system.qualities.minimum

    def test_memory_footprint_formula(self, setup):
        system, _, _, regions = setup
        manager = RegionQualityManager(regions)
        assert manager.memory_footprint().integers == system.n_actions * len(system.qualities)

    def test_footprint_bytes(self, setup):
        _, _, _, regions = setup
        footprint = regions.memory_footprint()
        assert footprint.bytes == footprint.integers * 4
        assert footprint.kilobytes == pytest.approx(footprint.bytes / 1024.0)
