"""Documentation smoke tests: every documented entry point must actually run.

Executes each ``examples/*.py`` as a subprocess (with
``REPRO_EXAMPLE_CYCLES=1`` so the scale-bearing examples stay minimal) and
the README quickstart snippets, so the code the documentation shows cannot
rot.  These are the tests the CI ``docs-and-examples`` job runs.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
_EXAMPLES = sorted((_ROOT / "examples").glob("*.py"))


def _example_env() -> dict[str, str]:
    env = dict(os.environ)
    env["REPRO_EXAMPLE_CYCLES"] = "1"
    env["PYTHONPATH"] = str(_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def test_every_example_is_covered():
    """A new example file automatically joins the smoke run below."""
    assert _EXAMPLES, "examples/ directory is empty?"
    assert {path.name for path in _EXAMPLES} >= {
        "quickstart.py",
        "mpeg_encoder_comparison.py",
        "parallel_sweep.py",
        "distributed_sweep.py",
        "power_management_dvfs.py",
        "multitask_control.py",
        "speed_diagram_tour.py",
    }


@pytest.mark.parametrize("example", _EXAMPLES, ids=lambda path: path.name)
def test_example_runs_clean(example: Path):
    completed = subprocess.run(
        [sys.executable, str(example)],
        env=_example_env(),
        capture_output=True,
        text=True,
        timeout=600,
        cwd=_ROOT,
    )
    assert completed.returncode == 0, (
        f"{example.name} exited {completed.returncode}\n"
        f"stdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{example.name} printed nothing"


# --------------------------------------------------------------------------- #
# README quickstart snippets
# --------------------------------------------------------------------------- #


def _section_code_blocks(markdown: str, heading: str) -> list[str]:
    """The ``python`` fenced blocks under one ``##`` heading."""
    pattern = rf"^## {re.escape(heading)}$(.*?)(?=^## |\Z)"
    match = re.search(pattern, markdown, flags=re.MULTILINE | re.DOTALL)
    assert match, f"README has no '## {heading}' section"
    return re.findall(r"```python\n(.*?)```", match.group(1), flags=re.DOTALL)


def test_readme_quickstart_snippets_execute():
    """Both Quickstart code blocks run verbatim (shared namespace, like a
    reader pasting them into one interpreter session)."""
    markdown = (_ROOT / "README.md").read_text(encoding="utf-8")
    blocks = _section_code_blocks(markdown, "Quickstart")
    assert len(blocks) >= 2, "Quickstart should show at least two code blocks"
    namespace: dict = {}
    for block in blocks:
        exec(compile(block, "<README quickstart>", "exec"), namespace)  # noqa: S102
    # the first block printed metrics from a real run
    assert "result" in namespace and namespace["result"].n_cycles >= 1
