"""Telemetry layer: metrics merge semantics, span trees, and the
cross-process trace guarantee.

The headline assertions here back the observability acceptance gate: one
distributed sweep — over the in-process pool *and* over a spool with a
real subprocess worker — exports JSONL that merges into a single trace
tree (the worker spans carry the very span ids the parent propagated)
plus one order-independently merged metrics snapshot, while the sweep
results stay bit-identical to the serial path.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.api import Session
from repro.obs import enable, export, logconfig, metrics, reset_enabled, trace
from repro.obs.metrics import bucket_exponent, merge_snapshots

_GRID = [
    {"label": f"u{i}", "manager": manager, "seed": i, "cycles": 2}
    for i, manager in enumerate(["relaxation", "region", "numeric", "skip"])
]


def _session(tmp_path: Path) -> Session:
    return Session().system("small").machine("ipod").seed(0).artifacts(tmp_path / "cache")


def _batches_identical(first, second) -> None:
    assert set(first.runs) == set(second.runs)
    fields = ("qualities", "durations", "completion_times", "manager_overheads")
    for label in first.runs:
        a, b = first[label], second[label]
        assert a.manager_name == b.manager_name
        assert len(a.outcomes) == len(b.outcomes)
        for left, right in zip(a.outcomes, b.outcomes):
            for name in fields:
                assert np.array_equal(getattr(left, name), getattr(right, name)), label


@pytest.fixture
def obs_dir(tmp_path, monkeypatch):
    """Telemetry on, exporting into a fresh directory; clean slate both ways."""
    out = tmp_path / "telemetry"
    monkeypatch.setenv("REPRO_OBS", "1")
    monkeypatch.setenv("REPRO_OBS_DIR", str(out))
    reset_enabled()
    metrics.registry().reset()
    trace.drain()
    yield out
    reset_enabled()
    metrics.registry().reset()
    trace.drain()


# --------------------------------------------------------------------------- #
# metrics
# --------------------------------------------------------------------------- #


def test_counter_gauge_histogram_basics():
    reg = metrics.MetricsRegistry("t")
    reg.inc("runs")
    reg.inc("runs", 2)
    reg.set("depth", 7)
    reg.observe("latency", 0.25)
    reg.observe("latency", 3.0)
    snap = reg.snapshot()["metrics"]
    assert snap["runs"] == {"kind": "counter", "value": 3}
    assert snap["depth"] == {"kind": "gauge", "value": 7}
    hist = snap["latency"]
    assert hist["count"] == 2 and hist["min"] == 0.25 and hist["max"] == 3.0
    with pytest.raises(ValueError, match="only go up"):
        reg.inc("runs", -1)
    with pytest.raises(TypeError, match="counter"):
        reg.gauge("runs")


def test_bucket_exponent_powers_of_two():
    # bucket e holds 2**(e-1) < v <= 2**e; exact powers land in their own key
    assert bucket_exponent(1.0) == 0
    assert bucket_exponent(2.0) == 1
    assert bucket_exponent(2.0001) == 2
    assert bucket_exponent(0.5) == -1
    assert bucket_exponent(0.4) == -1
    assert bucket_exponent(0.0) == 0
    assert bucket_exponent(float("nan")) == 0
    assert bucket_exponent(float("inf")) == 0


def test_merge_snapshots_is_order_independent():
    a = metrics.MetricsRegistry("a")
    a.inc("units", 3)
    a.set("resident", 2)
    a.observe("wait", 0.5)
    a.observe("wait", 4.0)
    b = metrics.MetricsRegistry("b")
    b.inc("units", 5)
    b.set("resident", 6)
    b.observe("wait", 0.1)
    c = metrics.MetricsRegistry("c")
    c.observe("wait", 100.0)

    snaps = [a.snapshot(), b.snapshot(), c.snapshot()]
    forward = merge_snapshots(snaps)
    backward = merge_snapshots(list(reversed(snaps)))
    assert forward["metrics"] == backward["metrics"]
    merged = forward["metrics"]
    assert merged["units"]["value"] == 8  # counters add
    assert merged["resident"]["value"] == 6  # gauges keep the max
    wait = merged["wait"]
    assert wait["count"] == 4 and wait["min"] == 0.1 and wait["max"] == 100.0
    assert sum(wait["buckets"].values()) == 4
    # associative too: pairwise fold equals one-shot fold
    paired = merge_snapshots([merge_snapshots(snaps[:2]), snaps[2]])
    assert paired["metrics"] == merged


def test_merge_snapshots_rejects_kind_mismatch():
    a = metrics.MetricsRegistry("a")
    a.inc("x")
    b = metrics.MetricsRegistry("b")
    b.set("x", 1)
    with pytest.raises(ValueError, match="merges a counter with a gauge"):
        merge_snapshots([a.snapshot(), b.snapshot()])


# --------------------------------------------------------------------------- #
# spans
# --------------------------------------------------------------------------- #


def test_spans_nest_into_one_tree():
    enable()
    try:
        trace.drain()
        with trace.span("outer", kind="test"):
            with trace.span("inner"):
                pass
            with trace.span("sibling"):
                pass
        records = trace.drain()
    finally:
        reset_enabled()
    assert [r["name"] for r in records] == ["inner", "sibling", "outer"]
    outer = records[-1]
    assert outer["parent_id"] is None and outer["attrs"] == {"kind": "test"}
    assert all(r["trace_id"] == outer["trace_id"] for r in records)
    assert all(r["parent_id"] == outer["span_id"] for r in records[:-1])
    trees = trace.build_trees(records)
    assert len(trees) == 1
    assert [child["span"]["name"] for child in trees[0]["children"]] == [
        "inner",
        "sibling",
    ]


def test_disabled_spans_are_one_shared_noop():
    reset_enabled()
    assert trace.span("a") is trace.span("b")  # no allocation on the hot path
    with trace.span("a"):
        assert trace.current_context() is None
    assert trace.drain() == []
    assert export.flush() is None  # and no file is ever written


def test_attach_ids_adopts_a_propagated_parent():
    enable()
    try:
        trace.drain()
        with trace.span("parent"):
            ids = trace.propagation()
        assert ids is not None
        with trace.attach_ids(ids):
            with trace.span("child"):
                pass
        records = trace.drain()
    finally:
        reset_enabled()
    parent, child = records
    assert child["trace_id"] == parent["trace_id"]
    assert child["parent_id"] == parent["span_id"]
    # both ends of the tuple survive a JSON round-trip (the plan meta path)
    assert trace.attach_ids(json.loads(json.dumps(ids)))
    with trace.attach_ids(None):
        assert trace.current_context() is None


def test_span_records_errors():
    enable()
    try:
        trace.drain()
        with pytest.raises(RuntimeError):
            with trace.span("doomed"):
                raise RuntimeError("boom")
        records = trace.drain()
    finally:
        reset_enabled()
    assert records[0]["error"] == "RuntimeError"


# --------------------------------------------------------------------------- #
# cross-process traces: pool and spool
# --------------------------------------------------------------------------- #


def _single_tree(out: Path, worker_span: str, n_units: int) -> dict:
    """Assert the exported JSONL merges into one multi-process trace tree."""
    events = export.read_events(out)
    spans = [e for e in events if e.get("type") == "span"]
    assert {s["trace_id"] for s in spans if s["name"].startswith("session.")} == {
        s["trace_id"] for s in spans
    }
    assert len({s["trace_id"] for s in spans}) == 1
    units = [s for s in spans if s["name"] == worker_span]
    assert len(units) == n_units
    (fan_in,) = [s for s in spans if s["name"] == "session.fan_in"]
    # the worker span ids chain to the very id the parent propagated
    assert all(s["parent_id"] == fan_in["span_id"] for s in units)
    assert any(s["pid"] != os.getpid() for s in units)  # really cross-process
    report = export.build_report(events)
    assert len(report["trees"]) == 1
    assert report["trees"][0]["span"]["name"] == "session.run_many"
    assert len(report["processes"]) >= 2
    return report


def test_pool_sweep_merges_into_one_trace_tree(tmp_path, monkeypatch, obs_dir):
    monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "serial-telemetry"))
    serial = _session(tmp_path).run_many(_GRID)
    monkeypatch.setenv("REPRO_OBS_DIR", str(obs_dir))
    pooled = _session(tmp_path).parallel(2).run_many(_GRID)
    _batches_identical(serial, pooled)  # telemetry never touches the results

    report = _single_tree(obs_dir, "pool.unit", len(_GRID))
    merged = report["metrics"]["metrics"]
    assert merged["pool.units.ok"]["value"] == len(_GRID)
    assert "pool.units.failed" not in merged


def test_spool_sweep_with_subprocess_worker_merges_into_one_trace_tree(
    tmp_path, monkeypatch, obs_dir
):
    monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "serial-telemetry"))
    serial = _session(tmp_path).run_many(_GRID)
    monkeypatch.setenv("REPRO_OBS_DIR", str(obs_dir))
    remote = (
        _session(tmp_path)
        .remote(tmp_path / "spool", poll_interval=0.02, timeout=120.0, local_workers=1)
        .run_many(_GRID)
    )
    _batches_identical(serial, remote)

    report = _single_tree(obs_dir, "spool.unit", len(_GRID))
    spans = report["spans"]
    hydrates = [s for s in spans if s["name"] == "spool.hydrate"]
    unit_ids = {s["span_id"] for s in spans if s["name"] == "spool.unit"}
    assert hydrates and all(s["parent_id"] in unit_ids for s in hydrates)
    merged = report["metrics"]["metrics"]
    assert merged["spool.units.ok"]["value"] == len(_GRID)
    assert merged["spool.claims"]["value"] >= len(_GRID)
    assert merged["spool.plans_submitted"]["value"] == 1


def test_cli_obs_report_renders_and_emits_json(tmp_path, monkeypatch, obs_dir, capsys):
    from repro.cli import main

    _session(tmp_path).parallel(2).run_many(_GRID[:2])
    assert main(["obs", "report", str(obs_dir)]) == 0
    printed = capsys.readouterr().out
    assert "telemetry report" in printed
    assert "session.run_many" in printed and "pool.unit" in printed
    assert main(["obs", "report", str(obs_dir), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["metrics"]["metrics"]["pool.units.ok"]["value"] == 2


def test_obs_report_survives_malformed_lines(tmp_path):
    out = tmp_path / "telemetry"
    out.mkdir()
    (out / "obs-x.jsonl").write_text(
        '{"type": "span", "span_id": "s1", "trace_id": "t", "name": "a"}\n'
        "{broken json\n"
        '{"type": "metrics", "process": "x", "seq": 1, '
        '"snapshot": {"metrics": {"n": {"kind": "counter", "value": 2}}}}\n',
        encoding="utf-8",
    )
    report = export.build_report(export.read_events(out))
    assert len(report["spans"]) == 1
    assert report["metrics"]["metrics"]["n"]["value"] == 2


# --------------------------------------------------------------------------- #
# logging configuration
# --------------------------------------------------------------------------- #


def test_configure_logging_precedence(monkeypatch):
    try:
        monkeypatch.setenv("REPRO_LOG", "error")
        assert logconfig.configure_logging(None) == "error"
        assert logconfig.current_level() == "error"
        assert logconfig.configure_logging("debug") == "debug"  # the flag wins
        monkeypatch.setenv("REPRO_LOG", "verbose")
        with pytest.raises(ValueError, match="unknown log level"):
            logconfig.configure_logging(None)
    finally:
        monkeypatch.delenv("REPRO_LOG", raising=False)
        assert logconfig.configure_logging(None) == "warning"  # the default


def test_cli_log_level_flag_sets_the_repro_logger(capsys):
    from repro.cli import main

    try:
        assert main(["--log-level", "debug", "managers"]) == 0
        assert logconfig.current_level() == "debug"
    finally:
        logconfig.configure_logging("warning")
    capsys.readouterr()
