"""Tests for the manager interface types and the numeric Quality Manager."""

from __future__ import annotations

import pytest

from repro.core import (
    Decision,
    ManagerWork,
    MemoryFootprint,
    NumericQualityManager,
    compute_td_table,
)

from helpers import make_deadline, make_synthetic_system


@pytest.fixture(scope="module")
def td():
    system = make_synthetic_system(n_actions=12, n_levels=3, seed=1)
    return compute_td_table(system, make_deadline(system))


class TestManagerWork:
    def test_defaults(self):
        work = ManagerWork(kind="numeric")
        assert work.arithmetic_ops == 0
        assert work.comparisons == 0
        assert work.table_lookups == 0

    def test_scaled(self):
        work = ManagerWork(kind="x", arithmetic_ops=2, comparisons=3, table_lookups=4)
        scaled = work.scaled(5)
        assert scaled.arithmetic_ops == 10
        assert scaled.comparisons == 15
        assert scaled.table_lookups == 20
        assert scaled.kind == "x"


class TestMemoryFootprint:
    def test_bytes_and_kilobytes(self):
        footprint = MemoryFootprint(integers=1024, bytes_per_entry=4)
        assert footprint.bytes == 4096
        assert footprint.kilobytes == pytest.approx(4.0)

    def test_custom_entry_size(self):
        footprint = MemoryFootprint(integers=10, bytes_per_entry=8)
        assert footprint.bytes == 80


class TestDecision:
    def test_requires_at_least_one_step(self):
        with pytest.raises(ValueError):
            Decision(quality=1, steps=0, work=ManagerWork(kind="x"))

    def test_valid_decision(self):
        decision = Decision(quality=2, steps=3, work=ManagerWork(kind="x"))
        assert decision.quality == 2
        assert decision.steps == 3


class TestNumericQualityManager:
    def test_chooses_td_quality(self, td):
        manager = NumericQualityManager(td)
        for state in range(td.n_states):
            time = td.values[-1, state] * 0.5
            assert manager.decide(state, time).quality == td.choose_quality(state, time)

    def test_always_single_step(self, td):
        manager = NumericQualityManager(td)
        assert manager.decide(0, 0.0).steps == 1

    def test_work_scales_with_remaining_actions(self, td):
        manager = NumericQualityManager(td, ops_per_action_level=4)
        first = manager.decide(0, 0.0).work
        assert first.arithmetic_ops == td.n_states * td.n_levels * 4
        assert first.comparisons == td.n_levels

    def test_custom_ops_per_action(self, td):
        manager = NumericQualityManager(td, ops_per_action_level=2)
        assert manager.decide(0, 0.0).work.arithmetic_ops == td.n_states * td.n_levels * 2

    def test_memory_footprint(self, td):
        manager = NumericQualityManager(td)
        assert manager.memory_footprint().integers == 2 * td.n_states * td.n_levels

    def test_qualities_property(self, td):
        manager = NumericQualityManager(td)
        assert manager.qualities == td.system.qualities

    def test_name_and_repr(self, td):
        manager = NumericQualityManager(td)
        assert manager.name == "numeric"
        assert "numeric" in repr(manager)

    def test_reset_is_noop(self, td):
        manager = NumericQualityManager(td)
        manager.reset()  # must not raise
        assert manager.decide(0, 0.0).quality == td.choose_quality(0, 0.0)
