"""End-to-end integration tests: the full tool-chain workflow of Figure 1.

Application software + timing functions + deadlines  →  compiler  →
controlled software (three manager flavours)  →  execution on the virtual
platform  →  metrics and reports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import compute_metrics, metrics_report, render_speed_diagram
from repro.baselines import ConstantQualityManager, ElasticQualityManager
from repro.core import (
    ControlledSystem,
    QualityManagerCompiler,
    SpeedDiagram,
    audit_trace,
)
from repro.media import small_encoder
from repro.platform import PlatformExecutor, Profiler, desktop, ipod_video


class TestFullToolchain:
    @pytest.fixture(scope="class")
    def workload(self):
        return small_encoder(seed=5, n_frames=3)

    def test_compile_execute_audit_report(self, workload):
        system = workload.build_system()
        deadlines = workload.deadlines()

        # 1. compile the symbolic controllers
        controllers = QualityManagerCompiler().compile(system, deadlines)
        assert controllers.report.region_integers == system.n_actions * 7

        # 2. run on the iPod-like platform, identical scenarios across managers
        executor = PlatformExecutor(ipod_video())
        results = executor.compare(
            system, deadlines, controllers.managers(), n_cycles=3, seed=0
        )

        # 3. audit every trace
        for result in results.values():
            assert result.all_deadlines_met

        # 4. the paper's headline shape
        assert (
            results["numeric"].overhead_fraction
            > results["region"].overhead_fraction
            > results["relaxation"].overhead_fraction
        )
        assert results["relaxation"].mean_quality >= results["numeric"].mean_quality

        # 5. reports render
        metrics = {
            name: compute_metrics(result.outcomes, deadlines)
            for name, result in results.items()
        }
        report = metrics_report(metrics)
        assert "numeric" in report and "relaxation" in report

    def test_profile_then_control(self, workload):
        """Profiling-based estimates (the paper's iPod flow) still give a
        working controller when the safety factor covers the estimation gap."""
        system = workload.build_system()
        deadlines = workload.deadlines()
        profiled, report = Profiler(runs_per_level=5, safety_factor=1.6).profile(
            system, rng=np.random.default_rng(0)
        )
        controllers = QualityManagerCompiler(require_feasible=False).compile(
            profiled, deadlines
        )
        controlled = ControlledSystem(profiled, deadlines, controllers.relaxation)
        outcomes = controlled.run_cycles(3, rng=np.random.default_rng(1))
        metrics = compute_metrics(outcomes, deadlines)
        assert metrics.deadline_misses == 0
        assert report.runs_per_level == 5

    def test_speed_diagram_of_real_workload_renders(self, workload):
        system = workload.build_system()
        deadlines = workload.deadlines()
        controllers = QualityManagerCompiler().compile(system, deadlines)
        diagram = SpeedDiagram(system, deadlines, td_table=controllers.td_table)
        outcome = ControlledSystem(system, deadlines, controllers.region).run_cycle(
            rng=np.random.default_rng(2)
        )
        picture = render_speed_diagram(diagram, outcome)
        assert len(picture.splitlines()) > 10

    def test_adaptive_beats_static_configuration(self, workload):
        """The motivation of the paper's introduction: a static quality either
        wastes budget or misses deadlines, the adaptive manager does neither."""
        system = workload.build_system()
        deadlines = workload.deadlines()
        controllers = QualityManagerCompiler().compile(system, deadlines)
        executor = PlatformExecutor(ipod_video())
        qualities = system.qualities

        managers = {
            "adaptive": controllers.relaxation,
            "static-low": ConstantQualityManager(qualities, qualities.minimum),
            "static-high": ConstantQualityManager(qualities, qualities.maximum),
            "elastic": ElasticQualityManager(system, deadlines),
        }
        results = executor.compare(system, deadlines, managers, n_cycles=3, seed=7)

        adaptive = results["adaptive"]
        assert adaptive.all_deadlines_met
        # static low quality is safe but wastes quality
        assert results["static-low"].all_deadlines_met
        assert adaptive.mean_quality > results["static-low"].mean_quality
        # worst-case-only elastic compression is safe but below the adaptive manager
        assert results["elastic"].all_deadlines_met
        assert adaptive.mean_quality >= results["elastic"].mean_quality

    def test_platform_speed_changes_quality_not_safety(self, workload):
        """On a much faster platform the manager picks higher qualities; on
        both platforms it stays safe."""
        system = workload.build_system()
        deadlines = workload.deadlines()
        controllers = QualityManagerCompiler().compile(system, deadlines)
        slow_result = PlatformExecutor(ipod_video()).run(
            system, deadlines, controllers.region, n_cycles=2, rng=np.random.default_rng(0)
        )
        fast_system = system.rescaled(0.25)
        fast_controllers = QualityManagerCompiler().compile(fast_system, deadlines)
        fast_result = PlatformExecutor(desktop()).run(
            fast_system, deadlines, fast_controllers.region, n_cycles=2,
            rng=np.random.default_rng(0),
        )
        assert slow_result.all_deadlines_met
        assert fast_result.all_deadlines_met
        assert fast_result.mean_quality >= slow_result.mean_quality

    def test_multi_cycle_consistency(self, workload):
        """Every cycle of a multi-cycle run restarts the clock and is audited
        independently; qualities react to the per-frame content."""
        system = workload.build_system()
        deadlines = workload.deadlines()
        controllers = QualityManagerCompiler().compile(system, deadlines)
        controlled = ControlledSystem(system, deadlines, controllers.region)
        outcomes = controlled.run_cycles(4, rng=np.random.default_rng(3))
        for outcome in outcomes:
            assert audit_trace(outcome, deadlines).is_safe
            assert outcome.completion_times[0] == pytest.approx(
                outcome.durations[0] + outcome.manager_overheads[0], rel=1e-9
            ) or outcome.completion_times[0] >= outcome.durations[0]
        per_cycle_quality = [o.mean_quality for o in outcomes]
        assert len(set(round(q, 6) for q in per_cycle_quality)) > 1
