"""Tests for the quality-manager compiler."""

from __future__ import annotations

import pytest

from repro.core import (
    AveragePolicy,
    InfeasibleSystemError,
    MixedPolicy,
    QualityManagerCompiler,
)

from helpers import make_deadline, make_synthetic_system


@pytest.fixture(scope="module")
def compiled():
    system = make_synthetic_system(n_actions=20, n_levels=4, seed=6)
    deadlines = make_deadline(system)
    return system, deadlines, QualityManagerCompiler(relaxation_steps=(1, 5, 10)).compile(
        system, deadlines
    )


class TestCompilation:
    def test_produces_three_managers(self, compiled):
        _, _, controllers = compiled
        managers = controllers.managers()
        assert set(managers) == {"numeric", "region", "relaxation"}

    def test_managers_share_td_table(self, compiled):
        _, _, controllers = compiled
        assert controllers.numeric.td_table is controllers.td_table
        assert controllers.region.regions.td_table is controllers.td_table
        assert controllers.relaxation.relaxation.td_table is controllers.td_table

    def test_report_formulas(self, compiled):
        system, _, controllers = compiled
        report = controllers.report
        n, levels = system.n_actions, len(system.qualities)
        assert report.region_integers == n * levels
        assert report.relaxation_integers == 2 * n * levels * 3
        assert report.n_actions == n
        assert report.n_levels == levels
        assert report.relaxation_steps == (1, 5, 10)

    def test_report_timings_non_negative(self, compiled):
        _, _, controllers = compiled
        report = controllers.report
        assert report.td_precompute_seconds >= 0.0
        assert report.region_precompute_seconds >= 0.0
        assert report.relaxation_precompute_seconds >= 0.0

    def test_extras_in_managers(self, compiled):
        _, _, controllers = compiled
        # extras default to empty, but the mapping must include them when set
        assert controllers.extras == {}

    def test_default_policy_and_steps(self):
        compiler = QualityManagerCompiler()
        assert isinstance(compiler.policy, MixedPolicy)
        assert compiler.relaxation_steps == (1, 10, 20, 30, 40, 50)

    def test_custom_policy(self):
        compiler = QualityManagerCompiler(policy=AveragePolicy())
        assert isinstance(compiler.policy, AveragePolicy)

    def test_steps_deduplicated_and_sorted(self):
        compiler = QualityManagerCompiler(relaxation_steps=(10, 1, 10, 5))
        assert compiler.relaxation_steps == (1, 5, 10)

    def test_infeasible_system_rejected(self):
        system = make_synthetic_system(n_actions=10, seed=0)
        tight = make_deadline(system, slack=0.4)
        with pytest.raises(InfeasibleSystemError):
            QualityManagerCompiler().compile(system, tight)

    def test_infeasible_allowed_when_disabled(self):
        system = make_synthetic_system(n_actions=10, seed=0)
        tight = make_deadline(system, slack=0.4)
        controllers = QualityManagerCompiler(require_feasible=False).compile(system, tight)
        assert controllers.td_table.initial_feasibility_margin() < 0.0
