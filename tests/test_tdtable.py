"""Tests for the t^D table computation and the manager's choice rule."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AveragePolicy,
    DeadlineFunction,
    InfeasibleSystemError,
    MixedPolicy,
    SafePolicy,
    compute_td_table,
)

from helpers import make_deadline, make_synthetic_system
from test_policy import brute_mixed


def brute_td(system, deadlines, state_index: int, quality: int) -> float:
    """Direct transcription: t^D(s_i, q) = min_k D(a_k) - C^D(a_{i+1}..a_k, q)."""
    best = np.inf
    for k, deadline in deadlines:
        if k <= state_index:
            continue
        best = min(best, deadline - brute_mixed(system, state_index + 1, k, quality))
    return best


@pytest.fixture(scope="module")
def system():
    return make_synthetic_system(n_actions=18, n_levels=4, seed=3)


@pytest.fixture(scope="module")
def deadlines(system):
    return make_deadline(system, slack=1.25)


@pytest.fixture(scope="module")
def td(system, deadlines):
    return compute_td_table(system, deadlines)


class TestComputation:
    def test_matches_brute_force_single_deadline(self, system, deadlines, td):
        for quality in system.qualities:
            for state in range(system.n_actions):
                assert td.td(state, quality) == pytest.approx(
                    brute_td(system, deadlines, state, quality)
                )

    def test_matches_brute_force_multiple_deadlines(self, system):
        n = system.n_actions
        qmin = system.qualities.minimum
        mid = n // 2
        deadlines = DeadlineFunction(
            {
                mid: system.worst_case.total(1, mid, qmin) * 1.4,
                n: system.worst_case.total(1, n, qmin) * 1.3,
            }
        )
        table = compute_td_table(system, deadlines)
        for quality in system.qualities:
            for state in range(n):
                assert table.td(state, quality) == pytest.approx(
                    brute_td(system, deadlines, state, quality)
                )

    def test_shape(self, system, td):
        assert td.values.shape == (len(system.qualities), system.n_actions)
        assert td.n_states == system.n_actions
        assert td.n_levels == len(system.qualities)

    def test_monotone_in_quality(self, td):
        assert td.is_monotone_in_quality()

    def test_monotone_in_state_for_mixed_policy(self, td):
        # along a cycle, as work gets done, the admissible start time grows
        assert np.all(np.diff(td.values, axis=1) >= -1e-9)

    def test_initial_feasibility_margin_positive(self, td):
        assert td.initial_feasibility_margin() >= 0.0

    def test_default_policy_is_mixed(self, td):
        assert isinstance(td.policy, MixedPolicy)

    def test_values_read_only(self, td):
        with pytest.raises(ValueError):
            td.values[0, 0] = 0.0


class TestChoice:
    def test_choose_maximal_admissible_quality(self, system, td):
        state = system.n_actions // 3
        column = td.column(state)
        # at a time just below the highest-quality bound the choice is q_max
        assert td.choose_quality(state, column[-1] - 1e-9) == system.qualities.maximum

    def test_choice_respects_region_boundaries(self, system, td):
        state = 2
        for qi, quality in enumerate(system.qualities):
            boundary = td.values[qi, state]
            assert td.choose_quality(state, boundary) == quality or boundary == pytest.approx(
                td.values[min(qi + 1, td.n_levels - 1), state]
            )

    def test_overload_falls_back_to_minimum(self, system, td):
        state = system.n_actions - 1
        very_late = td.values[0, state] + 1.0
        assert td.choose_quality(state, very_late) == system.qualities.minimum

    def test_choice_is_non_increasing_in_time(self, system, td):
        state = 5
        times = np.linspace(0.0, td.values[0, state] * 1.2, 40)
        choices = [td.choose_quality(state, t) for t in times]
        assert all(a >= b for a, b in zip(choices, choices[1:]))

    def test_choose_quality_row(self, system, td):
        state = 1
        time = td.values[-1, state] * 0.5
        row = td.choose_quality_row(state, time)
        assert system.qualities.level_at(row) == td.choose_quality(state, time)

    def test_column_bounds_checked(self, td):
        with pytest.raises(IndexError):
            td.column(-1)
        with pytest.raises(IndexError):
            td.column(td.n_states)

    def test_td_bounds_checked(self, td):
        with pytest.raises(IndexError):
            td.td(td.n_states, 0)


class TestFeasibilityAndErrors:
    def test_infeasible_system_rejected(self, system):
        # a deadline below the all-min worst case is infeasible
        tight = DeadlineFunction.single(
            system.n_actions,
            system.worst_case.total(1, system.n_actions, system.qualities.minimum) * 0.5,
        )
        with pytest.raises(InfeasibleSystemError):
            compute_td_table(system, tight)

    def test_infeasible_allowed_when_not_required(self, system):
        tight = DeadlineFunction.single(
            system.n_actions,
            system.worst_case.total(1, system.n_actions, system.qualities.minimum) * 0.5,
        )
        table = compute_td_table(system, tight, require_feasible=False)
        assert table.initial_feasibility_margin() < 0.0

    def test_average_policy_never_raises_feasibility(self, system):
        tight = DeadlineFunction.single(
            system.n_actions,
            system.average.total(1, system.n_actions, system.qualities.minimum) * 0.9,
        )
        # AveragePolicy does not guarantee safety, so feasibility is not enforced
        table = compute_td_table(system, tight, policy=AveragePolicy())
        assert table.policy.name == "average"

    def test_deadline_beyond_system_rejected(self, system):
        deadlines = DeadlineFunction.single(system.n_actions + 3, 100.0)
        with pytest.raises(InfeasibleSystemError):
            compute_td_table(system, deadlines)

    def test_missing_final_deadline_rejected(self, system):
        # a deadline only on an early action leaves later states unconstrained
        deadlines = DeadlineFunction.single(2, 100.0)
        with pytest.raises(InfeasibleSystemError):
            compute_td_table(system, deadlines)


class TestPolicyOrdering:
    def test_safe_policy_td_not_above_mixed_at_high_quality_start(self, system, deadlines):
        """The mixed t^D is never above the safe t^D (C^D >= C^sf)."""
        mixed = compute_td_table(system, deadlines, MixedPolicy())
        safe = compute_td_table(system, deadlines, SafePolicy())
        assert np.all(mixed.values <= safe.values + 1e-9)

    def test_average_policy_td_is_upper_bound(self, system, deadlines):
        """The optimistic average t^D dominates the mixed t^D."""
        mixed = compute_td_table(system, deadlines, MixedPolicy())
        average = compute_td_table(system, deadlines, AveragePolicy())
        assert np.all(average.values >= mixed.values - 1e-9)
