"""Tests for trace auditing and structural invariant checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CycleOutcome,
    DeadlineFunction,
    DeadlineMissError,
    QualityManagerCompiler,
    QualityRegionTable,
    RelaxationTable,
    assert_trace_safe,
    audit_trace,
    check_relaxation_containment,
    check_td_structure,
    compute_td_table,
)

from helpers import make_deadline, make_synthetic_system


def make_outcome(completion_times: list[float]) -> CycleOutcome:
    n = len(completion_times)
    completion = np.array(completion_times, dtype=float)
    durations = np.diff(np.concatenate(([0.0], completion)))
    return CycleOutcome(
        qualities=np.zeros(n, dtype=np.int64),
        durations=durations,
        completion_times=completion,
        manager_invocations=np.arange(n),
        manager_overheads=np.zeros(n),
    )


class TestAuditTrace:
    def test_safe_trace(self):
        outcome = make_outcome([1.0, 2.0, 3.0])
        audit = audit_trace(outcome, DeadlineFunction.single(3, 3.5))
        assert audit.is_safe
        assert audit.checked_deadlines == 1
        assert audit.worst_lateness == 0.0

    def test_missed_deadline_detected(self):
        outcome = make_outcome([1.0, 2.0, 4.0])
        audit = audit_trace(outcome, DeadlineFunction.single(3, 3.5))
        assert not audit.is_safe
        assert len(audit.violations) == 1
        violation = audit.violations[0]
        assert violation.action_index == 3
        assert violation.lateness == pytest.approx(0.5)

    def test_multiple_deadlines(self):
        outcome = make_outcome([1.0, 2.5, 3.0])
        deadlines = DeadlineFunction({2: 2.0, 3: 5.0})
        audit = audit_trace(outcome, deadlines)
        assert audit.checked_deadlines == 2
        assert len(audit.violations) == 1
        assert audit.violations[0].action_index == 2

    def test_deadlines_beyond_trace_ignored(self):
        outcome = make_outcome([1.0])
        deadlines = DeadlineFunction({1: 2.0, 5: 1.0})
        audit = audit_trace(outcome, deadlines)
        assert audit.checked_deadlines == 1
        assert audit.is_safe

    def test_boundary_completion_is_safe(self):
        outcome = make_outcome([2.0])
        audit = audit_trace(outcome, DeadlineFunction.single(1, 2.0))
        assert audit.is_safe

    def test_assert_trace_safe_raises(self):
        outcome = make_outcome([5.0])
        with pytest.raises(DeadlineMissError):
            assert_trace_safe(outcome, DeadlineFunction.single(1, 4.0))

    def test_assert_trace_safe_passes(self):
        outcome = make_outcome([3.0])
        assert_trace_safe(outcome, DeadlineFunction.single(1, 4.0))


class TestStructuralChecks:
    def test_td_structure_on_valid_system(self):
        system = make_synthetic_system(seed=3)
        td = compute_td_table(system, make_deadline(system))
        checks = check_td_structure(td)
        assert checks == {
            "monotone_in_quality": True,
            "monotone_in_state": True,
            "initially_feasible": True,
        }

    def test_td_structure_detects_infeasibility(self):
        system = make_synthetic_system(seed=3)
        tight = make_deadline(system, slack=0.3)
        td = compute_td_table(system, tight, require_feasible=False)
        assert check_td_structure(td)["initially_feasible"] is False

    def test_relaxation_containment_on_compiled_controller(self):
        system = make_synthetic_system(n_actions=25, seed=17, wc_ratio=1.5)
        deadlines = make_deadline(system, slack=1.4)
        controllers = QualityManagerCompiler(relaxation_steps=(1, 4, 8)).compile(
            system, deadlines
        )
        assert check_relaxation_containment(
            controllers.region.regions, controllers.relaxation.relaxation
        )

    def test_relaxation_containment_rejects_mismatched_tables(self):
        """Containment fails when region and relaxation tables disagree."""
        system = make_synthetic_system(n_actions=12, seed=1)
        deadlines = make_deadline(system)
        td = compute_td_table(system, deadlines)
        regions = QualityRegionTable(td)
        # relaxation built on a *looser* deadline has larger upper bounds,
        # so it cannot be contained in the original regions
        loose = compute_td_table(system, deadlines.scaled(2.0))
        relaxation = RelaxationTable(loose, steps=(1, 2))
        assert not check_relaxation_containment(regions, relaxation)
