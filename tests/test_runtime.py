"""Tests for :mod:`repro.runtime`: artifact cache, sweep plans and the pool."""

from __future__ import annotations

import multiprocessing
import shutil

import numpy as np
import pytest

from helpers import make_synthetic_system

from repro.api import Session
from repro.core import DeadlineFunction, QualityManagerCompiler
from repro.core.policy import MixedPolicy
from repro.core.types import InfeasibleSystemError
from repro.media import small_encoder
from repro.runtime import (
    ARTIFACT_SCHEMA_VERSION,
    CompiledArtifactCache,
    SweepExecutionError,
    SweepExecutor,
    compile_key,
    default_cache_dir,
    spawn_seeds,
    unique_label,
)
from repro.runtime.plan import (
    ExecutionPayload,
    PlanError,
    SweepUnit,
    plan_compare,
    plan_run_many,
)

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture
def encoder_inputs():
    """A QCIF encoder system/deadline pair (picklable sampler)."""
    workload = small_encoder(seed=0, n_frames=4)
    return workload.build_system(), workload.deadlines()


@pytest.fixture
def cache(tmp_path):
    return CompiledArtifactCache(tmp_path / "artifacts")


def _outcomes_equal(left, right) -> bool:
    if len(left) != len(right):
        return False
    fields = (
        "qualities",
        "durations",
        "completion_times",
        "manager_invocations",
        "manager_overheads",
    )
    return all(
        np.array_equal(getattr(a, name), getattr(b, name))
        for a, b in zip(left, right)
        for name in fields
    )


def _batches_identical(first, second) -> None:
    assert first.labels == second.labels
    for label in first.labels:
        a, b = first[label], second[label]
        assert a.manager_key == b.manager_key
        assert a.manager_name == b.manager_name
        assert a.seed == b.seed
        assert _outcomes_equal(a.outcomes, b.outcomes), label


# --------------------------------------------------------------------------- #
# artifact cache
# --------------------------------------------------------------------------- #


class TestCompileKey:
    def test_deterministic(self, encoder_inputs):
        system, deadlines = encoder_inputs
        assert compile_key(system, deadlines) == compile_key(system, deadlines)

    def test_sensitive_to_steps_and_deadlines(self, encoder_inputs):
        system, deadlines = encoder_inputs
        base = compile_key(system, deadlines)
        assert compile_key(system, deadlines, relaxation_steps=(1, 5)) != base
        assert compile_key(system, deadlines.scaled(2.0)) != base

    def test_step_order_and_duplicates_ignored(self, encoder_inputs):
        system, deadlines = encoder_inputs
        assert compile_key(
            system, deadlines, relaxation_steps=(20, 1, 10)
        ) == compile_key(system, deadlines, relaxation_steps=(1, 10, 10, 20))

    def test_custom_policy_uncacheable(self, encoder_inputs):
        system, deadlines = encoder_inputs

        class CustomPolicy(MixedPolicy):
            pass

        assert compile_key(system, deadlines, policy=CustomPolicy()) is None
        assert compile_key(system, deadlines, policy=MixedPolicy()) is not None

    def test_default_cache_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"


class TestArtifactCache:
    def test_miss_then_hit(self, cache, encoder_inputs):
        system, deadlines = encoder_inputs
        _, hit_first = cache.fetch_or_compile(system, deadlines)
        _, hit_second = cache.fetch_or_compile(system, deadlines)
        assert (hit_first, hit_second) == (False, True)
        assert cache.misses == 1 and cache.hits == 1 and cache.stores == 1
        assert len(cache) == 1

    def test_from_arrays_rejects_unordered_steps(self, cache, encoder_inputs):
        """The bounds arrays are paired positionally with the steps — any
        ordering other than unique-ascending must be rejected, not repaired."""
        from repro.core.relaxation import RelaxationTable

        system, deadlines = encoder_inputs
        compiled, _ = cache.fetch_or_compile(system, deadlines)
        exact = compiled.relaxation.relaxation
        upper = [exact._upper[r] for r in exact.steps]
        lower = [exact._lower[r] for r in exact.steps]
        hydrated = RelaxationTable.from_arrays(compiled.td_table, exact.steps, upper, lower)
        assert hydrated.steps == exact.steps
        with pytest.raises(ValueError, match="ascending"):
            RelaxationTable.from_arrays(
                compiled.td_table, tuple(reversed(exact.steps)), upper, lower
            )
        with pytest.raises(ValueError, match="positive"):
            RelaxationTable.from_arrays(compiled.td_table, (0, 1), upper[:2], lower[:2])

    def test_round_trip_equality(self, cache, encoder_inputs):
        system, deadlines = encoder_inputs
        compiled, _ = cache.fetch_or_compile(system, deadlines)
        loaded, hit = cache.fetch_or_compile(system, deadlines)
        assert hit
        assert np.array_equal(compiled.td_table.values, loaded.td_table.values)
        original = compiled.relaxation.relaxation
        hydrated = loaded.relaxation.relaxation
        assert original.steps == hydrated.steps
        for step in original.steps:
            for state in range(0, original.n_states, 7):
                for quality in original.qualities:
                    assert original.bounds(state, quality, step) == hydrated.bounds(
                        state, quality, step
                    )
        assert compiled.report == loaded.report
        # decisions — the observable behaviour — are identical everywhere
        horizon = deadlines.final_deadline
        for state in range(0, system.n_actions, 13):
            for time in np.linspace(0.0, horizon, 7):
                for name in ("numeric", "region", "relaxation"):
                    fresh = getattr(compiled, name).decide(state, float(time))
                    cached = getattr(loaded, name).decide(state, float(time))
                    assert fresh == cached

    def test_corruption_rejected_and_removed(self, cache, encoder_inputs):
        system, deadlines = encoder_inputs
        cache.fetch_or_compile(system, deadlines)
        key = compile_key(system, deadlines)
        path = cache.path_for(key)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert cache.load(key) is None
        assert not path.exists()

    def test_truncation_rejected(self, cache, encoder_inputs):
        system, deadlines = encoder_inputs
        cache.fetch_or_compile(system, deadlines)
        key = compile_key(system, deadlines)
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[: 100])
        assert cache.load(key) is None

    def test_stale_schema_version_rejected(self, cache, encoder_inputs, monkeypatch):
        system, deadlines = encoder_inputs
        cache.fetch_or_compile(system, deadlines)
        key = compile_key(system, deadlines)
        old_path = cache.path_for(key)
        monkeypatch.setattr(
            "repro.runtime.artifacts.ARTIFACT_SCHEMA_VERSION", ARTIFACT_SCHEMA_VERSION + 1
        )
        # the new schema looks in a different directory: a plain miss
        assert cache.load(key) is None
        # even a byte-identical artifact smuggled into the new directory is
        # rejected by its embedded schema version (checksum still valid)
        new_path = cache.path_for(key)
        new_path.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(old_path, new_path)
        assert cache.load(key) is None
        assert not new_path.exists()

    def test_key_mismatch_rejected(self, cache, encoder_inputs):
        system, deadlines = encoder_inputs
        cache.fetch_or_compile(system, deadlines)
        key = compile_key(system, deadlines)
        other = compile_key(system, deadlines, relaxation_steps=(1, 2))
        target = cache.path_for(other)
        shutil.copyfile(cache.path_for(key), target)
        assert cache.load(other) is None
        assert not target.exists()

    def test_uncacheable_policy_compiles_without_files(self, cache, encoder_inputs):
        system, deadlines = encoder_inputs

        class CustomPolicy(MixedPolicy):
            pass

        _, hit_first = cache.fetch_or_compile(system, deadlines, policy=CustomPolicy())
        _, hit_second = cache.fetch_or_compile(system, deadlines, policy=CustomPolicy())
        assert not hit_first and not hit_second
        assert len(cache) == 0

    def test_feasibility_reenforced_on_load(self, cache):
        system = make_synthetic_system(10, 3, seed=3)
        impossible = DeadlineFunction.single(system.n_actions, 1e-6)
        compiled, _ = cache.fetch_or_compile(system, impossible, require_feasible=False)
        assert compiled.td_table.initial_feasibility_margin() < 0.0
        assert len(cache) == 1  # stored: the artifact itself is valid
        with pytest.raises(InfeasibleSystemError):
            cache.fetch_or_compile(system, impossible, require_feasible=True)

    def test_clear(self, cache, encoder_inputs):
        system, deadlines = encoder_inputs
        cache.fetch_or_compile(system, deadlines)
        assert cache.clear() == 1
        assert len(cache) == 0


class TestSessionArtifacts:
    def test_warm_cache_skips_compilation(self, tmp_path, monkeypatch):
        path = tmp_path / "warm"
        Session().system("small").seed(0).artifacts(path).compile()

        def explode(self, system, deadlines):  # pragma: no cover - must not run
            raise AssertionError("symbolic compilation ran despite a warm cache")

        monkeypatch.setattr(QualityManagerCompiler, "compile", explode)
        fresh = Session().system("small").seed(0).artifacts(path)
        compiled = fresh.compile()
        assert compiled.report.n_actions == fresh.resolved_system().n_actions
        assert fresh.artifact_cache.hits == 1

    def test_cached_run_results_identical(self, tmp_path):
        serial = Session().system("small").seed(0).manager("relaxation").run(cycles=3)
        cached = (
            Session()
            .system("small")
            .seed(0)
            .manager("relaxation")
            .artifacts(tmp_path / "c")
            .run(cycles=3)
        )
        assert _outcomes_equal(serial.outcomes, cached.outcomes)

    def test_artifacts_builder_accepts_cache_and_disables(self, tmp_path):
        cache = CompiledArtifactCache(tmp_path)
        session = Session().artifacts(cache)
        assert session.artifact_cache is cache
        assert session.artifacts(False).artifact_cache is None
        with pytest.raises(ValueError):
            session.artifacts(3.14)


# --------------------------------------------------------------------------- #
# plans
# --------------------------------------------------------------------------- #


class TestUniqueLabel:
    def test_free_label_untouched(self):
        assert unique_label({"b"}, "a", 0) == "a"

    def test_simple_collision(self):
        assert unique_label({"a"}, "a", 1) == "a-1"

    def test_collides_with_user_supplied_suffix(self):
        # the old f"{label}-{index}" fallback would produce "a-2" twice here
        taken = {"a", "a-2"}
        assert unique_label(taken, "a", 2) == "a-3"

    def test_chain_of_collisions(self):
        taken = {"a", "a-1", "a-2", "a-3"}
        assert unique_label(taken, "a", 1) == "a-4"


class TestSpawnSeeds:
    def test_deterministic_and_distinct(self):
        first = spawn_seeds(7, 16)
        assert first == spawn_seeds(7, 16)
        assert len(set(first)) == 16
        assert spawn_seeds(8, 16) != first

    def test_empty_and_invalid(self):
        assert spawn_seeds(0, 0) == []
        with pytest.raises(PlanError):
            spawn_seeds(0, -1)


def _payload(system, deadlines) -> ExecutionPayload:
    return ExecutionPayload(
        system=system,
        deadlines=deadlines,
        policy=None,
        relaxation_steps=(1, 10),
        require_feasible=True,
    )


class TestPlans:
    def test_run_many_offsets_and_labels(self, encoder_inputs):
        system, deadlines = encoder_inputs
        from repro.api import ManagerSpec

        spec = ManagerSpec("relaxation")
        entries = [("a", spec, 2, 0), ("a", spec, 3, 1), ("b", spec, 1, 2)]
        plan = plan_run_many(_payload(system, deadlines), entries)
        assert plan.labels == ("a", "a-1", "b")
        assert [unit.sampler_offset for unit in plan.units] == [0, 2, 5]
        assert plan.total_draws == 6 and plan.total_cycles == 6

    def test_run_many_without_tracking(self, encoder_inputs):
        system, deadlines = encoder_inputs
        from repro.api import ManagerSpec

        plan = plan_run_many(
            _payload(system, deadlines),
            [("x", ManagerSpec("numeric"), 2, 0)],
            track_sampler=False,
        )
        assert plan.units[0].sampler_offset is None

    def test_compare_units_share_scenarios(self, encoder_inputs):
        system, deadlines = encoder_inputs
        from repro.api import ManagerSpec

        rng = np.random.default_rng(0)
        scenarios = [system.draw_scenario(rng) for _ in range(3)]
        plan = plan_compare(
            _payload(system, deadlines),
            [ManagerSpec("numeric"), ManagerSpec("region")],
            scenarios,
        )
        assert plan.total_draws == 0
        assert all(unit.scenarios is plan.units[0].scenarios for unit in plan.units)
        with pytest.raises(PlanError):
            plan_compare(_payload(system, deadlines), [ManagerSpec("numeric")], [])

    def test_chunking(self, encoder_inputs):
        system, deadlines = encoder_inputs
        from repro.api import ManagerSpec

        entries = [(f"u{i}", ManagerSpec("constant"), 1, i) for i in range(10)]
        plan = plan_run_many(_payload(system, deadlines), entries)
        chunks = plan.chunked(3)
        assert [len(chunk) for chunk in chunks] == [3, 3, 3, 1]
        assert plan.default_chunk_size(workers=4) == 1
        with pytest.raises(PlanError):
            plan.chunked(0)

    def test_unit_validation(self):
        from repro.api import ManagerSpec

        with pytest.raises(PlanError):
            SweepUnit(index=0, label="x", manager=ManagerSpec("numeric"), cycles=0)


# --------------------------------------------------------------------------- #
# the pool: serial vs parallel bit-identity, failures, hydration
# --------------------------------------------------------------------------- #


_SWEEP_SPECS = [
    {"label": "warm", "seed": 11},
    {"label": "warm", "seed": 12},  # deliberate collision
    "numeric",
    {"manager": "constant:level=3", "cycles": 2, "seed": 5},
    7,
]


def _sweep_session(tmp_path=None, **kwargs):
    session = Session().system("small").seed(0).manager("relaxation").machine("ipod")
    if tmp_path is not None:
        session.artifacts(tmp_path / "artifacts")
    return session


class TestParallelBitIdentity:
    def test_run_many_matches_serial(self, tmp_path):
        serial = _sweep_session().run_many(_SWEEP_SPECS)
        parallel = _sweep_session(tmp_path).run_many(
            _SWEEP_SPECS, parallel=True, workers=2
        )
        assert serial.labels == (
            "warm",
            "warm-1",
            "numeric",
            "constant:level=3 seed=5",
            "seed=7",
        )
        _batches_identical(serial, parallel)

    def test_sampler_state_matches_after_sweep(self, tmp_path):
        left, right = _sweep_session(), _sweep_session(tmp_path)
        left.run_many(_SWEEP_SPECS)
        right.run_many(_SWEEP_SPECS, parallel=True, workers=2)
        # the next serial run on either session must see the same frames
        follow_left = left.run(cycles=2, seed=3)
        follow_right = right.run(cycles=2, seed=3)
        assert _outcomes_equal(follow_left.outcomes, follow_right.outcomes)

    def test_compare_matches_serial(self, tmp_path):
        serial = _sweep_session().compare(cycles=3, seed=4)
        parallel = _sweep_session(tmp_path).compare(
            cycles=3, seed=4, parallel=True, workers=2
        )
        assert serial.labels == ("numeric", "region", "relaxation")
        _batches_identical(serial, parallel)

    def test_compare_duplicate_manager_labels(self):
        serial = _sweep_session().compare("relaxation", "relaxation", cycles=2)
        assert serial.labels == ("relaxation", "relaxation-1")
        parallel = _sweep_session().compare(
            "relaxation", "relaxation", cycles=2, parallel=True, workers=1
        )
        _batches_identical(serial, parallel)

    def test_parallel_builder_step_and_opt_out(self, tmp_path):
        session = _sweep_session(tmp_path).parallel(workers=1)
        via_builder = session.run_many(_SWEEP_SPECS)
        opted_out = session.run_many(_SWEEP_SPECS, parallel=False)
        # builder-parallel and explicit-serial runs of the *same* session see
        # consecutive frame windows; compare against fresh-session baselines
        baseline = _sweep_session().run_many(_SWEEP_SPECS)
        _batches_identical(via_builder, baseline)
        second = _sweep_session()
        second.run_many(_SWEEP_SPECS)
        _batches_identical(opted_out, second.run_many(_SWEEP_SPECS, parallel=False))

    def test_single_worker_inline_mode(self, tmp_path):
        serial = _sweep_session().run_many(_SWEEP_SPECS)
        inline = _sweep_session(tmp_path).run_many(_SWEEP_SPECS, workers=1)
        _batches_identical(serial, inline)


class TestPoolMechanics:
    def test_progress_callback(self):
        seen: list[tuple[int, int, str]] = []
        _sweep_session().run_many(
            [1, 2, 3],
            workers=1,
            progress=lambda done, total, label: seen.append((done, total, label)),
        )
        assert [entry[0] for entry in seen] == [1, 2, 3]
        assert all(entry[1] == 3 for entry in seen)

    def test_progress_callback_serial(self):
        seen: list[str] = []
        _sweep_session().run_many(
            [1, 2], progress=lambda done, total, label: seen.append(label)
        )
        assert seen == ["seed=1", "seed=2"]

    def test_compare_progress_reports_specs_in_both_modes(self):
        """Progress labels are the manager *spec* strings, identically in
        serial and parallel mode (final result labels need executed names)."""
        serial_seen: list[str] = []
        _sweep_session().compare(
            "relaxation",
            "relaxation",
            cycles=1,
            progress=lambda done, total, spec: serial_seen.append(spec),
        )
        parallel_seen: list[str] = []
        _sweep_session().compare(
            "relaxation",
            "relaxation",
            cycles=1,
            parallel=True,
            workers=1,
            progress=lambda done, total, spec: parallel_seen.append(spec),
        )
        assert serial_seen == ["relaxation", "relaxation"]
        assert sorted(parallel_seen) == sorted(serial_seen)

    def test_unpicklable_system_raises_helpful_error(self, small_system, small_deadline):
        session = (
            Session().system(small_system).deadlines(small_deadline).manager("numeric")
        )
        with pytest.raises(SweepExecutionError, match="not picklable"):
            session.run_many([1, 2], workers=1)

    def test_failure_capture_and_raise(self, encoder_inputs):
        system, deadlines = encoder_inputs
        from repro.api import ManagerSpec

        good = ManagerSpec("constant", {"level": 3})
        bad = ManagerSpec("relaxation", {"steps": (0,)})  # rejected at build time
        plan = plan_run_many(
            _payload(system, deadlines),
            [("good", good, 1, 0), ("bad", bad, 1, 1)],
        )
        executor = SweepExecutor(max_workers=1)
        outcome = executor.run(plan, on_error="capture")
        assert not outcome.ok
        assert set(outcome.outcomes) == {0}
        (failure,) = outcome.failures
        assert failure.label == "bad" and "steps" in failure.error
        with pytest.raises(SweepExecutionError, match="bad"):
            executor.run(plan)

    def test_empty_plan(self, encoder_inputs):
        system, deadlines = encoder_inputs
        plan = plan_run_many(_payload(system, deadlines), [])
        outcome = SweepExecutor(max_workers=1).run(plan)
        assert outcome.ok and not outcome.outcomes

    def test_executor_validation(self):
        with pytest.raises(ValueError):
            SweepExecutor(max_workers=0)
        with pytest.raises(ValueError):
            SweepExecutor(chunk_size=0)

    def test_artifacts_false_keeps_pool_cache_free(self, tmp_path, monkeypatch):
        """An explicit .artifacts(False) opts the pool out of its default cache."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "default"))
        session = _sweep_session().artifacts(False)
        batch = session.run_many([1, 2], parallel=True, workers=2)
        assert len(batch) == 2
        assert not (tmp_path / "default").exists()

    def test_parallel_default_cache_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "default"))
        _sweep_session().run_many([1], parallel=True, workers=1)
        assert list((tmp_path / "default").glob("v*/**/*.npz"))

    def test_parent_prewarms_cold_cache_for_compiled_managers(self, tmp_path):
        session = _sweep_session(tmp_path)
        session.run_many([1, 2], parallel=True, workers=1)
        cache = session.artifact_cache
        # the parent compiled (miss) and persisted exactly one artifact
        assert cache.misses == 1 and cache.stores == 1 and len(cache) == 1

    def test_baseline_only_sweep_never_compiles(self, tmp_path):
        session = _sweep_session(tmp_path).manager("constant", level=3)
        session.run_many(["constant:level=2", "skip"], parallel=True, workers=1)
        cache = session.artifact_cache
        assert cache.misses == 0 and len(cache) == 0

    @pytest.mark.skipif(not _HAS_FORK, reason="fork start method unavailable")
    def test_workers_hydrate_without_compiling(self, tmp_path, monkeypatch):
        session = _sweep_session(tmp_path)
        session.compile()  # warm the artifact cache through the session

        def explode(self, system, deadlines):  # pragma: no cover - must not run
            raise AssertionError("a pool worker compiled despite a warm cache")

        monkeypatch.setattr(QualityManagerCompiler, "compile", explode)
        # forked workers inherit the patched compiler: success proves they
        # hydrated every manager from the artifact cache
        batch = session.run_many(
            [1, 2, 3, 4], parallel=True, workers=2
        )
        assert len(batch) == 4


# --------------------------------------------------------------------------- #
# registry satellites: dvfs / multitask / linear-approx through the facade
# --------------------------------------------------------------------------- #


class TestExtensionRegistrations:
    def test_all_keys_registered(self):
        from repro.api import available_managers

        keys = available_managers()
        for key in ("dvfs", "multitask", "linear-approx"):
            assert key in keys

    def test_dvfs_through_session(self):
        from repro.extensions import DvfsTask, FrequencyScale, build_dvfs_system

        scale = FrequencyScale(frequencies=(150e6, 250e6, 400e6, 600e6))
        system, deadlines = build_dvfs_system(DvfsTask.synthetic(30, seed=2), scale, seed=2)
        session = (
            Session()
            .system(system)
            .deadlines(deadlines)
            .manager("dvfs", frequencies=scale.frequencies)
            .seed(2)
        )
        result = session.run(cycles=3)
        assert result.manager_key == "dvfs"
        assert result.all_deadlines_met
        manager = session.build()
        assert manager.scale.frequencies == scale.frequencies
        energy = sum(manager.energy_of(outcome) for outcome in result.outcomes)
        assert energy > 0.0

    def test_dvfs_frequency_count_must_match_levels(self):
        session = Session().system("small").manager("dvfs", frequencies=(1e6, 2e6))
        with pytest.raises(ValueError, match="one frequency per quality level"):
            session.build()

    def test_dvfs_spec_string_frequencies(self):
        from repro.api import ManagerSpec

        spec = ManagerSpec.parse("dvfs:frequencies=1e6+2e6+3e6")
        assert spec.params["frequencies"] == (1e6, 2e6, 3e6)

    def test_multitask_through_session(self, small_system):
        from repro.extensions import TaskSpec, compose_tasks

        other = make_synthetic_system(25, 5, seed=9)
        # any deadline beyond the all-min-quality worst case of the whole
        # hyper-cycle is feasible for both tasks
        qmin = small_system.qualities.minimum
        floor = small_system.worst_case.total(
            1, small_system.n_actions, qmin
        ) + other.worst_case.total(1, other.n_actions, qmin)
        composed = compose_tasks(
            [
                TaskSpec("audio", small_system, deadline=1.5 * floor),
                TaskSpec("video", other, deadline=2.0 * floor),
            ]
        )
        session = (
            Session()
            .system(composed.system)
            .deadlines(composed.deadlines)
            .manager("multitask", composed=composed)
            .seed(0)
        )
        result = session.run(cycles=2)
        assert result.manager_key == "multitask"
        split = session.build().task_qualities(result.outcomes[0])
        assert set(split) == {"audio", "video"}

    def test_linear_approx_through_session(self):
        result = Session().system("small").manager("linear-approx").seed(0).run(cycles=2)
        assert result.manager_key == "linear-approx"
        assert result.all_deadlines_met
        manager = Session().system("small").manager("linear-approx").build()
        assert manager.linear_table.is_conservative()

    def test_linear_approx_never_relaxes_more_than_exact(self):
        session = Session().system("small").seed(0)
        exact = session.build("relaxation")
        approx = session.build("linear-approx")
        for state in range(0, 200, 11):
            for time in np.linspace(0.0, 6.0, 5):
                exact_decision = exact.decide(state, float(time))
                approx_decision = approx.decide(state, float(time))
                assert approx_decision.quality == exact_decision.quality
                assert approx_decision.steps <= exact_decision.steps
