"""Property-based tests (hypothesis) for the core invariants.

These encode the theorems the construction rests on, over randomly generated
parameterized systems, deadlines and actual-time draws:

* safety of the mixed policy under any admissible actual-time function;
* equivalence of the numeric, region and relaxation managers;
* structural monotonicity of ``t^D``;
* Proposition 1 (speed characterisation) and Proposition 2 (region
  characterisation);
* containment of relaxation regions and conservativeness of their linear
  approximation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    ActualTimeScenario,
    DeadlineFunction,
    ParameterizedSystem,
    QualityManagerCompiler,
    QualitySet,
    SpeedDiagram,
    audit_trace,
    check_relaxation_containment,
    check_td_structure,
    compute_td_table,
    run_cycle,
)
from repro.extensions import LinearRelaxationQualityManager, LinearRelaxationTable

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
@st.composite
def parameterized_systems(draw, min_actions: int = 3, max_actions: int = 25):
    """Random small parameterized systems satisfying Definition 1."""
    n_actions = draw(st.integers(min_actions, max_actions))
    n_levels = draw(st.integers(1, 5))
    seed = draw(st.integers(0, 2**16))
    wc_ratio = draw(st.floats(1.0, 3.0))
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.1, 2.0, size=n_actions)
    increments = rng.uniform(0.0, 1.0, size=(n_levels, n_actions))
    average = base[None, :] * (1.0 + np.cumsum(increments, axis=0))
    worst = average * wc_ratio
    qualities = QualitySet.of_size(n_levels)

    def sampler(generator: np.random.Generator) -> np.ndarray:
        return average * generator.uniform(0.0, wc_ratio, size=(1, n_actions))

    return ParameterizedSystem.from_tables(
        [f"a{i}" for i in range(1, n_actions + 1)],
        qualities,
        worst,
        average,
        scenario_sampler=sampler,
    )


@st.composite
def systems_with_deadlines(draw, feasible: bool = True):
    """A system plus a deadline function (feasible by construction when asked)."""
    system = draw(parameterized_systems())
    qmin_total = system.worst_case.total(1, system.n_actions, system.qualities.minimum)
    slack = draw(st.floats(1.01, 2.5)) if feasible else draw(st.floats(0.3, 0.95))
    n_deadlines = draw(st.integers(1, 3))
    indices = sorted(
        set(
            draw(
                st.lists(
                    st.integers(1, system.n_actions),
                    min_size=n_deadlines - 1,
                    max_size=n_deadlines - 1,
                )
            )
        )
        | {system.n_actions}
    )
    mapping = {}
    for index in indices:
        prefix = system.worst_case.total(1, index, system.qualities.minimum)
        mapping[index] = prefix * slack
    return system, DeadlineFunction(mapping)


@st.composite
def admissible_scenarios(draw, system: ParameterizedSystem):
    """An arbitrary actual-time matrix bounded by the worst case."""
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    fractions = rng.uniform(0.0, 1.0, size=system.worst_case.values.shape)
    matrix = np.maximum.accumulate(fractions * system.worst_case.values, axis=0)
    matrix = np.minimum(matrix, system.worst_case.values)
    return ActualTimeScenario(system.qualities, matrix)


# --------------------------------------------------------------------------- #
# properties
# --------------------------------------------------------------------------- #
class TestSafetyProperty:
    @_SETTINGS
    @given(data=st.data())
    def test_mixed_policy_never_misses_deadlines(self, data):
        """Definition 3 safety: for any admissible actual-time function the
        controlled system meets every deadline."""
        system, deadlines = data.draw(systems_with_deadlines(feasible=True))
        controllers = QualityManagerCompiler().compile(system, deadlines)
        scenario = data.draw(admissible_scenarios(system))
        for manager in controllers.managers().values():
            outcome = run_cycle(system, manager, scenario=scenario)
            assert audit_trace(outcome, deadlines).is_safe

    @_SETTINGS
    @given(data=st.data())
    def test_safety_holds_under_worst_case_scenario(self, data):
        system, deadlines = data.draw(systems_with_deadlines(feasible=True))
        controllers = QualityManagerCompiler().compile(system, deadlines)
        worst = ActualTimeScenario(system.qualities, system.worst_case.values.copy())
        outcome = run_cycle(system, controllers.numeric, scenario=worst)
        assert audit_trace(outcome, deadlines).is_safe


class TestEquivalenceProperty:
    @_SETTINGS
    @given(data=st.data())
    def test_symbolic_managers_reproduce_numeric_choices(self, data):
        """Propositions 2 and 3: region lookup and control relaxation change
        the implementation, never the chosen qualities."""
        system, deadlines = data.draw(systems_with_deadlines(feasible=True))
        steps = tuple(sorted(set(data.draw(
            st.lists(st.integers(1, max(2, system.n_actions // 2)), min_size=1, max_size=4)
        )) | {1})
        )
        controllers = QualityManagerCompiler(relaxation_steps=steps).compile(system, deadlines)
        scenario = data.draw(admissible_scenarios(system))
        reference = run_cycle(system, controllers.numeric, scenario=scenario)
        for manager in (controllers.region, controllers.relaxation):
            outcome = run_cycle(system, manager, scenario=scenario)
            assert np.array_equal(outcome.qualities, reference.qualities)

    @_SETTINGS
    @given(data=st.data())
    def test_linear_approximation_is_conservative_and_equivalent(self, data):
        system, deadlines = data.draw(systems_with_deadlines(feasible=True))
        controllers = QualityManagerCompiler(relaxation_steps=(1, 2, 4)).compile(
            system, deadlines
        )
        linear = LinearRelaxationTable(controllers.relaxation.relaxation)
        assert linear.is_conservative()
        manager = LinearRelaxationQualityManager(controllers.region.regions, linear)
        scenario = data.draw(admissible_scenarios(system))
        reference = run_cycle(system, controllers.numeric, scenario=scenario)
        outcome = run_cycle(system, manager, scenario=scenario)
        assert np.array_equal(outcome.qualities, reference.qualities)


class TestStructuralProperties:
    @_SETTINGS
    @given(data=st.data())
    def test_td_table_structure(self, data):
        system, deadlines = data.draw(systems_with_deadlines(feasible=True))
        td = compute_td_table(system, deadlines)
        checks = check_td_structure(td)
        assert checks["monotone_in_quality"]
        assert checks["initially_feasible"]

    @_SETTINGS
    @given(data=st.data())
    def test_relaxation_regions_contained_in_quality_regions(self, data):
        system, deadlines = data.draw(systems_with_deadlines(feasible=True))
        controllers = QualityManagerCompiler(relaxation_steps=(1, 2, 3, 5)).compile(
            system, deadlines
        )
        assert check_relaxation_containment(
            controllers.region.regions, controllers.relaxation.relaxation
        )

    @_SETTINGS
    @given(data=st.data())
    def test_region_partition_covers_admissible_times(self, data):
        """Proposition 2: at every state, any time below t^D(q_min) belongs to
        exactly one quality region."""
        system, deadlines = data.draw(systems_with_deadlines(feasible=True))
        controllers = QualityManagerCompiler().compile(system, deadlines)
        regions = controllers.region.regions
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        for state in range(0, system.n_actions, max(1, system.n_actions // 5)):
            ceiling = controllers.td_table.values[0, state]
            if ceiling <= 0:
                continue
            for time in rng.uniform(0.0, ceiling, size=3):
                memberships = [
                    q for q in system.qualities if regions.contains(state, float(time), q)
                ]
                assert len(memberships) == 1

    @_SETTINGS
    @given(data=st.data())
    def test_scenarios_always_admissible(self, data):
        """The timing model clips every drawn scenario into [0, C^wc] and keeps
        it monotone in the quality level."""
        system = data.draw(parameterized_systems())
        scenario = system.draw_scenario(np.random.default_rng(data.draw(st.integers(0, 999))))
        assert np.all(scenario.matrix >= 0.0)
        assert np.all(scenario.matrix <= system.worst_case.values + 1e-12)
        if len(system.qualities) > 1:
            assert np.all(np.diff(scenario.matrix, axis=0) >= -1e-12)


class TestProposition1Property:
    @_SETTINGS
    @given(data=st.data())
    def test_speed_and_constraint_characterisations_agree(self, data):
        system, deadlines = data.draw(systems_with_deadlines(feasible=True))
        # the speed diagram is defined with respect to a single target deadline
        single = DeadlineFunction.single(system.n_actions, deadlines.final_deadline)
        diagram = SpeedDiagram(system, single)
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        for _ in range(10):
            state = int(rng.integers(0, system.n_actions))
            quality = int(rng.integers(system.qualities.minimum, system.qualities.maximum + 1))
            time = float(rng.uniform(0.0, single.final_deadline * 1.2))
            assert diagram.assess(state, time, quality).proposition1_agrees

    @_SETTINGS
    @given(data=st.data())
    def test_geometric_choice_equals_policy_choice(self, data):
        system, deadlines = data.draw(systems_with_deadlines(feasible=True))
        single = DeadlineFunction.single(system.n_actions, deadlines.final_deadline)
        td = compute_td_table(system, single)
        diagram = SpeedDiagram(system, single, td_table=td)
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        for _ in range(10):
            state = int(rng.integers(0, system.n_actions))
            time = float(rng.uniform(0.0, single.final_deadline))
            assert diagram.choose_quality(state, time) == td.choose_quality(state, time)


class TestPolicyComparisonProperties:
    @_SETTINGS
    @given(data=st.data())
    def test_safe_policy_choice_dominates_mixed_pointwise(self, data):
        """Because C^D >= C^sf, the mixed t^D never exceeds the safe t^D, so
        at any fixed state and time the purely worst-case policy chooses at
        least the quality the mixed policy chooses (the mixed policy trades
        instantaneous aggressiveness for smoothness)."""
        from repro.core import SafePolicy

        system, deadlines = data.draw(systems_with_deadlines(feasible=True))
        mixed = compute_td_table(system, deadlines)
        safe = compute_td_table(system, deadlines, SafePolicy())
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        for _ in range(10):
            state = int(rng.integers(0, system.n_actions))
            time = float(rng.uniform(0.0, deadlines.final_deadline))
            assert safe.choose_quality(state, time) >= mixed.choose_quality(state, time)

    @_SETTINGS
    @given(data=st.data())
    def test_both_safe_policies_meet_deadlines_on_same_scenario(self, data):
        system, deadlines = data.draw(systems_with_deadlines(feasible=True))
        from repro.baselines import safe_only_manager

        controllers = QualityManagerCompiler().compile(system, deadlines)
        scenario = data.draw(admissible_scenarios(system))
        mixed = run_cycle(system, controllers.numeric, scenario=scenario)
        safe = run_cycle(system, safe_only_manager(system, deadlines), scenario=scenario)
        assert audit_trace(mixed, deadlines).is_safe
        assert audit_trace(safe, deadlines).is_safe


class TestMergeAlgebraProperties:
    """Merge algebra of the streaming accumulators under fleet orderings.

    Fleet execution interleaves many sessions' folds: bucket order,
    member order within a bucket and the padded lanes between chunks must
    never change any single session's summary.  These properties pin the
    algebra that guarantee rests on.
    """

    @_SETTINGS
    @given(data=st.data())
    def test_quantile_sketch_merge_is_permutation_invariant(self, data):
        """Sketch counts are exact integers, so any merge order (and any
        grouping) of disjoint batches yields the identical sketch."""
        from repro.core import QuantileSketch

        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        n_parts = data.draw(st.integers(2, 6))
        parts = [
            rng.uniform(0.0, 10.0, size=int(rng.integers(0, 40)))
            for _ in range(n_parts)
        ]
        order = data.draw(st.permutations(range(n_parts)))

        def merged(indices):
            total = QuantileSketch(resolution=64)
            for index in indices:
                sketch = QuantileSketch(resolution=64)
                sketch.add_array(parts[index])
                total.merge(sketch)
            return total

        forward = merged(range(n_parts))
        permuted = merged(order)
        assert forward.count == permuted.count
        assert forward._buckets == permuted._buckets
        assert forward._nonpositive == permuted._nonpositive
        if forward.count:
            for q in (0.0, 0.25, 0.5, 0.9, 1.0):
                assert forward.quantile(q) == permuted.quantile(q)

    @_SETTINGS
    @given(data=st.data())
    def test_streaming_merge_is_commutative(self, data):
        """``a.merge(b)`` equals ``b.merge(a)`` bit-for-bit: every float fold
        is a single commutative addition (or max) at the merge boundary."""
        from repro.core import StreamingMetrics, run_cycles_batch

        system, deadlines = data.draw(systems_with_deadlines(feasible=True))
        controllers = QualityManagerCompiler().compile(system, deadlines)
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        outcomes = run_cycles_batch(system, controllers.numeric, 6, rng=rng)

        def accumulate(slice_):
            acc = StreamingMetrics(deadlines)
            for outcome in slice_:
                acc.update_outcome(outcome)
            return acc

        ab = accumulate(outcomes[:3])
        ab.merge(accumulate(outcomes[3:]))
        ba = accumulate(outcomes[3:])
        ba.merge(accumulate(outcomes[:3]))
        assert ab.metrics() == ba.metrics()
        assert ab.quality_level_counts == ba.quality_level_counts

    @_SETTINGS
    @given(data=st.data())
    def test_zero_cycle_folds_are_identity(self, data):
        """Padding chunks (zero real cycles) must never move a summary —
        neither folded as empty arrays nor merged as empty accumulators."""
        from repro.core import StreamingMetrics, run_cycles_batch

        system, deadlines = data.draw(systems_with_deadlines(feasible=True))
        controllers = QualityManagerCompiler().compile(system, deadlines)
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        outcomes = run_cycles_batch(system, controllers.numeric, 4, rng=rng)
        acc = StreamingMetrics(deadlines)
        for outcome in outcomes:
            acc.update_outcome(outcome)
        reference = acc.metrics()
        n_actions = system.n_actions
        acc.update_chunk(
            np.empty((0, n_actions), dtype=np.int64),
            np.empty((0, n_actions), dtype=np.float64),
            np.empty((n_actions, 0), dtype=bool),
            np.empty((n_actions, 0), dtype=np.float64),
        )
        acc.merge(StreamingMetrics(deadlines))
        assert acc.metrics() == reference

    @_SETTINGS
    @given(data=st.data())
    def test_fleet_member_order_never_changes_a_summary(self, data):
        """Permuting fleet members (hence bucket layout and padding) leaves
        every member's own summary bit-identical."""
        from repro.core.fleet import FleetMember, run_fleet

        system, deadlines = data.draw(systems_with_deadlines(feasible=True))
        controllers = QualityManagerCompiler().compile(system, deadlines)
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        n_members = data.draw(st.integers(2, 5))
        members = [
            FleetMember(
                label=f"m{i}",
                system=system,
                manager=controllers.numeric,
                deadlines=deadlines,
                cycles=int(rng.integers(1, 12)),
                seed=int(rng.integers(0, 2**31)),
                chunk_size=int(rng.integers(1, 8)),
            )
            for i in range(n_members)
        ]
        order = data.draw(st.permutations(range(n_members)))
        forward = run_fleet(members)
        permuted = run_fleet([members[i] for i in order])
        for position, index in enumerate(order):
            assert permuted[position].metrics() == forward[index].metrics()
            assert (
                permuted[position].quality_level_counts
                == forward[index].quality_level_counts
            )
