"""Tests for :mod:`repro.service`: the queue-backed sweep service.

The gated guarantees of the service layer:

* the **pump** dispatches strictly by priority band, round-robins tenants
  within a band, and never lets a tenant exceed its in-flight quota — two
  tenants flooding one queue both make progress;
* **lease-expired** units are re-queued through the queue (not straight to
  pending) and complete under concurrent submits;
* **SIGTERM** drains workers gracefully: the current unit is finished or
  its claim released, never stranded behind a lease timeout;
* a failed submit leaves **no debris** — no plan file, no queue entries,
  no ledgers, no orphan temp files;
* **resident workers** reuse hydrated runtimes across plans with identical
  payloads (LRU-bounded) and stay bit-identical to serial;
* the **async client** multiplexes many concurrent sweeps over one poller
  and resolves each to the exact serial result.
"""

from __future__ import annotations

import asyncio
import os
import pickle
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import Session, SessionError
from repro.runtime import RemoteSweepExecutor, SpoolLayout, SweepExecutionError
from repro.service import (
    QueuedSweepExecutor,
    ResidentWorker,
    ServiceClient,
    ServiceQueue,
    ServiceSpoolLayout,
    format_status,
    service_status,
)
from repro.service.queue import _check_token, _parse_entry

_SRC = str(Path(__file__).resolve().parent.parent / "src")

_GRID = [
    {"label": f"u{i}", "manager": manager, "seed": i, "cycles": 2}
    for i, manager in enumerate(["relaxation", "region", "numeric", "skip"])
]


def _session(tmp_path: Path) -> Session:
    return Session().system("small").machine("ipod").seed(0).artifacts(tmp_path / "cache")


def _service_session(tmp_path: Path, **overrides) -> Session:
    options = dict(lease_timeout=15.0, poll_interval=0.02, timeout=120.0)
    options.update(overrides)
    return _session(tmp_path).service(tmp_path / "spool", **options)


def _outcomes_equal(left, right) -> bool:
    fields = (
        "qualities",
        "durations",
        "completion_times",
        "manager_invocations",
        "manager_overheads",
    )
    return len(left) == len(right) and all(
        np.array_equal(getattr(a, name), getattr(b, name))
        for a, b in zip(left, right)
        for name in fields
    )


def _batches_identical(first, second) -> None:
    assert set(first.runs) == set(second.runs)
    for label in first.runs:
        a, b = first[label], second[label]
        assert a.manager_key == b.manager_key
        assert a.seed == b.seed
        assert _outcomes_equal(a.outcomes, b.outcomes), label


class _InlineWorker:
    """A resident worker draining in a background thread of this process."""

    def __init__(self, tmp_path: Path, **kwargs) -> None:
        kwargs.setdefault("cache_dir", tmp_path / "worker-cache")
        kwargs.setdefault("poll_interval", 0.02)
        kwargs.setdefault("heartbeat", 0.05)
        self._worker = ResidentWorker(tmp_path / "spool", **kwargs)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._drain, daemon=True)

    def _drain(self) -> None:
        while not self._stop.is_set():
            claim = self._worker.claim_one()
            if claim is None:
                self._stop.wait(0.02)
                continue
            self._worker._execute_claim(claim)

    def __enter__(self) -> ResidentWorker:
        self._thread.start()
        return self._worker

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join(timeout=10.0)


# --------------------------------------------------------------------------- #
# layout, tokens, entry names
# --------------------------------------------------------------------------- #


def test_service_layout_extends_the_spool(tmp_path):
    layout = ServiceSpoolLayout(tmp_path / "spool").ensure()
    for directory in (
        layout.plans, layout.pending, layout.claimed, layout.done,
        layout.artifacts, layout.queues, layout.inflight, layout.workers,
    ):
        assert directory.is_dir()
    assert layout.queue_dir("fast") == layout.queues / "fast"


def test_tokens_are_validated():
    assert _check_token("team-a_1", "tenant") == "team-a_1"
    for bad in ("", "a/b", "a~b", "a.b", "a b", 7):
        with pytest.raises(ValueError, match="tenant"):
            _check_token(bad, "tenant")


def test_queue_validates_parameters(tmp_path):
    with pytest.raises(ValueError, match="queue name"):
        ServiceQueue(tmp_path / "spool", "no/slashes")
    with pytest.raises(ValueError, match="quota"):
        ServiceQueue(tmp_path / "spool", quota=0)
    with pytest.raises(ValueError, match="quota"):
        ServiceQueue(tmp_path / "spool", quotas={"alice": 0})
    with pytest.raises(ValueError, match="tenant"):
        ServiceQueue(tmp_path / "spool", quotas={"bad~name": 1})
    queue = ServiceQueue(tmp_path / "spool", quota=3, quotas={"vip": None})
    assert queue.quota_for("anyone") == 3
    assert queue.quota_for("vip") is None


def test_entry_names_round_trip_and_reject_foreign_files(tmp_path):
    queue = ServiceQueue(tmp_path / "spool", "q1")
    path = queue.enqueue_bytes(b"x", "abc123", 7, 1, priority=5, tenant="alice")
    entry = _parse_entry(path)
    assert entry is not None
    assert (entry.priority, entry.tenant, entry.plan_id, entry.index, entry.attempt) == (
        5, "alice", "abc123", 7, 1
    )
    assert entry.base_name == SpoolLayout.unit_name("abc123", 7, 1)
    assert _parse_entry(Path("README.md")) is None
    assert _parse_entry(Path("p5~alice~notanumber~abc123.u000007.a1.unit")) is None


# --------------------------------------------------------------------------- #
# pump: priorities, fairness, quotas
# --------------------------------------------------------------------------- #


def _enqueue(queue: ServiceQueue, plan_id: str, index: int, *, priority=0, tenant="t"):
    return queue.enqueue_bytes(
        b"unit", plan_id, index, 0, priority=priority, tenant=tenant
    )


def test_pump_dispatches_higher_priority_bands_first(tmp_path):
    queue = ServiceQueue(tmp_path / "spool")
    _enqueue(queue, "aaa111", 0, priority=0)
    _enqueue(queue, "bbb222", 0, priority=9)
    assert queue.pump(max_dispatch=1) == 1
    pending = [path.name for path in queue.layout.pending.iterdir()]
    assert pending == [SpoolLayout.unit_name("bbb222", 0, 0)]


def test_pump_round_robins_tenants_within_a_band(tmp_path):
    queue = ServiceQueue(tmp_path / "spool")
    for index in range(3):
        _enqueue(queue, "aaa111", index, tenant="alice")
        time.sleep(0.001)
    for index in range(3):
        _enqueue(queue, "bbb222", index, tenant="bob")
        time.sleep(0.001)
    # 4 slots for 6 entries: round-robin gives each tenant 2, not FIFO 3+1
    assert queue.pump(max_dispatch=4) == 4
    left = queue.entries()
    assert sorted(entry.tenant for entry in left) == ["alice", "bob"]
    # each tenant's own entries dispatched in submission order
    assert {entry.index for entry in left} == {2}


def test_pump_enforces_quotas_across_priority_bands(tmp_path):
    queue = ServiceQueue(tmp_path / "spool", quota=1)
    _enqueue(queue, "aaa111", 0, priority=1, tenant="alice")
    _enqueue(queue, "aaa111", 1, priority=0, tenant="alice")
    _enqueue(queue, "bbb222", 0, priority=0, tenant="bob")
    assert queue.pump() == 2  # alice's p1 entry + bob's p0 entry
    assert queue.in_flight() == {"alice": 1, "bob": 1}
    # alice is at quota: her p0 entry stays queued even in a later band
    assert [(entry.tenant, entry.index) for entry in queue.entries()] == [("alice", 1)]
    # finishing the unit (vanishing from pending) frees the slot
    (queue.layout.pending / SpoolLayout.unit_name("aaa111", 0, 0)).unlink()
    assert queue.pump() == 1
    assert not queue.entries()


def test_in_flight_gcs_ledgers_of_finished_units(tmp_path):
    queue = ServiceQueue(tmp_path / "spool")
    _enqueue(queue, "aaa111", 0)
    queue.pump()
    assert queue.in_flight() == {"t": 1}
    (queue.layout.pending / SpoolLayout.unit_name("aaa111", 0, 0)).unlink()
    assert queue.in_flight() == {}
    assert not list(queue.layout.inflight.iterdir())  # ledger was GC'd


def test_withdraw_drops_entries_and_ledgers_of_one_plan(tmp_path):
    queue = ServiceQueue(tmp_path / "spool")
    _enqueue(queue, "aaa111", 0)
    _enqueue(queue, "aaa111", 1)
    _enqueue(queue, "bbb222", 0)
    queue.pump(max_dispatch=1)
    assert queue.withdraw("aaa111") >= 1
    assert [entry.plan_id for entry in queue.entries()] == ["bbb222"]
    for path in queue.layout.inflight.iterdir():
        assert "aaa111" not in path.name


# --------------------------------------------------------------------------- #
# two tenants flooding one queue: neither starves, quotas hold
# --------------------------------------------------------------------------- #


def test_two_tenant_flood_neither_starves_and_quota_holds(tmp_path):
    """Satellite gate: alice floods the queue first, bob arrives second;
    admission is still fair (both at quota immediately) and per-tenant
    in-flight never exceeds the quota while both sweeps complete."""
    spool = tmp_path / "spool"
    grid = _GRID
    serial = _session(tmp_path).run_many(grid)

    options = dict(lease_timeout=15.0, poll_interval=0.02, pump=False)
    alice = QueuedSweepExecutor(spool, tenant="alice", **options)
    bob = QueuedSweepExecutor(spool, tenant="bob", **options)
    plan_a = _session(tmp_path).sweep_plan(grid)
    plan_b = _session(tmp_path).sweep_plan(grid)
    id_a = alice.submit(plan_a)
    id_b = bob.submit(plan_b)

    dispatcher = ServiceQueue(spool, quota=2)
    # the very first pump admits BOTH tenants up to quota — bob does not
    # wait behind alice's whole backlog despite submitting second
    assert dispatcher.pump() == 4
    assert dispatcher.in_flight() == {"alice": 2, "bob": 2}

    sweeps = [
        (alice, plan_a, id_a, {unit.index for unit in plan_a.units}, []),
        (bob, plan_b, id_b, {unit.index for unit in plan_b.units}, []),
    ]
    with _InlineWorker(tmp_path):
        deadline = time.monotonic() + 120.0
        while any(sweep[3] for sweep in sweeps) and time.monotonic() < deadline:
            dispatcher.pump()
            for tenant, count in dispatcher.in_flight().items():
                assert count <= 2, f"{tenant} exceeded its quota: {count}"
            for executor, plan, plan_id, outstanding, records in sweeps:
                records.extend(executor._drain_done(plan_id, outstanding))
                records.extend(executor._requeue_expired(plan_id, outstanding))
            time.sleep(0.02)
    for executor, plan, plan_id, outstanding, records in sweeps:
        executor._cleanup(plan_id)
        assert not outstanding, "a tenant's sweep starved"
        assert all(record[1] for record in records)

    # and both results are the serial results, bit for bit
    from repro.runtime.pool import collect_outcome

    for executor, plan, plan_id, _, records in sweeps:
        outcome = collect_outcome(plan, records, on_error="raise")
        for unit in plan.units:
            assert _outcomes_equal(
                outcome.outcomes[unit.index], serial[unit.label].outcomes
            ), unit.label


# --------------------------------------------------------------------------- #
# leases: expiry re-queues through admission control
# --------------------------------------------------------------------------- #


def _age_file(path: Path, seconds: float) -> None:
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


def test_expired_lease_requeues_through_the_queue(tmp_path):
    """A dead worker's unit goes back through the queue (admission control
    applies to retries) and completes while another submit is in flight."""
    spool = tmp_path / "spool"
    executor = QueuedSweepExecutor(
        spool, lease_timeout=0.3, poll_interval=0.02, pump=False
    )
    plan_a = _session(tmp_path).sweep_plan(_GRID[:2])
    id_a = executor.submit(plan_a)
    executor.queue.pump()
    # a "worker" claims unit 0, then dies without heartbeating
    layout = executor.spool
    pending = layout.pending / SpoolLayout.unit_name(id_a, 0, 0)
    dead_claim = layout.claimed / f"{pending.name}.dead-worker"
    os.rename(pending, dead_claim)
    _age_file(dead_claim, 5.0)

    outstanding_a = {unit.index for unit in plan_a.units}
    executor._requeue_expired(id_a, outstanding_a)
    # the retry is a queue ENTRY (attempt 1), not a pending unit
    (entry,) = [e for e in executor.queue.entries() if e.plan_id == id_a]
    assert (entry.index, entry.attempt) == (0, 1)

    # a concurrent submit from a second tenant joins the same queue
    other = QueuedSweepExecutor(spool, tenant="other", poll_interval=0.02, pump=False)
    plan_b = _session(tmp_path).sweep_plan(_GRID[2:])
    id_b = other.submit(plan_b)

    records_a: list[tuple] = []
    outstanding_b = {unit.index for unit in plan_b.units}
    records_b: list[tuple] = []
    with _InlineWorker(tmp_path):
        deadline = time.monotonic() + 120.0
        while (outstanding_a or outstanding_b) and time.monotonic() < deadline:
            executor.queue.pump()
            records_a.extend(executor._drain_done(id_a, outstanding_a))
            records_a.extend(executor._requeue_expired(id_a, outstanding_a))
            records_b.extend(other._drain_done(id_b, outstanding_b))
            records_b.extend(other._requeue_expired(id_b, outstanding_b))
            time.sleep(0.02)
    executor._cleanup(id_a)
    other._cleanup(id_b)
    assert not outstanding_a and not outstanding_b
    assert sorted(record[0] for record in records_a) == [0, 1]
    assert all(record[1] for record in records_a + records_b)


# --------------------------------------------------------------------------- #
# SIGTERM: graceful drain
# --------------------------------------------------------------------------- #


def test_request_stop_releases_a_raced_claim(tmp_path):
    """A claim taken in the stop race window is released back to pending
    (same attempt), not executed and not stranded behind a lease."""
    executor = QueuedSweepExecutor(tmp_path / "spool", poll_interval=0.02)
    plan = _session(tmp_path).sweep_plan(_GRID[:1])
    plan_id = executor.submit(plan)
    executor.queue.pump()
    worker = ResidentWorker(tmp_path / "spool", cache_dir=tmp_path / "worker-cache")
    claim = worker.claim_one()
    assert claim is not None
    worker.request_stop()
    assert worker.release_claim(claim) is True
    pending = [path.name for path in executor.spool.pending.iterdir()]
    assert pending == [SpoolLayout.unit_name(plan_id, 0, 0)]
    # with stop already requested the loop exits immediately, executing nothing
    assert worker.run(max_idle=30.0) == 0
    executor._cleanup(plan_id)


def test_sigterm_drains_a_subprocess_worker_gracefully(tmp_path):
    """End to end: SIGTERM a resident worker mid-unit; it finishes or
    releases the claim, removes its presence file, and exits 0."""
    spool = tmp_path / "spool"
    executor = RemoteSweepExecutor(spool, poll_interval=0.02)
    plan = _session(tmp_path).sweep_plan(
        [{"label": "big", "manager": "numeric", "seed": 3, "cycles": 600}]
    )
    plan_id = executor.submit(plan)

    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    worker = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--spool", str(spool), "--cache-dir", str(tmp_path / "worker-cache"),
            "--poll", "0.02", "--heartbeat", "0.05", "--resident", "--quiet",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    layout = ServiceSpoolLayout(spool)
    try:
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            claims = list(layout.claimed.iterdir()) if layout.claimed.is_dir() else []
            if claims:
                break
            time.sleep(0.02)
        else:
            pytest.fail("worker never claimed the unit")
        worker.send_signal(signal.SIGTERM)
        assert worker.wait(timeout=120.0) == 0
    finally:
        if worker.poll() is None:  # pragma: no cover - cleanup on failure
            worker.kill()
            worker.wait(timeout=30.0)
    # the claim was finished (result in done/) or released (back in pending/),
    # never left to rot in claimed/
    assert not list(layout.claimed.iterdir())
    finished = executor.spool.result_path(plan_id, 0).is_file()
    released = (layout.pending / SpoolLayout.unit_name(plan_id, 0, 0)).is_file()
    assert finished or released
    assert not list(layout.workers.iterdir())  # presence file removed
    executor._cleanup(plan_id)


# --------------------------------------------------------------------------- #
# failed submits leave no debris
# --------------------------------------------------------------------------- #


def test_failed_submit_sweeps_queue_entries_and_torn_temps(tmp_path, monkeypatch):
    import repro.service.queue as queue_module

    executor = QueuedSweepExecutor(tmp_path / "spool")
    plan = _session(tmp_path).sweep_plan(_GRID[:2])
    real_write = queue_module._atomic_write_bytes
    calls = {"n": 0}

    def failing_write(target, data):
        calls["n"] += 1
        if calls["n"] >= 2:  # first unit lands, second dies mid-write
            torn = target.parent / f".{target.name}.tmp"
            torn.write_bytes(b"partial")
            raise OSError("disk full")
        real_write(target, data)

    monkeypatch.setattr(queue_module, "_atomic_write_bytes", failing_write)
    with pytest.raises(OSError, match="disk full"):
        executor.submit(plan)
    monkeypatch.setattr(queue_module, "_atomic_write_bytes", real_write)
    layout = executor.spool
    assert not list(layout.plans.iterdir())
    assert not list(executor.queue.directory.iterdir())  # torn temp swept too
    assert not list(layout.pending.iterdir())
    assert not list(layout.inflight.iterdir())


def test_unpicklable_payload_fails_before_touching_the_spool(tmp_path):
    from helpers import make_synthetic_system

    system = make_synthetic_system()  # closure sampler: not picklable
    session = (
        Session()
        .system(system)
        .deadlines(period=1e9)
        .artifacts(tmp_path / "cache")
        .service(tmp_path / "spool", local_workers=0, timeout=5.0)
    )
    with pytest.raises(SweepExecutionError, match="not picklable"):
        session.run_many([{"seed": 1, "cycles": 1}])
    layout = ServiceSpoolLayout(tmp_path / "spool")
    assert not list(layout.plans.iterdir())
    assert not any(layout.queues.glob("*/*"))


# --------------------------------------------------------------------------- #
# resident workers: warm reuse, LRU bound
# --------------------------------------------------------------------------- #


def _run_plan(executor, worker, plan) -> None:
    plan_id = executor.submit(plan)
    executor.queue.pump()
    while (claim := worker.claim_one()) is not None:
        worker._execute_claim(claim)
    outstanding = {unit.index for unit in plan.units}
    executor._drain_done(plan_id, outstanding)
    executor._cleanup(plan_id)
    assert not outstanding


def test_resident_worker_reuses_runtimes_across_plans(tmp_path):
    worker = ResidentWorker(tmp_path / "spool", cache_dir=tmp_path / "worker-cache")
    executor = QueuedSweepExecutor(tmp_path / "spool", poll_interval=0.02, pump=False)
    for _ in range(2):
        _run_plan(executor, worker, _session(tmp_path).sweep_plan(_GRID[:2]))
    # one cold hydration for the first plan; the identical second plan is warm
    assert worker.hydrations == 1
    assert worker.warm_hits == 1
    # the warm runtime survives plan cleanup in the resident pool
    worker._evict_stale_plans()
    assert not worker._runtimes and len(worker._resident) == 1


def test_resident_pool_is_lru_bounded(tmp_path):
    with pytest.raises(ValueError, match="max_resident"):
        ResidentWorker(tmp_path / "spool", max_resident=0)
    worker = ResidentWorker(
        tmp_path / "spool", cache_dir=tmp_path / "worker-cache", max_resident=1
    )
    executor = QueuedSweepExecutor(tmp_path / "spool", poll_interval=0.02, pump=False)
    ipod = _session(tmp_path)
    desktop = _session(tmp_path).machine("desktop")
    _run_plan(executor, worker, ipod.sweep_plan(_GRID[:1]))
    _run_plan(executor, worker, desktop.sweep_plan(_GRID[:1]))  # evicts ipod
    _run_plan(executor, worker, ipod.sweep_plan(_GRID[:1]))  # cold again
    assert worker.hydrations == 3
    assert worker.warm_hits == 0
    assert len(worker._resident) == 1


def test_resident_results_are_bit_identical_to_serial(tmp_path):
    """The service's workload shape: independent clients submitting the
    same configuration repeatedly.  Each fresh session starts the scenario
    stream at the same cursor, so the payloads hash identically and the
    worker serves every repeat from the warm runtime — bit-identically."""
    serial = _session(tmp_path).run_many(_GRID)
    with _InlineWorker(tmp_path) as worker:
        first = _service_session(tmp_path).run_many(_GRID)
        second = _service_session(tmp_path).run_many(_GRID)
    _batches_identical(serial, first)
    _batches_identical(serial, second)
    assert worker.warm_hits >= 1  # the repeat reused the hydrated runtime


def test_resident_worker_maintains_a_presence_file(tmp_path):
    layout = ServiceSpoolLayout(tmp_path / "spool").ensure()
    worker = ResidentWorker(
        tmp_path / "spool", cache_dir=tmp_path / "worker-cache",
        poll_interval=0.02, worker_id="w-test",
    )
    assert worker.run(max_idle=0.1) == 0
    # present during run (touched on every scan), removed on exit
    assert not (layout.workers / "w-test").exists()


# --------------------------------------------------------------------------- #
# Session wiring: .service() builder
# --------------------------------------------------------------------------- #


def test_session_service_run_many_matches_serial(tmp_path):
    serial = _session(tmp_path).run_many(_GRID)
    session = _service_session(tmp_path)
    with _InlineWorker(tmp_path):
        result = session.run_many(_GRID)
    _batches_identical(serial, result)


def test_session_service_spawned_workers_bit_identical(tmp_path):
    """The acceptance shape: real resident subprocess workers on one spool."""
    serial = _session(tmp_path).run_many(_GRID)
    result = _service_session(tmp_path, local_workers=2).run_many(_GRID)
    _batches_identical(serial, result)


def test_service_wins_over_remote_and_can_be_disabled(tmp_path):
    session = (
        _session(tmp_path)
        .remote(tmp_path / "spool-r", poll_interval=0.02)
        .service(tmp_path / "spool-s", poll_interval=0.02)
    )
    config = session._pool_config(None, None)
    assert config is not None and config.get("service") is not None
    session.service(enabled=False)
    config = session._pool_config(None, None)
    assert config is not None and config.get("service") is None
    assert config.get("remote") is not None  # falls back to .remote()


def test_service_builder_validates_eagerly(tmp_path):
    with pytest.raises(SessionError, match="spool"):
        Session().service()
    with pytest.raises(SessionError, match="tenant"):
        Session().service(tmp_path, tenant="bad~tenant")
    with pytest.raises(SessionError, match="queue"):
        Session().service(tmp_path, queue="bad/queue")
    with pytest.raises(SessionError, match="quota"):
        Session().service(tmp_path, quota=0)
    with pytest.raises(SessionError, match="lease_timeout"):
        Session().service(tmp_path, lease_timeout=0)
    with pytest.raises(SessionError, match="timeout"):
        Session().service(tmp_path, timeout=0)
    with pytest.raises(SessionError, match="transport"):
        Session().service(tmp_path, scenario_transport="telegraph")


def test_sweep_plan_builds_without_spooling(tmp_path):
    session = _session(tmp_path)
    plan = session.sweep_plan(_GRID)
    assert [unit.label for unit in plan.units] == [spec["label"] for spec in _GRID]
    assert not (tmp_path / "spool").exists()  # planning never touches a spool


# --------------------------------------------------------------------------- #
# async client
# --------------------------------------------------------------------------- #


def test_service_client_validates_parameters(tmp_path):
    with pytest.raises(ValueError, match="timeout"):
        ServiceClient(tmp_path / "spool", timeout=0.0)
    with pytest.raises(ValueError, match="max_in_flight"):
        ServiceClient(tmp_path / "spool", max_in_flight=0)


def test_service_client_concurrent_sweeps_bit_identical(tmp_path):
    """Many sweeps multiplexed over one poller each resolve to the exact
    serial result, under client-side back-pressure."""
    serial = [_session(tmp_path).run_many([spec]) for spec in _GRID]

    async def fan_out():
        client = ServiceClient(
            tmp_path / "spool", poll_interval=0.02, timeout=120.0,
            quota=4, max_in_flight=3,
        )
        async with client:
            handles = [
                await client.submit(_session(tmp_path), [spec]) for spec in _GRID
            ]
            return await client.gather(*handles)

    with _InlineWorker(tmp_path):
        results = asyncio.run(fan_out())
    for expected, got in zip(serial, results):
        _batches_identical(expected, got)
    # everything was withdrawn: the spool is clean
    layout = ServiceSpoolLayout(tmp_path / "spool")
    for directory in (layout.plans, layout.pending, layout.claimed, layout.done):
        assert not list(directory.iterdir())


def test_service_client_empty_sweep_resolves_immediately(tmp_path):
    async def run():
        async with ServiceClient(tmp_path / "spool", poll_interval=0.02) as client:
            handle = await client.submit(_session(tmp_path), [])
            assert handle.plan_id is None
            return await handle

    result = asyncio.run(run())
    assert not result.runs
    layout = ServiceSpoolLayout(tmp_path / "spool")
    assert not list(layout.plans.iterdir())  # nothing was spooled


def test_service_client_timeout_without_workers(tmp_path):
    async def run():
        async with ServiceClient(
            tmp_path / "spool", poll_interval=0.02, timeout=0.3
        ) as client:
            handle = await client.submit(_session(tmp_path), _GRID[:1])
            with pytest.raises(SweepExecutionError, match="timed out"):
                await handle

    asyncio.run(run())
    layout = ServiceSpoolLayout(tmp_path / "spool")
    assert not list(layout.plans.iterdir())  # timed-out sweep was withdrawn


def test_service_client_close_fails_sweeps_in_flight(tmp_path):
    async def run():
        client = ServiceClient(tmp_path / "spool", poll_interval=0.02)
        handle = await client.submit(_session(tmp_path), _GRID[:1])
        await client.aclose()
        with pytest.raises(SweepExecutionError, match="closed"):
            await handle
        with pytest.raises(RuntimeError, match="closed"):
            await client.submit(_session(tmp_path), _GRID[:1])

    asyncio.run(run())


# --------------------------------------------------------------------------- #
# status + CLI
# --------------------------------------------------------------------------- #


def test_service_status_reports_queues_inflight_and_workers(tmp_path):
    spool = tmp_path / "spool"
    queue = ServiceQueue(spool, "fast")
    _enqueue(queue, "aaa111", 0, priority=2, tenant="alice")
    _enqueue(queue, "aaa111", 1, priority=0, tenant="bob")
    _enqueue(queue, "bbb222", 0, priority=0, tenant="alice")
    queue.pump(max_dispatch=1)
    (queue.layout.workers / "worker-7").touch()

    status = service_status(spool)
    fast = status["queues"]["fast"]
    assert fast["depth"] == 2
    assert fast["by_tenant"] == {"alice": 1, "bob": 1}
    assert status["in_flight"] == {"fast": {"alice": 1}}
    assert status["pending"] == 1
    assert "worker-7" in status["workers"]

    rendered = format_status(status)
    for needle in ("fast", "alice", "bob", "worker-7"):
        assert needle in rendered


def test_service_status_flags_stale_workers_and_ages_out_dead_ones(tmp_path):
    """A SIGKILLed worker never removes its presence file: once the
    heartbeat mtime exceeds the lease timeout the worker reports 'stale',
    and long-dead files are aged out instead of listed forever."""
    spool = tmp_path / "spool"
    layout = ServiceSpoolLayout(spool).ensure()
    (layout.workers / "fresh").touch()
    stale = layout.workers / "gone-stale"
    stale.touch()
    old = time.time() - 60.0  # past the default 30s lease timeout
    os.utime(stale, (old, old))
    ancient = layout.workers / "long-dead"
    ancient.touch()
    dead = time.time() - 3600.0  # past stale_after x the GC factor
    os.utime(ancient, (dead, dead))

    status = service_status(spool)
    assert status["workers"]["fresh"]["state"] == "alive"
    assert status["workers"]["gone-stale"]["state"] == "stale"
    assert status["workers"]["gone-stale"]["age_seconds"] >= 30.0
    assert "long-dead" not in status["workers"]
    assert not ancient.exists()
    rendered = format_status(status)
    assert "stale" in rendered and "fresh (alive" in rendered


def test_service_status_metrics_reads_worker_payloads_and_wait_ages(tmp_path):
    import json

    spool = tmp_path / "spool"
    queue = ServiceQueue(spool, "fast")
    _enqueue(queue, "aaa111", 0, tenant="alice")
    (queue.layout.workers / "worker-1").write_text(
        json.dumps({"pid": 1, "warm_hits": 3, "hydrations": 1, "executed": 9}),
        encoding="utf-8",
    )

    plain = service_status(spool)
    assert "metrics" not in plain["workers"]["worker-1"]
    assert "wait_age_by_tenant" not in plain["queues"]["fast"]

    status = service_status(spool, include_metrics=True)
    assert status["workers"]["worker-1"]["metrics"]["warm_hits"] == 3
    assert status["queues"]["fast"]["wait_age_by_tenant"]["alice"] >= 0.0
    rendered = format_status(status)
    assert "warm_hits=3" in rendered and "executed=9" in rendered


def test_cli_service_status_metrics_flag(tmp_path, capsys):
    import json

    from repro.cli import main

    spool = tmp_path / "spool"
    layout = ServiceSpoolLayout(spool).ensure()
    (layout.workers / "worker-9").write_text(
        json.dumps({"executed": 4, "warm_hits": 2, "hydrations": 2}),
        encoding="utf-8",
    )
    assert main(["service", "status", "--spool", str(spool), "--metrics"]) == 0
    printed = capsys.readouterr().out
    assert "worker-9" in printed and "executed=4" in printed


def test_cli_service_status_and_drain(tmp_path, capsys):
    from repro.cli import main

    spool = tmp_path / "spool"
    assert main(["service", "status", "--spool", str(spool)]) == 0
    printed = capsys.readouterr().out
    assert str(spool) in printed
    # an empty spool drains instantly; a non-empty one times out with rc 1
    assert main(["service", "drain", "--spool", str(spool), "--timeout", "5"]) == 0
    queue = ServiceQueue(spool)
    _enqueue(queue, "aaa111", 0)
    queue.pump()  # pending now holds a unit nobody will execute
    assert (
        main(["service", "drain", "--spool", str(spool), "--timeout", "0.2"]) == 1
    )
