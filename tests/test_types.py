"""Tests for the fundamental value types."""

from __future__ import annotations

import pytest

from repro.core import (
    Action,
    QualitySet,
    ScheduledSequence,
    SystemState,
)


class TestAction:
    def test_valid_action(self):
        action = Action(index=3, name="dct", group="mb1")
        assert action.index == 3
        assert action.name == "dct"
        assert action.group == "mb1"

    def test_index_must_be_positive(self):
        with pytest.raises(ValueError):
            Action(index=0, name="bad")

    def test_str_uses_name(self):
        assert str(Action(index=1, name="encode")) == "encode"

    def test_str_falls_back_to_index(self):
        assert str(Action(index=7, name="")) == "a7"

    def test_frozen(self):
        action = Action(index=1, name="x")
        with pytest.raises(AttributeError):
            action.name = "y"  # type: ignore[misc]


class TestSystemState:
    def test_initial_state(self):
        state = SystemState(0, 0.0)
        assert state.index == 0
        assert state.time == 0.0

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            SystemState(-1, 0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            SystemState(0, -0.5)

    def test_advanced(self):
        state = SystemState(2, 1.5).advanced(0.75)
        assert state.index == 3
        assert state.time == pytest.approx(2.25)

    def test_advanced_does_not_mutate(self):
        state = SystemState(0, 0.0)
        state.advanced(1.0)
        assert state.index == 0 and state.time == 0.0


class TestQualitySet:
    def test_basic_range(self):
        qualities = QualitySet(0, 6)
        assert len(qualities) == 7
        assert list(qualities) == [0, 1, 2, 3, 4, 5, 6]
        assert qualities.minimum == 0
        assert qualities.maximum == 6

    def test_of_size(self):
        qualities = QualitySet.of_size(4, start=2)
        assert list(qualities) == [2, 3, 4, 5]

    def test_of_size_requires_positive_count(self):
        with pytest.raises(ValueError):
            QualitySet.of_size(0)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            QualitySet(3, 1)

    def test_membership(self):
        qualities = QualitySet(1, 3)
        assert 2 in qualities
        assert 0 not in qualities
        assert 4 not in qualities
        assert "2" not in qualities

    def test_clamp(self):
        qualities = QualitySet(0, 5)
        assert qualities.clamp(-2) == 0
        assert qualities.clamp(9) == 5
        assert qualities.clamp(3) == 3

    def test_index_roundtrip(self):
        qualities = QualitySet(2, 8)
        for level in qualities:
            assert qualities.level_at(qualities.index_of(level)) == level

    def test_index_of_rejects_outsiders(self):
        with pytest.raises(ValueError):
            QualitySet(0, 3).index_of(4)

    def test_level_at_rejects_bad_index(self):
        with pytest.raises(ValueError):
            QualitySet(0, 3).level_at(4)

    def test_equality_and_hash(self):
        assert QualitySet(0, 3) == QualitySet(0, 3)
        assert QualitySet(0, 3) != QualitySet(0, 4)
        assert hash(QualitySet(1, 2)) == hash(QualitySet(1, 2))

    def test_singleton_set(self):
        qualities = QualitySet(5, 5)
        assert len(qualities) == 1
        assert list(qualities) == [5]
        assert qualities.clamp(0) == 5


class TestScheduledSequence:
    def test_from_names(self):
        sequence = ScheduledSequence.from_names(["load", "transform", "store"])
        assert len(sequence) == 3
        assert sequence[1].name == "load"
        assert sequence[3].name == "store"
        assert sequence.names() == ["load", "transform", "store"]

    def test_uniform(self):
        sequence = ScheduledSequence.uniform(5)
        assert len(sequence) == 5
        assert sequence[5].name == "a5"

    def test_uniform_requires_positive_count(self):
        with pytest.raises(ValueError):
            ScheduledSequence.uniform(0)

    def test_one_based_indexing_bounds(self):
        sequence = ScheduledSequence.uniform(3)
        with pytest.raises(IndexError):
            sequence[0]
        with pytest.raises(IndexError):
            sequence[4]

    def test_actions_must_be_consecutively_numbered(self):
        with pytest.raises(ValueError):
            ScheduledSequence((Action(index=2, name="x"),))

    def test_iteration_preserves_order(self):
        sequence = ScheduledSequence.from_names(["a", "b", "c"])
        assert [a.index for a in sequence] == [1, 2, 3]

    def test_groups(self):
        sequence = ScheduledSequence.from_names(["a", "b"], group="frame0")
        assert sequence.groups() == ["frame0", "frame0"]
