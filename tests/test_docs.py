"""Documentation integrity: links resolve, help states defaults, modules
carry docstrings.

The markdown link check runs over README.md and every file in ``docs/``
(relative links must point at real files, in-page anchors at real headings);
the CLI audit asserts every ``repro <cmd> --help`` epilog states its
defaults; the docstring audit keeps every ``repro`` module documented.
These are the tests the CI ``docs-and-examples`` job runs.
"""

from __future__ import annotations

import argparse
import importlib
import pkgutil
import re
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
_DOCS = [_ROOT / "README.md", *sorted((_ROOT / "docs").glob("*.md"))]

_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug of a markdown heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _document_ids():
    return [str(path.relative_to(_ROOT)) for path in _DOCS]


def test_documentation_suite_exists():
    """The docs/ suite the README links to is complete."""
    names = {path.name for path in _DOCS}
    assert {
        "README.md",
        "architecture.md",
        "scenario-pipeline.md",
        "distributed-sweeps.md",
        "service.md",
        "observability.md",
        "streaming.md",
        "fleet.md",
        "reproduction.md",
    } <= names


@pytest.mark.parametrize("document", _DOCS, ids=_document_ids())
def test_markdown_links_resolve(document: Path):
    markdown = document.read_text(encoding="utf-8")
    anchors = {_slugify(heading) for heading in _HEADING.findall(markdown)}
    for target in _LINK.findall(markdown):
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # external: not checked offline
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = (document.parent / path_part).resolve()
            assert resolved.exists(), f"{document.name}: broken link → {target}"
            if anchor and resolved.suffix == ".md":
                remote_anchors = {
                    _slugify(heading)
                    for heading in _HEADING.findall(
                        resolved.read_text(encoding="utf-8")
                    )
                }
                assert anchor in remote_anchors, (
                    f"{document.name}: broken anchor → {target}"
                )
        else:
            assert anchor in anchors, f"{document.name}: broken in-page anchor → #{anchor}"


@pytest.mark.parametrize("document", _DOCS, ids=_document_ids())
def test_markdown_fences_are_balanced(document: Path):
    fence_count = document.read_text(encoding="utf-8").count("\n```")
    assert fence_count % 2 == 0, f"{document.name}: unbalanced code fences"


def test_readme_links_the_docs_suite():
    markdown = (_ROOT / "README.md").read_text(encoding="utf-8")
    for name in (
        "docs/architecture.md",
        "docs/scenario-pipeline.md",
        "docs/distributed-sweeps.md",
        "docs/service.md",
        "docs/observability.md",
        "docs/streaming.md",
        "docs/fleet.md",
        "docs/reproduction.md",
    ):
        assert name in markdown, f"README does not cross-link {name}"


# --------------------------------------------------------------------------- #
# CLI audit: every subcommand's --help states its defaults
# --------------------------------------------------------------------------- #


def _subcommands() -> dict:
    from repro.cli import build_parser

    parser = build_parser()
    return next(
        action for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    ).choices


def test_every_subcommand_epilog_states_defaults():
    subparsers_choices = _subcommands()
    assert {"info", "managers", "run", "compare", "fleet", "sweep", "worker",
            "experiments", "diagram", "service", "obs"} <= set(subparsers_choices)
    for name, sub in subparsers_choices.items():
        assert sub.epilog, f"'repro {name}' has no --help epilog"
        assert "default" in sub.epilog.lower(), (
            f"'repro {name}' epilog does not state its defaults"
        )


def test_every_service_subcommand_epilog_states_defaults():
    """The nested `repro service <cmd>` parsers are audited like top-level
    subcommands: each --help epilog must state its defaults."""
    service = _subcommands()["service"]
    nested = next(
        action for action in service._actions
        if isinstance(action, argparse._SubParsersAction)
    ).choices
    assert {"start", "status", "drain"} == set(nested)
    for name, sub in nested.items():
        assert sub.epilog, f"'repro service {name}' has no --help epilog"
        assert "default" in sub.epilog.lower(), (
            f"'repro service {name}' epilog does not state its defaults"
        )


def test_every_obs_subcommand_epilog_states_defaults():
    """The nested `repro obs <cmd>` parsers are audited like top-level
    subcommands: each --help epilog must state its defaults."""
    obs = _subcommands()["obs"]
    nested = next(
        action for action in obs._actions
        if isinstance(action, argparse._SubParsersAction)
    ).choices
    assert {"report"} == set(nested)
    for name, sub in nested.items():
        assert sub.epilog, f"'repro obs {name}' has no --help epilog"
        assert "default" in sub.epilog.lower(), (
            f"'repro obs {name}' epilog does not state its defaults"
        )


def test_worker_help_documents_the_spool_contract():
    help_text = _subcommands()["worker"].format_help()
    for needle in ("--spool", "--cache-dir", "--max-idle", "docs/distributed-sweeps.md"):
        assert needle in help_text


# --------------------------------------------------------------------------- #
# module docstring audit
# --------------------------------------------------------------------------- #


def test_every_repro_module_has_a_docstring():
    import repro

    missing = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        if not (module.__doc__ or "").strip():
            missing.append(info.name)
    assert not missing, f"modules without docstrings: {missing}"
