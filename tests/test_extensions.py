"""Tests for the extensions: power management, multi-task, linear approximation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    QualityManagerCompiler,
    audit_trace,
    compute_td_table,
    run_cycle,
    run_fixed_quality,
)
from repro.extensions import (
    DvfsTask,
    FrequencyScale,
    LinearRelaxationQualityManager,
    LinearRelaxationTable,
    TaskSpec,
    build_dvfs_system,
    compose_tasks,
    energy_of_outcome,
    per_task_quality,
)

from helpers import make_deadline, make_synthetic_system


# --------------------------------------------------------------------------- #
# power management
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def dvfs():
    scale = FrequencyScale(frequencies=(150e6, 300e6, 450e6, 600e6))
    task = DvfsTask.synthetic(40, seed=7, utilisation=0.6)
    system, deadlines = build_dvfs_system(task, scale, seed=7)
    return scale, task, system, deadlines


class TestFrequencyScale:
    def test_level_to_frequency_is_inverted(self, dvfs):
        scale, _, _, _ = dvfs
        assert scale.frequency_of_level(0) == 600e6
        assert scale.frequency_of_level(3) == 150e6

    def test_dynamic_power_grows_with_frequency(self, dvfs):
        scale, _, _, _ = dvfs
        powers = [scale.dynamic_power(f) for f in scale.frequencies]
        assert all(a < b for a, b in zip(powers, powers[1:]))

    def test_energy_accounting(self, dvfs):
        scale, _, _, _ = dvfs
        assert scale.energy(600e6, 2.0) == pytest.approx(
            (scale.reference_power + scale.static_power) * 2.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            FrequencyScale(frequencies=())
        with pytest.raises(ValueError):
            FrequencyScale(frequencies=(2e6, 1e6))
        with pytest.raises(ValueError):
            FrequencyScale(frequencies=(1e6,), dynamic_exponent=0.5)


class TestDvfsSystem:
    def test_execution_time_non_decreasing_in_level(self, dvfs):
        _, _, system, _ = dvfs
        assert np.all(np.diff(system.average.values, axis=0) >= -1e-15)
        assert np.all(np.diff(system.worst_case.values, axis=0) >= -1e-15)

    def test_cycle_counts_validation(self):
        with pytest.raises(ValueError):
            DvfsTask(names=("a",), average_cycles=np.array([2.0]), worst_case_cycles=np.array([1.0]), deadline=1.0)
        with pytest.raises(ValueError):
            DvfsTask(names=("a",), average_cycles=np.array([1.0]), worst_case_cycles=np.array([2.0]), deadline=0.0)

    def test_controller_is_safe_and_saves_energy(self, dvfs):
        scale, _, system, deadlines = dvfs
        controllers = QualityManagerCompiler().compile(system, deadlines)
        scenario = system.draw_scenario(np.random.default_rng(3))
        managed = run_cycle(system, controllers.relaxation, scenario=scenario)
        assert audit_trace(managed, deadlines).is_safe
        max_freq = run_fixed_quality(system, 0, scenario=scenario)
        assert energy_of_outcome(managed, scale) < energy_of_outcome(max_freq, scale)

    def test_chosen_levels_prefer_low_frequencies_when_slack_allows(self, dvfs):
        _, _, system, deadlines = dvfs
        controllers = QualityManagerCompiler().compile(system, deadlines)
        outcome = run_cycle(system, controllers.numeric, rng=np.random.default_rng(0))
        assert outcome.mean_quality > 0.0  # not everything at max frequency

    def test_energy_includes_overhead_at_max_frequency(self, dvfs):
        scale, _, system, deadlines = dvfs
        controllers = QualityManagerCompiler().compile(system, deadlines)
        scenario = system.draw_scenario(np.random.default_rng(1))

        class Charge:
            def charge(self, work):
                return 1.0e-3

        with_overhead = run_cycle(
            system, controllers.numeric, scenario=scenario, overhead_model=Charge()
        )
        without = run_cycle(system, controllers.numeric, scenario=scenario)
        assert energy_of_outcome(with_overhead, scale) > energy_of_outcome(without, scale)


# --------------------------------------------------------------------------- #
# multi-task composition
# --------------------------------------------------------------------------- #
class TestMultitask:
    def make_tasks(self):
        a = make_synthetic_system(n_actions=12, n_levels=3, seed=1)
        b = make_synthetic_system(n_actions=8, n_levels=3, seed=2)
        deadline_a = float(a.worst_case.total(1, 12, 0) + b.worst_case.total(1, 8, 0)) * 1.3
        deadline_b = deadline_a * 0.7
        return [
            TaskSpec("alpha", a, deadline=deadline_a, block_size=3),
            TaskSpec("beta", b, deadline=deadline_b, block_size=2),
        ]

    def test_composition_preserves_action_count(self):
        composed = compose_tasks(self.make_tasks())
        assert composed.system.n_actions == 20
        assert composed.n_tasks == 2
        assert set(composed.task_names) == {"alpha", "beta"}

    def test_round_robin_interleaves_blocks(self):
        composed = compose_tasks(self.make_tasks(), interleaving="round_robin")
        groups = composed.system.sequence.groups()
        assert groups[:5] == ["alpha", "alpha", "alpha", "beta", "beta"]

    def test_sequential_interleaving(self):
        composed = compose_tasks(self.make_tasks(), interleaving="sequential")
        groups = composed.system.sequence.groups()
        assert groups[:12] == ["alpha"] * 12
        assert groups[12:] == ["beta"] * 8

    def test_each_task_keeps_its_deadline(self):
        tasks = self.make_tasks()
        composed = compose_tasks(tasks)
        assert len(composed.deadlines) == 2
        for spec in tasks:
            last = composed.task_last_action[spec.name]
            assert composed.deadlines.deadline_of(last) == pytest.approx(spec.deadline)

    def test_managed_hyper_cycle_is_safe(self):
        composed = compose_tasks(self.make_tasks())
        controllers = QualityManagerCompiler(require_feasible=False).compile(
            composed.system, composed.deadlines
        )
        for seed in range(3):
            outcome = run_cycle(composed.system, controllers.numeric, rng=np.random.default_rng(seed))
            assert audit_trace(outcome, composed.deadlines).is_safe

    def test_per_task_quality_reporting(self):
        composed = compose_tasks(self.make_tasks())
        controllers = QualityManagerCompiler(require_feasible=False).compile(
            composed.system, composed.deadlines
        )
        outcome = run_cycle(composed.system, controllers.numeric, rng=np.random.default_rng(0))
        report = per_task_quality(composed, outcome)
        assert set(report) == {"alpha", "beta"}
        for value in report.values():
            assert 0.0 <= value <= composed.system.qualities.maximum

    def test_mismatched_quality_sets_rejected(self):
        a = make_synthetic_system(n_actions=5, n_levels=3, seed=1)
        b = make_synthetic_system(n_actions=5, n_levels=4, seed=2)
        with pytest.raises(ValueError):
            compose_tasks([TaskSpec("a", a, 10.0), TaskSpec("b", b, 10.0)])

    def test_empty_task_list_rejected(self):
        with pytest.raises(ValueError):
            compose_tasks([])

    def test_unknown_interleaving_rejected(self):
        with pytest.raises(ValueError):
            compose_tasks(self.make_tasks(), interleaving="random")

    def test_spec_validation(self):
        a = make_synthetic_system(n_actions=5, n_levels=3, seed=1)
        with pytest.raises(ValueError):
            TaskSpec("a", a, deadline=0.0)
        with pytest.raises(ValueError):
            TaskSpec("a", a, deadline=1.0, block_size=0)


# --------------------------------------------------------------------------- #
# linear approximation of relaxation regions
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def linear_setup():
    system = make_synthetic_system(n_actions=40, n_levels=4, seed=23, wc_ratio=1.4)
    deadlines = make_deadline(system, slack=1.4)
    controllers = QualityManagerCompiler(relaxation_steps=(1, 4, 8, 12)).compile(system, deadlines)
    linear = LinearRelaxationTable(controllers.relaxation.relaxation)
    return system, deadlines, controllers, linear


class TestLinearApproximation:
    def test_is_conservative(self, linear_setup):
        _, _, _, linear = linear_setup
        assert linear.is_conservative()

    def test_bounds_never_exceed_exact(self, linear_setup):
        system, _, controllers, linear = linear_setup
        exact = controllers.relaxation.relaxation
        for r in linear.steps:
            for quality in system.qualities:
                for state in range(0, system.n_actions - r, 3):
                    exact_lower, exact_upper = exact.bounds(state, quality, r)
                    approx_lower, approx_upper = linear.bounds(state, quality, r)
                    if np.isfinite(approx_upper):
                        assert approx_upper <= exact_upper + 1e-9
                    if np.isfinite(exact_lower):
                        assert approx_lower >= exact_lower - 1e-9

    def test_grants_at_most_exact_relaxation(self, linear_setup):
        system, _, controllers, linear = linear_setup
        exact = controllers.relaxation.relaxation
        rng = np.random.default_rng(0)
        td = controllers.td_table
        for state in range(0, system.n_actions - 12, 2):
            for quality in system.qualities:
                lower, upper = exact.bounds(state, quality, 1)
                if not np.isfinite(upper) or upper <= max(lower, 0.0):
                    continue
                time = float(rng.uniform(max(lower, 0.0), upper))
                assert linear.max_relaxation(state, time, quality) <= exact.max_relaxation(
                    state, time, quality
                )

    def test_manager_chooses_identical_qualities(self, linear_setup):
        system, deadlines, controllers, linear = linear_setup
        manager = LinearRelaxationQualityManager(controllers.region.regions, linear)
        for seed in range(3):
            scenario = system.draw_scenario(np.random.default_rng(seed))
            a = run_cycle(system, controllers.numeric, scenario=scenario)
            b = run_cycle(system, manager, scenario=scenario)
            assert np.array_equal(a.qualities, b.qualities)
            assert audit_trace(b, deadlines).is_safe

    def test_massive_memory_reduction(self, linear_setup):
        _, _, controllers, linear = linear_setup
        exact_size = controllers.relaxation.memory_footprint().integers
        approx_size = linear.memory_footprint().integers
        assert approx_size < exact_size / 10

    def test_from_td_table_constructor(self, linear_setup):
        system, deadlines, controllers, _ = linear_setup
        manager = LinearRelaxationQualityManager.from_td_table(
            controllers.td_table, steps=(1, 4, 8)
        )
        outcome = run_cycle(system, manager, rng=np.random.default_rng(0))
        assert audit_trace(outcome, deadlines).is_safe

    def test_still_relaxes_some_calls(self, linear_setup):
        system, _, controllers, linear = linear_setup
        manager = LinearRelaxationQualityManager(controllers.region.regions, linear)
        outcome = run_cycle(system, manager, rng=np.random.default_rng(1))
        assert outcome.manager_invocations.shape[0] <= system.n_actions

    def test_unknown_step_rejected(self, linear_setup):
        _, _, _, linear = linear_setup
        with pytest.raises(KeyError):
            linear.bounds(0, 0, 999)
