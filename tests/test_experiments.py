"""Tests for the experiment reproductions (fast-mode shapes).

The assertions here encode the *shape* claims of the paper: exact table-size
matches for E1, overhead ordering for E2, quality dominance for E3, overhead
reduction and dynamic step adaptation for E4, and Proposition 1 agreement for
E5.  The paper-scale runs live in the benchmark suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    PAPER_REFERENCE,
    PAPER_SETUP,
    run_diagram_experiment,
    run_fig7_experiment,
    run_fig8_experiment,
    run_memory_experiment,
    run_overhead_experiment,
)
from repro.experiments.runner import run_all_experiments
from repro.media import paper_encoder, small_encoder


@pytest.fixture(scope="module")
def fast_workload():
    return small_encoder(seed=0, n_frames=4)


class TestPaperConstants:
    def test_setup_matches_paper_text(self):
        assert PAPER_SETUP.n_actions == 1189
        assert PAPER_SETUP.n_levels == 7
        assert PAPER_SETUP.deadline_seconds == 30.0
        assert PAPER_SETUP.n_frames == 29
        assert PAPER_SETUP.macroblocks_per_frame == 396

    def test_reference_table_sizes_follow_formulas(self):
        assert PAPER_REFERENCE.region_integers == PAPER_SETUP.n_actions * PAPER_SETUP.n_levels
        assert PAPER_REFERENCE.relaxation_integers == (
            2 * PAPER_SETUP.n_actions * PAPER_SETUP.n_levels * len(PAPER_SETUP.relaxation_steps)
        )

    def test_paper_encoder_action_count_matches_setup(self):
        assert paper_encoder().pipeline().n_actions == PAPER_SETUP.n_actions


class TestMemoryExperiment:
    def test_paper_scale_table_sizes_match_exactly(self):
        result = run_memory_experiment()
        assert result.report.region_integers == 8_323
        assert result.report.relaxation_integers == 99_876
        assert result.region_matches_paper
        assert result.relaxation_matches_paper
        assert "8323" in result.render().replace(",", "")

    def test_small_workload_follows_formulas(self, fast_workload):
        result = run_memory_experiment(fast_workload)
        n = fast_workload.pipeline().n_actions
        assert result.report.region_integers == n * 7
        assert result.report.relaxation_integers == 2 * n * 7 * 6


class TestOverheadExperiment:
    def test_ordering_and_safety(self, fast_workload):
        result = run_overhead_experiment(fast_workload, n_frames=3, seed=1)
        assert result.ordering_matches_paper
        assert result.all_safe
        percentages = result.overhead_percentages
        assert percentages["numeric"] > percentages["relaxation"]
        assert "overhead" in result.render().lower()

    def test_metrics_present_for_all_managers(self, fast_workload):
        result = run_overhead_experiment(fast_workload, n_frames=2, seed=0)
        assert set(result.metrics) == {"numeric", "region", "relaxation"}


class TestFig7Experiment:
    def test_symbolic_quality_dominates(self, fast_workload):
        result = run_fig7_experiment(fast_workload, n_frames=4, seed=2)
        assert result.n_frames == 4
        assert result.symbolic_dominates_numeric()
        assert set(result.series) == {"numeric", "region", "relaxation"}
        assert "sequence mean quality" in result.render()

    def test_series_lengths_match_frames(self, fast_workload):
        result = run_fig7_experiment(fast_workload, n_frames=3, seed=0)
        for series in result.series.values():
            assert series.shape == (3,)

    def test_per_frame_quality_within_levels(self, fast_workload):
        result = run_fig7_experiment(fast_workload, n_frames=3, seed=0)
        for series in result.series.values():
            assert np.all(series >= 0.0) and np.all(series <= 6.0)


class TestFig8Experiment:
    def test_relaxation_reduces_window_overhead(self, fast_workload):
        result = run_fig8_experiment(fast_workload, seed=3)
        assert result.relaxation_total < result.region_total
        assert result.overhead_reduction_factor > 2.0
        assert "reduction factor" in result.render()

    def test_no_relaxation_series_has_constant_per_action_cost(self, fast_workload):
        result = run_fig8_experiment(fast_workload, seed=3)
        nonzero = result.region_overhead[result.region_overhead > 0]
        assert nonzero.shape[0] == result.region_overhead.shape[0]
        assert np.allclose(nonzero, nonzero[0])

    def test_relaxation_series_mostly_zero(self, fast_workload):
        result = run_fig8_experiment(fast_workload, seed=3)
        zero_fraction = np.mean(result.relaxation_overhead == 0.0)
        assert zero_fraction > 0.5

    def test_step_counts_adapt_dynamically(self, fast_workload):
        result = run_fig8_experiment(fast_workload, seed=3)
        assert len(set(result.relaxation_steps.tolist())) >= 2

    def test_invalid_window_rejected(self, fast_workload):
        with pytest.raises(ValueError):
            run_fig8_experiment(fast_workload, first_action=50, last_action=10)


class TestDiagramExperiment:
    def test_proposition1_holds_everywhere(self, fast_workload):
        result = run_diagram_experiment(fast_workload, seed=1)
        assert result.proposition1_checked > 100
        assert result.proposition1_holds
        assert "Proposition 1" in result.render()

    def test_trajectory_and_borders_present(self, fast_workload):
        result = run_diagram_experiment(fast_workload, seed=1)
        assert result.trajectory["actual_time"].shape[0] > 1
        assert len(result.region_borders) == 7


class TestRunner:
    def test_fast_suite_end_to_end(self):
        suite = run_all_experiments(fast=True, seed=0)
        report = suite.render()
        assert "E1" in report and "E4" in report
        assert suite.memory.region_matches_paper
        assert suite.overhead.ordering_matches_paper
        assert suite.fig7.symbolic_dominates_numeric()
        assert suite.diagrams.proposition1_holds


class TestFacadeSessionSharing:
    def test_experiments_do_not_clobber_a_shared_session(self, fast_workload):
        """Passing a session must not mutate the caller's configuration."""
        from repro.api import Session

        session = Session().system(fast_workload).relaxation_steps(1, 2, 4).seed(0)
        before = session.compile()
        result = run_overhead_experiment(session=session, n_frames=2, seed=1)
        assert set(result.metrics) == {"numeric", "region", "relaxation"}
        # the caller's step set and cached compilation survive
        assert session.compile() is before
        assert before.report.relaxation_steps == (1, 2, 4)

    def test_session_without_n_frames_uses_the_workload_length(self, fast_workload):
        from repro.api import Session

        session = Session().system(fast_workload).seed(0)
        result = run_fig7_experiment(session=session, seed=0)
        assert result.n_frames == fast_workload.n_frames

    def test_matches_workload_path(self, fast_workload):
        """Facade session path reproduces the plain-workload path exactly."""
        from repro.api import Session

        direct = run_fig7_experiment(fast_workload, n_frames=2, seed=3)
        shared = run_fig7_experiment(
            session=Session().system(fast_workload), n_frames=2, seed=3
        )
        for name in direct.series:
            np.testing.assert_array_equal(direct.series[name], shared.series[name])

    def test_session_machine_and_seed_are_inherited(self, fast_workload):
        """A passed session's machine/seed win when the args are unset."""
        from repro.api import Session
        from repro.platform import desktop

        session = Session().system(fast_workload).machine(desktop()).seed(7)
        inherited = run_overhead_experiment(session=session, n_frames=2)
        assert inherited.machine_name == "desktop"
        explicit = run_overhead_experiment(fast_workload, n_frames=2, machine=desktop(), seed=7)
        assert inherited.overhead_percentages == explicit.overhead_percentages

    def test_session_runs_do_not_shift_the_experiment_frames(self, fast_workload):
        """Pre-experiment runs on the caller's session must not advance the
        frames the experiment sees."""
        from repro.api import Session

        canonical = run_fig7_experiment(fast_workload, n_frames=2, seed=0)
        session = Session().system(fast_workload).seed(0)
        session.run(cycles=2)  # advances only the caller's own sampler
        shifted = run_fig7_experiment(session=session, n_frames=2, seed=0)
        for name in canonical.series:
            np.testing.assert_array_equal(canonical.series[name], shifted.series[name])

    def test_explicit_workload_wins_over_the_sessions_system(self, fast_workload):
        """Passing both workload and session runs the workload's system."""
        from repro.api import Session

        other = small_encoder(seed=5, n_frames=3)
        via_session = run_fig7_experiment(
            fast_workload, session=Session().system(other), n_frames=2, seed=0
        )
        direct = run_fig7_experiment(fast_workload, n_frames=2, seed=0)
        for name in direct.series:
            np.testing.assert_array_equal(direct.series[name], via_session.series[name])
