"""Tests for the related-work baseline managers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    ConstantQualityManager,
    ElasticQualityManager,
    FeedbackQualityManager,
    SkipQualityManager,
    average_only_manager,
    safe_only_manager,
)
from repro.core import (
    ActualTimeScenario,
    QualityManagerCompiler,
    audit_trace,
    run_cycle,
)

from helpers import make_deadline, make_synthetic_system


@pytest.fixture(scope="module")
def setup():
    system = make_synthetic_system(n_actions=25, n_levels=4, seed=31)
    deadlines = make_deadline(system, slack=1.3)
    return system, deadlines


def worst_case_scenario(system) -> ActualTimeScenario:
    """Every action takes its worst-case time — the adversarial input."""
    return ActualTimeScenario(system.qualities, system.worst_case.values.copy())


class TestConstantManager:
    def test_fixed_level(self, setup):
        system, _ = setup
        manager = ConstantQualityManager(system.qualities, 2)
        outcome = run_cycle(system, manager, rng=np.random.default_rng(0))
        assert np.all(outcome.qualities == 2)

    def test_invalid_level_rejected(self, setup):
        system, _ = setup
        with pytest.raises(ValueError):
            ConstantQualityManager(system.qualities, 99)

    def test_low_constant_level_is_safe_but_wasteful(self, setup):
        system, deadlines = setup
        manager = ConstantQualityManager(system.qualities, system.qualities.minimum)
        outcome = run_cycle(system, manager, scenario=worst_case_scenario(system))
        audit = audit_trace(outcome, deadlines)
        assert audit.is_safe
        assert outcome.makespan < deadlines.final_deadline * 0.9  # budget left unused

    def test_high_constant_level_misses_deadline_in_worst_case(self, setup):
        system, deadlines = setup
        manager = ConstantQualityManager(system.qualities, system.qualities.maximum)
        outcome = run_cycle(system, manager, scenario=worst_case_scenario(system))
        assert not audit_trace(outcome, deadlines).is_safe

    def test_single_consultation_mode(self, setup):
        system, _ = setup
        manager = ConstantQualityManager(
            system.qualities, 1, consult_every_action=False, horizon=system.n_actions
        )
        outcome = run_cycle(system, manager, rng=np.random.default_rng(0))
        assert outcome.manager_invocations.shape[0] == 1

    def test_memory_footprint(self, setup):
        system, _ = setup
        assert ConstantQualityManager(system.qualities, 1).memory_footprint().integers == 1


class TestPolicyAblations:
    def test_safe_only_manager_is_safe_in_worst_case(self, setup):
        system, deadlines = setup
        manager = safe_only_manager(system, deadlines)
        outcome = run_cycle(system, manager, scenario=worst_case_scenario(system))
        assert audit_trace(outcome, deadlines).is_safe
        assert manager.name == "safe-only"

    def test_safe_only_quality_collapses_along_cycle(self, setup):
        """The worst-case policy front-loads quality: the first actions run
        higher than the last ones when actual times track the worst case."""
        system, deadlines = setup
        manager = safe_only_manager(system, deadlines)
        outcome = run_cycle(system, manager, scenario=worst_case_scenario(system))
        third = system.n_actions // 3
        assert outcome.qualities[:third].mean() > outcome.qualities[-third:].mean()

    def test_average_only_manager_can_miss_deadlines(self, setup):
        system, deadlines = setup
        manager = average_only_manager(system, deadlines)
        outcome = run_cycle(system, manager, scenario=worst_case_scenario(system))
        assert not audit_trace(outcome, deadlines).is_safe

    def test_mixed_policy_smoother_than_safe_policy(self, setup):
        from repro.analysis import smoothness_index

        system, deadlines = setup
        controllers = QualityManagerCompiler().compile(system, deadlines)
        scenario = system.draw_scenario(np.random.default_rng(3))
        mixed = run_cycle(system, controllers.numeric, scenario=scenario)
        safe = run_cycle(system, safe_only_manager(system, deadlines), scenario=scenario)
        assert smoothness_index(mixed.qualities) <= smoothness_index(safe.qualities) + 1e-9


class TestSkipManager:
    def test_nominal_level_when_on_schedule(self, setup):
        system, deadlines = setup
        manager = SkipQualityManager(system, deadlines, nominal_level=2)
        # run with zero-cost actions: never late, always nominal
        zero = ActualTimeScenario(system.qualities, np.zeros_like(system.average.values))
        outcome = run_cycle(system, manager, scenario=zero)
        assert np.all(outcome.qualities == 2)

    def test_degrades_to_minimum_under_load(self, setup):
        system, deadlines = setup
        manager = SkipQualityManager(system, deadlines)
        outcome = run_cycle(system, manager, scenario=worst_case_scenario(system))
        assert outcome.qualities.min() == system.qualities.minimum

    def test_skip_window_respected(self, setup):
        system, deadlines = setup
        manager = SkipQualityManager(system, deadlines, skip_window=4)
        outcome = run_cycle(system, manager, scenario=worst_case_scenario(system))
        # after the first degradation, at least skip_window consecutive actions are minimal
        minima = np.flatnonzero(outcome.qualities == system.qualities.minimum)
        if minima.size >= 4:
            assert np.any(np.convolve(np.diff(minima) == 1, np.ones(3), mode="valid") == 3)

    def test_parameter_validation(self, setup):
        system, deadlines = setup
        with pytest.raises(ValueError):
            SkipQualityManager(system, deadlines, skip_window=0)
        with pytest.raises(ValueError):
            SkipQualityManager(system, deadlines, nominal_level=99)

    def test_reset_clears_skip_state(self, setup):
        system, deadlines = setup
        manager = SkipQualityManager(system, deadlines, nominal_level=2)
        run_cycle(system, manager, scenario=worst_case_scenario(system))
        manager.reset()
        zero = ActualTimeScenario(system.qualities, np.zeros_like(system.average.values))
        outcome = run_cycle(system, manager, scenario=zero)
        assert np.all(outcome.qualities == manager.nominal_level)


class TestFeedbackManager:
    def test_starts_at_reference_level(self, setup):
        system, deadlines = setup
        manager = FeedbackQualityManager(system, deadlines, reference_level=2)
        assert manager.decide(0, 0.0).quality == 2

    def test_lowers_quality_when_behind_schedule(self, setup):
        system, deadlines = setup
        manager = FeedbackQualityManager(system, deadlines, reference_level=2)
        manager.reset()
        late = deadlines.final_deadline * 0.9
        assert manager.decide(2, late).quality < 2

    def test_raises_quality_when_ahead_of_schedule(self, setup):
        system, deadlines = setup
        manager = FeedbackQualityManager(system, deadlines, reference_level=1)
        manager.reset()
        assert manager.decide(system.n_actions // 2, 0.0).quality > 1

    def test_output_clamped_to_quality_set(self, setup):
        system, deadlines = setup
        manager = FeedbackQualityManager(system, deadlines, kp=100.0)
        manager.reset()
        quality = manager.decide(1, deadlines.final_deadline).quality
        assert quality in system.qualities

    def test_can_miss_deadlines_in_worst_case(self, setup):
        system, deadlines = setup
        manager = FeedbackQualityManager(
            system, deadlines, reference_level=system.qualities.maximum, kp=0.1, ki=0.0, kd=0.0
        )
        outcome = run_cycle(system, manager, scenario=worst_case_scenario(system))
        assert not audit_trace(outcome, deadlines).is_safe

    def test_reference_level_validation(self, setup):
        system, deadlines = setup
        with pytest.raises(ValueError):
            FeedbackQualityManager(system, deadlines, reference_level=42)


class TestElasticManager:
    def test_safe_in_worst_case(self, setup):
        system, deadlines = setup
        manager = ElasticQualityManager(system, deadlines)
        outcome = run_cycle(system, manager, scenario=worst_case_scenario(system))
        assert audit_trace(outcome, deadlines).is_safe

    def test_more_conservative_than_mixed_policy(self, setup):
        system, deadlines = setup
        controllers = QualityManagerCompiler().compile(system, deadlines)
        scenario = system.draw_scenario(np.random.default_rng(5))
        elastic = run_cycle(system, ElasticQualityManager(system, deadlines), scenario=scenario)
        mixed = run_cycle(system, controllers.numeric, scenario=scenario)
        assert elastic.mean_quality <= mixed.mean_quality + 1e-9

    def test_falls_back_to_minimum_when_late(self, setup):
        system, deadlines = setup
        manager = ElasticQualityManager(system, deadlines)
        assert (
            manager.decide(system.n_actions - 1, deadlines.final_deadline * 2.0).quality
            == system.qualities.minimum
        )

    def test_memory_footprint(self, setup):
        system, deadlines = setup
        manager = ElasticQualityManager(system, deadlines)
        assert manager.memory_footprint().integers == system.n_actions * len(system.qualities)
