"""Tests for controlled-system execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ControlledSystem,
    ManagerWork,
    NumericQualityManager,
    QualityManagerCompiler,
    compute_td_table,
    run_cycle,
    run_fixed_quality,
)

from helpers import make_deadline, make_synthetic_system


class FixedCharge:
    """Overhead model charging a constant per invocation (test double)."""

    def __init__(self, amount: float) -> None:
        self.amount = amount
        self.charged: list[ManagerWork] = []

    def charge(self, work: ManagerWork) -> float:
        self.charged.append(work)
        return self.amount


@pytest.fixture(scope="module")
def setup():
    system = make_synthetic_system(n_actions=15, n_levels=3, seed=8)
    deadlines = make_deadline(system)
    td = compute_td_table(system, deadlines)
    return system, deadlines, td


class TestRunCycle:
    def test_completion_times_are_cumulative(self, setup):
        system, _, td = setup
        outcome = run_cycle(system, NumericQualityManager(td), rng=np.random.default_rng(0))
        assert np.allclose(np.cumsum(outcome.durations), outcome.completion_times)

    def test_durations_match_scenario(self, setup):
        system, _, td = setup
        scenario = system.draw_scenario(np.random.default_rng(4))
        outcome = run_cycle(system, NumericQualityManager(td), scenario=scenario)
        for i in range(system.n_actions):
            expected = scenario.actual_time(i + 1, int(outcome.qualities[i]))
            assert outcome.durations[i] == pytest.approx(expected)

    def test_every_action_gets_a_quality(self, setup):
        system, _, td = setup
        outcome = run_cycle(system, NumericQualityManager(td), rng=np.random.default_rng(1))
        assert outcome.qualities.shape == (system.n_actions,)
        assert all(q in system.qualities for q in outcome.qualities)

    def test_numeric_manager_invoked_every_action(self, setup):
        system, _, td = setup
        outcome = run_cycle(system, NumericQualityManager(td), rng=np.random.default_rng(1))
        assert np.array_equal(outcome.manager_invocations, np.arange(system.n_actions))

    def test_overhead_charged_and_recorded(self, setup):
        system, _, td = setup
        model = FixedCharge(0.01)
        outcome = run_cycle(
            system, NumericQualityManager(td), rng=np.random.default_rng(0), overhead_model=model
        )
        assert outcome.total_overhead == pytest.approx(0.01 * system.n_actions)
        assert len(model.charged) == system.n_actions

    def test_overhead_delays_completion(self, setup):
        system, _, td = setup
        scenario = system.draw_scenario(np.random.default_rng(2))
        free = run_cycle(system, NumericQualityManager(td), scenario=scenario)
        charged = run_cycle(
            system,
            NumericQualityManager(td),
            scenario=scenario,
            overhead_model=FixedCharge(0.5),
        )
        assert charged.makespan > free.makespan

    def test_scenario_length_checked(self, setup):
        system, _, td = setup
        other = make_synthetic_system(n_actions=7, n_levels=3, seed=8)
        scenario = other.draw_scenario(np.random.default_rng(0))
        with pytest.raises(ValueError):
            run_cycle(system, NumericQualityManager(td), scenario=scenario)

    def test_deterministic_given_scenario(self, setup):
        system, _, td = setup
        scenario = system.draw_scenario(np.random.default_rng(10))
        a = run_cycle(system, NumericQualityManager(td), scenario=scenario)
        b = run_cycle(system, NumericQualityManager(td), scenario=scenario)
        assert np.array_equal(a.qualities, b.qualities)
        assert np.allclose(a.completion_times, b.completion_times)


class TestRunFixedQuality:
    def test_all_actions_at_requested_level(self, setup):
        system, _, _ = setup
        outcome = run_fixed_quality(system, 2, rng=np.random.default_rng(0))
        assert np.all(outcome.qualities == 2)

    def test_no_manager_invocations(self, setup):
        system, _, _ = setup
        outcome = run_fixed_quality(system, 1, rng=np.random.default_rng(0))
        assert outcome.manager_invocations.shape == (0,)
        assert outcome.total_overhead == 0.0

    def test_invalid_level_rejected(self, setup):
        system, _, _ = setup
        with pytest.raises(ValueError):
            run_fixed_quality(system, 99, rng=np.random.default_rng(0))

    def test_durations_match_scenario_row(self, setup):
        system, _, _ = setup
        scenario = system.draw_scenario(np.random.default_rng(5))
        outcome = run_fixed_quality(system, 0, scenario=scenario)
        assert np.allclose(outcome.durations, scenario.matrix[0])


class TestControlledSystem:
    def test_run_cycles_count(self, setup):
        system, deadlines, td = setup
        controlled = ControlledSystem(system, deadlines, NumericQualityManager(td))
        outcomes = controlled.run_cycles(4, rng=np.random.default_rng(0))
        assert len(outcomes) == 4

    def test_run_cycles_with_scenarios(self, setup):
        system, deadlines, td = setup
        rng = np.random.default_rng(9)
        scenarios = [system.draw_scenario(rng) for _ in range(3)]
        controlled = ControlledSystem(system, deadlines, NumericQualityManager(td))
        outcomes = controlled.run_cycles(3, scenarios=scenarios)
        for outcome, scenario in zip(outcomes, scenarios):
            assert np.allclose(
                outcome.durations,
                scenario.times_for(outcome.qualities - system.qualities.minimum),
            )

    def test_scenario_count_mismatch_rejected(self, setup):
        system, deadlines, td = setup
        controlled = ControlledSystem(system, deadlines, NumericQualityManager(td))
        with pytest.raises(ValueError):
            controlled.run_cycles(2, scenarios=[system.draw_scenario(np.random.default_rng(0))])

    def test_invalid_cycle_count(self, setup):
        system, deadlines, td = setup
        controlled = ControlledSystem(system, deadlines, NumericQualityManager(td))
        with pytest.raises(ValueError):
            controlled.run_cycles(0)

    def test_properties(self, setup):
        system, deadlines, td = setup
        manager = NumericQualityManager(td)
        controlled = ControlledSystem(system, deadlines, manager)
        assert controlled.system is system
        assert controlled.deadlines is deadlines
        assert controlled.manager is manager


class TestRelaxationExecution:
    def test_relaxed_cycle_covers_all_actions(self, setup):
        system, deadlines, _ = setup
        controllers = QualityManagerCompiler(relaxation_steps=(1, 3, 6)).compile(
            system, deadlines
        )
        outcome = run_cycle(system, controllers.relaxation, rng=np.random.default_rng(0))
        assert outcome.qualities.shape == (system.n_actions,)
        # invocation states strictly increasing and starting at 0
        assert outcome.manager_invocations[0] == 0
        assert np.all(np.diff(outcome.manager_invocations) >= 1)
