"""Shared helpers for the test suite (importable as ``helpers``)."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(_SRC))

from repro.core import (  # noqa: E402
    DeadlineFunction,
    ParameterizedSystem,
    QualitySet,
)

__all__ = ["make_synthetic_system", "make_deadline"]


def make_synthetic_system(
    n_actions: int = 40,
    n_levels: int = 5,
    *,
    seed: int = 0,
    wc_ratio: float = 2.0,
    variability: tuple[float, float] = (0.6, 1.8),
) -> ParameterizedSystem:
    """A small random parameterized system used across the test suite.

    Average times grow linearly with the quality level; worst-case times are
    ``wc_ratio`` times the average; actual times are the average scaled by a
    per-action factor drawn uniformly from ``variability`` (then clipped to
    the worst case by the model).
    """
    rng = np.random.default_rng(seed)
    qualities = QualitySet.of_size(n_levels)
    base = rng.uniform(0.5, 2.0, size=n_actions)
    factors = np.linspace(1.0, 3.0, n_levels)[:, None]
    average = base[None, :] * factors
    worst = average * wc_ratio

    def sampler(generator: np.random.Generator) -> np.ndarray:
        noise = generator.uniform(variability[0], variability[1], size=(1, n_actions))
        return average * noise

    return ParameterizedSystem.from_tables(
        [f"a{i}" for i in range(1, n_actions + 1)],
        qualities,
        worst,
        average,
        scenario_sampler=sampler,
    )


def make_deadline(system: ParameterizedSystem, slack: float = 1.2) -> DeadlineFunction:
    """A single global deadline with the given slack over the all-min worst case."""
    qmin = system.qualities.minimum
    budget = system.worst_case.total(1, system.n_actions, qmin) * slack
    return DeadlineFunction.single(system.n_actions, float(budget))
