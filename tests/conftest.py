"""Test configuration.

Ensures the ``src`` layout and the ``tests`` directory are importable even
when the package has not been installed (useful on offline machines where
``pip install -e .`` cannot resolve build dependencies), and provides the
fixtures shared across the test suite.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for path in (str(_SRC), str(_HERE)):
    if path not in sys.path:  # pragma: no cover - environment dependent
        sys.path.insert(0, path)

from helpers import make_deadline, make_synthetic_system  # noqa: E402

from repro.core import DeadlineFunction, ParameterizedSystem  # noqa: E402


@pytest.fixture
def small_system() -> ParameterizedSystem:
    """A 40-action, 5-level synthetic system."""
    return make_synthetic_system()


@pytest.fixture
def small_deadline(small_system: ParameterizedSystem) -> DeadlineFunction:
    """A feasible single global deadline for ``small_system``."""
    return make_deadline(small_system)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)
