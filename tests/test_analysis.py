"""Tests for metrics, diagrams rendering, reports and sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    QualityMetrics,
    compare_outcomes,
    compute_metrics,
    format_table,
    memory_report,
    metrics_report,
    overhead_report,
    quality_series_report,
    render_ascii_plot,
    render_speed_diagram,
    run_sweep,
    series_to_csv,
    smoothness_index,
    sparkline,
    sweep_table,
)
from repro.core import QualityManagerCompiler, SpeedDiagram, run_cycle
from repro.platform import PlatformExecutor, ipod_video

from helpers import make_deadline, make_synthetic_system


@pytest.fixture(scope="module")
def setup():
    # large enough that the numeric manager's per-call computation dominates
    # the fixed invocation cost, with moderate worst-case pessimism so control
    # relaxation actually fires (the regime the paper's encoder is in)
    system = make_synthetic_system(n_actions=150, n_levels=6, seed=41, wc_ratio=1.4)
    deadlines = make_deadline(system, slack=1.3)
    controllers = QualityManagerCompiler(relaxation_steps=(1, 2, 4, 8, 16)).compile(
        system, deadlines
    )
    executor = PlatformExecutor(ipod_video())
    results = executor.compare(system, deadlines, controllers.managers(), n_cycles=3, seed=0)
    return system, deadlines, controllers, results


class TestSmoothness:
    def test_constant_series_is_perfectly_smooth(self):
        assert smoothness_index(np.array([3, 3, 3, 3])) == 0.0

    def test_alternating_series(self):
        assert smoothness_index(np.array([0, 1, 0, 1])) == pytest.approx(1.0)

    def test_single_action(self):
        assert smoothness_index(np.array([2])) == 0.0


class TestComputeMetrics:
    def test_basic_aggregation(self, setup):
        _, deadlines, _, results = setup
        metrics = compute_metrics(results["numeric"].outcomes, deadlines)
        assert metrics.n_cycles == 3
        assert metrics.deadline_misses == 0
        assert metrics.is_safe
        assert 0.0 < metrics.utilisation <= 1.0
        assert metrics.overhead_fraction > 0.0
        assert metrics.manager_calls == 3 * metrics.n_actions

    def test_as_row_keys(self, setup):
        _, deadlines, _, results = setup
        row = compute_metrics(results["region"].outcomes, deadlines).as_row()
        assert {"mean_quality", "smoothness", "utilisation", "overhead_pct"} <= set(row)

    def test_empty_outcomes_rejected(self, setup):
        _, deadlines, _, _ = setup
        with pytest.raises(ValueError):
            compute_metrics([], deadlines)

    def test_compare_outcomes(self, setup):
        _, deadlines, _, results = setup
        comparison = compare_outcomes(
            {name: result.outcomes for name, result in results.items()}, deadlines
        )
        assert set(comparison) == set(results)
        assert all(isinstance(m, QualityMetrics) for m in comparison.values())

    def test_overhead_ordering_visible_in_metrics(self, setup):
        _, deadlines, _, results = setup
        comparison = compare_outcomes(
            {name: result.outcomes for name, result in results.items()}, deadlines
        )
        assert (
            comparison["numeric"].overhead_fraction
            > comparison["region"].overhead_fraction
            >= comparison["relaxation"].overhead_fraction
        )


class TestRendering:
    def test_sparkline_length(self):
        assert len(sparkline([1, 2, 3, 4])) == 4
        assert sparkline([]) == ""
        assert len(sparkline(np.arange(100), width=20)) == 20

    def test_sparkline_constant_series(self):
        assert set(sparkline([5, 5, 5])) == {"▁"}

    def test_ascii_plot_contains_glyphs_and_legend(self):
        x = np.linspace(0, 1, 20)
        plot = render_ascii_plot({"alpha": (x, x), "beta": (x, 1 - x)}, width=40, height=10)
        assert "a=alpha" in plot
        assert "b=beta" in plot
        assert "a" in plot.splitlines()[3]

    def test_ascii_plot_empty(self):
        assert render_ascii_plot({}) == "(no data)"

    def test_render_speed_diagram(self, setup):
        system, deadlines, controllers, _ = setup
        diagram = SpeedDiagram(system, deadlines, td_table=controllers.td_table)
        outcome = run_cycle(system, controllers.region, rng=np.random.default_rng(0))
        picture = render_speed_diagram(diagram, outcome)
        assert "virtual time" in picture
        assert "trajectory" in picture

    def test_series_to_csv(self):
        csv = series_to_csv({"x": np.array([1.0, 2.0]), "y": np.array([3.0, 4.0])})
        lines = csv.splitlines()
        assert lines[0] == "x,y"
        assert lines[1].startswith("1")
        assert len(lines) == 3

    def test_series_to_csv_empty(self):
        assert series_to_csv({}) == ""


class TestReports:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["long-name", 22]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_memory_report_contains_formulas(self, setup):
        _, _, controllers, _ = setup
        report = memory_report(controllers.report)
        assert "quality regions" in report
        assert "control relaxation" in report
        assert str(controllers.report.region_integers) in report

    def test_overhead_report(self, setup):
        _, deadlines, _, results = setup
        comparison = compare_outcomes(
            {name: result.outcomes for name, result in results.items()}, deadlines
        )
        report = overhead_report(comparison)
        assert "numeric" in report and "relaxation" in report
        assert "%" in report

    def test_metrics_report(self, setup):
        _, deadlines, _, results = setup
        comparison = compare_outcomes(
            {name: result.outcomes for name, result in results.items()}, deadlines
        )
        report = metrics_report(comparison)
        assert "smoothness" in report

    def test_quality_series_report(self):
        report = quality_series_report(
            {"numeric": np.array([3.0, 3.5]), "region": np.array([3.6, 3.7])}
        )
        assert "Figure 7" in report
        assert "3.500" in report


class TestSweep:
    def test_run_sweep_collects_records(self):
        points = run_sweep("x", [1, 2, 3], lambda value: {"square": value * value})
        assert len(points) == 3
        assert points[1].flat() == {"x": 2, "square": 4}

    def test_sweep_table(self):
        points = run_sweep("x", [1, 2], lambda value: {"y": value + 1})
        headers, rows = sweep_table(points)
        assert headers == ["x", "y"]
        assert rows == [[1, 2], [2, 3]]

    def test_sweep_table_empty(self):
        assert sweep_table([]) == ([], [])
