"""Tests for the virtual platform: clock, overhead models, machines."""

from __future__ import annotations

import pytest

from repro.core import ManagerWork
from repro.platform import (
    DESKTOP_LIKE,
    FAST_EMBEDDED,
    IPOD_LIKE,
    LinearOverheadModel,
    Machine,
    NullOverheadModel,
    OverheadParameters,
    VirtualClock,
    desktop,
    fast_embedded,
    ipod_video,
)

from helpers import make_synthetic_system


class TestVirtualClock:
    def test_starts_at_zero(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        assert clock.read() == 0.0

    def test_advance_and_read(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.25)
        assert clock.now == pytest.approx(1.75)
        assert clock.read() == pytest.approx(1.75)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)

    def test_granularity_quantises_reads(self):
        clock = VirtualClock(granularity=0.1)
        clock.advance(0.27)
        assert clock.read() == pytest.approx(0.2)
        assert clock.now == pytest.approx(0.27)

    def test_reset(self):
        clock = VirtualClock()
        clock.advance(3.0)
        clock.read()
        clock.reset()
        assert clock.now == 0.0
        assert clock.reads == 0

    def test_read_counter(self):
        clock = VirtualClock()
        for _ in range(5):
            clock.read()
        assert clock.reads == 5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            VirtualClock(granularity=-1.0)
        with pytest.raises(ValueError):
            VirtualClock(read_overhead=-1.0)


class TestOverheadParameters:
    def test_scaled(self):
        params = OverheadParameters(per_call=1.0, per_arithmetic_op=0.1, per_comparison=0.2, per_table_lookup=0.3)
        scaled = params.scaled(2.0)
        assert scaled.per_call == 2.0
        assert scaled.per_arithmetic_op == pytest.approx(0.2)
        assert scaled.per_table_lookup == pytest.approx(0.6)

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            IPOD_LIKE.scaled(-1.0)

    def test_presets_ordering(self):
        assert IPOD_LIKE.per_call > FAST_EMBEDDED.per_call > DESKTOP_LIKE.per_call


class TestLinearOverheadModel:
    def test_cost_formula(self):
        params = OverheadParameters(per_call=1.0, per_arithmetic_op=0.01, per_comparison=0.1, per_table_lookup=0.2)
        model = LinearOverheadModel(params)
        work = ManagerWork(kind="x", arithmetic_ops=10, comparisons=2, table_lookups=3)
        assert model.cost_of(work) == pytest.approx(1.0 + 0.1 + 0.2 + 0.6)

    def test_charge_accumulates(self):
        model = LinearOverheadModel(OverheadParameters(per_call=0.5))
        model.charge(ManagerWork(kind="a"))
        model.charge(ManagerWork(kind="b"))
        model.charge(ManagerWork(kind="a"))
        assert model.calls == 3
        assert model.total_seconds == pytest.approx(1.5)
        per_kind = model.per_kind()
        assert per_kind["a"]["calls"] == 2
        assert per_kind["b"]["seconds"] == pytest.approx(0.5)

    def test_reset(self):
        model = LinearOverheadModel(OverheadParameters(per_call=0.5))
        model.charge(ManagerWork(kind="a"))
        model.reset()
        assert model.calls == 0
        assert model.total_seconds == 0.0

    def test_numeric_work_costs_more_than_lookup_work(self):
        model = LinearOverheadModel(IPOD_LIKE)
        numeric_work = ManagerWork(kind="numeric", arithmetic_ops=1000 * 7 * 4, comparisons=7)
        region_work = ManagerWork(kind="region", comparisons=7, table_lookups=7)
        assert model.cost_of(numeric_work) > model.cost_of(region_work)


class TestNullOverheadModel:
    def test_charges_nothing(self):
        model = NullOverheadModel()
        assert model.charge(ManagerWork(kind="x")) == 0.0
        assert model.cost_of(ManagerWork(kind="x")) == 0.0
        assert model.calls == 1
        model.reset()
        assert model.calls == 0


class TestMachine:
    def test_presets(self):
        assert ipod_video().speed_factor == 1.0
        assert fast_embedded().speed_factor < 1.0
        assert desktop().speed_factor < fast_embedded().speed_factor

    def test_invalid_speed_factor(self):
        with pytest.raises(ValueError):
            Machine(name="bad", speed_factor=0.0)

    def test_deploy_rescales_system(self):
        system = make_synthetic_system(n_actions=5)
        machine = Machine(name="slow", speed_factor=2.0)
        deployed = machine.deploy(system)
        assert deployed.average.total(1, 5, 0) == pytest.approx(
            2.0 * system.average.total(1, 5, 0)
        )

    def test_deploy_identity_when_factor_one(self):
        system = make_synthetic_system(n_actions=5)
        assert ipod_video().deploy(system) is system

    def test_scaled_machine(self):
        machine = ipod_video().scaled(10.0)
        assert machine.speed_factor == pytest.approx(10.0)
        assert machine.overhead.per_call == pytest.approx(IPOD_LIKE.per_call * 10.0)

    def test_fresh_overhead_model_and_clock(self):
        machine = ipod_video()
        assert machine.overhead_model() is not machine.overhead_model()
        clock = machine.clock()
        assert clock.granularity == machine.clock_granularity
