"""Tests for deadline functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DeadlineFunction, QualityManagementError


class TestConstruction:
    def test_single(self):
        deadlines = DeadlineFunction.single(10, 5.0)
        assert len(deadlines) == 1
        assert deadlines.deadline_of(10) == 5.0
        assert deadlines.final_deadline == 5.0
        assert deadlines.last_constrained_index == 10

    def test_empty_rejected(self):
        with pytest.raises(QualityManagementError):
            DeadlineFunction({})

    def test_invalid_index_rejected(self):
        with pytest.raises(QualityManagementError):
            DeadlineFunction({0: 1.0})

    def test_negative_deadline_rejected(self):
        with pytest.raises(QualityManagementError):
            DeadlineFunction({1: -1.0})

    def test_non_finite_deadline_rejected(self):
        with pytest.raises(QualityManagementError):
            DeadlineFunction({1: np.inf})

    def test_from_pairs(self):
        deadlines = DeadlineFunction.from_pairs([(5, 2.0), (10, 4.0)])
        assert len(deadlines) == 2
        assert deadlines.deadline_of(5) == 2.0

    def test_entries_sorted_by_index(self):
        deadlines = DeadlineFunction({10: 4.0, 5: 2.0})
        assert list(deadlines.indices) == [5, 10]
        assert list(deadlines.values) == [2.0, 4.0]


class TestPeriodic:
    def test_periodic_every_k_actions(self):
        deadlines = DeadlineFunction.periodic(12, 4, 1.0)
        assert dict(deadlines) == {4: 1.0, 8: 2.0, 12: 3.0}

    def test_periodic_covers_last_action(self):
        deadlines = DeadlineFunction.periodic(10, 4, 1.0)
        assert 10 in deadlines
        assert deadlines.covers(10)

    def test_periodic_with_offset(self):
        deadlines = DeadlineFunction.periodic(4, 2, 1.0, offset=0.5)
        assert deadlines.deadline_of(2) == pytest.approx(1.5)

    def test_periodic_validation(self):
        with pytest.raises(QualityManagementError):
            DeadlineFunction.periodic(10, 0, 1.0)
        with pytest.raises(QualityManagementError):
            DeadlineFunction.periodic(10, 2, 0.0)


class TestQueries:
    def test_contains(self):
        deadlines = DeadlineFunction({3: 1.0, 7: 2.0})
        assert 3 in deadlines
        assert 4 not in deadlines

    def test_get_with_default(self):
        deadlines = DeadlineFunction({3: 1.0})
        assert deadlines.get(3) == 1.0
        assert deadlines.get(4) is None
        assert deadlines.get(4, 9.0) == 9.0

    def test_remaining(self):
        deadlines = DeadlineFunction({3: 1.0, 7: 2.0, 10: 3.0})
        assert deadlines.remaining(0) == [(3, 1.0), (7, 2.0), (10, 3.0)]
        assert deadlines.remaining(3) == [(7, 2.0), (10, 3.0)]
        assert deadlines.remaining(9) == [(10, 3.0)]
        assert deadlines.remaining(10) == []

    def test_covers(self):
        deadlines = DeadlineFunction({5: 1.0})
        assert deadlines.covers(5)
        assert not deadlines.covers(6)

    def test_equality(self):
        assert DeadlineFunction({1: 1.0}) == DeadlineFunction({1: 1.0})
        assert DeadlineFunction({1: 1.0}) != DeadlineFunction({1: 2.0})


class TestTransformations:
    def test_scaled(self):
        deadlines = DeadlineFunction({2: 1.0, 4: 2.0}).scaled(3.0)
        assert deadlines.deadline_of(2) == pytest.approx(3.0)
        assert deadlines.deadline_of(4) == pytest.approx(6.0)

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(QualityManagementError):
            DeadlineFunction({1: 1.0}).scaled(0.0)

    def test_shifted(self):
        deadlines = DeadlineFunction({2: 1.0}).shifted(0.5)
        assert deadlines.deadline_of(2) == pytest.approx(1.5)
