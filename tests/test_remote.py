"""Tests for :mod:`repro.runtime.remote`: the spool-based distributed sweep.

The gated guarantees of the distributed transport:

* fan-out across **>= 2 real worker subprocesses** sharing one spool is
  bit-identical to the serial baseline for fixed seeds;
* a **killed worker** costs one lease timeout, not the sweep — its claimed
  unit is requeued and completed by a surviving worker;
* per-unit failures and exhausted leases surface exactly like the process
  pool (:class:`~repro.runtime.pool.UnitFailure`), never a hung sweep.
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import Session, SessionError
from repro.runtime import (
    RemoteSweepExecutor,
    SpoolLayout,
    SpoolWorker,
    SweepExecutionError,
)
from repro.runtime.plan import plan_compare_redraw
from repro.runtime.remote import worker_main

_SRC = str(Path(__file__).resolve().parent.parent / "src")

_GRID = [
    {"label": f"u{i}", "manager": manager, "seed": i, "cycles": 2}
    for i, manager in enumerate(
        ["relaxation", "region", "constant:level=3", "numeric", "skip", "relaxation"]
    )
]


def _session(tmp_path: Path) -> Session:
    return Session().system("small").machine("ipod").seed(0).artifacts(tmp_path / "cache")


def _remote_session(tmp_path: Path, **overrides) -> Session:
    options = dict(lease_timeout=15.0, poll_interval=0.02, timeout=120.0)
    options.update(overrides)
    return _session(tmp_path).remote(tmp_path / "spool", **options)


def _outcomes_equal(left, right) -> bool:
    fields = (
        "qualities",
        "durations",
        "completion_times",
        "manager_invocations",
        "manager_overheads",
    )
    return len(left) == len(right) and all(
        np.array_equal(getattr(a, name), getattr(b, name))
        for a, b in zip(left, right)
        for name in fields
    )


def _batches_identical(first, second) -> None:
    assert set(first.runs) == set(second.runs)
    for label in first.runs:
        a, b = first[label], second[label]
        assert a.manager_key == b.manager_key
        assert a.manager_name == b.manager_name
        assert a.seed == b.seed
        assert _outcomes_equal(a.outcomes, b.outcomes), label


class _InlineWorker:
    """A spool worker draining in a background thread of this process."""

    def __init__(self, tmp_path: Path, *, worker_id: str | None = None) -> None:
        self._worker = SpoolWorker(
            tmp_path / "spool",
            cache_dir=tmp_path / "worker-cache",
            poll_interval=0.02,
            heartbeat=0.05,
            worker_id=worker_id,
        )
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._drain, daemon=True)

    def _drain(self) -> None:
        while not self._stop.is_set():
            claim = self._worker.claim_one()
            if claim is None:
                self._stop.wait(0.02)
                continue
            self._worker._execute_claim(claim)

    def __enter__(self) -> SpoolWorker:
        self._thread.start()
        return self._worker

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join(timeout=10.0)


# --------------------------------------------------------------------------- #
# spool layout
# --------------------------------------------------------------------------- #


def test_unit_name_round_trip():
    name = SpoolLayout.unit_name("abc123", 42, attempt=3)
    assert SpoolLayout.parse_unit_name(name) == ("abc123", 42, 3)
    # claimed files append the worker id; parsing ignores it
    assert SpoolLayout.parse_unit_name(name + ".host-77") == ("abc123", 42, 3)


def test_parse_unit_name_rejects_foreign_files():
    with pytest.raises(ValueError):
        SpoolLayout.parse_unit_name("not-a.unit-file")


def test_ensure_creates_the_directory_contract(tmp_path):
    layout = SpoolLayout(tmp_path / "spool").ensure()
    for directory in (layout.plans, layout.pending, layout.claimed, layout.done, layout.artifacts):
        assert directory.is_dir()


def test_executor_validates_parameters(tmp_path):
    with pytest.raises(ValueError, match="lease_timeout"):
        RemoteSweepExecutor(tmp_path, lease_timeout=0.0)
    with pytest.raises(ValueError, match="poll_interval"):
        RemoteSweepExecutor(tmp_path, poll_interval=0.0)
    with pytest.raises(ValueError, match="max_requeues"):
        RemoteSweepExecutor(tmp_path, max_requeues=-1)
    with pytest.raises(ValueError, match="local_workers"):
        RemoteSweepExecutor(tmp_path, local_workers=-1)


# --------------------------------------------------------------------------- #
# submit: tiny units, shared payload, artifact push
# --------------------------------------------------------------------------- #


def _compare_plan(tmp_path: Path, cycles: int = 2):
    session = _session(tmp_path)
    session._prepare_parallel_cache(session.artifact_cache, [])
    session.compile()  # warm + persist the artifact
    payload = session._execution_payload(session.artifact_cache)
    from repro.api.registry import ManagerSpec

    return plan_compare_redraw(
        payload, [ManagerSpec("region"), ManagerSpec("relaxation")], cycles, seed=0
    )


def test_submit_spools_payload_units_and_artifacts(tmp_path):
    plan = _compare_plan(tmp_path)
    executor = RemoteSweepExecutor(tmp_path / "spool")
    plan_id = executor.submit(plan)
    layout = executor.spool
    assert layout.plan_path(plan_id).is_file()
    pending = sorted(path.name for path in layout.pending.iterdir())
    assert pending == [
        SpoolLayout.unit_name(plan_id, 0, 0),
        SpoolLayout.unit_name(plan_id, 1, 0),
    ]
    # re-draw units are tiny: no scenario tensor crosses the spool
    for path in layout.pending.iterdir():
        assert path.stat().st_size < 2048
    # the compiled artifact was pushed into the shared cache
    assert len(layout.artifact_cache()) == 1
    meta = pickle.loads(layout.plan_path(plan_id).read_bytes())
    assert meta["n_units"] == 2
    assert meta["payload"].cache_dir is None  # parent paths never cross hosts
    assert len(meta["artifact_keys"]) == 1


def test_stream_cleans_the_spool_afterwards(tmp_path):
    plan = _compare_plan(tmp_path)
    executor = RemoteSweepExecutor(
        tmp_path / "spool", poll_interval=0.02, timeout=60.0
    )
    with _InlineWorker(tmp_path):
        outcome = executor.run(plan)
    assert outcome.ok and set(outcome.outcomes) == {0, 1}
    layout = executor.spool
    assert not list(layout.plans.iterdir())
    assert not list(layout.pending.iterdir())
    assert not list(layout.claimed.iterdir())
    assert not list(layout.done.iterdir())


def test_worker_hydrates_from_synced_artifacts_not_recompile(tmp_path):
    plan = _compare_plan(tmp_path)
    executor = RemoteSweepExecutor(tmp_path / "spool", poll_interval=0.02, timeout=60.0)
    with _InlineWorker(tmp_path) as worker:
        outcome = executor.run(plan)
    assert outcome.ok
    # the worker's local cache received the artifact copy
    from repro.runtime import CompiledArtifactCache

    assert len(CompiledArtifactCache(tmp_path / "worker-cache")) == 1


def test_unpicklable_payload_is_a_clear_error(tmp_path):
    from helpers import make_synthetic_system

    system = make_synthetic_system()  # closure sampler: not picklable
    session = (
        Session()
        .system(system)
        .deadlines(period=1e9)
        .artifacts(tmp_path / "cache")
        .remote(tmp_path / "spool", local_workers=0, timeout=5.0)
    )
    with pytest.raises(SweepExecutionError, match="not picklable"):
        session.run_many([{"seed": 1, "cycles": 1}])


# --------------------------------------------------------------------------- #
# bit-identity: inline and real subprocess workers
# --------------------------------------------------------------------------- #


def test_run_many_remote_matches_serial_inline(tmp_path):
    serial = _session(tmp_path).run_many(_GRID)
    session = _remote_session(tmp_path)
    with _InlineWorker(tmp_path):
        remote = session.run_many(_GRID)
    _batches_identical(serial, remote)


def test_compare_remote_redraw_matches_serial_inline(tmp_path):
    serial = _session(tmp_path).compare(cycles=4)
    session = _remote_session(tmp_path)
    with _InlineWorker(tmp_path):
        remote = session.compare(cycles=4)
    _batches_identical(serial, remote)
    # the default remote transport is re-draw: nothing big hit the spool
    assert session._remote is not None


def test_compare_remote_value_transport_matches_serial(tmp_path):
    serial = _session(tmp_path).compare(cycles=4)
    session = _remote_session(tmp_path, scenario_transport="value")
    with _InlineWorker(tmp_path):
        remote = session.compare(cycles=4)
    _batches_identical(serial, remote)


def test_remote_sweep_two_subprocess_workers_bit_identical(tmp_path):
    """The acceptance gate: >= 2 real worker processes on one shared spool."""
    serial = _session(tmp_path).run_many(_GRID)
    remote = _remote_session(tmp_path, local_workers=2).run_many(_GRID)
    _batches_identical(serial, remote)


def test_local_workers_use_the_sessions_cache_not_the_global_one(tmp_path, monkeypatch):
    """Spawned local workers inherit the session's artifact cache — an
    isolated .artifacts(dir) must never leak into the user's global cache."""
    sentinel = tmp_path / "global-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(sentinel))
    serial = _session(tmp_path).run_many(_GRID[:2])
    remote = _remote_session(tmp_path, local_workers=2).run_many(_GRID[:2])
    _batches_identical(serial, remote)
    assert not sentinel.exists() or not any(sentinel.rglob("*.npz"))
    from repro.runtime import CompiledArtifactCache

    assert len(CompiledArtifactCache(tmp_path / "cache")) == 1


def test_remote_compare_two_subprocess_workers_bit_identical(tmp_path):
    serial = _session(tmp_path).compare(cycles=3)
    remote = _remote_session(tmp_path, local_workers=2).compare(cycles=3)
    _batches_identical(serial, remote)


def test_stateful_sampler_stream_ends_where_serial_does(tmp_path):
    """After a remote sweep the parent's sampler stands at the serial position."""
    serial_session = _session(tmp_path)
    serial = serial_session.run_many(_GRID)
    serial_cursor = serial_session.resolved_system().timing.scenario_sampler.cursor

    remote_session = _remote_session(tmp_path)
    with _InlineWorker(tmp_path):
        remote_session.run_many(_GRID)
    remote_cursor = remote_session.resolved_system().timing.scenario_sampler.cursor
    assert remote_cursor == serial_cursor

    # and the *next* run therefore matches serially too
    follow_serial = serial_session.run_many([{"seed": 9, "cycles": 2}])
    with _InlineWorker(tmp_path):
        follow_remote = remote_session.run_many([{"seed": 9, "cycles": 2}])
    _batches_identical(follow_serial, follow_remote)


# --------------------------------------------------------------------------- #
# streaming fan-in
# --------------------------------------------------------------------------- #


def test_stream_yields_incrementally_and_matches_serial(tmp_path):
    serial = _session(tmp_path).run_many(_GRID)
    session = _remote_session(tmp_path)
    seen: list[str] = []
    with _InlineWorker(tmp_path):
        stream = session.run_many(_GRID, stream=True)
        collected = {}
        for label, run in stream:
            seen.append(label)
            collected[label] = run
    assert sorted(seen) == sorted(serial.runs)
    for label, run in collected.items():
        assert _outcomes_equal(run.outcomes, serial[label].outcomes), label


def test_stream_early_break_restores_the_sampler_and_spool(tmp_path):
    """Abandoning a stream mid-drain must not diverge the session's scenario
    stream from the serial position, and must withdraw the plan."""
    serial_session = _session(tmp_path)
    serial_session.run_many(_GRID)
    serial_cursor = serial_session.resolved_system().timing.scenario_sampler.cursor

    remote_session = _remote_session(tmp_path)
    with _InlineWorker(tmp_path):
        stream = remote_session.run_many(_GRID, stream=True)
        next(stream)  # consume one result ...
        stream.close()  # ... then abandon the rest
    remote_cursor = remote_session.resolved_system().timing.scenario_sampler.cursor
    assert remote_cursor == serial_cursor
    layout = SpoolLayout(tmp_path / "spool")
    assert not list(layout.plans.iterdir())
    assert not list(layout.pending.iterdir())

    # the next sweep therefore still matches serial bit-for-bit
    follow_serial = serial_session.run_many([{"seed": 5, "cycles": 2}])
    with _InlineWorker(tmp_path):
        follow_remote = remote_session.run_many([{"seed": 5, "cycles": 2}])
    _batches_identical(follow_serial, follow_remote)


def test_no_result_written_after_plan_withdrawn(tmp_path):
    """A worker finishing after the parent's cleanup leaves no orphan in done/."""
    plan = _compare_plan(tmp_path)
    executor = RemoteSweepExecutor(tmp_path / "spool")
    plan_id = executor.submit(plan)
    worker = SpoolWorker(tmp_path / "spool", cache_dir=tmp_path / "worker-cache")
    first = worker.claim_one()
    assert worker._execute_claim(first) is True  # caches the plan runtime
    second = worker.claim_one()
    # claim order is randomized; the withheld unit is whichever came second
    _, second_index, _ = SpoolLayout.parse_unit_name(second.name)
    # the parent withdraws the plan while that unit is "executing"
    executor.spool.plan_path(plan_id).unlink()
    assert worker._execute_claim(second) is False
    assert not executor.spool.result_path(plan_id, second_index).is_file()
    assert plan_id not in worker._runtimes  # cached runtime evicted too
    executor._cleanup(plan_id)


def test_stream_compare_labels_are_manager_names(tmp_path):
    session = _remote_session(tmp_path)
    with _InlineWorker(tmp_path):
        labels = {label for label, _ in session.compare(cycles=2, stream=True)}
    serial = _session(tmp_path).compare(cycles=2)
    assert labels == set(serial.runs)


def test_stream_keeps_iterator_shape_on_edge_inputs(tmp_path):
    """An empty spec list skips the spool but must still yield, not return
    a BatchResult (the documented (label, RunResult) contract)."""
    session = _remote_session(tmp_path)
    result = session.run_many([], stream=True)
    assert not isinstance(result, type(_session(tmp_path).run_many([])))
    assert list(result) == []


def test_remote_builder_validates_eagerly(tmp_path):
    with pytest.raises(SessionError, match="lease_timeout"):
        Session().remote(tmp_path, lease_timeout=0)
    with pytest.raises(SessionError, match="poll_interval"):
        Session().remote(tmp_path, poll_interval=-1.0)
    with pytest.raises(SessionError, match="max_requeues"):
        Session().remote(tmp_path, max_requeues=-1)
    with pytest.raises(SessionError, match="timeout"):
        Session().remote(tmp_path, timeout=0)
    with pytest.raises(SessionError, match="spool"):
        Session().remote()
    with pytest.raises(SessionError, match="transport"):
        Session().remote(tmp_path, scenario_transport="telegraph")


def test_worker_evicts_withdrawn_plan_runtimes(tmp_path):
    plan = _compare_plan(tmp_path)
    executor = RemoteSweepExecutor(tmp_path / "spool", poll_interval=0.02, timeout=60.0)
    worker = SpoolWorker(
        tmp_path / "spool", cache_dir=tmp_path / "worker-cache", poll_interval=0.02
    )
    plan_id = executor.submit(plan)
    while (claim := worker.claim_one()) is not None:
        worker._execute_claim(claim)
    assert plan_id in worker._runtimes  # cached while the plan is live
    worker._evict_stale_plans()
    assert plan_id in worker._runtimes  # plan file still present: kept
    executor._cleanup(plan_id)
    worker._evict_stale_plans()
    assert plan_id not in worker._runtimes and plan_id not in worker._plans


def test_stream_requires_the_remote_transport(tmp_path):
    with pytest.raises(SessionError, match="stream=True"):
        _session(tmp_path).run_many(_GRID, stream=True)
    with pytest.raises(SessionError, match="stream=True"):
        _session(tmp_path).parallel(2).compare(cycles=2, stream=True)


def test_stream_raises_collected_failures_after_draining(tmp_path):
    grid = [
        {"label": "ok", "manager": "relaxation", "seed": 1, "cycles": 2},
        {"label": "bad", "manager": "constant:level=99", "seed": 2, "cycles": 2},
    ]
    session = _remote_session(tmp_path)
    with _InlineWorker(tmp_path):
        stream = session.run_many(grid, stream=True)
        with pytest.raises(SweepExecutionError, match="bad"):
            for _label, _run in stream:
                pass


def test_failed_sweep_still_advances_the_sampler_to_the_serial_position(tmp_path):
    """Catching a SweepExecutionError and continuing must keep the session on
    the serial scenario stream (the whole plan's draws were consumed)."""
    grid = [
        {"label": "ok", "manager": "relaxation", "seed": 1, "cycles": 2},
        {"label": "bad", "manager": "constant:level=99", "seed": 2, "cycles": 3},
    ]
    session = _remote_session(tmp_path)
    before = session.resolved_system().timing.scenario_sampler.cursor
    with _InlineWorker(tmp_path):
        with pytest.raises(SweepExecutionError):
            session.run_many(grid)
    after = session.resolved_system().timing.scenario_sampler.cursor
    assert after == before + 5  # 2 + 3 cycles of draws, failures included


def test_run_surfaces_unit_failures_like_the_pool(tmp_path):
    grid = [
        {"label": "ok", "manager": "relaxation", "seed": 1, "cycles": 2},
        {"label": "bad", "manager": "constant:level=99", "seed": 2, "cycles": 2},
    ]
    session = _remote_session(tmp_path)
    with _InlineWorker(tmp_path):
        with pytest.raises(SweepExecutionError) as excinfo:
            session.run_many(grid)
    (failure,) = excinfo.value.failures
    assert failure.label == "bad"
    assert "level" in failure.error


# --------------------------------------------------------------------------- #
# leases: killed workers, requeue, exhaustion
# --------------------------------------------------------------------------- #


def _age_file(path: Path, seconds: float) -> None:
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


def test_stale_lease_is_requeued_and_completed(tmp_path):
    """A unit claimed by a dead worker (no heartbeat) is recovered.

    Simulates the exact on-disk state a SIGKILLed worker leaves behind: a
    claimed unit whose mtime stopped advancing.
    """
    plan = _compare_plan(tmp_path)
    executor = RemoteSweepExecutor(
        tmp_path / "spool", lease_timeout=0.3, poll_interval=0.02, timeout=60.0
    )
    plan_id = executor.submit(plan)
    layout = executor.spool
    # a "worker" claims unit 0, then dies without ever heartbeating
    pending = layout.pending / SpoolLayout.unit_name(plan_id, 0, 0)
    dead_claim = layout.claimed / f"{pending.name}.dead-worker"
    os.rename(pending, dead_claim)
    _age_file(dead_claim, 5.0)

    outstanding = {unit.index for unit in plan.units}
    records = []
    with _InlineWorker(tmp_path):
        deadline = time.monotonic() + 60.0
        while outstanding and time.monotonic() < deadline:
            records.extend(executor._drain_done(plan_id, outstanding))
            records.extend(executor._requeue_expired(plan_id, outstanding))
            time.sleep(0.02)
    executor._cleanup(plan_id)
    assert not outstanding
    assert sorted(record[0] for record in records) == [0, 1]
    assert all(record[1] for record in records), records  # both succeeded


def test_exhausted_lease_becomes_a_unit_failure(tmp_path):
    plan = _compare_plan(tmp_path)
    executor = RemoteSweepExecutor(
        tmp_path / "spool", lease_timeout=0.1, poll_interval=0.02,
        max_requeues=1, timeout=60.0,
    )
    plan_id = executor.submit(plan)
    layout = executor.spool
    # unit 0 already burned its final attempt with a worker that died
    pending = layout.pending / SpoolLayout.unit_name(plan_id, 0, 0)
    final_claim = layout.claimed / f"{SpoolLayout.unit_name(plan_id, 0, 1)}.dead-worker"
    os.rename(pending, final_claim)
    _age_file(final_claim, 5.0)

    outstanding = {unit.index for unit in plan.units}
    failures = executor._requeue_expired(plan_id, outstanding)
    executor._cleanup(plan_id)
    (record,) = failures
    assert record[0] == 0 and record[1] is False
    assert "lease expired" in record[2]
    assert 0 not in outstanding


def test_killed_subprocess_worker_survived_by_requeue(tmp_path):
    """End to end: SIGKILL a real worker mid-unit; the sweep still completes."""
    grid = [{"label": "big", "manager": "numeric", "seed": 3, "cycles": 600}]
    serial = _session(tmp_path).run_many(grid)

    spool = tmp_path / "spool"
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    victim = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--spool", str(spool), "--cache-dir", str(tmp_path / "victim-cache"),
            "--poll", "0.02", "--heartbeat", "0.05", "--quiet",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        session = _remote_session(tmp_path, lease_timeout=1.0, timeout=180.0)
        result: dict = {}

        def fan_out() -> None:
            result["batch"] = session.run_many(grid)

        parent = threading.Thread(target=fan_out, daemon=True)
        parent.start()
        # wait until the victim worker holds the lease, then kill it dead
        layout = SpoolLayout(spool)
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            claims = list(layout.claimed.iterdir()) if layout.claimed.is_dir() else []
            if claims:
                break
            time.sleep(0.02)
        else:
            pytest.fail("victim worker never claimed the unit")
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30.0)
        # a surviving worker picks the requeued unit up after the lease expires
        with _InlineWorker(tmp_path, worker_id="survivor"):
            parent.join(timeout=120.0)
        assert not parent.is_alive(), "fan-in never completed after the kill"
    finally:
        if victim.poll() is None:  # pragma: no cover - cleanup on failure
            victim.kill()
            victim.wait(timeout=30.0)
    _batches_identical(serial, result["batch"])


def _fleet_plan(tmp_path: Path):
    """One SweepUnit carrying a whole fleet bucket of three members."""
    from repro.runtime.plan import FleetMemberUnit, plan_fleet

    session = _session(tmp_path)
    session._prepare_parallel_cache(session.artifact_cache, [])
    session.compile()
    payload = session._execution_payload(session.artifact_cache)
    members = [
        FleetMemberUnit("a", "relaxation", 500, seed=11),
        FleetMemberUnit("b", "numeric", 700, seed=22),
        FleetMemberUnit("c", "skip", 400, seed=33),
    ]
    return payload, plan_fleet(payload, members)


def _fleet_tail_identical(expected, actual) -> None:
    assert len(expected) == len(actual)
    for (label_a, name_a, summary_a), (label_b, name_b, summary_b) in zip(
        expected, actual
    ):
        assert label_a == label_b and name_a == name_b
        assert summary_a.metrics() == summary_b.metrics(), label_a
        assert summary_a.quality_level_counts == summary_b.quality_level_counts


def test_fleet_unit_over_the_spool_matches_inline_execution(tmp_path):
    """A fleet bucket crossing the spool fans in bit-identical to inline."""
    from repro.runtime.pool import _WorkerRuntime

    payload, plan = _fleet_plan(tmp_path)
    head, baseline = _WorkerRuntime(pickle.loads(pickle.dumps(payload))).execute(
        plan.units[0]
    )
    assert head == "fleet"
    executor = RemoteSweepExecutor(tmp_path / "spool", poll_interval=0.02, timeout=120.0)
    with _InlineWorker(tmp_path):
        outcome = executor.run(plan)
    assert outcome.ok
    _fleet_tail_identical(baseline, outcome.outcomes[0])


def test_killed_worker_mid_fleet_claim_requeues_bit_identical(tmp_path):
    """SIGKILL a real worker holding the fleet bucket; the requeued claim
    re-executes on a survivor and fans in bit-identical summaries."""
    from repro.runtime.pool import _WorkerRuntime

    payload, plan = _fleet_plan(tmp_path)
    head, baseline = _WorkerRuntime(pickle.loads(pickle.dumps(payload))).execute(
        plan.units[0]
    )
    assert head == "fleet"

    spool = tmp_path / "spool"
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    victim = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--spool", str(spool), "--cache-dir", str(tmp_path / "victim-cache"),
            "--poll", "0.02", "--heartbeat", "0.05", "--quiet",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        executor = RemoteSweepExecutor(
            spool, lease_timeout=1.0, poll_interval=0.02, timeout=180.0
        )
        result: dict = {}

        def fan_out() -> None:
            result["outcome"] = executor.run(plan)

        parent = threading.Thread(target=fan_out, daemon=True)
        parent.start()
        # wait until the victim worker holds the fleet claim, then kill it
        layout = SpoolLayout(spool)
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            claims = list(layout.claimed.iterdir()) if layout.claimed.is_dir() else []
            if claims:
                break
            time.sleep(0.02)
        else:
            pytest.fail("victim worker never claimed the fleet unit")
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30.0)
        # a surviving worker picks the requeued bucket up after the lease expires
        with _InlineWorker(tmp_path, worker_id="survivor"):
            parent.join(timeout=120.0)
        assert not parent.is_alive(), "fan-in never completed after the kill"
    finally:
        if victim.poll() is None:  # pragma: no cover - cleanup on failure
            victim.kill()
            victim.wait(timeout=30.0)
    outcome = result["outcome"]
    assert outcome.ok
    _fleet_tail_identical(baseline, outcome.outcomes[0])


# --------------------------------------------------------------------------- #
# worker loop behaviour
# --------------------------------------------------------------------------- #


def test_poison_unit_becomes_a_failure_record_not_a_dead_worker(tmp_path):
    """A unit that cannot unpickle (version skew, torn write) must surface
    as a UnitFailure — one poison unit may never kill the worker daemon."""
    plan = _compare_plan(tmp_path)
    executor = RemoteSweepExecutor(tmp_path / "spool", poll_interval=0.02, timeout=60.0)
    plan_id = executor.submit(plan)
    # overwrite unit 0 with a pickle referencing a module nobody has
    poison = executor.spool.pending / SpoolLayout.unit_name(plan_id, 0, 0)
    poison.write_bytes(b"cnonexistent_module_xyz\nNoClass\n.")
    worker = SpoolWorker(tmp_path / "spool", cache_dir=tmp_path / "worker-cache")
    while (claim := worker.claim_one()) is not None:
        worker._execute_claim(claim)
    outstanding = {unit.index for unit in plan.units}
    records = executor._drain_done(plan_id, outstanding)
    executor._cleanup(plan_id)
    assert not outstanding
    by_index = {record[0]: record for record in records}
    assert by_index[0][1] is False and "nonexistent_module_xyz" in by_index[0][2]
    assert by_index[1][1] is True  # the healthy unit still executed


def test_corrupt_plan_file_surfaces_failures_instead_of_hanging(tmp_path):
    """A torn plan file turns its units into visible failures — the fan-in
    must never wait forever on units no queue holds any more."""
    plan = _compare_plan(tmp_path)
    executor = RemoteSweepExecutor(tmp_path / "spool", poll_interval=0.02, timeout=60.0)
    plan_id = executor.submit(plan)
    executor.spool.plan_path(plan_id).write_bytes(b"torn write")
    worker = SpoolWorker(tmp_path / "spool", cache_dir=tmp_path / "worker-cache")
    while (claim := worker.claim_one()) is not None:
        worker._execute_claim(claim)
    outstanding = {unit.index for unit in plan.units}
    records = executor._drain_done(plan_id, outstanding)
    executor._cleanup(plan_id)
    assert not outstanding  # every unit produced a record
    assert all(record[1] is False for record in records)
    assert all("unreadable" in record[2] for record in records)


def test_worker_validates_intervals(tmp_path):
    with pytest.raises(ValueError, match="poll_interval"):
        SpoolWorker(tmp_path / "spool", poll_interval=0.0)
    with pytest.raises(ValueError, match="heartbeat"):
        SpoolWorker(tmp_path / "spool", heartbeat=-1.0)


def test_local_workers_get_an_idle_safety_net(tmp_path):
    """Spawned convenience workers carry --max-idle so a hard parent kill
    cannot leave them polling the spool forever."""
    executor = RemoteSweepExecutor(tmp_path / "spool", local_workers=2)
    command_tail = []
    import repro.runtime.remote as remote_module

    class _FakePopen:
        def __init__(self, command, **kwargs):
            command_tail.append(command)

    import unittest.mock

    with unittest.mock.patch.object(remote_module.subprocess, "Popen", _FakePopen):
        executor._spawn_local_workers()
    assert len(command_tail) == 2
    for command in command_tail:
        assert "--max-idle" in command
        idle = float(command[command.index("--max-idle") + 1])
        assert idle >= 300.0


def test_worker_exits_when_idle(tmp_path):
    started = time.monotonic()
    executed = worker_main(
        tmp_path / "spool", max_idle=0.1, poll_interval=0.02, log=None
    )
    assert executed == 0
    assert time.monotonic() - started < 10.0


def test_garbage_unit_file_never_kills_the_worker(tmp_path):
    """A malformed .unit file in the spool costs nothing, not the worker loop."""
    plan = _compare_plan(tmp_path)
    executor = RemoteSweepExecutor(tmp_path / "spool", poll_interval=0.02, timeout=60.0)
    layout = executor.spool
    # a foreign file shaped almost like a unit, sorted ahead of real units
    (layout.pending / "0-junk.unit").write_bytes(b"not a unit at all")
    with _InlineWorker(tmp_path):
        outcome = executor.run(plan)
    assert outcome.ok and set(outcome.outcomes) == {0, 1}
    # the junk was never claimed and still sits in pending for the operator
    assert [path.name for path in layout.pending.iterdir()] == ["0-junk.unit"]
    # and a claimed malformed file (crashed writer, hand-made) is discarded
    bad_claim = layout.claimed / "junk.unit.some-worker"
    bad_claim.write_bytes(b"junk")
    worker = SpoolWorker(tmp_path / "spool", cache_dir=tmp_path / "worker-cache")
    assert worker._execute_claim(bad_claim) is False
    assert not bad_claim.exists()


def test_worker_drops_orphan_units_of_withdrawn_plans(tmp_path):
    layout = SpoolLayout(tmp_path / "spool").ensure()
    orphan = layout.pending / SpoolLayout.unit_name("feedbeef0000", 0, 0)
    orphan.write_bytes(pickle.dumps("not-a-unit"))
    worker = SpoolWorker(tmp_path / "spool", cache_dir=tmp_path / "cache")
    claim = worker.claim_one()
    assert claim is not None
    assert worker._execute_claim(claim) is False  # orphan: no plan file
    assert not list(layout.pending.iterdir())
    assert not list(layout.claimed.iterdir())
    assert not list(layout.done.iterdir())


def test_worker_skips_units_already_resolved_elsewhere(tmp_path):
    plan = _compare_plan(tmp_path)
    executor = RemoteSweepExecutor(tmp_path / "spool")
    plan_id = executor.submit(plan)
    layout = executor.spool
    # unit 0's result already landed (a requeue raced a slow worker)
    layout.result_path(plan_id, 0).write_bytes(pickle.dumps((0, True, "x", ())))
    worker = SpoolWorker(tmp_path / "spool", cache_dir=tmp_path / "worker-cache")
    executed_claims = 0
    while (claim := worker.claim_one()) is not None:
        worker._execute_claim(claim)
        executed_claims += 1
    assert worker.executed == 1  # only unit 1 actually ran
    executor._cleanup(plan_id)


def test_empty_plan_is_a_no_op(tmp_path):
    from repro.runtime.plan import SweepPlan

    plan = _compare_plan(tmp_path)
    empty = SweepPlan(payload=plan.payload, units=())
    executor = RemoteSweepExecutor(tmp_path / "spool", timeout=1.0)
    outcome = executor.run(empty)
    assert outcome.ok and not outcome.outcomes


def test_crashed_local_workers_raise_instead_of_hanging(tmp_path, monkeypatch):
    """If every spawned local worker dies at startup, the fan-in must raise
    with actionable diagnostics — not poll an empty done/ forever."""
    import repro.runtime.remote as remote_module

    plan = _compare_plan(tmp_path)
    executor = RemoteSweepExecutor(
        tmp_path / "spool", poll_interval=0.02, local_workers=2
    )

    class _DeadPopen:
        returncode = 3

        def __init__(self, command, **kwargs):
            pass

        def poll(self):
            return self.returncode

        def terminate(self):
            pass

        def wait(self, timeout=None):
            return self.returncode

    monkeypatch.setattr(remote_module.subprocess, "Popen", _DeadPopen)
    with pytest.raises(SweepExecutionError, match="local worker"):
        executor.run(plan)


def test_timeout_without_workers_raises(tmp_path):
    plan = _compare_plan(tmp_path)
    executor = RemoteSweepExecutor(
        tmp_path / "spool", poll_interval=0.02, timeout=0.3
    )
    with pytest.raises(SweepExecutionError, match="timed out"):
        executor.run(plan)
    # the plan was withdrawn: nothing left for late workers to chew on
    assert not list(executor.spool.pending.iterdir())


def test_cache_opt_out_is_honoured_end_to_end(tmp_path):
    """.artifacts(False) disables artifact sync and worker-side caching."""
    serial = _session(tmp_path).run_many(_GRID[:3])
    session = (
        Session()
        .system("small")
        .machine("ipod")
        .seed(0)
        .artifacts(False)
        .remote(tmp_path / "spool", lease_timeout=15.0, poll_interval=0.02, timeout=120.0)
    )
    with _InlineWorker(tmp_path):
        remote = session.run_many(_GRID[:3])
    _batches_identical(serial, remote)
    layout = SpoolLayout(tmp_path / "spool")
    assert len(layout.artifact_cache()) == 0  # nothing pushed
    from repro.runtime import CompiledArtifactCache

    assert len(CompiledArtifactCache(tmp_path / "worker-cache")) == 0  # nothing persisted


def test_failed_submit_leaves_no_plan_behind(tmp_path, monkeypatch):
    import repro.runtime.remote as remote_module

    plan = _compare_plan(tmp_path)
    executor = RemoteSweepExecutor(tmp_path / "spool")
    real_write = remote_module._atomic_write_bytes
    calls = {"n": 0}

    def failing_write(target, data):
        calls["n"] += 1
        if calls["n"] >= 3:  # plan file + first unit succeed, second unit dies
            raise OSError("disk full")
        real_write(target, data)

    monkeypatch.setattr(remote_module, "_atomic_write_bytes", failing_write)
    with pytest.raises(OSError, match="disk full"):
        executor.submit(plan)
    monkeypatch.setattr(remote_module, "_atomic_write_bytes", real_write)
    assert not list(executor.spool.plans.iterdir())
    assert not list(executor.spool.pending.iterdir())


def test_experiment_suite_artefacts_identical_over_spool(tmp_path, monkeypatch):
    """`repro experiments --spool` reproduces the serial artefacts exactly."""
    from repro.experiments import run_all_experiments

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    serial = run_all_experiments(fast=True, seed=0)
    spooled = run_all_experiments(
        fast=True, seed=0, workers=1, spool=str(tmp_path / "spool")
    )
    assert serial.overhead.render() == spooled.overhead.render()
    assert serial.fig7.render() == spooled.fig7.render()


def test_workers_zero_is_valid_on_the_spool_transport(tmp_path):
    """workers=0 means 'no local workers, rely on external ones' — it must
    configure, not raise (the pool transport still requires >= 1)."""
    session = _remote_session(tmp_path)
    config = session._pool_config(None, 0)
    assert config is not None and config["workers"] == 0
    with pytest.raises(SessionError, match="workers"):
        session._pool_config(None, -1)
    # and it actually runs with external (inline) workers attached
    with _InlineWorker(tmp_path):
        batch = session.run_many(_GRID[:2], workers=0)
    assert set(batch.runs) == {"u0", "u1"}


def test_cleanup_sweeps_aged_temp_files(tmp_path):
    executor = RemoteSweepExecutor(tmp_path / "spool")
    leaked = executor.spool.done / ".junk-abc123"
    leaked.write_bytes(b"half-written")
    fresh = executor.spool.done / ".fresh-def456"
    fresh.write_bytes(b"in flight")
    _age_file(leaked, 7200.0)  # two hours old: a dead worker's leftover
    executor._cleanup("nosuchplan000")
    assert not leaked.exists()
    assert fresh.exists()  # recent temp files are someone's live write


def test_remote_wins_over_parallel_and_can_be_disabled(tmp_path):
    session = _remote_session(tmp_path).parallel(2)
    config = session._pool_config(None, None)
    assert config is not None and config.get("remote") is not None
    session.remote(enabled=False)
    config = session._pool_config(None, None)
    assert config is not None and config.get("remote") is None  # pool again
    assert session._pool_config(False, None) is None  # parallel=False wins
