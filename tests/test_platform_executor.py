"""Tests for the platform executor, tracing and the profiler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import QualityManagerCompiler, run_cycle
from repro.platform import (
    Machine,
    OverheadParameters,
    PlatformExecutor,
    Profiler,
    build_event_log,
    invocation_density,
    ipod_video,
    per_action_overhead,
    relaxation_steps_used,
)

from helpers import make_deadline, make_synthetic_system


@pytest.fixture(scope="module")
def setup():
    # large enough that the numeric manager's per-call computation dominates
    # the fixed invocation cost (the regime the paper's encoder is in)
    system = make_synthetic_system(n_actions=120, n_levels=5, seed=15, wc_ratio=1.5)
    deadlines = make_deadline(system, slack=1.4)
    controllers = QualityManagerCompiler(relaxation_steps=(1, 4, 8)).compile(system, deadlines)
    return system, deadlines, controllers


class TestPlatformExecutor:
    def test_run_produces_statistics(self, setup):
        system, deadlines, controllers = setup
        executor = PlatformExecutor(ipod_video())
        result = executor.run(system, deadlines, controllers.numeric, n_cycles=3, rng=np.random.default_rng(0))
        assert result.n_cycles == 3
        assert result.manager_name == "numeric"
        assert all(s.manager_calls == system.n_actions for s in result.statistics)
        assert result.overhead_fraction > 0.0

    def test_charge_overhead_can_be_disabled(self, setup):
        system, deadlines, controllers = setup
        executor = PlatformExecutor(ipod_video(), charge_overhead=False)
        result = executor.run(system, deadlines, controllers.numeric, n_cycles=1)
        assert result.overhead_fraction == 0.0

    def test_compare_uses_identical_scenarios(self, setup):
        system, deadlines, controllers = setup
        executor = PlatformExecutor(ipod_video(), charge_overhead=False)
        results = executor.compare(
            system, deadlines, {"numeric": controllers.numeric, "region": controllers.region},
            n_cycles=2, seed=5,
        )
        # without overhead the two managers produce identical traces
        for a, b in zip(results["numeric"].outcomes, results["region"].outcomes):
            assert np.array_equal(a.qualities, b.qualities)
            assert np.allclose(a.completion_times, b.completion_times)

    def test_overhead_ordering_between_managers(self, setup):
        system, deadlines, controllers = setup
        executor = PlatformExecutor(ipod_video())
        results = executor.compare(system, deadlines, controllers.managers(), n_cycles=2, seed=1)
        assert (
            results["numeric"].overhead_fraction
            > results["region"].overhead_fraction
            >= results["relaxation"].overhead_fraction
        )

    def test_all_managers_safe_on_platform(self, setup):
        system, deadlines, controllers = setup
        executor = PlatformExecutor(ipod_video())
        results = executor.compare(system, deadlines, controllers.managers(), n_cycles=3, seed=2)
        for result in results.values():
            assert result.all_deadlines_met

    def test_invalid_cycle_counts(self, setup):
        system, deadlines, controllers = setup
        executor = PlatformExecutor()
        with pytest.raises(ValueError):
            executor.run(system, deadlines, controllers.numeric, n_cycles=0)

    def test_clock_read_overhead_added_to_calls(self, setup):
        system, deadlines, controllers = setup
        base = Machine(name="base", overhead=OverheadParameters(per_call=1e-4))
        with_clock = Machine(
            name="clocked", overhead=OverheadParameters(per_call=1e-4), clock_read_overhead=1e-4
        )
        r1 = PlatformExecutor(base).run(system, deadlines, controllers.region, n_cycles=1)
        r2 = PlatformExecutor(with_clock).run(system, deadlines, controllers.region, n_cycles=1)
        assert r2.statistics[0].overhead_seconds > r1.statistics[0].overhead_seconds

    def test_run_result_quality_series_length(self, setup):
        system, deadlines, controllers = setup
        executor = PlatformExecutor(ipod_video())
        result = executor.run(system, deadlines, controllers.region, n_cycles=4, rng=np.random.default_rng(3))
        assert result.mean_quality_per_cycle.shape == (4,)
        assert result.total_manager_calls == 4 * system.n_actions


class TestTracing:
    def test_event_log_alternates_manager_and_actions(self, setup):
        system, deadlines, controllers = setup
        executor = PlatformExecutor(ipod_video())
        outcome = executor.run(system, deadlines, controllers.numeric, n_cycles=1).outcomes[0]
        events = build_event_log(outcome)
        kinds = [e.kind for e in events]
        assert kinds.count("action") == system.n_actions
        assert kinds.count("manager") == system.n_actions
        # events must be contiguous in time
        for previous, current in zip(events, events[1:]):
            assert current.start == pytest.approx(previous.end)

    def test_event_log_total_time_matches_makespan(self, setup):
        system, deadlines, controllers = setup
        executor = PlatformExecutor(ipod_video())
        outcome = executor.run(system, deadlines, controllers.relaxation, n_cycles=1).outcomes[0]
        events = build_event_log(outcome)
        assert events[-1].end == pytest.approx(outcome.makespan)

    def test_per_action_overhead_sparse_under_relaxation(self, setup):
        system, deadlines, controllers = setup
        executor = PlatformExecutor(ipod_video())
        outcome = executor.run(system, deadlines, controllers.relaxation, n_cycles=1).outcomes[0]
        overhead = per_action_overhead(outcome)
        assert overhead.shape == (system.n_actions,)
        assert np.count_nonzero(overhead) == outcome.manager_invocations.shape[0]
        assert overhead.sum() == pytest.approx(outcome.total_overhead)

    def test_relaxation_steps_sum_to_cycle_length(self, setup):
        system, deadlines, controllers = setup
        outcome = run_cycle(system, controllers.relaxation, rng=np.random.default_rng(1))
        steps = relaxation_steps_used(outcome)
        assert steps.sum() == system.n_actions

    def test_invocation_density_bounds(self, setup):
        system, deadlines, controllers = setup
        outcome = run_cycle(system, controllers.relaxation, rng=np.random.default_rng(1))
        density = invocation_density(outcome, window=10)
        assert np.all(density >= 0.0) and np.all(density <= 1.0)
        with pytest.raises(ValueError):
            invocation_density(outcome, window=0)


class TestProfiler:
    def test_profiled_tables_are_valid(self, setup):
        system, _, _ = setup
        profiled, report = Profiler(runs_per_level=4).profile(system, rng=np.random.default_rng(0))
        assert profiled.n_actions == system.n_actions
        assert profiled.worst_case.dominates(profiled.average)
        assert report.runs_per_level == 4

    def test_profiled_average_close_to_observed_mean(self, setup):
        system, _, _ = setup
        profiled, report = Profiler(runs_per_level=16).profile(system, rng=np.random.default_rng(1))
        assert np.allclose(profiled.average.values, np.maximum.accumulate(report.observed_mean, axis=0))

    def test_safety_factor_controls_underestimation(self, setup):
        system, _, _ = setup
        _, cautious = Profiler(runs_per_level=6, safety_factor=2.0).profile(
            system, rng=np.random.default_rng(2)
        )
        _, reckless = Profiler(runs_per_level=6, safety_factor=1.0).profile(
            system, rng=np.random.default_rng(2)
        )
        true_wc = system.worst_case.values
        assert cautious.underestimation_risk(true_wc) <= reckless.underestimation_risk(true_wc)

    def test_profiled_controller_still_runs(self, setup):
        system, deadlines, _ = setup
        profiled, _ = Profiler(runs_per_level=6, safety_factor=1.5).profile(
            system, rng=np.random.default_rng(3)
        )
        controllers = QualityManagerCompiler(require_feasible=False).compile(profiled, deadlines)
        outcome = run_cycle(profiled, controllers.region, rng=np.random.default_rng(4))
        assert outcome.n_actions == system.n_actions

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Profiler(runs_per_level=0)
        with pytest.raises(ValueError):
            Profiler(safety_factor=0.5)
