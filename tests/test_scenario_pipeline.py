"""Tests for the columnar scenario pipeline (:class:`ScenarioBatch` end-to-end).

Four contracts are asserted:

* **RNG parity** — the batched encoder sampler kernel draws the exact
  variates of the scalar per-frame ``frame_matrix`` loop (with and without
  platform noise, across seek positions and wrap-around), so batched draws
  are bit-identical to serial draws;
* **view semantics** — a :class:`ScenarioBatch` behaves like a read-only
  sequence of :class:`ActualTimeScenario` views over one frozen tensor;
* **transport** — the parallel ``compare`` produces bit-identical results
  under both scenario transports (ship-by-value tensors and per-worker
  re-draw), and pool workers reject malformed shipped tensors with a clear
  per-unit failure;
* **sharing safety** — the sampler-less path shares one frozen matrix across
  the batch; no consumer can corrupt the siblings.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import (
    ActualTimeScenario,
    ParameterizedSystem,
    QualitySet,
    ScenarioBatch,
    run_cycle,
    run_cycles_batch,
)
from repro.core.types import InvalidTimingError
from repro.media import paper_encoder, small_encoder

from helpers import make_deadline, make_synthetic_system

_OUTCOME_FIELDS = (
    "qualities",
    "durations",
    "completion_times",
    "manager_invocations",
    "manager_overheads",
)


def assert_runs_identical(left, right):
    assert list(left.runs) == list(right.runs)
    for label in left.runs:
        a, b = left.runs[label], right.runs[label]
        assert len(a.outcomes) == len(b.outcomes)
        for x, y in zip(a.outcomes, b.outcomes):
            for field in _OUTCOME_FIELDS:
                assert np.array_equal(getattr(x, field), getattr(y, field)), (
                    f"{label}: {field} differs"
                )


# --------------------------------------------------------------------------- #
# RNG parity: batched sampler kernel vs scalar frame_matrix loop
# --------------------------------------------------------------------------- #


class TestSamplerParity:
    @pytest.mark.parametrize("noise", [0.04, 0.0])
    @pytest.mark.parametrize("count", [1, 3, 11])  # 11 wraps past n_frames=4
    def test_batch_kernel_matches_scalar_frame_loop(self, noise, count):
        """sample_batch draws the exact variates of count frame_matrix calls."""
        workload = small_encoder(seed=2, n_frames=4).with_overrides(
            platform_noise=noise
        )
        batched = workload.build_system().timing.scenario_sampler
        model = workload.timing_model()
        frames = batched.frames

        raw = batched.sample_batch(count, np.random.default_rng(5))
        rng = np.random.default_rng(5)
        scalar = np.stack(
            [model.frame_matrix(frames[i % len(frames)], rng) for i in range(count)]
        )
        assert np.array_equal(raw, scalar)
        assert batched.cursor == count

    def test_batch_matches_single_draws_at_paper_scale(self):
        """One CIF-scale spot check: 1,189 actions, full noise path."""
        a = paper_encoder(seed=1).build_system()
        b = paper_encoder(seed=1).build_system()
        batch = a.draw_scenarios(5, np.random.default_rng(9))
        rng = np.random.default_rng(9)
        for index in range(5):
            assert np.array_equal(batch[index].matrix, b.draw_scenario(rng).matrix)

    def test_seek_positions_are_respected(self):
        """A batch drawn after seek() covers the same frames as scalar draws."""
        workload = small_encoder(seed=0, n_frames=3)
        batched = workload.build_system()
        serial = workload.build_system()
        for cursor in (0, 2, 3, 7):  # includes wrap-around past n_frames=3
            batched.timing.scenario_sampler.seek(cursor)
            serial.timing.scenario_sampler.seek(cursor)
            batch = batched.draw_scenarios(4, np.random.default_rng(cursor))
            rng = np.random.default_rng(cursor)
            for index in range(4):
                assert np.array_equal(
                    batch[index].matrix, serial.draw_scenario(rng).matrix
                )

    def test_cursor_wraps_past_n_frames(self):
        """seek past the sequence end lands on cursor % n_frames."""
        workload = small_encoder(seed=0, n_frames=3)
        sampler = workload.build_system().timing.scenario_sampler
        sampler.seek(7)  # frame 7 % 3 == 1
        wrapped = sampler.sample_batch(2, np.random.default_rng(0))
        sampler.seek(1)
        direct = sampler.sample_batch(2, np.random.default_rng(0))
        assert np.array_equal(wrapped, direct)
        assert sampler.cursor == 3

    def test_zero_count_batches(self):
        workload = small_encoder(seed=0, n_frames=3)
        system = workload.build_system()
        sampler = system.timing.scenario_sampler
        raw = sampler.sample_batch(0, np.random.default_rng(0))
        assert raw.shape == (0, len(system.qualities), system.n_actions)
        assert sampler.cursor == 0
        batch = system.draw_scenarios(0, np.random.default_rng(0))
        assert len(batch) == 0
        assert batch.tensor.shape == (0, len(system.qualities), system.n_actions)
        with pytest.raises(ValueError):
            sampler.sample_batch(-1, np.random.default_rng(0))

    def test_zero_count_consumes_no_rng(self):
        workload = small_encoder(seed=0, n_frames=3)
        sampler = workload.build_system().timing.scenario_sampler
        rng = np.random.default_rng(4)
        sampler.sample_batch(0, rng)
        untouched = np.random.default_rng(4)
        assert rng.normal() == untouched.normal()

    def test_derived_system_batches_match_scalar(self):
        """rescaled()/truncated() keep batch draws and replay state."""
        base = small_encoder(seed=0, n_frames=3)
        batched = base.build_system().rescaled(2.0).truncated(50)
        serial = base.build_system().rescaled(2.0).truncated(50)
        batch = batched.draw_scenarios(4, np.random.default_rng(1))
        rng = np.random.default_rng(1)
        for index in range(4):
            assert np.array_equal(batch[index].matrix, serial.draw_scenario(rng).matrix)
        # sampler state delegates through the wrappers to the frame sampler
        assert batched.timing.scenario_sampler.cursor == 4
        batched.timing.scenario_sampler.seek(0)
        assert batched.timing.scenario_sampler.cursor == 0

    def test_truncated_batch_does_not_pin_the_full_width_draw(self):
        """The truncated sampler copies its slice instead of viewing it."""
        system = small_encoder(seed=0, n_frames=3).build_system().truncated(10)
        batch = system.draw_scenarios(3, np.random.default_rng(0))
        tensor = batch.tensor
        backing = tensor if tensor.base is None else tensor.base
        assert backing.nbytes == tensor.nbytes


# --------------------------------------------------------------------------- #
# ScenarioBatch semantics
# --------------------------------------------------------------------------- #


class TestScenarioBatchViews:
    def _batch(self, cycles=4):
        system = make_synthetic_system(n_actions=9, n_levels=3, seed=1)
        return system, system.draw_scenarios(cycles, np.random.default_rng(0))

    def test_len_getitem_iter(self):
        _, batch = self._batch()
        assert len(batch) == 4 and batch.n_cycles == 4
        views = list(batch)
        assert all(isinstance(view, ActualTimeScenario) for view in views)
        for index, view in enumerate(views):
            assert np.array_equal(view.matrix, batch.tensor[index])

    def test_views_share_memory_and_are_read_only(self):
        _, batch = self._batch()
        view = batch[1]
        assert np.shares_memory(view.matrix, batch.tensor)
        assert not batch.tensor.flags.writeable
        with pytest.raises(ValueError):
            view.matrix[0, 0] = 1.0

    def test_negative_index_and_slice(self):
        _, batch = self._batch()
        assert np.array_equal(batch[-1].matrix, batch.tensor[3])
        tail = batch[1:]
        assert isinstance(tail, ScenarioBatch) and len(tail) == 3
        assert np.shares_memory(tail.tensor, batch.tensor)
        with pytest.raises(IndexError):
            batch[4]

    def test_zero_length_slice_is_a_valid_detached_empty_batch(self):
        """``batch[n:n]`` — the degenerate slice padding/masking code hits
        at chunk boundaries — must be a fully usable empty sub-batch that
        does not pin the parent tensor alive through ``.base``."""
        _, batch = self._batch()
        for empty in (batch[4:4], batch[2:2], batch[4:], batch[3:1]):
            assert isinstance(empty, ScenarioBatch)
            assert len(empty) == 0 and empty.n_cycles == 0
            assert empty.n_actions == batch.n_actions
            assert empty.tensor.shape == (0,) + batch.tensor.shape[1:]
            assert not empty.tensor.flags.writeable
            assert not np.shares_memory(empty.tensor, batch.tensor)
            assert empty.tensor.base is None  # detached, no hidden parent ref
            assert empty == ScenarioBatch.empty(batch.qualities, batch.n_actions)
            assert empty.scenarios() == ()
            clone = pickle.loads(pickle.dumps(empty))
            assert clone == empty and len(clone) == 0

    def test_zero_length_slice_of_shared_batch(self):
        """The broadcast (stride-0) layout detaches the same way."""
        shared = ScenarioBatch.shared(QualitySet.of_size(3), np.ones((3, 4)), 6)
        empty = shared[6:6]
        assert len(empty) == 0
        assert not np.shares_memory(empty.tensor, shared.tensor)
        assert empty == ScenarioBatch.empty(shared.qualities, shared.n_actions)

    def test_from_scenarios_round_trip_and_coerce(self):
        _, batch = self._batch()
        rebuilt = ScenarioBatch.from_scenarios(tuple(batch))
        assert rebuilt == batch
        assert ScenarioBatch.coerce(batch) is batch
        with pytest.raises(InvalidTimingError):
            ScenarioBatch.from_scenarios(())

    def test_from_scenarios_rejects_mixed_quality_sets(self):
        _, batch = self._batch()
        other = make_synthetic_system(n_actions=9, n_levels=4, seed=2)
        foreign = other.draw_scenario(np.random.default_rng(0))
        with pytest.raises(InvalidTimingError):
            ScenarioBatch.from_scenarios([batch[0], foreign])

    def test_shape_validation(self):
        qualities = QualitySet.of_size(3)
        with pytest.raises(InvalidTimingError):
            ScenarioBatch(qualities, np.zeros((2, 2, 5)))  # 2 levels != 3
        with pytest.raises(InvalidTimingError):
            ScenarioBatch(qualities, np.zeros((3, 5)))  # not 3-D

    def test_view_of_writable_buffer_is_copied(self):
        """A writable alias must not be able to corrupt the frozen tensor."""
        buffer = np.ones((6, 3, 5))
        batch = ScenarioBatch(QualitySet.of_size(3), buffer[:4])
        buffer[0, 0, 0] = 99.0  # mutate through the still-writable base
        assert batch.tensor[0, 0, 0] == 1.0
        assert not batch.tensor.flags.writeable

    def test_shared_view_of_writable_buffer_is_copied(self):
        """ScenarioBatch.shared applies the same writable-alias rule."""
        buffer = np.full((3, 4), 5.0)
        batch = ScenarioBatch.shared(QualitySet.of_size(3), buffer[:, :], 8)
        buffer[0, 0] = 999.0
        assert batch.tensor[3, 0, 0] == 5.0

    def test_retaining_batch_sampler_is_not_corrupted(self):
        """A sampler reusing its buffer (no fresh-batch declaration) keeps it."""
        from repro.core import TimingModel, TimingTable

        qualities = QualitySet.of_size(2)
        worst = TimingTable(qualities, np.full((2, 3), 10.0), name="Cwc")
        average = TimingTable(qualities, np.full((2, 3), 4.0), name="Cav")

        class RetainingSampler:
            def __init__(self):
                self.buffer = np.full((2, 2, 3), 50.0)  # above Cwc: gets clipped

            def sample_batch(self, count, rng):
                assert count == 2
                return self.buffer

            def __call__(self, rng):
                return self.buffer[0]

        sampler = RetainingSampler()
        model = TimingModel(worst, average, sampler)
        batch = model.sample_scenarios(2, np.random.default_rng(0))
        assert np.all(batch.tensor == 10.0)  # Definition 1 clip applied
        # the sampler's retained buffer is untouched and still writable
        assert np.all(sampler.buffer == 50.0)
        sampler.buffer[0, 0, 0] = 1.0  # would raise if frozen behind its back

    def test_pickle_round_trip_restores_frozen_tensor(self):
        _, batch = self._batch()
        clone = pickle.loads(pickle.dumps(batch))
        assert clone == batch
        assert not clone.tensor.flags.writeable

    def test_empty_constructor(self):
        empty = ScenarioBatch.empty(QualitySet.of_size(3), 7)
        assert len(empty) == 0 and empty.n_actions == 7
        assert empty.scenarios() == ()

    def test_fixed_quality_rejects_foreign_quality_sets(self):
        """The row gather uses the system's mapping; foreign sets must raise."""
        from repro.core import run_fixed_quality, run_fixed_quality_batch

        system, batch = self._batch()
        foreign = make_synthetic_system(n_actions=9, n_levels=4, seed=2)
        foreign_batch = foreign.draw_scenarios(2, np.random.default_rng(0))
        with pytest.raises(ValueError, match="quality set"):
            run_fixed_quality_batch(system, 1, foreign_batch[:2])
        with pytest.raises(ValueError, match="quality set"):
            run_fixed_quality_batch(system, 1, [foreign_batch[0], foreign_batch[1]])
        with pytest.raises(ValueError, match="quality set"):
            run_fixed_quality(system, 1, scenario=foreign_batch[0])
        # same-set scenarios keep working
        assert len(run_fixed_quality_batch(system, 1, batch)) == len(batch)

    def test_per_cycle_consumers_accept_views(self):
        """run_cycle and run_cycles_batch consume views / batches unchanged."""
        system, batch = self._batch()
        from repro.api.registry import BuildContext, build_manager

        context = BuildContext.create(system, make_deadline(system))
        manager = build_manager("region", context)
        vector = run_cycles_batch(system, manager, scenarios=batch)
        scalar = tuple(run_cycle(system, manager, scenario=view) for view in batch)
        for left, right in zip(scalar, vector):
            for field in _OUTCOME_FIELDS:
                assert np.array_equal(getattr(left, field), getattr(right, field))


class TestSamplerlessSharing:
    def _system(self):
        qualities = QualitySet.of_size(3)
        average = np.arange(1.0, 13.0).reshape(3, 4)
        return ParameterizedSystem.from_tables(
            ["a1", "a2", "a3", "a4"], qualities, average * 2.0, average
        )

    def test_shared_matrix_is_zero_copy_and_frozen(self):
        """All cycles view one frozen matrix; mutation attempts raise."""
        system = self._system()
        batch = system.draw_scenarios(50, np.random.default_rng(0))
        assert len(batch) == 50
        # broadcast: stride 0 along the cycle axis, no 50x materialisation
        assert batch.tensor.strides[0] == 0
        assert np.shares_memory(batch[0].matrix, batch[49].matrix)
        with pytest.raises(ValueError):
            batch[0].matrix[0, 0] = 99.0
        assert np.array_equal(batch[3].matrix, batch[17].matrix)

    def test_shared_batch_pickles_one_matrix_not_n_copies(self):
        """Pickling a broadcast batch ships the matrix + count, not n copies."""
        system = self._system()
        small = pickle.dumps(system.draw_scenarios(4, np.random.default_rng(0)))
        large = pickle.dumps(system.draw_scenarios(4096, np.random.default_rng(0)))
        assert len(large) < len(small) + 64  # count is the only difference
        clone = pickle.loads(large)
        assert clone == system.draw_scenarios(4096, np.random.default_rng(0))
        assert clone.tensor.strides[0] == 0  # rebuilt as a broadcast
        assert not clone.tensor.flags.writeable


# --------------------------------------------------------------------------- #
# transport: ship-by-value vs per-worker re-draw
# --------------------------------------------------------------------------- #


class TestCompareTransport:
    def _session(self, **parallel):
        from repro.api import Session

        session = (
            Session()
            .system(small_encoder(seed=0, n_frames=4))
            .overhead("ipod")
            .seed(3)
            .artifacts(False)
        )
        if parallel:
            session.parallel(**parallel)
        return session

    def test_redraw_matches_value_and_serial(self):
        serial = self._session().compare("region", "relaxation", "numeric", cycles=6)
        value = self._session().compare(
            "region", "relaxation", "numeric", cycles=6, workers=1,
            scenario_transport="value",
        )
        redraw = self._session().compare(
            "region", "relaxation", "numeric", cycles=6, workers=1,
            scenario_transport="redraw",
        )
        assert_runs_identical(serial, value)
        assert_runs_identical(serial, redraw)

    def test_redraw_leaves_the_stream_where_serial_would(self):
        """Back-to-back compares see consecutive frame windows in both modes."""
        serial = self._session()
        redraw = self._session()
        assert_runs_identical(
            serial.compare("region", cycles=5),
            redraw.compare("region", cycles=5, workers=1, scenario_transport="redraw"),
        )
        assert (
            serial.resolved_system().timing.scenario_sampler.cursor
            == redraw.resolved_system().timing.scenario_sampler.cursor
            == 5
        )
        assert_runs_identical(
            serial.compare("relaxation", cycles=3),
            redraw.compare(
                "relaxation", cycles=3, workers=1, scenario_transport="redraw"
            ),
        )

    def test_run_many_value_transport_matches_redraw_and_serial(self):
        """Grid units can ship pre-drawn tensors instead of drawing worker-side."""
        specs = ["relaxation", "region", {"manager": "constant:level=2", "seed": 5}]
        serial = self._session().run_many(specs)
        redraw = self._session().run_many(specs, workers=1)  # historical default
        value = self._session().run_many(
            specs, workers=1, scenario_transport="value"
        )
        assert_runs_identical(serial, redraw)
        assert_runs_identical(serial, value)

    def test_run_many_value_transport_preserves_stream_position(self):
        """Parent-side draws leave the sampler exactly where serial would."""
        serial = self._session()
        value = self._session()
        assert_runs_identical(
            serial.run_many(["relaxation", "region"]),
            value.run_many(
                ["relaxation", "region"], workers=1, scenario_transport="value"
            ),
        )
        assert (
            serial.resolved_system().timing.scenario_sampler.cursor
            == value.resolved_system().timing.scenario_sampler.cursor
        )
        assert_runs_identical(
            serial.run_many(["relaxation"]),
            value.run_many(["relaxation"], workers=1, scenario_transport="value"),
        )

    def test_transport_defaults_from_parallel_builder(self):
        serial = self._session().compare("region", "constant:level=2", cycles=4)
        configured = self._session(workers=1, scenario_transport="redraw").compare(
            "region", "constant:level=2", cycles=4
        )
        assert_runs_identical(serial, configured)

    def test_samplerless_system_supports_redraw(self):
        from repro.api import Session

        system = TestSamplerlessSharing()._system()
        deadline = make_deadline(system)

        def build(transport=None):
            session = (
                Session().system(system).deadlines(deadline).seed(0).artifacts(False)
            )
            kwargs = {} if transport is None else {
                "workers": 1, "scenario_transport": transport,
            }
            return session.compare("region", "constant:level=1", cycles=3, **kwargs)

        assert_runs_identical(build(), build("redraw"))

    def test_invalid_transport_rejected(self):
        from repro.api import SessionError

        with pytest.raises(SessionError):
            self._session(workers=1, scenario_transport="carrier-pigeon")
        with pytest.raises(SessionError):
            self._session().compare(
                "region", cycles=2, workers=1, scenario_transport="morse"
            )
        with pytest.raises(SessionError):
            # a typo must fail on serial runs too, not only once workers= appears
            self._session().compare("region", cycles=2, scenario_transport="morse")

    def test_redraw_units_ship_no_scenario_data(self):
        from repro.api.registry import ManagerSpec
        from repro.runtime.plan import (
            ExecutionPayload,
            plan_compare,
            plan_compare_redraw,
        )

        workload = small_encoder(seed=0, n_frames=4)
        system = workload.build_system()
        payload = ExecutionPayload(
            system=system,
            deadlines=workload.deadlines(),
            policy=None,
            relaxation_steps=(1, 10),
            require_feasible=True,
        )
        scenarios = system.draw_scenarios(32, np.random.default_rng(0))
        value = plan_compare(payload, [ManagerSpec("region")], scenarios)
        redraw = plan_compare_redraw(payload, [ManagerSpec("region")], 32, 0)
        value_bytes = len(pickle.dumps(value.units[0]))
        redraw_bytes = len(pickle.dumps(redraw.units[0]))
        assert value_bytes > scenarios.nbytes()  # the tensor travels
        assert redraw_bytes < 1024  # the recipe is a few plain fields
        assert redraw.total_draws == 0
        assert value.units[0].scenarios == scenarios

    def test_redraw_plan_rejects_seekless_stateful_samplers(self):
        """A sampler the workers cannot re-position must be rejected up front."""
        from repro.api.registry import ManagerSpec
        from repro.runtime.plan import ExecutionPayload, PlanError, plan_compare_redraw

        system = make_synthetic_system(n_actions=6, n_levels=3)  # closure sampler
        payload = ExecutionPayload(
            system=system,
            deadlines=make_deadline(system),
            policy=None,
            relaxation_steps=(1, 10),
            require_feasible=True,
        )
        with pytest.raises(PlanError, match="seek/cursor"):
            plan_compare_redraw(payload, [ManagerSpec("region")], 4, 0)


class TestSweepUnitValidation:
    def test_redraw_with_scenarios_rejected(self):
        from repro.api.registry import ManagerSpec
        from repro.runtime.plan import PlanError, SweepUnit

        system = make_synthetic_system(n_actions=6, n_levels=3)
        batch = system.draw_scenarios(2, np.random.default_rng(0))
        with pytest.raises(PlanError):
            SweepUnit(
                index=0,
                label="x",
                manager=ManagerSpec("constant"),
                cycles=2,
                scenarios=batch,
                redraw=True,
            )

    def test_legacy_scenario_tuples_are_coerced(self):
        from repro.api.registry import ManagerSpec
        from repro.runtime.plan import SweepUnit

        system = make_synthetic_system(n_actions=6, n_levels=3)
        rng = np.random.default_rng(0)
        scenarios = tuple(system.draw_scenario(rng) for _ in range(2))
        unit = SweepUnit(
            index=0,
            label="x",
            manager=ManagerSpec("constant"),
            cycles=2,
            scenarios=scenarios,
        )
        assert isinstance(unit.scenarios, ScenarioBatch)
        assert unit.draws == 0

    def test_worker_rejects_foreign_scenario_tensor(self):
        """A tensor drawn for another system fails with a clear message."""
        from repro.api.registry import ManagerSpec
        from repro.runtime.plan import ExecutionPayload, SweepPlan, SweepUnit
        from repro.runtime.pool import SweepExecutor

        workload = small_encoder(seed=0, n_frames=3)
        system = workload.build_system()
        foreign = make_synthetic_system(n_actions=11, n_levels=3, seed=1)
        bad_batch = foreign.draw_scenarios(2, np.random.default_rng(0))
        plan = SweepPlan(
            payload=ExecutionPayload(
                system=system,
                deadlines=workload.deadlines(),
                policy=None,
                relaxation_steps=(1, 10),
                require_feasible=True,
            ),
            units=(
                SweepUnit(
                    index=0,
                    label="bad",
                    manager=ManagerSpec("constant", {"level": 2}),
                    cycles=2,
                    scenarios=bad_batch,
                ),
            ),
        )
        outcome = SweepExecutor(max_workers=1).run(plan, on_error="capture")
        assert not outcome.ok and len(outcome.failures) == 1
        failure = outcome.failures[0]
        assert "scenario tensor" in failure.error
        assert "(levels, actions)" in failure.error
        assert "broadcast" not in failure.error.lower()


# --------------------------------------------------------------------------- #
# deprecation shims
# --------------------------------------------------------------------------- #


class TestTupleShims:
    def test_draw_scenarios_tuple(self):
        from repro.api import draw_scenarios_tuple

        system = make_synthetic_system(n_actions=6, n_levels=3)
        with pytest.warns(DeprecationWarning):
            legacy = draw_scenarios_tuple(system, 3, np.random.default_rng(7))
        assert isinstance(legacy, tuple) and len(legacy) == 3
        fresh = make_synthetic_system(n_actions=6, n_levels=3)
        batch = fresh.draw_scenarios(3, np.random.default_rng(7))
        for left, right in zip(legacy, batch):
            assert np.array_equal(left.matrix, right.matrix)

    def test_sample_scenarios_tuple(self):
        from repro.api import sample_scenarios_tuple

        system = make_synthetic_system(n_actions=6, n_levels=3)
        with pytest.warns(DeprecationWarning):
            legacy = sample_scenarios_tuple(system.timing, 2, np.random.default_rng(1))
        assert isinstance(legacy, tuple) and len(legacy) == 2
        assert all(isinstance(item, ActualTimeScenario) for item in legacy)
