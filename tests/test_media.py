"""Tests for the synthetic MPEG-like encoder workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import QualityManagerCompiler, run_cycle
from repro.media import (
    CIF,
    QCIF,
    SD,
    DEFAULT_SEMANTICS,
    EncoderPipeline,
    EncoderWorkload,
    GopStructure,
    PipelineStage,
    QualityLevelSemantics,
    SyntheticVideoSource,
    VideoFormat,
    paper_encoder,
    small_encoder,
)


class TestVideoFormat:
    def test_cif_macroblock_count_matches_paper(self):
        assert CIF.n_macroblocks == 396

    def test_qcif_macroblock_count(self):
        assert QCIF.n_macroblocks == 99

    def test_sd_macroblock_count_matches_paper_upper_bound(self):
        assert SD.n_macroblocks == 1620

    def test_dimensions_must_align_to_macroblocks(self):
        with pytest.raises(ValueError):
            VideoFormat("bad", 350, 288)


class TestSyntheticVideoSource:
    def test_deterministic_for_seed(self):
        a = SyntheticVideoSource(QCIF, seed=3).frame_list(5)
        b = SyntheticVideoSource(QCIF, seed=3).frame_list(5)
        for fa, fb in zip(a, b):
            assert np.allclose(fa.complexity, fb.complexity)
            assert np.allclose(fa.motion, fb.motion)
            assert fa.frame_type == fb.frame_type

    def test_different_seeds_differ(self):
        a = SyntheticVideoSource(QCIF, seed=1).frame_list(3)
        b = SyntheticVideoSource(QCIF, seed=2).frame_list(3)
        assert not np.allclose(a[1].complexity, b[1].complexity)

    def test_complexity_in_unit_interval(self):
        for frame in SyntheticVideoSource(QCIF, seed=0).frame_list(8):
            assert np.all(frame.complexity >= 0.0) and np.all(frame.complexity <= 1.0)
            assert np.all(frame.motion >= 0.0) and np.all(frame.motion <= 1.0)
            assert frame.n_macroblocks == QCIF.n_macroblocks

    def test_first_frame_is_scene_change(self):
        frames = SyntheticVideoSource(QCIF, seed=0).frame_list(1)
        assert frames[0].is_scene_change

    def test_scene_changes_raise_motion(self):
        source = SyntheticVideoSource(QCIF, seed=5, scene_change_probability=0.5)
        frames = source.frame_list(30)
        changes = [f.mean_motion for f in frames[1:] if f.is_scene_change]
        steady = [f.mean_motion for f in frames[1:] if not f.is_scene_change]
        if changes and steady:
            assert np.mean(changes) > np.mean(steady)

    def test_gop_pattern_respected(self):
        gop = GopStructure("IBBP")
        frames = SyntheticVideoSource(QCIF, seed=0).frame_list(8, gop.types())
        assert [f.frame_type for f in frames] == ["I", "B", "B", "P", "I", "B", "B", "P"]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SyntheticVideoSource(QCIF, scene_change_probability=2.0)
        with pytest.raises(ValueError):
            SyntheticVideoSource(QCIF, temporal_correlation=-0.1)
        with pytest.raises(ValueError):
            SyntheticVideoSource(QCIF, base_activity=1.5)


class TestGopStructure:
    def test_default_pattern(self):
        gop = GopStructure()
        assert gop.length == 12
        assert gop.frame_type(0) == "I"
        assert gop.frame_type(12) == "I"
        assert gop.frame_type(3) == "P"

    def test_intra_only_and_ip_only(self):
        assert GopStructure.intra_only().pattern == "I"
        assert GopStructure.ip_only(4).pattern == "IPPP"

    def test_pattern_validation(self):
        with pytest.raises(ValueError):
            GopStructure("")
        with pytest.raises(ValueError):
            GopStructure("PPI")
        with pytest.raises(ValueError):
            GopStructure("IXP")

    def test_count_types(self):
        counts = GopStructure("IBBP").count_types(8)
        assert counts == {"I": 2, "B": 4, "P": 2}

    def test_types_iterator(self):
        types = GopStructure("IP").types()
        assert [next(types) for _ in range(4)] == ["I", "P", "I", "P"]


class TestQualitySemantics:
    def test_search_range_grows_with_level(self):
        ranges = [DEFAULT_SEMANTICS.search_range(q) for q in range(7)]
        assert all(a <= b for a, b in zip(ranges, ranges[1:]))

    def test_quantiser_shrinks_with_level(self):
        qps = [DEFAULT_SEMANTICS.quantiser(q) for q in range(7)]
        assert all(a >= b for a, b in zip(qps, qps[1:]))

    def test_psnr_improves_with_level(self):
        psnrs = [DEFAULT_SEMANTICS.psnr(q, 0.5) for q in range(7)]
        assert all(a <= b for a, b in zip(psnrs, psnrs[1:]))

    def test_psnr_degrades_with_complexity(self):
        assert DEFAULT_SEMANTICS.psnr(3, 0.1) > DEFAULT_SEMANTICS.psnr(3, 0.9)

    def test_bitrate_factor_normalised_at_top(self):
        assert DEFAULT_SEMANTICS.bitrate_factor(6) == pytest.approx(1.0)
        assert DEFAULT_SEMANTICS.bitrate_factor(0) < 1.0

    def test_mean_psnr_with_per_block_levels(self):
        complexity = np.array([0.2, 0.8, 0.5])
        uniform = DEFAULT_SEMANTICS.mean_psnr(np.array(6), complexity)
        mixed = DEFAULT_SEMANTICS.mean_psnr(np.array([0, 0, 0]), complexity)
        assert uniform > mixed

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            DEFAULT_SEMANTICS.quantiser(7)
        with pytest.raises(ValueError):
            QualityLevelSemantics(n_levels=0)


class TestEncoderPipeline:
    def test_paper_action_count(self):
        assert EncoderPipeline(CIF).n_actions == 1189

    def test_qcif_action_count(self):
        assert EncoderPipeline(QCIF).n_actions == 99 * 3 + 1

    def test_sequence_structure(self):
        pipeline = EncoderPipeline(QCIF)
        sequence = pipeline.build_sequence()
        assert len(sequence) == pipeline.n_actions
        assert sequence[1].name == "mb0000/motion_estimation"
        assert sequence[len(sequence)].name == "frame/finalize"

    def test_action_stage_alignment(self):
        pipeline = EncoderPipeline(QCIF)
        stages = pipeline.action_stages()
        macroblocks = pipeline.action_macroblocks()
        assert len(stages) == pipeline.n_actions
        assert macroblocks[-1] == -1
        assert macroblocks[0] == 0
        assert stages[-1].name == "frame_finalize"

    def test_stage_validation(self):
        with pytest.raises(ValueError):
            PipelineStage(name="bad", base_cost=0.0, quality_slope=0.1)
        with pytest.raises(ValueError):
            PipelineStage(name="bad", base_cost=1.0, quality_slope=-0.1)
        with pytest.raises(ValueError):
            PipelineStage(name="bad", base_cost=1.0, quality_slope=0.1, worst_case_margin=0.5)

    def test_stage_quality_factors(self):
        stage = PipelineStage(name="s", base_cost=1.0, quality_slope=0.5)
        assert np.allclose(stage.quality_factors(3), [1.0, 1.5, 2.0])
        assert stage.quality_factor(2) == pytest.approx(2.0)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            EncoderPipeline(QCIF, stages=())


class TestEncoderWorkload:
    def test_paper_encoder_matches_setup(self):
        workload = paper_encoder()
        system = workload.build_system()
        assert system.n_actions == 1189
        assert len(system.qualities) == 7
        assert workload.deadline == 30.0
        assert workload.n_frames == 29
        assert workload.deadlines().last_constrained_index == 1189

    def test_paper_encoder_feasible(self):
        workload = paper_encoder()
        system = workload.build_system()
        assert system.is_feasible(workload.deadlines())

    def test_small_encoder_runs_quickly(self):
        workload = small_encoder()
        system = workload.build_system()
        deadlines = workload.deadlines()
        controllers = QualityManagerCompiler().compile(system, deadlines)
        outcome = run_cycle(system, controllers.region, rng=np.random.default_rng(0))
        assert outcome.n_actions == system.n_actions

    def test_scenarios_respect_worst_case(self):
        system = small_encoder(seed=4).build_system()
        rng = np.random.default_rng(1)
        for _ in range(3):
            scenario = system.draw_scenario(rng)
            assert np.all(scenario.matrix <= system.worst_case.values + 1e-12)

    def test_scenarios_vary_per_cycle(self):
        system = small_encoder(seed=4).build_system()
        rng = np.random.default_rng(1)
        first = system.draw_scenario(rng).matrix
        second = system.draw_scenario(rng).matrix
        assert not np.allclose(first, second)

    def test_average_table_monotone_in_quality(self):
        system = small_encoder().build_system()
        assert np.all(np.diff(system.average.values, axis=0) >= -1e-12)
        assert np.all(np.diff(system.worst_case.values, axis=0) >= -1e-12)

    def test_i_frames_cheaper_motion_estimation(self):
        """Scene content drives cost: the I-frame factor shrinks motion estimation."""
        workload = small_encoder(seed=2)
        model = workload.timing_model()
        video = workload.video_source()
        frames = video.frame_list(2, iter(["I", "P"]))
        rng_a, rng_b = np.random.default_rng(0), np.random.default_rng(0)
        i_matrix = model.frame_matrix(frames[0], rng_a)
        p_frame = frames[1]
        # build a P frame with identical content to isolate the frame-type factor
        p_same = type(p_frame)(
            index=1,
            frame_type="P",
            complexity=frames[0].complexity,
            motion=frames[0].motion,
            is_scene_change=False,
        )
        p_matrix = model.frame_matrix(p_same, rng_b)
        # motion estimation columns are every third action starting at 0
        me_columns = np.arange(0, workload.pipeline().n_macroblocks * 3, 3)
        assert i_matrix[:, me_columns].sum() < p_matrix[:, me_columns].sum()

    def test_with_overrides(self):
        workload = paper_encoder().with_overrides(n_frames=5, deadline=25.0)
        assert workload.n_frames == 5
        assert workload.deadline == 25.0

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            EncoderWorkload(n_levels=0)
        with pytest.raises(ValueError):
            EncoderWorkload(n_frames=0)
        with pytest.raises(ValueError):
            EncoderWorkload(deadline=0.0)

    def test_sampler_wraps_around_frames(self):
        workload = small_encoder(seed=0, n_frames=2)
        sampler = workload.scenario_sampler()
        rng = np.random.default_rng(0)
        assert sampler.n_frames == 2
        first = sampler(rng)
        sampler(rng)
        third = sampler(rng)  # wraps back to frame 0 content
        assert first.shape == third.shape
        assert sampler.peek_frame(0).index == 0
        sampler.rewind()
        assert np.allclose(sampler(np.random.default_rng(0)),
                           workload.scenario_sampler()(np.random.default_rng(0)))
