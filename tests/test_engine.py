"""Tests for the vectorised cycle engine (:mod:`repro.core.engine`).

The engine's contract is bit-identity: for any manager, overhead model and
scenario batch, the vectorised path must return :class:`CycleOutcome`
batches whose every array equals the scalar loop's output bit for bit — and
managers without a kernel must transparently fall back to the scalar loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.registry import BuildContext, available_managers, build_manager
from repro.core import (
    BackendError,
    EngineError,
    ParameterizedSystem,
    QualityManager,
    QualityManagerCompiler,
    QualitySet,
    available_backends,
    backend_available,
    compile_decision_kernel,
    compute_td_table,
    get_backend,
    registered_backends,
    run_cycle,
    run_cycles_batch,
    run_cycles_vectorized,
    run_fixed_quality,
    run_fixed_quality_batch,
    supports_vectorized,
)
from repro.core.engine import coerce_vectorize_mode
from repro.core.regions import QualityRegionTable, RegionQualityManager
from repro.core.relaxation import RelaxationQualityManager, RelaxationTable
from repro.platform.overhead import IPOD_LIKE, LinearOverheadModel, NullOverheadModel

from helpers import make_deadline, make_synthetic_system

_OUTCOME_FIELDS = (
    "qualities",
    "durations",
    "completion_times",
    "manager_invocations",
    "manager_overheads",
)


def assert_outcomes_identical(scalar, vectorized):
    assert len(scalar) == len(vectorized)
    for index, (left, right) in enumerate(zip(scalar, vectorized)):
        for field in _OUTCOME_FIELDS:
            a, b = getattr(left, field), getattr(right, field)
            assert np.array_equal(a, b), f"cycle {index}: {field} differs"


class StatefulCharge:
    """An overhead model whose charges depend on call history (not vectorisable)."""

    def __init__(self) -> None:
        self.calls = 0

    def charge(self, work) -> float:
        self.calls += 1
        return 0.001 * self.calls


class PureCharge:
    """A custom model declaring deterministic charges (vectorisable)."""

    deterministic_charges = True

    def cost_of(self, work) -> float:
        return 1e-4 + 1e-6 * (work.comparisons + work.table_lookups)

    def charge(self, work) -> float:
        return self.cost_of(work)


@pytest.fixture(scope="module")
def setup():
    system = make_synthetic_system(n_actions=40, n_levels=5, seed=3)
    deadlines = make_deadline(system)
    context = BuildContext.create(system, deadlines)
    return system, deadlines, context


def _overhead_models():
    return [None, LinearOverheadModel(IPOD_LIKE), NullOverheadModel(), PureCharge()]


# every registered manager lowers to exactly one kernel-spec primitive
_EXPECTED_OPS = {
    "average-only": "lookup",
    "constant": "constant",
    "dvfs": "relaxation",
    "elastic": "lookup",
    "feedback": "feedback",
    "linear-approx": "affine",
    "multitask": "relaxation",
    "numeric": "lookup",
    "region": "lookup",
    "relaxation": "relaxation",
    "safe-only": "lookup",
    "skip": "skip",
}


class TestParityGrid:
    @pytest.mark.parametrize("backend", [None, "numba"])
    @pytest.mark.parametrize("key", available_managers())
    @pytest.mark.parametrize("model_index", range(4))
    def test_every_registered_manager_is_bit_identical(
        self, setup, key, model_index, backend
    ):
        """Vectorised (or fallen-back) outcomes equal the scalar loop exactly."""
        if backend is not None and not backend_available(backend):
            pytest.skip(f"backend {backend!r} not installed")
        system, _, context = setup
        model = _overhead_models()[model_index]
        manager = build_manager(key, context)
        rng = np.random.default_rng(17)
        scenarios = system.draw_scenarios(6, rng)
        manager.reset()
        scalar = [
            run_cycle(system, manager, scenario=s, overhead_model=model)
            for s in scenarios
        ]
        batch = run_cycles_batch(
            system, manager, scenarios=scenarios, overhead_model=model, backend=backend
        )
        assert_outcomes_identical(scalar, batch)

    @pytest.mark.parametrize(
        "key", ("numeric", "skip", "feedback", "elastic", "dvfs", "multitask", "linear-approx")
    )
    def test_new_manager_kernels_handle_tight_deadlines(self, key):
        """Late/degenerate states drive every kernel's fallback branch."""
        system = make_synthetic_system(n_actions=25, n_levels=4, seed=2)
        deadlines = make_deadline(system, slack=0.55)
        context = BuildContext.create(system, deadlines, require_feasible=False)
        model = LinearOverheadModel(IPOD_LIKE)
        manager = build_manager(key, context)
        scenarios = system.draw_scenarios(10, np.random.default_rng(4))
        manager.reset()
        scalar = [
            run_cycle(system, manager, scenario=s, overhead_model=model)
            for s in scenarios
        ]
        batch = run_cycles_batch(
            system, manager, scenarios=scenarios, overhead_model=model
        )
        assert_outcomes_identical(scalar, batch)

    @pytest.mark.parametrize("steps", [(1,), (2,), (1, 3, 7, 12), (1, 10, 20, 30, 40, 50)])
    def test_relaxation_step_sets(self, setup, steps):
        system, deadlines, _ = setup
        controllers = QualityManagerCompiler(relaxation_steps=steps).compile(
            system, deadlines
        )
        model = LinearOverheadModel(IPOD_LIKE)
        scenarios = system.draw_scenarios(8, np.random.default_rng(5))
        scalar = [
            run_cycle(system, controllers.relaxation, scenario=s, overhead_model=model)
            for s in scenarios
        ]
        vectorized = run_cycles_vectorized(
            system, controllers.relaxation, scenarios, overhead_model=model
        )
        assert_outcomes_identical(scalar, vectorized)

    def test_late_states_fall_back_to_minimal_quality(self):
        """A tight deadline drives cycles late; the kernels must match exactly."""
        system = make_synthetic_system(n_actions=25, n_levels=4, seed=2)
        deadlines = make_deadline(system, slack=0.55)
        td = compute_td_table(system, deadlines, require_feasible=False)
        regions = QualityRegionTable(td)
        relaxation = RelaxationTable(td, (1, 4, 9))
        model = LinearOverheadModel(IPOD_LIKE)
        for manager in (
            RegionQualityManager(regions),
            RelaxationQualityManager(regions, relaxation),
        ):
            scenarios = system.draw_scenarios(10, np.random.default_rng(4))
            scalar = [
                run_cycle(system, manager, scenario=s, overhead_model=model)
                for s in scenarios
            ]
            vectorized = run_cycles_vectorized(
                system, manager, scenarios, overhead_model=model
            )
            assert_outcomes_identical(scalar, vectorized)
        # the tight deadline actually exercised the late branch
        assert any(
            (outcome.qualities == system.qualities.minimum).any()
            for outcome in scalar
        )

    def test_rng_draws_match_scalar_interleaving(self, setup):
        """Engine pre-draws its batch; per-cycle scalar draws see the same stream."""
        system, _, context = setup
        manager = build_manager("region", context)
        scalar_rng = np.random.default_rng(23)
        scalar = [
            run_cycle(system, manager, rng=scalar_rng) for _ in range(5)
        ]
        batch = run_cycles_batch(
            system, manager, 5, rng=np.random.default_rng(23)
        )
        assert_outcomes_identical(scalar, batch)


class TestKernelCompilation:
    def test_every_registered_manager_lowers_to_a_kernel(self, setup):
        """The whole registry speaks the "tables in, kernel out" protocol."""
        _, _, context = setup
        assert set(_EXPECTED_OPS) == set(available_managers())
        for key, op in _EXPECTED_OPS.items():
            manager = build_manager(key, context)
            spec = manager.lower()
            assert spec is not None, key
            assert spec.op == op, key
            assert supports_vectorized(manager), key
            assert compile_decision_kernel(manager) is not None, key

    def test_manager_without_lowering_falls_back(self, setup):
        """A decide()-only subclass has no spec and runs through the scalar loop."""
        system, _, context = setup

        class OpaqueManager(QualityManager):
            name = "opaque"

            def __init__(self, inner):
                self._inner = inner

            @property
            def qualities(self):
                return self._inner.qualities

            def decide(self, state_index, time):
                return self._inner.decide(state_index, time)

            def memory_footprint(self):
                return self._inner.memory_footprint()

        manager = OpaqueManager(build_manager("region", context))
        assert manager.lower() is None
        assert not supports_vectorized(manager)
        scenarios = system.draw_scenarios(4, np.random.default_rng(1))
        scalar = [
            run_cycle(system, build_manager("region", context), scenario=s)
            for s in scenarios
        ]
        batch = run_cycles_batch(system, manager, scenarios=scenarios)
        assert_outcomes_identical(scalar, batch)

    def test_scalar_fallback_counter_emitted(self, setup, tmp_path, monkeypatch):
        """run_cycles_batch labels scalar fallbacks with the manager class."""
        from repro.obs import metrics, reset_enabled

        system, _, context = setup
        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "telemetry"))
        reset_enabled()
        metrics.registry().reset()
        try:
            manager = build_manager("region", context)
            scenarios = system.draw_scenarios(2, np.random.default_rng(0))
            run_cycles_batch(
                system, manager, scenarios=scenarios, overhead_model=StatefulCharge()
            )
            run_cycles_batch(system, manager, scenarios=scenarios)
            snap = metrics.registry().snapshot()["metrics"]
            fallback = snap["engine.scalar_fallback.RegionQualityManager"]
            assert fallback == {"kind": "counter", "value": 1}
            assert "engine.batches.scalar.RegionQualityManager" in snap
            assert "engine.batches.vectorized.RegionQualityManager" in snap
        finally:
            reset_enabled()
            metrics.registry().reset()

    def test_stateful_overhead_model_disables_kernels(self, setup):
        system, _, context = setup
        manager = build_manager("region", context)
        model = StatefulCharge()
        assert not supports_vectorized(manager, model)
        # auto mode falls back to the scalar loop and matches it exactly
        scenarios = system.draw_scenarios(3, np.random.default_rng(0))
        scalar_model, batch_model = StatefulCharge(), StatefulCharge()
        scalar = [
            run_cycle(system, manager, scenario=s, overhead_model=scalar_model)
            for s in scenarios
        ]
        batch = run_cycles_batch(
            system, manager, scenarios=scenarios, overhead_model=batch_model
        )
        assert_outcomes_identical(scalar, batch)
        assert batch_model.calls == scalar_model.calls

    def test_vectorize_always_raises_without_kernel(self, setup):
        # every registered manager lowers now, so the kernel-less path needs a
        # non-vectorisable overhead model
        system, _, context = setup
        manager = build_manager("numeric", context)
        with pytest.raises(EngineError):
            run_cycles_batch(
                system,
                manager,
                2,
                rng=np.random.default_rng(0),
                overhead_model=StatefulCharge(),
                vectorize="always",
            )

    def test_vectorize_never_forces_scalar(self, setup):
        system, _, context = setup
        manager = build_manager("relaxation", context)
        scenarios = system.draw_scenarios(4, np.random.default_rng(1))
        never = run_cycles_batch(
            system, manager, scenarios=scenarios, vectorize="never"
        )
        always = run_cycles_batch(
            system, manager, scenarios=scenarios, vectorize="always"
        )
        assert_outcomes_identical(never, always)

    def test_mode_coercion(self):
        assert coerce_vectorize_mode(None) == "auto"
        assert coerce_vectorize_mode(True) == "always"
        assert coerce_vectorize_mode(False) == "never"
        assert coerce_vectorize_mode("auto") == "auto"
        with pytest.raises(EngineError):
            coerce_vectorize_mode("sometimes")

    def test_scenario_shape_validated(self, setup):
        system, _, context = setup
        manager = build_manager("region", context)
        other = make_synthetic_system(n_actions=7, n_levels=5, seed=3)
        scenario = other.draw_scenario(np.random.default_rng(0))
        with pytest.raises(ValueError):
            run_cycles_vectorized(system, manager, [scenario])

    def test_foreign_quality_set_falls_back_to_scalar(self, setup):
        """A scenario drawn for a wider quality set still executes under auto."""
        from repro.core.timing import ActualTimeScenario

        system, _, context = setup
        manager = build_manager("region", context)
        native = system.draw_scenario(np.random.default_rng(3))
        wide = ActualTimeScenario(
            QualitySet.of_size(len(system.qualities) + 2),
            np.vstack([native.matrix, native.matrix[-1:], native.matrix[-1:]]),
        )
        scalar = [run_cycle(system, manager, scenario=wide)]
        batch = run_cycles_batch(system, manager, scenarios=[wide])
        assert_outcomes_identical(scalar, batch)
        with pytest.raises(EngineError):
            run_cycles_batch(
                system, manager, scenarios=[wide], vectorize="always"
            )

    def test_vectorized_path_preserves_overhead_accounting(self, setup):
        """LinearOverheadModel call counts survive the batch via charge_batch."""
        system, _, context = setup
        manager = build_manager("relaxation", context)
        scenarios = system.draw_scenarios(5, np.random.default_rng(2))
        scalar_model, vector_model = (
            LinearOverheadModel(IPOD_LIKE),
            LinearOverheadModel(IPOD_LIKE),
        )
        for scenario in scenarios:
            run_cycle(system, manager, scenario=scenario, overhead_model=scalar_model)
        run_cycles_vectorized(
            system, manager, scenarios, overhead_model=vector_model
        )
        assert vector_model.calls == scalar_model.calls
        assert vector_model.per_kind().keys() == scalar_model.per_kind().keys()
        for kind, split in scalar_model.per_kind().items():
            assert vector_model.per_kind()[kind]["calls"] == split["calls"]
            assert vector_model.per_kind()[kind]["seconds"] == pytest.approx(
                split["seconds"]
            )
        assert vector_model.total_seconds == pytest.approx(scalar_model.total_seconds)


class TestBackends:
    def test_registry_names_numpy_and_numba(self):
        assert "numpy" in registered_backends()
        assert "numba" in registered_backends()
        # numpy ships with the package, so it is always available
        assert "numpy" in available_backends()
        assert backend_available("numpy")

    def test_default_backend_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert get_backend().name == "numpy"

    def test_env_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert get_backend().name == "numpy"
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(BackendError, match="bogus"):
            get_backend()

    def test_unknown_backend_raises(self):
        with pytest.raises(BackendError, match="registered"):
            get_backend("cupy")

    def test_unavailable_backend_raises(self):
        if backend_available("numba"):
            pytest.skip("numba is installed here")
        with pytest.raises(BackendError, match="not available"):
            get_backend("numba")

    def test_explicit_backend_request_is_not_silently_substituted(self, setup):
        if backend_available("numba"):
            pytest.skip("numba is installed here")
        system, _, context = setup
        manager = build_manager("region", context)
        with pytest.raises(BackendError):
            run_cycles_batch(
                system, manager, 2, rng=np.random.default_rng(0), backend="numba"
            )

    def test_explicit_numpy_backend_is_bit_identical(self, setup):
        system, _, context = setup
        manager = build_manager("relaxation", context)
        scenarios = system.draw_scenarios(5, np.random.default_rng(6))
        default = run_cycles_batch(system, manager, scenarios=scenarios)
        explicit = run_cycles_batch(
            system, manager, scenarios=scenarios, backend="numpy"
        )
        assert_outcomes_identical(default, explicit)


class TestBatchedDraws:
    def test_draw_scenarios_matches_sequential_draws(self, setup):
        system, _, _ = setup
        batch = system.draw_scenarios(7, np.random.default_rng(9))
        # full-stream comparison: one rng consumed across all draws
        rng = np.random.default_rng(9)
        sequential = [system.draw_scenario(rng) for _ in range(7)]
        for left, right in zip(batch, sequential):
            assert np.array_equal(left.matrix, right.matrix)

    def test_encoder_sampler_batch_advances_cursor(self):
        from repro.media import small_encoder

        batched = small_encoder(seed=0, n_frames=5).build_system()
        serial = small_encoder(seed=0, n_frames=5).build_system()
        batch = batched.draw_scenarios(8, np.random.default_rng(2))
        rng = np.random.default_rng(2)
        sequential = [serial.draw_scenario(rng) for _ in range(8)]
        for left, right in zip(batch, sequential):
            assert np.array_equal(left.matrix, right.matrix)
        assert batched.timing.scenario_sampler.cursor == 8
        assert serial.timing.scenario_sampler.cursor == 8

    def test_samplerless_system_shares_the_average_scenario(self):
        qualities = QualitySet.of_size(3)
        average = np.arange(1.0, 13.0).reshape(3, 4)
        system = ParameterizedSystem.from_tables(
            ["a1", "a2", "a3", "a4"], qualities, average * 2.0, average
        )
        scenarios = system.draw_scenarios(4, np.random.default_rng(0))
        assert len(scenarios) == 4
        for scenario in scenarios:
            assert np.array_equal(scenario.matrix, scenarios[0].matrix)

    def test_zero_and_negative_counts(self, setup):
        system, _, _ = setup
        empty = system.draw_scenarios(0, np.random.default_rng(0))
        assert len(empty) == 0 and empty.scenarios() == ()
        assert empty.tensor.shape == (0, len(system.qualities), system.n_actions)
        with pytest.raises(ValueError):
            system.draw_scenarios(-1, np.random.default_rng(0))

    def test_sampler_empty_batch_keeps_matrix_shape(self):
        from repro.media import small_encoder

        system = small_encoder(seed=0, n_frames=3).build_system()
        sampler = system.timing.scenario_sampler
        empty = sampler.sample_batch(0, np.random.default_rng(0))
        assert empty.shape == (0, len(system.qualities), system.n_actions)


class TestFixedQualityFastPath:
    def test_caller_owned_scenario_returns_a_view(self, setup):
        system, _, _ = setup
        scenario = system.draw_scenario(np.random.default_rng(6))
        outcome = run_fixed_quality(system, 2, scenario=scenario)
        assert np.shares_memory(outcome.durations, scenario.matrix)
        assert np.array_equal(outcome.durations, scenario.matrix[2])

    def test_internal_draw_still_copies(self, setup):
        system, _, _ = setup
        outcome = run_fixed_quality(system, 2, rng=np.random.default_rng(6))
        assert outcome.durations.base is None or outcome.durations.flags.owndata

    def test_batch_matches_scalar(self, setup):
        system, _, _ = setup
        scenarios = system.draw_scenarios(5, np.random.default_rng(8))
        scalar = [run_fixed_quality(system, 1, scenario=s) for s in scenarios]
        batch = run_fixed_quality_batch(system, 1, scenarios)
        assert_outcomes_identical(scalar, batch)
        # outcomes own independent quality arrays (mutating one is local)
        assert batch[0].qualities is not batch[1].qualities

    def test_batch_validates_level_and_shape(self, setup):
        system, _, _ = setup
        scenarios = system.draw_scenarios(2, np.random.default_rng(0))
        with pytest.raises(ValueError):
            run_fixed_quality_batch(system, 99, scenarios)
        other = make_synthetic_system(n_actions=9, n_levels=5, seed=1)
        with pytest.raises(ValueError):
            run_fixed_quality_batch(
                system, 1, [other.draw_scenario(np.random.default_rng(0))]
            )
        assert run_fixed_quality_batch(system, 1, []) == ()


class TestSessionWiring:
    def _session(self):
        from repro.api import Session

        return (
            Session()
            .system(make_synthetic_system(n_actions=30, n_levels=4, seed=11))
            .deadlines(period=90.0)
            .overhead("ipod")
            .seed(7)
        )

    def test_run_identical_across_engines(self):
        for manager in ("relaxation", "region", "constant", "numeric"):
            auto = self._session().manager(manager).run(cycles=5)
            never = self._session().manager(manager).vectorize("never").run(cycles=5)
            assert_outcomes_identical(never.outcomes, auto.outcomes)

    def test_run_vectorize_keyword_overrides_builder(self):
        session = self._session().manager("relaxation").vectorize("never")
        never = session.run(cycles=4)
        always = session.run(cycles=4, vectorize="always")
        assert_outcomes_identical(never.outcomes, always.outcomes)

    def test_compare_identical_across_engines(self):
        auto = self._session().compare(cycles=4)
        never = self._session().vectorize("never").compare(cycles=4)
        assert auto.labels == never.labels
        for label in auto.labels:
            assert_outcomes_identical(never[label].outcomes, auto[label].outcomes)

    def test_run_many_identical_across_engines(self):
        specs = ["relaxation", "region", "constant", {"manager": "numeric", "seed": 3}]
        auto = self._session().run_many(specs)
        never = self._session().vectorize("never").run_many(specs)
        assert auto.labels == never.labels
        for label in auto.labels:
            assert_outcomes_identical(never[label].outcomes, auto[label].outcomes)

    def test_vectorize_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            self._session().vectorize("sometimes")

    def test_backend_builder_validates_eagerly(self):
        with pytest.raises(BackendError):
            self._session().backend("bogus")
        with pytest.raises(BackendError):
            self._session().manager("region").run(cycles=2, backend="bogus")

    def test_backend_setting_is_bit_identical(self):
        default = self._session().manager("relaxation").run(cycles=4)
        explicit = (
            self._session().manager("relaxation").backend("numpy").run(cycles=4)
        )
        override = self._session().manager("relaxation").run(cycles=4, backend="numpy")
        assert_outcomes_identical(default.outcomes, explicit.outcomes)
        assert_outcomes_identical(default.outcomes, override.outcomes)

    def test_parallel_pool_carries_the_engine_setting(self, tmp_path):
        from repro.api import Session
        from repro.media import small_encoder

        def session() -> Session:
            return (
                Session()
                .system(small_encoder(seed=0, n_frames=4))
                .overhead("ipod")
                .seed(7)
                .manager("relaxation")
                .artifacts(tmp_path / "artifacts")
            )

        serial = session().run_many([1, 2, 3])
        pooled = session().run_many([1, 2, 3], parallel=True, workers=1)
        assert serial.labels == pooled.labels
        for label in serial.labels:
            assert_outcomes_identical(serial[label].outcomes, pooled[label].outcomes)

    def test_pool_honours_per_call_vectorize_override(self, tmp_path):
        """vectorize='always' reaches the workers: a kernel-less unit fails.

        Every registered manager lowers to a kernel now, so the kernel-less
        path needs a stateful (non-vectorisable) overhead model shipped
        through the payload.
        """
        from repro.api import Session
        from repro.media import small_encoder
        from repro.runtime.pool import SweepExecutionError

        session = (
            Session()
            .system(small_encoder(seed=0, n_frames=3))
            .seed(1)
            .manager("numeric")
            .overhead(StatefulCharge())
            .artifacts(tmp_path / "artifacts")
        )
        with pytest.raises(SweepExecutionError):
            session.run_many([1], parallel=True, workers=1, vectorize="always")

    def test_pool_mixed_manager_sweep_bit_identical(self, tmp_path):
        """A sweep mixing all the newly lowered managers survives the pool."""
        from repro.api import Session
        from repro.media import small_encoder

        specs = ["numeric", "skip", "feedback", "elastic", "linear-approx", "dvfs"]

        def session() -> Session:
            return (
                Session()
                .system(small_encoder(seed=0, n_frames=4))
                .machine("ipod")
                .seed(3)
                .manager("relaxation")
                .artifacts(tmp_path / "artifacts")
            )

        serial = session().run_many(specs)
        pooled = session().run_many(specs, parallel=True, workers=2)
        assert serial.labels == pooled.labels
        for label in serial.labels:
            assert_outcomes_identical(serial[label].outcomes, pooled[label].outcomes)

    def test_spool_mixed_manager_sweep_bit_identical(self, tmp_path):
        """The same mixed-manager sweep is bit-identical over a spool worker."""
        from repro.api import Session
        from repro.media import small_encoder

        specs = ["numeric", "skip", "feedback", "elastic"]

        def session() -> Session:
            return (
                Session()
                .system(small_encoder(seed=0, n_frames=3))
                .machine("ipod")
                .seed(5)
                .manager("relaxation")
                .artifacts(tmp_path / "artifacts")
            )

        serial = session().run_many(specs)
        spooled = session().remote(
            tmp_path / "spool", poll_interval=0.02, timeout=120.0, local_workers=1
        ).run_many(specs)
        assert serial.labels == spooled.labels
        for label in serial.labels:
            assert_outcomes_identical(serial[label].outcomes, spooled[label].outcomes)


class TestControlledSystemWiring:
    def test_run_cycles_uses_the_engine_transparently(self, setup):
        from repro.core import ControlledSystem

        system, deadlines, context = setup
        manager = build_manager("relaxation", context)
        controlled = ControlledSystem(system, deadlines, manager)
        auto = controlled.run_cycles(4, rng=np.random.default_rng(3))
        scalar = controlled.run_cycles(
            4, rng=np.random.default_rng(3), vectorize="never"
        )
        assert_outcomes_identical(scalar, auto)
