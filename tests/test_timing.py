"""Tests for the timing tables and the timing model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ActualTimeScenario,
    InvalidTimingError,
    QualitySet,
    TimingModel,
    TimingTable,
    blend_tables,
    build_table,
    scaled_table,
)


@pytest.fixture
def qualities() -> QualitySet:
    return QualitySet(0, 2)


@pytest.fixture
def table(qualities: QualitySet) -> TimingTable:
    values = np.array(
        [
            [1.0, 2.0, 3.0, 4.0],
            [1.5, 2.5, 3.5, 4.5],
            [2.0, 3.0, 4.0, 5.0],
        ]
    )
    return TimingTable(qualities, values, name="Cav")


class TestTimingTableConstruction:
    def test_shape_validation(self, qualities):
        with pytest.raises(InvalidTimingError):
            TimingTable(qualities, np.zeros((2, 4)))

    def test_must_be_two_dimensional(self, qualities):
        with pytest.raises(InvalidTimingError):
            TimingTable(qualities, np.zeros(4))

    def test_negative_values_rejected(self, qualities):
        values = np.ones((3, 2))
        values[1, 0] = -0.1
        with pytest.raises(InvalidTimingError):
            TimingTable(qualities, values)

    def test_non_finite_rejected(self, qualities):
        values = np.ones((3, 2))
        values[0, 1] = np.inf
        with pytest.raises(InvalidTimingError):
            TimingTable(qualities, values)

    def test_monotonicity_in_quality_enforced(self, qualities):
        values = np.array([[2.0, 2.0], [1.0, 3.0], [3.0, 4.0]])
        with pytest.raises(InvalidTimingError):
            TimingTable(qualities, values)

    def test_values_are_read_only(self, table):
        with pytest.raises(ValueError):
            table.values[0, 0] = 99.0

    def test_equality(self, qualities, table):
        other = TimingTable(qualities, table.values.copy(), name="other")
        assert table == other


class TestTimingTableQueries:
    def test_of_single_action(self, table):
        assert table.of(1, 0) == pytest.approx(1.0)
        assert table.of(4, 2) == pytest.approx(5.0)

    def test_of_out_of_range(self, table):
        with pytest.raises(IndexError):
            table.of(0, 0)
        with pytest.raises(IndexError):
            table.of(5, 0)

    def test_total_range(self, table):
        # C(a_2..a_4, 1) = 2.5 + 3.5 + 4.5
        assert table.total(2, 4, 1) == pytest.approx(10.5)

    def test_total_empty_range_is_zero(self, table):
        assert table.total(3, 2, 0) == 0.0

    def test_total_full_range_matches_sum(self, table):
        assert table.total(1, 4, 2) == pytest.approx(table.row(2).sum())

    def test_total_out_of_bounds(self, table):
        with pytest.raises(IndexError):
            table.total(0, 2, 0)
        with pytest.raises(IndexError):
            table.total(1, 5, 0)

    def test_prefix_structure(self, table):
        prefix = table.prefix
        assert prefix.shape == (3, 5)
        assert prefix[0, 0] == 0.0
        assert prefix[1, -1] == pytest.approx(table.row(1).sum())

    def test_suffix_totals(self, table):
        suffix = table.suffix_totals(0)
        assert suffix[0] == pytest.approx(10.0)  # all four actions
        assert suffix[-1] == pytest.approx(0.0)
        assert suffix[2] == pytest.approx(3.0 + 4.0)

    def test_dominates(self, qualities, table):
        bigger = TimingTable(qualities, table.values * 2.0)
        assert bigger.dominates(table)
        assert not table.dominates(bigger)

    def test_dominates_requires_same_shape(self, qualities, table):
        other = TimingTable(qualities, np.ones((3, 2)))
        assert not table.dominates(other)

    def test_with_name(self, table):
        renamed = table.with_name("Cwc")
        assert renamed.name == "Cwc"
        assert np.array_equal(renamed.values, table.values)


class TestBuildTable:
    def test_from_mappings(self, qualities):
        table = build_table(
            qualities,
            [{0: 1.0, 1: 2.0, 2: 3.0}, {0: 0.5, 1: 0.6, 2: 0.7}],
        )
        assert table.of(1, 2) == pytest.approx(3.0)
        assert table.of(2, 0) == pytest.approx(0.5)

    def test_from_sequences(self, qualities):
        table = build_table(qualities, [[1.0, 2.0, 3.0]])
        assert table.n_actions == 1

    def test_missing_level_in_mapping(self, qualities):
        with pytest.raises(InvalidTimingError):
            build_table(qualities, [{0: 1.0, 1: 2.0}])

    def test_wrong_sequence_length(self, qualities):
        with pytest.raises(InvalidTimingError):
            build_table(qualities, [[1.0, 2.0]])

    def test_empty_actions(self, qualities):
        table = build_table(qualities, [])
        assert table.n_actions == 0


class TestDerivedTables:
    def test_scaled_table(self, table):
        doubled = scaled_table(table, 2.0)
        assert np.allclose(doubled.values, table.values * 2.0)

    def test_scaled_table_rejects_negative_factor(self, table):
        with pytest.raises(InvalidTimingError):
            scaled_table(table, -1.0)

    def test_blend_tables_endpoints(self, qualities, table):
        other = TimingTable(qualities, table.values * 3.0)
        assert np.allclose(blend_tables(table, other, 1.0).values, table.values)
        assert np.allclose(blend_tables(table, other, 0.0).values, other.values)

    def test_blend_tables_midpoint(self, qualities, table):
        other = TimingTable(qualities, table.values * 3.0)
        blended = blend_tables(table, other, 0.5)
        assert np.allclose(blended.values, table.values * 2.0)

    def test_blend_rejects_bad_weight(self, qualities, table):
        other = TimingTable(qualities, table.values)
        with pytest.raises(InvalidTimingError):
            blend_tables(table, other, 1.5)


class TestActualTimeScenario:
    def test_actual_time_lookup(self, qualities):
        matrix = np.array([[1.0, 2.0], [1.5, 2.5], [2.0, 3.0]])
        scenario = ActualTimeScenario(qualities, matrix)
        assert scenario.actual_time(1, 0) == pytest.approx(1.0)
        assert scenario.actual_time(2, 2) == pytest.approx(3.0)

    def test_actual_time_out_of_range(self, qualities):
        scenario = ActualTimeScenario(qualities, np.ones((3, 2)))
        with pytest.raises(IndexError):
            scenario.actual_time(3, 0)

    def test_times_for_rows(self, qualities):
        matrix = np.array([[1.0, 2.0], [1.5, 2.5], [2.0, 3.0]])
        scenario = ActualTimeScenario(qualities, matrix)
        assert np.allclose(scenario.times_for(np.array([0, 2])), [1.0, 3.0])

    def test_shape_validation(self, qualities):
        with pytest.raises(InvalidTimingError):
            ActualTimeScenario(qualities, np.ones((2, 2)))


class TestTimingModel:
    def make_model(self, qualities, sampler=None):
        av = TimingTable(qualities, np.array([[1.0, 2.0], [2.0, 3.0], [3.0, 4.0]]), name="Cav")
        wc = TimingTable(qualities, av.values * 2.0, name="Cwc")
        return TimingModel(wc, av, sampler)

    def test_requires_dominance(self, qualities):
        av = TimingTable(qualities, np.full((3, 2), 2.0))
        wc = TimingTable(qualities, np.full((3, 2), 1.0))
        with pytest.raises(InvalidTimingError):
            TimingModel(wc, av)

    def test_requires_same_quality_set(self, qualities):
        av = TimingTable(qualities, np.ones((3, 2)))
        wc = TimingTable(QualitySet(0, 3), np.ones((4, 2)))
        with pytest.raises(InvalidTimingError):
            TimingModel(wc, av)

    def test_default_scenario_is_average(self, qualities):
        model = self.make_model(qualities)
        scenario = model.sample_scenario(np.random.default_rng(0))
        assert np.allclose(scenario.matrix, model.average.values)

    def test_scenario_clipped_to_worst_case(self, qualities):
        def sampler(rng):
            return np.full((3, 2), 100.0)

        model = self.make_model(qualities, sampler)
        scenario = model.sample_scenario(np.random.default_rng(0))
        assert np.all(scenario.matrix <= model.worst_case.values + 1e-12)

    def test_scenario_negative_values_clipped_to_zero(self, qualities):
        def sampler(rng):
            return np.full((3, 2), -5.0)

        model = self.make_model(qualities, sampler)
        scenario = model.sample_scenario(np.random.default_rng(0))
        assert np.all(scenario.matrix >= 0.0)

    def test_scenario_forced_monotone_in_quality(self, qualities):
        def sampler(rng):
            # deliberately decreasing in quality
            return np.array([[3.0, 3.0], [2.0, 2.0], [1.0, 1.0]])

        model = self.make_model(qualities, sampler)
        scenario = model.sample_scenario(np.random.default_rng(0))
        assert np.all(np.diff(scenario.matrix, axis=0) >= -1e-12)

    def test_scenario_sampler_shape_checked(self, qualities):
        def sampler(rng):
            return np.ones((2, 2))

        model = self.make_model(qualities, sampler)
        with pytest.raises(InvalidTimingError):
            model.sample_scenario(np.random.default_rng(0))

    def test_sample_actual_per_rows(self, qualities):
        model = self.make_model(qualities)
        actual = model.sample_actual(np.array([0, 2]), np.random.default_rng(0))
        assert np.allclose(actual, [1.0, 4.0])

    def test_sample_actual_requires_one_row_per_action(self, qualities):
        model = self.make_model(qualities)
        with pytest.raises(ValueError):
            model.sample_actual(np.array([0]), np.random.default_rng(0))
