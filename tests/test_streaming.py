"""Tests for chunked streaming execution (:mod:`repro.core.streaming`).

The streaming contract is chunk-boundary bit-identity: for any manager,
overhead model, backend and ``chunk_size``, a streamed run's metrics must
equal the materialised path's :class:`~repro.analysis.metrics.QualityMetrics`
field for field — including runs whose chunk edges land mid-way through a
frame sampler's wrap-around — and pool/spool/service fan-in of streamed
accumulators must match serial execution exactly.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.api import Session
from repro.api.registry import available_managers
from repro.api.results import RunResult
from repro.core import (
    EngineError,
    QuantileSketch,
    ScenarioBatch,
    StreamingMetrics,
    backend_available,
    run_cycles_batch,
    run_cycles_streamed,
)
from repro.analysis.metrics import compute_metrics
from repro.api.session import SessionError
from repro.media import small_encoder
from repro.platform.overhead import IPOD_LIKE, LinearOverheadModel

from helpers import make_deadline, make_synthetic_system

ALL_KEYS = sorted(available_managers())
N_CYCLES = 10
CHUNK_SIZES = (1, 7, 64, N_CYCLES, N_CYCLES + 1)

BACKENDS = [
    None,
    pytest.param(
        "numba",
        marks=pytest.mark.skipif(
            not backend_available("numba"), reason="numba not installed"
        ),
    ),
]


@pytest.fixture(scope="module")
def parity_setup():
    """One synthetic system, deadline, pre-drawn batch, shared per grid cell."""
    system = make_synthetic_system()
    deadlines = make_deadline(system)
    scenarios = system.draw_scenarios(N_CYCLES, np.random.default_rng(7))
    return system, deadlines, scenarios


def assert_metrics_identical(expected, actual, context=""):
    """Field-for-field (bit-exact) QualityMetrics equality."""
    assert expected == actual, f"{context}: {expected} != {actual}"


class TestChunkParityGrid:
    """Every registry key x chunk size x backend matches the materialised path."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_streamed_metrics_bit_identical(self, parity_setup, key, backend):
        system, deadlines, scenarios = parity_setup
        session = (
            Session()
            .system(system)
            .deadlines(deadlines)
            .manager(key)
            .overhead(LinearOverheadModel(IPOD_LIKE))
        )
        if backend is not None:
            session.backend(backend)
        baseline = session.run(scenarios=scenarios, cycles=N_CYCLES)
        for chunk in CHUNK_SIZES:
            streamed = session.run(
                scenarios=scenarios, cycles=N_CYCLES, chunk_size=chunk
            )
            assert streamed.is_summary
            assert_metrics_identical(
                baseline.metrics, streamed.metrics, f"{key} chunk={chunk}"
            )
            assert baseline.quality_histogram == streamed.quality_histogram
            assert streamed.n_cycles == N_CYCLES

    def test_direct_engine_call_matches_compute_metrics(self, parity_setup):
        system, deadlines, scenarios = parity_setup
        session = Session().system(system).deadlines(deadlines).manager("relaxation")
        manager = session.build()
        outcomes = run_cycles_batch(system, manager, scenarios=scenarios)
        expected = compute_metrics(outcomes, deadlines)
        for chunk in (1, 3, N_CYCLES):
            summary = run_cycles_streamed(
                system,
                manager,
                scenarios=scenarios,
                deadlines=deadlines,
                chunk_size=chunk,
            )
            assert_metrics_identical(expected, summary.metrics(), f"chunk={chunk}")

    def test_chunk_size_validation(self, parity_setup):
        system, deadlines, scenarios = parity_setup
        manager = (
            Session().system(system).deadlines(deadlines).manager("constant").build()
        )
        with pytest.raises(EngineError, match="chunk_size"):
            run_cycles_streamed(
                system,
                manager,
                scenarios=scenarios,
                deadlines=deadlines,
                chunk_size=0,
            )


class TestSamplerWrapAround:
    """Chunk edges crossing the frame sampler's wrap boundary stay identical."""

    @pytest.mark.parametrize("chunk", (1, 2, 3, 4, 7, 8))
    def test_wrap_at_chunk_edge(self, chunk):
        # 3-frame sequence, 8 cycles: the sampler wraps after frames 3 and 6,
        # landing both on and off every tested chunk edge
        def fresh():
            return Session().system(small_encoder(seed=0, n_frames=3)).seed(5)

        baseline = fresh().run(cycles=8)
        streamed = fresh().run(cycles=8, chunk_size=chunk)
        assert_metrics_identical(baseline.metrics, streamed.metrics, f"chunk={chunk}")
        assert baseline.quality_histogram == streamed.quality_histogram

    def test_consecutive_streamed_runs_continue_the_stream(self):
        # two runs on one session advance the frame sampler exactly like the
        # materialised path (draws happen per chunk, same total)
        materialised = Session().system(small_encoder(seed=0, n_frames=3)).seed(5)
        streamed = Session().system(small_encoder(seed=0, n_frames=3)).seed(5)
        for cycles in (4, 5):
            a = materialised.run(cycles=cycles)
            b = streamed.run(cycles=cycles, chunk_size=3)
            assert_metrics_identical(a.metrics, b.metrics, f"cycles={cycles}")


class TestParallelFanIn:
    """Streamed accumulators fanned in over every transport match serial."""

    def _fresh(self, tmp_path):
        return (
            Session()
            .system(small_encoder(seed=0, n_frames=4))
            .seed(3)
            .artifacts(tmp_path / "cache")
        )

    def test_pool_fan_in(self, tmp_path):
        serial = self._fresh(tmp_path).run_many([1, 2, 3], parallel=False)
        pooled = self._fresh(tmp_path).run_many(
            [1, 2, 3], parallel=True, workers=2, chunk_size=2
        )
        assert serial.labels == pooled.labels
        for label in serial.labels:
            assert pooled[label].is_summary
            assert_metrics_identical(serial[label].metrics, pooled[label].metrics, label)

    def test_compare_both_transports(self, tmp_path):
        serial = self._fresh(tmp_path).compare(cycles=4)
        for transport in ("value", "redraw"):
            streamed = self._fresh(tmp_path).compare(
                cycles=4,
                parallel=True,
                workers=1,
                scenario_transport=transport,
                chunk_size=3,
            )
            for label in serial.labels:
                assert streamed[label].is_summary
                assert_metrics_identical(
                    serial[label].metrics, streamed[label].metrics, f"{transport}:{label}"
                )

    def test_spool_fan_in(self, tmp_path):
        serial = self._fresh(tmp_path).run_many([1, 2], parallel=False)
        spooled = self._fresh(tmp_path).remote(
            tmp_path / "spool", poll_interval=0.02, timeout=120.0, local_workers=1
        )
        streamed = spooled.run_many([1, 2], chunk_size=2)
        for label in serial.labels:
            assert streamed[label].is_summary
            assert_metrics_identical(serial[label].metrics, streamed[label].metrics, label)

    def test_service_fan_in(self, tmp_path):
        serial = self._fresh(tmp_path).run_many([1, 2], parallel=False)
        service = self._fresh(tmp_path).service(
            tmp_path / "svc", poll_interval=0.02, timeout=120.0, local_workers=1
        )
        streamed = service.run_many([1, 2], chunk_size=2)
        for label in serial.labels:
            assert streamed[label].is_summary
            assert_metrics_identical(serial[label].metrics, streamed[label].metrics, label)


class TestQuantileSketch:
    def test_empty_and_bounds_raise(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.quantile(0.5)
        sketch.add(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)
        with pytest.raises(ValueError):
            QuantileSketch(resolution=3)

    def test_relative_error_bound(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(mean=1.0, sigma=2.0, size=5000)
        sketch = QuantileSketch()
        sketch.add_array(values)
        assert sketch.count == values.size
        for q in (0.01, 0.25, 0.5, 0.9, 0.99):
            exact = float(np.quantile(values, q))
            approx = sketch.quantile(q)
            assert abs(approx - exact) / exact < 2.0 * sketch.relative_error

    def test_merge_equals_bulk(self):
        rng = np.random.default_rng(1)
        values = rng.exponential(scale=3.0, size=1000)
        bulk = QuantileSketch()
        bulk.add_array(values)
        left, right = QuantileSketch(), QuantileSketch()
        left.add_array(values[:400])
        right.add_array(values[400:])
        left.merge(right)
        assert left.count == bulk.count
        for q in (0.1, 0.5, 0.95):
            assert left.quantile(q) == bulk.quantile(q)

    def test_nonpositive_values(self):
        sketch = QuantileSketch()
        sketch.add_array(np.array([-1.0, 0.0, 2.0, 4.0]))
        assert sketch.count == 4
        assert sketch.quantile(0.0) == 0.0

    def test_pickle_roundtrip(self):
        sketch = QuantileSketch()
        sketch.add_array(np.array([0.5, 1.5, 2.5]))
        clone = pickle.loads(pickle.dumps(sketch))
        assert clone.count == sketch.count
        assert clone.quantile(0.5) == sketch.quantile(0.5)


class TestStreamingMetricsAccumulator:
    @pytest.fixture()
    def halves(self):
        system = make_synthetic_system(n_actions=12)
        deadlines = make_deadline(system)
        manager = (
            Session().system(system).deadlines(deadlines).manager("relaxation").build()
        )
        scenarios = system.draw_scenarios(6, np.random.default_rng(2))
        outcomes = run_cycles_batch(system, manager, scenarios=scenarios)
        return deadlines, outcomes

    def test_merge_combines_halves(self, halves):
        deadlines, outcomes = halves
        whole = StreamingMetrics(deadlines)
        for outcome in outcomes:
            whole.update_outcome(outcome)
        first, second = StreamingMetrics(deadlines), StreamingMetrics(deadlines)
        for outcome in outcomes[:3]:
            first.update_outcome(outcome)
        for outcome in outcomes[3:]:
            second.update_outcome(outcome)
        first.merge(second)
        assert first.n_cycles == whole.n_cycles
        assert first.quality_level_counts == whole.quality_level_counts
        merged, reference = first.metrics(), whole.metrics()
        # integer folds are exact under merge; float folds re-associate, so
        # they match to numerical accuracy rather than bitwise
        assert merged.deadline_misses == reference.deadline_misses
        assert merged.manager_calls == reference.manager_calls
        assert merged.mean_quality == reference.mean_quality
        assert merged.smoothness == pytest.approx(reference.smoothness, rel=1e-12)
        assert merged.overhead_seconds == pytest.approx(
            reference.overhead_seconds, rel=1e-12
        )

    def test_std_quality_is_insertion_order_invariant(self, halves):
        # the chunked fold inserts histogram keys sorted (np.unique), the
        # per-cycle fold in encounter order; the float variance sum must not
        # depend on which order the levels arrived in
        deadlines, outcomes = halves
        forward = StreamingMetrics(deadlines)
        backward = StreamingMetrics(deadlines)
        for outcome in outcomes:
            forward.update_outcome(outcome)
        for outcome in reversed(outcomes):
            backward.update_outcome(outcome)
        assert forward.metrics().std_quality == backward.metrics().std_quality
        assert forward.metrics().mean_quality == backward.metrics().mean_quality

    def test_merge_rejects_mismatched_deadlines(self, halves):
        deadlines, outcomes = halves
        other_system = make_synthetic_system(n_actions=12)
        other = StreamingMetrics(make_deadline(other_system, slack=2.0))
        accumulator = StreamingMetrics(deadlines)
        accumulator.update_outcome(outcomes[0])
        other.update_outcome(outcomes[0])
        with pytest.raises(ValueError, match="deadline"):
            accumulator.merge(other)

    def test_empty_metrics_raises(self, halves):
        deadlines, _ = halves
        with pytest.raises(ValueError, match="at least one cycle"):
            StreamingMetrics(deadlines).metrics()

    def test_pickle_roundtrip(self, halves):
        deadlines, outcomes = halves
        accumulator = StreamingMetrics(deadlines)
        for outcome in outcomes:
            accumulator.update_outcome(outcome)
        clone = pickle.loads(pickle.dumps(accumulator))
        assert clone.metrics() == accumulator.metrics()
        assert clone.quality_level_counts == accumulator.quality_level_counts


class TestSummaryRunResult:
    @pytest.fixture()
    def pair(self):
        def fresh():
            return Session().system("small").seed(1).cycles(5)

        return fresh().run(), fresh().run(chunk_size=2)

    def test_summary_metrics_match(self, pair):
        materialised, summary = pair
        assert summary.is_summary and not materialised.is_summary
        assert materialised.metrics == summary.metrics
        assert materialised.quality_histogram == summary.quality_histogram
        assert summary.n_cycles == materialised.n_cycles
        assert summary.render() == materialised.render()

    def test_per_cycle_accessors_raise(self, pair):
        _, summary = pair
        with pytest.raises(ValueError, match="summary-only"):
            summary.mean_quality_per_cycle
        with pytest.raises(ValueError, match="summary-only"):
            summary.quality_values

    def test_quality_values_cached_and_empty_safe(self, pair):
        materialised, _ = pair
        first = materialised.quality_values
        assert first is materialised.quality_values  # cached, not rebuilt
        empty = RunResult(
            manager_key="constant",
            manager_name="constant",
            outcomes=(),
            deadlines=materialised.deadlines,
        )
        assert empty.quality_values.shape == (0,)
        assert empty.quality_histogram == {}


class TestScenarioBatchSlicing:
    def test_slices_are_views(self):
        system = make_synthetic_system(n_actions=8)
        batch = system.draw_scenarios(6, np.random.default_rng(0))
        window = batch[2:5]
        assert isinstance(window, ScenarioBatch)
        assert len(window) == 3
        assert np.shares_memory(window.tensor, batch.tensor)
        np.testing.assert_array_equal(window.tensor, batch.tensor[2:5])

    def test_shared_batch_slices_are_views(self):
        system = make_synthetic_system(n_actions=8)
        single = system.draw_scenarios(1, np.random.default_rng(0))
        shared = ScenarioBatch.shared(single.qualities, single.tensor[0], 5)
        window = shared[1:4]
        assert np.shares_memory(window.tensor, shared.tensor)
        assert len(window) == 3

    def test_view_batches_stay_readonly(self):
        system = make_synthetic_system(n_actions=8)
        batch = system.draw_scenarios(4, np.random.default_rng(0))
        window = batch[1:3]
        with pytest.raises(ValueError):
            window.tensor[0, 0, 0] = 1.0


class TestChunkSizeResolution:
    def test_precedence_per_call_builder_env(self, monkeypatch):
        session = Session().system("small").seed(0).cycles(4)
        monkeypatch.setenv("REPRO_CHUNK", "2")
        assert session.run().is_summary  # env fallback
        session.chunk_size(3)
        assert session.run().is_summary  # builder
        assert not session.run(chunk_size=None).is_summary  # per-call opt-out
        assert session.run(chunk_size=2).is_summary  # per-call override
        session.chunk_size(None)
        monkeypatch.delenv("REPRO_CHUNK")
        assert not session.run().is_summary

    def test_invalid_chunk_sizes_raise(self):
        session = Session().system("small")
        with pytest.raises(SessionError):
            session.chunk_size(0)
        with pytest.raises(SessionError):
            session.run(cycles=2, chunk_size="nope")

    def test_invalid_env_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK", "zero")
        with pytest.raises(SessionError):
            Session().system("small").run(cycles=2)


class TestStreamingObservability:
    def test_chunk_counters_and_report_section(self, tmp_path, monkeypatch):
        from repro.obs import metrics, reset_enabled
        from repro.obs.export import build_report, read_events, render_report

        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "telemetry"))
        reset_enabled()
        metrics.registry().reset()
        try:
            Session().system("small").seed(0).run(cycles=6, chunk_size=2)
            snap = metrics.registry().snapshot()["metrics"]
            assert snap["engine.chunks"] == {"kind": "counter", "value": 3}
            assert snap["engine.cycles.streamed"] == {"kind": "counter", "value": 6}
            peak = snap["engine.peak_chunk_bytes"]
            assert peak["kind"] == "gauge" and peak["value"] > 0
            report = build_report(read_events(tmp_path / "telemetry"))
            rendered = render_report(report)
            assert "streaming engine" in rendered
            assert "cycles streamed" in rendered
            assert "peak chunk tensor" in rendered
        finally:
            reset_enabled()
            metrics.registry().reset()
