"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.command == "compare"
        assert args.frames == 6
        assert args.small is False

    def test_experiments_fast_flag(self):
        args = build_parser().parse_args(["experiments", "--fast", "--seed", "3"])
        assert args.fast is True
        assert args.seed == 3

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.manager == "relaxation"
        assert args.cycles == 6
        assert args.small is False

    def test_compare_accepts_manager_list(self):
        args = build_parser().parse_args(["compare", "--managers", "numeric,skip"])
        assert args.managers == "numeric,skip"

    def test_sweep_scenario_transport_flag(self):
        # redraw is the grid sweep's historical behavior (workers draw)
        args = build_parser().parse_args(["sweep"])
        assert args.scenario_transport == "redraw"
        args = build_parser().parse_args(["sweep", "--scenario-transport", "value"])
        assert args.scenario_transport == "value"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--scenario-transport", "telegraph"])

    def test_experiments_scenario_transport_flag(self):
        args = build_parser().parse_args(
            ["experiments", "--scenario-transport", "redraw"]
        )
        assert args.scenario_transport == "redraw"


class TestCommands:
    def test_info_prints_paper_numbers(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert "8323" in output.replace(",", "")
        assert "5.7" in output

    def test_compare_small_workload(self, capsys):
        assert main(["compare", "--small", "--frames", "2"]) == 0
        output = capsys.readouterr().out
        assert "numeric" in output and "relaxation" in output
        assert "average quality per frame" in output

    def test_diagram_renders(self, capsys):
        assert main(["diagram"]) == 0
        output = capsys.readouterr().out
        assert "virtual time" in output

    def test_managers_lists_registry_keys(self, capsys):
        assert main(["managers"]) == 0
        output = capsys.readouterr().out
        for key in ("numeric", "region", "relaxation", "constant", "skip", "feedback"):
            assert key in output

    def test_run_with_manager_spec(self, capsys):
        assert main(["run", "--manager", "constant:level=2", "--small", "--cycles", "2"]) == 0
        output = capsys.readouterr().out
        assert "constant" in output
        assert "quality histogram" in output

    def test_run_rejects_unknown_manager(self, capsys):
        assert main(["run", "--manager", "frobnicate", "--small"]) == 2
        assert "unknown manager key" in capsys.readouterr().out

    def test_compare_with_baseline_manager(self, capsys):
        assert main(["compare", "--small", "--frames", "2", "--managers", "numeric,skip"]) == 0
        output = capsys.readouterr().out
        assert "numeric" in output and "skip" in output

    def test_compare_rejects_unknown_manager(self, capsys):
        assert main(["compare", "--small", "--frames", "2", "--managers", "bogus"]) == 2
        assert "unknown manager key" in capsys.readouterr().out

    @pytest.mark.parametrize("transport", ["redraw", "value"])
    def test_sweep_runs_with_both_transports(
        self, capsys, tmp_path, monkeypatch, transport
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert (
            main(
                [
                    "sweep",
                    "--small",
                    "--managers",
                    "relaxation",
                    "--scenarios",
                    "2",
                    "--cycles",
                    "2",
                    "--workers",
                    "1",
                    "--scenario-transport",
                    transport,
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "Sweep: 2 scenarios x 2 cycles (1 worker(s))" in output
