"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.command == "compare"
        assert args.frames == 6
        assert args.small is False

    def test_experiments_fast_flag(self):
        args = build_parser().parse_args(["experiments", "--fast", "--seed", "3"])
        assert args.fast is True
        assert args.seed == 3

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_info_prints_paper_numbers(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert "8323" in output.replace(",", "")
        assert "5.7" in output

    def test_compare_small_workload(self, capsys):
        assert main(["compare", "--small", "--frames", "2"]) == 0
        output = capsys.readouterr().out
        assert "numeric" in output and "relaxation" in output
        assert "average quality per frame" in output

    def test_diagram_renders(self, capsys):
        assert main(["diagram"]) == 0
        output = capsys.readouterr().out
        assert "virtual time" in output
