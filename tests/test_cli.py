"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.command == "compare"
        assert args.frames == 6
        assert args.small is False

    def test_experiments_fast_flag(self):
        args = build_parser().parse_args(["experiments", "--fast", "--seed", "3"])
        assert args.fast is True
        assert args.seed == 3

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.manager == "relaxation"
        assert args.cycles == 6
        assert args.small is False

    def test_compare_accepts_manager_list(self):
        args = build_parser().parse_args(["compare", "--managers", "numeric,skip"])
        assert args.managers == "numeric,skip"

    def test_sweep_scenario_transport_flag(self):
        # redraw is the grid sweep's historical behavior (workers draw)
        args = build_parser().parse_args(["sweep"])
        assert args.scenario_transport == "redraw"
        args = build_parser().parse_args(["sweep", "--scenario-transport", "value"])
        assert args.scenario_transport == "value"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--scenario-transport", "telegraph"])

    def test_experiments_scenario_transport_flag(self):
        args = build_parser().parse_args(
            ["experiments", "--scenario-transport", "redraw"]
        )
        assert args.scenario_transport == "redraw"


class TestCommands:
    def test_info_prints_paper_numbers(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert "8323" in output.replace(",", "")
        assert "5.7" in output

    def test_compare_small_workload(self, capsys):
        assert main(["compare", "--small", "--frames", "2"]) == 0
        output = capsys.readouterr().out
        assert "numeric" in output and "relaxation" in output
        assert "average quality per frame" in output

    def test_diagram_renders(self, capsys):
        assert main(["diagram"]) == 0
        output = capsys.readouterr().out
        assert "virtual time" in output

    def test_managers_lists_registry_keys(self, capsys):
        assert main(["managers"]) == 0
        output = capsys.readouterr().out
        for key in ("numeric", "region", "relaxation", "constant", "skip", "feedback"):
            assert key in output

    def test_run_with_manager_spec(self, capsys):
        assert main(["run", "--manager", "constant:level=2", "--small", "--cycles", "2"]) == 0
        output = capsys.readouterr().out
        assert "constant" in output
        assert "quality histogram" in output

    def test_run_rejects_unknown_manager(self, capsys):
        assert main(["run", "--manager", "frobnicate", "--small"]) == 2
        assert "unknown manager key" in capsys.readouterr().out

    def test_compare_with_baseline_manager(self, capsys):
        assert main(["compare", "--small", "--frames", "2", "--managers", "numeric,skip"]) == 0
        output = capsys.readouterr().out
        assert "numeric" in output and "skip" in output

    def test_compare_rejects_unknown_manager(self, capsys):
        assert main(["compare", "--small", "--frames", "2", "--managers", "bogus"]) == 2
        assert "unknown manager key" in capsys.readouterr().out

    @pytest.mark.parametrize("transport", ["redraw", "value"])
    def test_sweep_runs_with_both_transports(
        self, capsys, tmp_path, monkeypatch, transport
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert (
            main(
                [
                    "sweep",
                    "--small",
                    "--managers",
                    "relaxation",
                    "--scenarios",
                    "2",
                    "--cycles",
                    "2",
                    "--workers",
                    "1",
                    "--scenario-transport",
                    transport,
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "Sweep: 2 scenarios x 2 cycles (1 worker(s))" in output

    def test_worker_parser_defaults(self):
        args = build_parser().parse_args(["worker", "--spool", "/tmp/s"])
        assert args.spool == "/tmp/s"
        assert args.cache_dir is None
        assert args.poll == 0.2
        assert args.heartbeat == 2.0
        assert args.max_idle is None and args.max_units is None
        assert args.worker_id is None and args.quiet is False

    def test_worker_requires_spool(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])

    def test_sweep_spool_flags(self):
        args = build_parser().parse_args(["sweep"])
        assert args.spool is None and args.lease_timeout is None
        args = build_parser().parse_args(
            ["sweep", "--spool", "/tmp/s", "--lease-timeout", "5"]
        )
        assert args.spool == "/tmp/s" and args.lease_timeout == 5.0

    def test_experiments_spool_flag(self):
        args = build_parser().parse_args(["experiments", "--spool", "/tmp/s"])
        assert args.spool == "/tmp/s"

    def test_worker_exits_idle_via_cli(self, capsys, tmp_path):
        assert (
            main(
                [
                    "worker",
                    "--spool",
                    str(tmp_path / "spool"),
                    "--max-idle",
                    "0.05",
                    "--poll",
                    "0.02",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "worker exiting after 0 unit(s)" in output

    def test_sweep_runs_over_a_spool(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert (
            main(
                [
                    "sweep",
                    "--small",
                    "--managers",
                    "relaxation",
                    "--scenarios",
                    "2",
                    "--cycles",
                    "2",
                    "--workers",
                    "1",
                    "--spool",
                    str(tmp_path / "spool"),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "spool" in output and "Sweep: 2 scenarios x 2 cycles" in output

    def test_experiments_transport_defaults_to_mode_default(self):
        args = build_parser().parse_args(["experiments"])
        assert args.scenario_transport is None

    def test_worker_defaults_match_the_library_constants(self):
        """Drift guard: the CLI's hardcoded defaults must track remote.py."""
        from repro.runtime import remote

        args = build_parser().parse_args(["worker", "--spool", "s"])
        assert args.poll == remote.DEFAULT_POLL_INTERVAL
        assert args.heartbeat == remote.DEFAULT_HEARTBEAT_SECONDS
        sweep = build_parser().parse_args(["sweep"])
        assert sweep.lease_timeout is None  # resolved library-side
        # the sweep help text quotes the lease default: keep it honest
        import repro.cli as cli

        source = open(cli.__file__).read()
        assert f"(default: {remote.DEFAULT_LEASE_TIMEOUT:.0f})" in source

    def test_sweep_rejects_negative_workers(self, capsys):
        assert main(["sweep", "--small", "--workers", "-2"]) == 2
        assert "--workers must be >= 0" in capsys.readouterr().out

    def test_spool_timeout_flags_parse(self):
        args = build_parser().parse_args(["sweep", "--spool", "/tmp/s", "--timeout", "5"])
        assert args.timeout == 5.0
        args = build_parser().parse_args(["experiments", "--spool", "/tmp/s", "--timeout", "5"])
        assert args.timeout == 5.0

    def test_sweep_spool_timeout_bounds_a_workerless_run(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert (
            main(
                [
                    "sweep", "--small", "--scenarios", "1", "--cycles", "1",
                    "--spool", str(tmp_path / "spool"), "--timeout", "0.3",
                ]
            )
            == 2
        )
        assert "timed out" in capsys.readouterr().out
