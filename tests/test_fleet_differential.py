"""Differential fuzz harness: fleet execution vs solo runs, whole registry.

Every case derives a random fleet from one :class:`numpy.random.SeedSequence`
— mixed managers (cycling through all 12 registry keys), ragged system
shapes and quality-set sizes, cycle counts from 1 to 40, chunk sizes from
{1, 7, default} — runs it through :func:`repro.core.fleet.run_fleet` and
asserts every member's summary is **bit-identical** to that member's solo
streamed run.  The grid is fully deterministic: case ``k`` generates the
same fleet on every machine and every run.

CI runs the bounded 200-case grid; set ``REPRO_FUZZ_CASES`` to widen it::

    REPRO_FUZZ_CASES=5000 pytest tests/test_fleet_differential.py

A second leg re-runs a slice of the grid on the numba backend when it is
installed (skipped otherwise).
"""

from __future__ import annotations

import os
from functools import lru_cache

import numpy as np
import pytest

from repro.api import Session
from repro.api.registry import available_managers
from repro.core import backend_available
from repro.core.fleet import FleetMember, run_fleet
from repro.core.streaming import run_cycles_streamed

from helpers import make_deadline, make_synthetic_system

ALL_KEYS = sorted(available_managers())
N_CASES = int(os.environ.get("REPRO_FUZZ_CASES", "200"))
CASES_PER_ITEM = 10
CHUNK_CHOICES = (1, 7, None)  # None -> the fleet default chunk
_ENTROPY = 987654321

NUMBA_CASES = min(N_CASES, 30)


@lru_cache(maxsize=None)
def _cell(key: str, n_actions: int, n_levels: int, system_seed: int):
    """One (system, deadlines, manager) grid cell, shared across cases.

    Sharing is safe: synthetic samplers are stateless closures, managers
    are reset by every executor before use, and the solo baseline reruns
    with exactly the member's own RNG stream.
    """
    system = make_synthetic_system(n_actions, n_levels, seed=system_seed)
    deadlines = make_deadline(system)
    manager = Session().system(system).deadlines(deadlines).manager(key).build()
    return system, deadlines, manager


def case_keys(case: int) -> list[str]:
    """The registry keys case ``case`` draws, in member order.

    The deterministic ``(case * 5 + j) % 12`` walk is coprime with the
    registry size, so consecutive cases sweep every key — the coverage
    test below pins that property for the CI grid.
    """
    rng = _case_rng(case)
    size = int(rng.integers(3, 7))
    return [ALL_KEYS[(case * 5 + j) % len(ALL_KEYS)] for j in range(size)]


def _case_rng(case: int) -> np.random.Generator:
    return np.random.default_rng(
        np.random.SeedSequence(entropy=_ENTROPY, spawn_key=(case,))
    )


def case_members(case: int, *, backend: str | None = None) -> list[FleetMember]:
    """The deterministic random fleet of case ``case``."""
    rng = _case_rng(case)
    size = int(rng.integers(3, 7))
    members = []
    for j in range(size):
        key = ALL_KEYS[(case * 5 + j) % len(ALL_KEYS)]
        system, deadlines, manager = _cell(
            key,
            int(rng.integers(4, 9)),
            int(rng.integers(3, 7)),
            int(rng.integers(0, 3)),
        )
        members.append(
            FleetMember(
                label=f"case{case}-m{j}-{key}",
                system=system,
                manager=manager,
                deadlines=deadlines,
                cycles=int(rng.integers(1, 41)),
                seed=int(rng.integers(0, 2**31)),
                chunk_size=CHUNK_CHOICES[int(rng.integers(0, len(CHUNK_CHOICES)))],
                backend=backend,
            )
        )
    return members


def solo_baseline(member: FleetMember):
    """The member's summary from its own solo streamed run."""
    return run_cycles_streamed(
        member.system,
        member.manager,
        member.cycles,
        deadlines=member.deadlines,
        chunk_size=member.effective_chunk(),
        rng=member.make_rng(),
        overhead_model=member.overhead_model,
        vectorize=member.vectorize,
        backend=member.backend,
    )


def assert_case_parity(case: int, *, backend: str | None = None) -> None:
    members = case_members(case, backend=backend)
    summaries = run_fleet(members)
    assert len(summaries) == len(members)
    for member, summary in zip(members, summaries):
        expected = solo_baseline(member)
        assert summary.metrics() == expected.metrics(), member.label
        assert (
            summary.quality_level_counts == expected.quality_level_counts
        ), member.label
        assert summary.n_cycles == member.cycles, member.label


def _batches(n_cases: int) -> list[range]:
    return [
        range(start, min(start + CASES_PER_ITEM, n_cases))
        for start in range(0, n_cases, CASES_PER_ITEM)
    ]


class TestDifferentialGrid:
    """The bounded CI grid (numpy backend)."""

    @pytest.mark.parametrize(
        "batch", _batches(N_CASES), ids=lambda r: f"cases-{r.start}-{r.stop - 1}"
    )
    def test_fleet_bit_identical_to_solo(self, batch):
        for case in batch:
            assert_case_parity(case)

    def test_grid_covers_every_registry_key(self):
        """Every registry key appears in at least one generated fleet."""
        covered: set[str] = set()
        for case in range(N_CASES):
            covered.update(case_keys(case))
            if len(covered) == len(ALL_KEYS):
                break
        assert covered == set(ALL_KEYS)

    def test_cases_are_deterministic(self):
        """The same case index always derives the identical fleet."""
        first = case_members(3)
        second = case_members(3)
        for a, b in zip(first, second):
            assert a.label == b.label
            assert a.cycles == b.cycles
            assert a.seed == b.seed
            assert a.chunk_size == b.chunk_size
            assert a.system is b.system  # same grid cell


@pytest.mark.skipif(not backend_available("numba"), reason="numba not installed")
class TestDifferentialGridNumba:
    """A slice of the same grid on the numba backend."""

    @pytest.mark.parametrize(
        "batch", _batches(NUMBA_CASES), ids=lambda r: f"cases-{r.start}-{r.stop - 1}"
    )
    def test_fleet_bit_identical_to_solo(self, batch):
        for case in batch:
            assert_case_parity(case, backend="numba")
