"""Tests for speed diagrams: virtual time, speeds, Proposition 1."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DeadlineFunction,
    NumericQualityManager,
    SpeedDiagram,
    compute_td_table,
    run_cycle,
)

from helpers import make_deadline, make_synthetic_system
from test_policy import brute_cav, brute_delta_max


@pytest.fixture(scope="module")
def setup():
    system = make_synthetic_system(n_actions=20, n_levels=4, seed=13)
    deadlines = make_deadline(system, slack=1.3)
    td = compute_td_table(system, deadlines)
    diagram = SpeedDiagram(system, deadlines, td_table=td)
    return system, deadlines, td, diagram


class TestVirtualTime:
    def test_origin_and_endpoint(self, setup):
        system, deadlines, _, diagram = setup
        for quality in system.qualities:
            assert diagram.virtual_time(0, quality) == pytest.approx(0.0)
            assert diagram.virtual_time(system.n_actions, quality) == pytest.approx(
                deadlines.final_deadline
            )

    def test_matches_formula(self, setup):
        system, deadlines, _, diagram = setup
        k = system.n_actions
        deadline = deadlines.final_deadline
        for quality in system.qualities:
            total = brute_cav(system, 1, k, quality)
            for state in (1, 5, 12):
                expected = brute_cav(system, 1, state, quality) / total * deadline
                assert diagram.virtual_time(state, quality) == pytest.approx(expected)

    def test_virtual_times_vector_matches_scalar(self, setup):
        system, _, _, diagram = setup
        quality = system.qualities.maximum
        vector = diagram.virtual_times(quality)
        for state in range(system.n_actions + 1):
            assert vector[state] == pytest.approx(diagram.virtual_time(state, quality))

    def test_monotone_in_state(self, setup):
        system, _, _, diagram = setup
        for quality in system.qualities:
            assert np.all(np.diff(diagram.virtual_times(quality)) >= -1e-12)

    def test_bounds_checked(self, setup):
        system, _, _, diagram = setup
        with pytest.raises(IndexError):
            diagram.virtual_time(system.n_actions + 1, 0)


class TestSpeeds:
    def test_ideal_speed_formula(self, setup):
        system, deadlines, _, diagram = setup
        k = system.n_actions
        for quality in system.qualities:
            expected = deadlines.final_deadline / brute_cav(system, 1, k, quality)
            assert diagram.ideal_speed(quality) == pytest.approx(expected)

    def test_ideal_speed_decreases_with_quality(self, setup):
        system, _, _, diagram = setup
        speeds = [diagram.ideal_speed(q) for q in system.qualities]
        assert all(a >= b for a, b in zip(speeds, speeds[1:]))

    def test_safety_margin_matches_delta_max(self, setup):
        system, _, _, diagram = setup
        k = system.n_actions
        for quality in system.qualities:
            for state in (0, 4, 11):
                expected = brute_delta_max(system, state + 1, k, quality)
                assert diagram.safety_margin(state, quality) == pytest.approx(expected)

    def test_optimal_speed_formula(self, setup):
        system, deadlines, _, diagram = setup
        k = system.n_actions
        deadline = deadlines.final_deadline
        quality = 1
        state = 3
        time = deadline * 0.2
        total = brute_cav(system, 1, k, quality)
        remaining = brute_cav(system, state + 1, k, quality)
        margin = brute_delta_max(system, state + 1, k, quality)
        expected = (deadline / total) * remaining / (deadline - margin - time)
        assert diagram.optimal_speed(state, time, quality) == pytest.approx(expected)

    def test_optimal_speed_infinite_when_budget_gone(self, setup):
        system, deadlines, _, diagram = setup
        quality = system.qualities.maximum
        state = 1
        hopeless_time = deadlines.final_deadline * 2.0
        assert diagram.optimal_speed(state, hopeless_time, quality) == np.inf

    def test_optimal_speed_increases_as_time_passes(self, setup):
        """The later the actual time (at a fixed state), the faster one must go."""
        system, deadlines, _, diagram = setup
        quality = 1
        state = 2
        times = np.linspace(0.0, deadlines.final_deadline * 0.5, 10)
        speeds = [diagram.optimal_speed(state, float(t), quality) for t in times]
        assert all(a <= b + 1e-12 for a, b in zip(speeds, speeds[1:]))


class TestProposition1:
    def test_agreement_on_grid(self, setup):
        system, deadlines, _, diagram = setup
        times = np.linspace(0.0, deadlines.final_deadline, 23)
        for state in range(0, system.n_actions, 2):
            for quality in system.qualities:
                for time in times:
                    assert diagram.assess(state, float(time), quality).proposition1_agrees

    def test_choice_matches_td_table(self, setup):
        system, deadlines, td, diagram = setup
        rng = np.random.default_rng(0)
        for state in range(system.n_actions):
            for time in rng.uniform(0.0, deadlines.final_deadline, size=4):
                assert diagram.choose_quality(state, float(time)) == td.choose_quality(
                    state, float(time)
                )

    def test_admissible_qualities_are_downward_closed(self, setup):
        """If quality q is admissible then every lower quality is too."""
        system, deadlines, _, diagram = setup
        rng = np.random.default_rng(7)
        for state in (0, 6, 15):
            for time in rng.uniform(0.0, deadlines.final_deadline * 0.8, size=5):
                admissible = diagram.admissible_qualities(state, float(time))
                if admissible:
                    top = max(admissible)
                    assert admissible == [q for q in system.qualities if q <= top]


class TestFigureMaterial:
    def test_trajectory_of_executed_cycle(self, setup):
        system, deadlines, td, diagram = setup
        outcome = run_cycle(system, NumericQualityManager(td), rng=np.random.default_rng(3))
        trajectory = diagram.trajectory(outcome)
        assert trajectory["actual_time"].shape[0] == system.n_actions + 1
        assert trajectory["virtual_time"].shape[0] == system.n_actions + 1
        assert trajectory["actual_time"][0] == 0.0
        assert np.all(np.diff(trajectory["actual_time"]) >= 0.0)

    def test_trajectory_with_reference_quality(self, setup):
        system, _, td, diagram = setup
        outcome = run_cycle(system, NumericQualityManager(td), rng=np.random.default_rng(3))
        trajectory = diagram.trajectory(outcome, reference_quality=system.qualities.minimum)
        expected = diagram.virtual_times(system.qualities.minimum)
        assert np.allclose(trajectory["virtual_time"], expected)

    def test_region_border_series(self, setup):
        system, _, td, diagram = setup
        border = diagram.region_border(2)
        assert border["actual_time"].shape[0] == system.n_actions
        assert np.allclose(border["actual_time"], td.values[system.qualities.index_of(2)])

    def test_diagonal(self, setup):
        _, deadlines, _, diagram = setup
        diagonal = diagram.diagonal(points=5)
        assert np.allclose(diagonal["actual_time"], diagonal["virtual_time"])
        assert diagonal["actual_time"][-1] == pytest.approx(deadlines.final_deadline)


class TestConstruction:
    def test_target_must_carry_deadline(self, setup):
        system, deadlines, _, _ = setup
        with pytest.raises(ValueError):
            SpeedDiagram(system, deadlines, target_index=1)

    def test_target_beyond_system_rejected(self):
        system = make_synthetic_system(n_actions=5)
        deadlines = DeadlineFunction.single(9, 100.0)
        with pytest.raises(ValueError):
            SpeedDiagram(system, deadlines)

    def test_intermediate_target_allowed(self):
        system = make_synthetic_system(n_actions=10, seed=5)
        qmin_total = system.worst_case.total(1, 10, 0)
        deadlines = DeadlineFunction({5: qmin_total, 10: qmin_total * 1.5})
        diagram = SpeedDiagram(system, deadlines, target_index=5)
        assert diagram.target_index == 5
        assert diagram.deadline == pytest.approx(qmin_total)
