"""Tests for control relaxation regions (Proposition 3).

The key correctness property — relaxation never changes the chosen qualities,
whatever the actual execution times — is checked both via the interval
characterisation (brute force over the definition) and via end-to-end
execution equivalence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    NumericQualityManager,
    QualityRegionTable,
    RelaxationQualityManager,
    RelaxationTable,
    check_relaxation_containment,
    compute_td_table,
    run_cycle,
)

from helpers import make_deadline, make_synthetic_system


def brute_upper(td, system, state: int, quality: int, r: int) -> float:
    """min_{state <= j <= state+r-1} ( t^D(s_j, q) - C^wc(a_{state+1}..a_j, q) )."""
    best = np.inf
    for j in range(state, state + r):
        wc = system.worst_case.total(state + 1, j, quality)
        best = min(best, td.td(j, quality) - wc)
    return best


def brute_lower(td, system, state: int, quality: int, r: int) -> float:
    """max_{state <= j <= state+r-1} t^D(s_j, q+1); -inf at q_max."""
    if quality == system.qualities.maximum:
        return -np.inf
    return max(td.td(j, quality + 1) for j in range(state, state + r))


@pytest.fixture(scope="module")
def setup():
    system = make_synthetic_system(n_actions=30, n_levels=4, seed=21, wc_ratio=1.4)
    deadlines = make_deadline(system, slack=1.4)
    td = compute_td_table(system, deadlines)
    regions = QualityRegionTable(td)
    relaxation = RelaxationTable(td, steps=(1, 2, 4, 8))
    return system, deadlines, td, regions, relaxation


class TestRelaxationTable:
    def test_steps_sorted_and_deduplicated(self, setup):
        _, _, td, _, _ = setup
        table = RelaxationTable(td, steps=(8, 2, 2, 1))
        assert table.steps == (1, 2, 8)

    def test_invalid_steps_rejected(self, setup):
        _, _, td, _, _ = setup
        with pytest.raises(ValueError):
            RelaxationTable(td, steps=(0, 3))
        with pytest.raises(ValueError):
            RelaxationTable(td, steps=())

    def test_bounds_match_brute_force(self, setup):
        system, _, td, _, relaxation = setup
        for r in relaxation.steps:
            for quality in system.qualities:
                for state in range(0, system.n_actions - r + 1, 3):
                    lower, upper = relaxation.bounds(state, quality, r)
                    assert upper == pytest.approx(brute_upper(td, system, state, quality, r))
                    expected_lower = brute_lower(td, system, state, quality, r)
                    if np.isneginf(expected_lower):
                        assert np.isneginf(lower)
                    else:
                        assert lower == pytest.approx(expected_lower)

    def test_r_equal_one_reduces_to_quality_region(self, setup):
        system, _, _, regions, relaxation = setup
        for quality in system.qualities:
            for state in range(system.n_actions):
                r_lower, r_upper = relaxation.bounds(state, quality, 1)
                q_lower, q_upper = regions.bounds(state, quality)
                assert r_upper == pytest.approx(q_upper)
                if np.isfinite(q_lower):
                    assert r_lower == pytest.approx(q_lower)

    def test_states_without_enough_actions_are_empty(self, setup):
        system, _, _, _, relaxation = setup
        r = max(relaxation.steps)
        state = system.n_actions - r + 1  # only r-1 actions remain
        for quality in system.qualities:
            lower, upper = relaxation.bounds(state, quality, r)
            assert np.isneginf(upper)

    def test_step_larger_than_cycle_gives_empty_regions(self, setup):
        _, _, td, _, _ = setup
        table = RelaxationTable(td, steps=(td.n_states + 10,))
        lower, upper = table.bounds(0, 0, td.n_states + 10)
        assert np.isneginf(upper)

    def test_regions_nested_in_r(self, setup):
        """R^r_q shrinks as r grows (upper non-increasing, lower non-decreasing)."""
        system, _, _, _, relaxation = setup
        steps = relaxation.steps
        for quality in system.qualities:
            for state in range(0, system.n_actions - max(steps), 4):
                uppers = [relaxation.bounds(state, quality, r)[1] for r in steps]
                lowers = [relaxation.bounds(state, quality, r)[0] for r in steps]
                assert all(a >= b - 1e-9 for a, b in zip(uppers, uppers[1:]))
                finite = [v for v in lowers if np.isfinite(v)]
                assert all(a <= b + 1e-9 for a, b in zip(finite, finite[1:]))

    def test_containment_in_quality_regions(self, setup):
        _, _, _, regions, relaxation = setup
        assert check_relaxation_containment(regions, relaxation)

    def test_unknown_step_count_rejected(self, setup):
        _, _, _, _, relaxation = setup
        with pytest.raises(KeyError):
            relaxation.bounds(0, 0, 999)

    def test_memory_footprint_formula(self, setup):
        system, _, _, _, relaxation = setup
        expected = 2 * system.n_actions * len(system.qualities) * len(relaxation.steps)
        assert relaxation.memory_footprint().integers == expected


class TestRelaxationGuarantee:
    def test_relaxed_choice_is_invariant_over_admissible_futures(self, setup):
        """From a state inside R^r_q, whatever the next r actual times (<= Cwc),
        the un-relaxed manager would keep choosing q."""
        system, _, td, _, relaxation = setup
        rng = np.random.default_rng(5)
        checked = 0
        for state in range(0, system.n_actions - 8):
            for quality in system.qualities:
                lower, upper = relaxation.bounds(state, quality, 8)
                if not np.isfinite(upper) or upper <= max(lower, 0.0):
                    continue
                start = max(lower, 0.0) + (upper - max(lower, 0.0)) * 0.5
                # random admissible future for the next 8 actions
                for _ in range(3):
                    time = start
                    for j in range(state, state + 8):
                        assert td.choose_quality(j, time) == quality
                        worst = system.worst_case.of(j + 1, quality)
                        time += rng.uniform(0.0, worst)
                    checked += 1
        assert checked > 0  # the workload must actually exercise relaxation

    def test_max_relaxation_returns_largest_containing_region(self, setup):
        system, _, _, _, relaxation = setup
        found_multi = False
        for state in range(system.n_actions):
            for quality in system.qualities:
                lower, upper = relaxation.bounds(state, quality, 1)
                if not np.isfinite(upper) or upper <= max(lower, 0.0):
                    continue
                time = max(lower, 0.0) + (upper - max(lower, 0.0)) * 0.5
                best = relaxation.max_relaxation(state, time, quality)
                assert best >= 1
                assert relaxation.contains(state, time, quality, best) or best == 1
                if best > 1:
                    found_multi = True
                    # every granted step count must indeed contain the state
                    assert relaxation.contains(state, time, quality, best)
        assert found_multi


class TestRelaxationManager:
    def test_identical_qualities_to_numeric_manager(self, setup):
        system, deadlines, td, regions, relaxation = setup
        numeric = NumericQualityManager(td)
        relaxed = RelaxationQualityManager(regions, relaxation)
        for seed in range(5):
            scenario = system.draw_scenario(np.random.default_rng(seed))
            a = run_cycle(system, numeric, scenario=scenario)
            b = run_cycle(system, relaxed, scenario=scenario)
            assert np.array_equal(a.qualities, b.qualities)
            assert a.makespan == pytest.approx(b.makespan)

    def test_fewer_invocations_than_region_manager(self, setup):
        system, _, _, regions, relaxation = setup
        relaxed = RelaxationQualityManager(regions, relaxation)
        scenario = system.draw_scenario(np.random.default_rng(11))
        outcome = run_cycle(system, relaxed, scenario=scenario)
        assert outcome.manager_invocations.shape[0] < system.n_actions

    def test_decision_steps_within_rho(self, setup):
        system, _, _, regions, relaxation = setup
        relaxed = RelaxationQualityManager(regions, relaxation)
        scenario = system.draw_scenario(np.random.default_rng(2))
        outcome = run_cycle(system, relaxed, scenario=scenario)
        gaps = np.diff(np.append(outcome.manager_invocations, system.n_actions))
        assert set(np.unique(gaps)).issubset(set(relaxation.steps) | {1})

    def test_mismatched_tables_rejected(self, setup):
        system, _, td, regions, _ = setup
        other_system = make_synthetic_system(n_actions=30, n_levels=4, seed=99)
        other_deadline = make_deadline(other_system)
        other_td = compute_td_table(other_system, other_deadline)
        with pytest.raises(ValueError):
            RelaxationQualityManager(regions, RelaxationTable(other_td, steps=(1, 2)))

    def test_memory_footprint_is_relaxation_table(self, setup):
        _, _, _, regions, relaxation = setup
        relaxed = RelaxationQualityManager(regions, relaxation)
        assert relaxed.memory_footprint().integers == relaxation.memory_footprint().integers
