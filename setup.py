"""Setuptools entry point.

``pyproject.toml`` is the canonical metadata; the fields are mirrored here
only so legacy offline editable installs keep working on setuptools < 61
(which cannot read ``[project]`` tables):
``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Speed diagrams and symbolic quality management for soft/hard real-time "
        "multimedia software (reproduction of Combaz et al., IPPS 2007)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
