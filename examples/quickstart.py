#!/usr/bin/env python3
"""Quickstart: build a small parameterized system and control it.

Shows the whole public-API workflow on a 12-action synthetic pipeline:

1. describe the application (actions, quality levels, ``C^av`` / ``C^wc``);
2. attach a deadline;
3. compile the Quality Managers (numeric + symbolic);
4. run one cycle under each manager and audit the traces;
5. inspect the speed diagram of the executed cycle.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import render_speed_diagram
from repro.core import (
    DeadlineFunction,
    ParameterizedSystem,
    QualityManagerCompiler,
    QualitySet,
    SpeedDiagram,
    audit_trace,
    run_cycle,
)


def build_pipeline() -> ParameterizedSystem:
    """A 12-stage processing pipeline with 4 quality levels.

    Average cost grows with the level; the worst case is 1.8x the average;
    actual times fluctuate around the average depending on the input data.
    """
    n_actions, n_levels = 12, 4
    rng = np.random.default_rng(7)
    base = rng.uniform(5.0, 20.0, size=n_actions)  # milliseconds
    level_factor = np.array([1.0, 1.4, 1.9, 2.5])[:, None]
    average = base[None, :] * level_factor
    worst_case = average * 1.8

    def sampler(generator: np.random.Generator) -> np.ndarray:
        data_dependence = generator.uniform(0.6, 1.6, size=(1, n_actions))
        return average * data_dependence

    return ParameterizedSystem.from_tables(
        [f"stage{i}" for i in range(1, n_actions + 1)],
        QualitySet.of_size(n_levels),
        worst_case,
        average,
        scenario_sampler=sampler,
    )


def main() -> None:
    system = build_pipeline()

    # one deadline at the end of the cycle: 30% slack over the all-minimal worst case
    budget = system.worst_case.total(1, system.n_actions, 0) * 1.3
    deadlines = DeadlineFunction.single(system.n_actions, budget)
    print(f"pipeline: {system.n_actions} actions, {len(system.qualities)} quality levels")
    print(f"cycle deadline: {budget:.1f} ms   feasible: {system.is_feasible(deadlines)}")

    # compile the numeric and symbolic Quality Managers
    controllers = QualityManagerCompiler(relaxation_steps=(1, 2, 4)).compile(system, deadlines)
    print(
        "symbolic tables: "
        f"{controllers.report.region_integers} integers (quality regions), "
        f"{controllers.report.relaxation_integers} integers (control relaxation)"
    )

    # run the same input data under each manager
    scenario = system.draw_scenario(np.random.default_rng(3))
    print("\nmanager     qualities                              makespan  calls  safe")
    for name, manager in controllers.managers().items():
        outcome = run_cycle(system, manager, scenario=scenario)
        audit = audit_trace(outcome, deadlines)
        print(
            f"{name:11s} {''.join(str(q) for q in outcome.qualities):38s} "
            f"{outcome.makespan:7.1f}  {len(outcome.manager_invocations):5d}  {audit.is_safe}"
        )

    # the speed diagram of the executed cycle (Figure 3/4 style)
    diagram = SpeedDiagram(system, deadlines, td_table=controllers.td_table)
    outcome = run_cycle(system, controllers.region, scenario=scenario)
    print("\nspeed diagram (diagonal, region borders, trajectory):\n")
    print(render_speed_diagram(diagram, outcome, width=64, height=18))


if __name__ == "__main__":
    main()
