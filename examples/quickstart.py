#!/usr/bin/env python3
"""Quickstart: build a small parameterized system and control it.

Shows the whole public-API workflow on a 12-action synthetic pipeline,
driven through the :mod:`repro.api` facade:

1. describe the application (actions, quality levels, ``C^av`` / ``C^wc``);
2. configure a :class:`repro.api.Session` (deadline, policy, manager);
3. run one cycle under every registered manager flavour on identical inputs;
4. audit the traces and read the aggregated metrics;
5. inspect the speed diagram of the executed cycle.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import render_speed_diagram
from repro.api import Session
from repro.core import (
    DeadlineFunction,
    ParameterizedSystem,
    QualitySet,
    SpeedDiagram,
)


def build_pipeline() -> ParameterizedSystem:
    """A 12-stage processing pipeline with 4 quality levels.

    Average cost grows with the level; the worst case is 1.8x the average;
    actual times fluctuate around the average depending on the input data.
    """
    n_actions, n_levels = 12, 4
    rng = np.random.default_rng(7)
    base = rng.uniform(5.0, 20.0, size=n_actions)  # milliseconds
    level_factor = np.array([1.0, 1.4, 1.9, 2.5])[:, None]
    average = base[None, :] * level_factor
    worst_case = average * 1.8

    def sampler(generator: np.random.Generator) -> np.ndarray:
        data_dependence = generator.uniform(0.6, 1.6, size=(1, n_actions))
        return average * data_dependence

    return ParameterizedSystem.from_tables(
        [f"stage{i}" for i in range(1, n_actions + 1)],
        QualitySet.of_size(n_levels),
        worst_case,
        average,
        scenario_sampler=sampler,
    )


def main() -> None:
    system = build_pipeline()

    # one deadline at the end of the cycle: 30% slack over the all-minimal worst case
    budget = system.worst_case.total(1, system.n_actions, 0) * 1.3
    deadlines = DeadlineFunction.single(system.n_actions, budget)
    print(f"pipeline: {system.n_actions} actions, {len(system.qualities)} quality levels")
    print(f"cycle deadline: {budget:.1f} ms   feasible: {system.is_feasible(deadlines)}")

    # one session: deadline + policy configured once, tables compiled lazily
    # (and cached — every run below reuses the same compilation)
    session = (
        Session()
        .system(system)
        .deadlines(deadlines)
        .policy("mixed")
        .relaxation_steps(1, 2, 4)
        .seed(3)
    )
    report = session.compile().report
    print(
        "symbolic tables: "
        f"{report.region_integers} integers (quality regions), "
        f"{report.relaxation_integers} integers (control relaxation)"
    )

    # run the three compiled managers on identical input data
    batch = session.compare("numeric", "region", "relaxation", cycles=1, seed=3)
    print("\nmanager     qualities                              makespan  calls  safe")
    for name, run in batch.runs.items():
        outcome = run.outcomes[0]
        print(
            f"{name:11s} {''.join(str(q) for q in outcome.qualities):38s} "
            f"{outcome.makespan:7.1f}  {len(outcome.manager_invocations):5d}  "
            f"{run.all_deadlines_met}"
        )

    # the speed diagram of the region-managed cycle above (Figure 3/4 style)
    diagram = SpeedDiagram(system, deadlines, td_table=session.compile().td_table)
    outcome = batch["region"].outcomes[0]
    print("\nspeed diagram (diagonal, region borders, trajectory):\n")
    print(render_speed_diagram(diagram, outcome, width=64, height=18))


if __name__ == "__main__":
    main()
