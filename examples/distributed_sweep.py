#!/usr/bin/env python3
"""Distributed sweeps over a shared spool directory (``repro.runtime.remote``).

Shows the multi-machine fan-out end to end, self-contained on one machine:

1. configure ``Session.remote(spool=...)`` — work units become tiny files in
   a spool directory that any ``repro worker --spool DIR`` process (here: two
   local subprocesses spawned automatically) can claim and execute;
2. run a manager × seed grid through the spool and verify the fan-in is
   bit-identical to the serial baseline;
3. stream a manager comparison incrementally: ``compare(..., stream=True)``
   yields each ``(label, RunResult)`` the moment a worker finishes it.

On a real cluster the spool lives on a shared filesystem (NFS) and workers
run on other hosts — same code, plus ``docs/distributed-sweeps.md`` for the
operational runbook (lease timeouts, requeue semantics, artifact sync).

Run with ``python examples/distributed_sweep.py``.  The
``REPRO_EXAMPLE_CYCLES`` environment variable caps the per-scenario cycle
count (the documentation smoke tests set it).
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import Session
from repro.runtime import spawn_seeds

MANAGERS = ("relaxation", "region")
SCENARIOS_PER_MANAGER = 3
CYCLES = min(2, int(os.environ.get("REPRO_EXAMPLE_CYCLES", 2)))


def build_session(cache_dir: Path) -> Session:
    return (
        Session()
        .system("small")            # the QCIF encoder workload
        .machine("ipod")            # charge the paper's platform overhead
        .seed(0)
        .artifacts(cache_dir)       # workers hydrate from synced artifacts
    )


def build_grid() -> list[dict]:
    return [
        {"label": f"{manager}@{seed % 10_000}", "manager": manager,
         "seed": seed, "cycles": CYCLES}
        for manager in MANAGERS
        for seed in spawn_seeds(0, SCENARIOS_PER_MANAGER)
    ]


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-spool-") as tmp:
        cache_dir = Path(tmp) / "cache"
        spool = Path(tmp) / "spool"
        grid = build_grid()
        print(f"sweep: {len(grid)} scenarios x {CYCLES} cycles over spool {spool}\n")

        # -- serial baseline ------------------------------------------------
        serial = build_session(cache_dir).run_many(grid)

        # -- the same sweep fanned out over the spool -----------------------
        # local_workers=2 spawns two `repro worker` subprocesses for the run;
        # on a cluster you omit it and start workers on other hosts instead
        started = time.perf_counter()
        remote = (
            build_session(cache_dir)
            .remote(spool, local_workers=2, timeout=300.0)
            .run_many(grid)
        )
        print(f"spool fan-out (2 workers): {time.perf_counter() - started:5.1f} s")

        # -- bit-identical results ------------------------------------------
        assert set(serial.labels) == set(remote.labels)
        for label in serial.labels:
            for left, right in zip(serial[label].outcomes, remote[label].outcomes):
                np.testing.assert_array_equal(left.qualities, right.qualities)
                np.testing.assert_array_equal(left.durations, right.durations)
        print("serial and distributed sweeps are bit-identical\n")

        # -- streaming fan-in: results the moment workers finish them -------
        print("streaming compare (completion order):")
        session = build_session(cache_dir).remote(
            spool, local_workers=2, timeout=300.0
        )
        for label, run in session.compare("numeric", "region", "relaxation",
                                          cycles=CYCLES, stream=True):
            print(
                f"  {label:11s} mean quality {run.mean_quality:5.2f}  "
                f"misses {run.deadline_misses}"
            )


if __name__ == "__main__":
    main()
