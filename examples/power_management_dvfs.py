#!/usr/bin/env python3
"""Power management with speed diagrams (the paper's future-work direction).

Quality level is replaced by CPU frequency: the controller picks, before each
job of a cyclic task, the lowest frequency that still guarantees the cycle
deadline in the worst case — minimising energy without ever missing a
deadline.  Compares against running everything at the maximum frequency and
against a race-to-idle-style static middle frequency.

Run with ``python examples/power_management_dvfs.py``.  The
``REPRO_EXAMPLE_CYCLES`` environment variable caps the cycle count (the
documentation smoke tests set it).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import QualityManagerCompiler, audit_trace, run_cycle, run_fixed_quality
from repro.extensions import DvfsTask, FrequencyScale, build_dvfs_system, energy_of_outcome


def main() -> None:
    scale = FrequencyScale(frequencies=(200e6, 350e6, 500e6, 650e6, 800e6))
    task = DvfsTask.synthetic(250, seed=11, utilisation=0.55, max_frequency=800e6)
    system, deadlines = build_dvfs_system(task, scale, seed=11)
    controllers = QualityManagerCompiler().compile(system, deadlines)

    print(
        f"task: {task.n_actions} jobs per cycle, deadline {task.deadline * 1e3:.1f} ms, "
        f"frequencies {[f'{f/1e6:.0f}MHz' for f in scale.frequencies]}"
    )

    rng = np.random.default_rng(5)
    n_cycles = min(10, int(os.environ.get("REPRO_EXAMPLE_CYCLES", 10)))
    totals: dict[str, float] = {"managed": 0.0, "max-frequency": 0.0, "static-middle": 0.0}
    misses: dict[str, int] = {key: 0 for key in totals}

    for _ in range(n_cycles):
        scenario = system.draw_scenario(rng)
        runs = {
            "managed": run_cycle(system, controllers.relaxation, scenario=scenario),
            "max-frequency": run_fixed_quality(system, 0, scenario=scenario),
            "static-middle": run_fixed_quality(system, len(scale.frequencies) // 2, scenario=scenario),
        }
        for name, outcome in runs.items():
            totals[name] += energy_of_outcome(outcome, scale)
            if not audit_trace(outcome, deadlines).is_safe:
                misses[name] += 1

    print(f"\nenergy over {n_cycles} cycles (lower is better):")
    reference = totals["max-frequency"]
    for name, energy in totals.items():
        saving = 100.0 * (1.0 - energy / reference)
        print(
            f"  {name:14s} {energy:7.3f} J   saving vs max-frequency: {saving:5.1f} %   "
            f"deadline misses: {misses[name]}"
        )

    managed = run_cycle(system, controllers.relaxation, rng=np.random.default_rng(0))
    chosen_frequencies = [scale.frequency_of_level(int(level)) / 1e6 for level in managed.qualities]
    print(
        f"\nfrequencies chosen in one cycle: min {min(chosen_frequencies):.0f} MHz, "
        f"mean {np.mean(chosen_frequencies):.0f} MHz, max {max(chosen_frequencies):.0f} MHz"
    )


if __name__ == "__main__":
    main()
