#!/usr/bin/env python3
"""Controlling several tasks with one Quality Manager (future-work extension).

Composes a video-encoder task and a lighter audio-like task into one
hyper-cycle with per-task deadlines, compiles the symbolic controller for the
composed system (the multi-deadline ``t^D`` handles both deadlines at once)
and reports per-task quality and safety.

Run with ``python examples/multitask_control.py``.  The
``REPRO_EXAMPLE_CYCLES`` environment variable caps the cycle count (the
documentation smoke tests set it).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import QualityManagerCompiler, audit_trace, run_cycle
from repro.extensions import TaskSpec, compose_tasks, per_task_quality
from repro.media import small_encoder


def main() -> None:
    # task 1: a QCIF video frame (298 actions)
    video_system = small_encoder(seed=3).build_system()
    # task 2: an audio-like task — the same pipeline shape, 8x cheaper, truncated
    audio_system = video_system.truncated(120).rescaled(0.125)

    video_deadline = 8.0
    audio_deadline = 5.0
    composed = compose_tasks(
        [
            TaskSpec("video", video_system, deadline=video_deadline, block_size=12),
            TaskSpec("audio", audio_system, deadline=audio_deadline, block_size=4),
        ],
        interleaving="round_robin",
    )
    print(
        f"hyper-cycle: {composed.system.n_actions} actions, "
        f"deadlines: video {video_deadline:.1f} s (action {composed.task_last_action['video']}), "
        f"audio {audio_deadline:.1f} s (action {composed.task_last_action['audio']})"
    )

    controllers = QualityManagerCompiler(require_feasible=False).compile(
        composed.system, composed.deadlines
    )
    print(
        f"symbolic tables: {controllers.report.region_integers} region integers, "
        f"{controllers.report.relaxation_integers} relaxation integers"
    )

    rng = np.random.default_rng(2)
    n_cycles = min(5, int(os.environ.get("REPRO_EXAMPLE_CYCLES", 5)))
    print("\ncycle  video-quality  audio-quality  video-safe  audio-safe  calls")
    for cycle in range(n_cycles):
        outcome = run_cycle(composed.system, controllers.relaxation, rng=rng)
        audit = audit_trace(outcome, composed.deadlines)
        per_task = per_task_quality(composed, outcome)
        violated = {v.action_index for v in audit.violations}
        video_safe = composed.task_last_action["video"] not in violated
        audio_safe = composed.task_last_action["audio"] not in violated
        print(
            f"{cycle:5d}  {per_task['video']:13.2f}  {per_task['audio']:13.2f}  "
            f"{str(video_safe):10s}  {str(audio_safe):10s}  {len(outcome.manager_invocations):5d}"
        )


if __name__ == "__main__":
    main()
