#!/usr/bin/env python3
"""Parallel scenario sweeps with the persistent compiled-controller cache.

Shows the :mod:`repro.runtime` layer end to end:

1. enable the on-disk artifact cache (``Session.artifacts``) so symbolic
   compilation happens at most once per machine, not once per process;
2. build a manager × seed scenario grid (seeds derived with
   ``SeedSequence.spawn`` for well-separated streams);
3. run it serially, then through the process pool
   (``run_many(parallel=True)``) with a progress callback;
4. verify the two sweeps are bit-identical — the pool only changes *where*
   cycles run, never what they compute.

Run with ``python examples/parallel_sweep.py``.  The artifact cache lands in
a temporary directory here; real deployments use the default
``~/.cache/repro/compiled`` or point ``REPRO_CACHE_DIR`` somewhere shared.
The ``REPRO_EXAMPLE_CYCLES`` environment variable caps the per-scenario
cycle count (the documentation smoke tests set it).
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import format_table, run_session_sweep, sweep_table
from repro.api import Session
from repro.runtime import spawn_seeds

MANAGERS = ("relaxation", "region", "constant:level=4")
SCENARIOS_PER_MANAGER = 4
CYCLES = min(3, int(os.environ.get("REPRO_EXAMPLE_CYCLES", 3)))


def build_session(cache_dir: Path) -> Session:
    return (
        Session()
        .system("small")            # the QCIF encoder workload
        .machine("ipod")            # charge the paper's platform overhead
        .seed(0)
        .artifacts(cache_dir)       # persistent compiled-controller cache
    )


def build_grid() -> list[dict]:
    """Manager x seed scenario specs for ``Session.run_many``."""
    grid: list[dict] = []
    for manager in MANAGERS:
        for seed in spawn_seeds(0, SCENARIOS_PER_MANAGER):
            grid.append(
                {
                    "label": f"{manager}@{seed % 10_000}",
                    "manager": manager,
                    "seed": seed,
                    "cycles": CYCLES,
                }
            )
    return grid


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-cache-") as cache_dir:
        grid = build_grid()
        print(f"sweep: {len(grid)} scenarios x {CYCLES} cycles each\n")

        # -- serial baseline ------------------------------------------------
        started = time.perf_counter()
        serial = build_session(Path(cache_dir)).run_many(grid)
        serial_s = time.perf_counter() - started
        print(f"serial:   {serial_s * 1000.0:7.1f} ms")

        # -- the same sweep through the process pool ------------------------
        def progress(done: int, total: int, label: str) -> None:
            print(f"\r  pool progress: {done}/{total} ({label})", end="", flush=True)

        started = time.perf_counter()
        parallel = build_session(Path(cache_dir)).run_many(
            grid, parallel=True, workers=4, progress=progress
        )
        parallel_s = time.perf_counter() - started
        print(f"\nparallel: {parallel_s * 1000.0:7.1f} ms (4 workers, warm cache)")

        # -- bit-identical results ------------------------------------------
        assert serial.labels == parallel.labels
        for label in serial.labels:
            for left, right in zip(serial[label].outcomes, parallel[label].outcomes):
                np.testing.assert_array_equal(left.qualities, right.qualities)
                np.testing.assert_array_equal(left.durations, right.durations)
        print("serial and parallel sweeps are bit-identical\n")

        # -- tabulated metrics ----------------------------------------------
        points = run_session_sweep(build_session(Path(cache_dir)), grid, parallel=False)
        headers, rows = sweep_table(points)
        print(format_table(headers, rows, title="Per-scenario metrics"))


if __name__ == "__main__":
    main()
