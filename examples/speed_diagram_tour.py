#!/usr/bin/env python3
"""A guided tour of speed diagrams (Figures 3–6 of the paper).

Builds a small encoder cycle, then walks through the geometric objects the
paper defines: virtual time, ideal and optimal speeds, Proposition 1, quality
regions and control relaxation regions — printing the numbers and an ASCII
rendering of the diagram.

Run with ``python examples/speed_diagram_tour.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import render_speed_diagram
from repro.api import Session
from repro.core import SpeedDiagram


def main() -> None:
    session = Session().system("small").seed(2)
    system = session.resolved_system()
    deadlines = session.resolved_deadlines()
    controllers = session.compile()
    diagram = SpeedDiagram(system, deadlines, td_table=controllers.td_table)
    deadline = deadlines.final_deadline

    print(f"cycle: {system.n_actions} actions, deadline D = {deadline:.1f} s\n")

    # 1. ideal speeds: one constant slope per quality level
    print("ideal speeds v_idl(q) = D / C^av(a_1..a_n, q):")
    for q in system.qualities:
        print(f"  q={q}: v_idl = {diagram.ideal_speed(q):.3f}")

    # 2. optimal speed and Proposition 1 at a mid-cycle state
    state = system.n_actions // 2
    time = deadline * 0.45
    print(f"\nat state s_{state} with actual time t = {time:.2f} s:")
    for q in system.qualities:
        a = diagram.assess(state, time, q)
        verdict = "admissible" if a.constraint_admissible else "too slow  "
        print(
            f"  q={q}: v_idl={a.ideal_speed:6.3f}  v_opt={a.optimal_speed:6.3f}  "
            f"{verdict}  (Proposition 1 agrees: {a.proposition1_agrees})"
        )
    print(f"  chosen quality (max admissible): {diagram.choose_quality(state, time)}")

    # 3. quality regions at that state (Proposition 2)
    print(f"\nquality regions at state s_{state} (intervals of actual time):")
    regions = controllers.region.regions
    for q in system.qualities:
        lower, upper = regions.bounds(state, q)
        lower_text = "-inf" if not np.isfinite(lower) else f"{lower:7.2f}"
        print(f"  R_{q}: ( {lower_text} , {upper:7.2f} ]")

    # 4. control relaxation regions (Proposition 3)
    relaxation = controllers.relaxation.relaxation
    q = diagram.choose_quality(state, time)
    print(f"\ncontrol relaxation regions R^r_{q} at state s_{state}:")
    for r in relaxation.steps:
        lower, upper = relaxation.bounds(state, q, r)
        if not np.isfinite(upper):
            print(f"  r={r:3d}: empty (fewer than r actions remain)")
            continue
        inside = "  <-- current state inside" if lower < time <= upper else ""
        lower_text = "-inf" if not np.isfinite(lower) else f"{lower:7.2f}"
        print(f"  r={r:3d}: ( {lower_text} , {upper:7.2f} ]{inside}")
    print(
        f"  => the manager can be switched off for "
        f"{relaxation.max_relaxation(state, time, q)} step(s) from here"
    )

    # 5. the full diagram with an executed trajectory
    outcome = next(session.manager("relaxation").stream(1, seed=1))
    print("\nspeed diagram of one executed cycle:\n")
    print(render_speed_diagram(diagram, outcome, qualities_to_show=[0, 3, 6], width=70, height=20))


if __name__ == "__main__":
    main()
