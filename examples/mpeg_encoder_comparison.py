#!/usr/bin/env python3
"""The paper's experiment in miniature: symbolic vs numeric quality management.

Builds the MPEG-like encoder workload (CIF frames, 1,189 actions per frame,
7 quality levels, 30 s per-frame deadline), compiles the three Quality
Managers of §4.1 and runs them over a short frame sequence on the iPod-like
virtual platform, printing the §4.2 overhead table and the Figure 7 series.

Run with ``python examples/mpeg_encoder_comparison.py [n_frames]``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import (
    compute_metrics,
    memory_report,
    overhead_report,
    sparkline,
)
from repro.core import QualityManagerCompiler
from repro.media import paper_encoder
from repro.platform import PlatformExecutor, ipod_video, relaxation_steps_used


def main(n_frames: int = 8) -> None:
    workload = paper_encoder(seed=0).with_overrides(n_frames=n_frames)
    system = workload.build_system()
    deadlines = workload.deadlines()
    print(
        f"encoder: {system.n_actions} actions/frame, {len(system.qualities)} quality levels, "
        f"deadline {workload.deadline:.0f} s/frame, {n_frames} frames"
    )

    controllers = QualityManagerCompiler().compile(system, deadlines)
    print()
    print(memory_report(controllers.report))

    executor = PlatformExecutor(ipod_video())
    results = executor.compare(system, deadlines, controllers.managers(), n_cycles=n_frames, seed=1)
    metrics = {
        name: compute_metrics(result.outcomes, deadlines) for name, result in results.items()
    }
    print()
    print(overhead_report(metrics))

    print("\naverage quality level per frame (Figure 7):")
    for name, result in results.items():
        series = result.mean_quality_per_cycle
        print(f"  {name:11s} {sparkline(series, width=40)}   mean {series.mean():.2f}")

    relaxed = results["relaxation"].outcomes[0]
    steps = relaxation_steps_used(relaxed)
    print(
        f"\ncontrol relaxation on frame 0: {len(steps)} manager calls for "
        f"{relaxed.n_actions} actions; step counts used: {sorted(set(int(s) for s in steps))}"
    )


if __name__ == "__main__":
    frames = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    main(frames)
