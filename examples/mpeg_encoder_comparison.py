#!/usr/bin/env python3
"""The paper's experiment in miniature: symbolic vs numeric quality management.

Builds the MPEG-like encoder workload (CIF frames, 1,189 actions per frame,
7 quality levels, 30 s per-frame deadline), compiles the three Quality
Managers of §4.1 and runs them over a short frame sequence on the iPod-like
virtual platform, printing the §4.2 overhead table and the Figure 7 series.

Run with ``python examples/mpeg_encoder_comparison.py [n_frames]``.  The
``REPRO_EXAMPLE_CYCLES`` environment variable caps the frame count (the
documentation smoke tests set it to keep every example minimal).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import memory_report, overhead_report, sparkline
from repro.api import Session
from repro.media import paper_encoder
from repro.platform import relaxation_steps_used


def main(n_frames: int = 8) -> None:
    n_frames = min(n_frames, int(os.environ.get("REPRO_EXAMPLE_CYCLES", n_frames)))
    workload = paper_encoder(seed=0).with_overrides(n_frames=n_frames)
    session = Session().system(workload).machine("ipod").seed(1)
    system = session.resolved_system()
    print(
        f"encoder: {system.n_actions} actions/frame, {len(system.qualities)} quality levels, "
        f"deadline {workload.deadline:.0f} s/frame, {n_frames} frames"
    )

    print()
    print(memory_report(session.compile().report))

    # identical per-frame scenarios for the three compiled managers
    batch = session.compare(cycles=n_frames, seed=1)
    print()
    print(overhead_report(batch.metrics))

    print("\naverage quality level per frame (Figure 7):")
    for name, run in batch.runs.items():
        series = run.mean_quality_per_cycle
        print(f"  {name:11s} {sparkline(series, width=40)}   mean {series.mean():.2f}")

    relaxed = batch["relaxation"].outcomes[0]
    steps = relaxation_steps_used(relaxed)
    print(
        f"\ncontrol relaxation on frame 0: {len(steps)} manager calls for "
        f"{relaxed.n_actions} actions; step counts used: {sorted(set(int(s) for s in steps))}"
    )


if __name__ == "__main__":
    frames = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    main(frames)
