"""Streaming chunked execution: constant-memory cycle batches.

The columnar pipeline of :mod:`repro.core.engine` materialises the full
scenario tensor and one :class:`~repro.core.system.CycleOutcome` per cycle —
at paper scale 4,096 cycles already cost hundreds of megabytes, which rules
out million-cycle runs by construction.  This module applies the paper's
"combine" step incrementally inside a single run: the engine pulls
fixed-size :class:`~repro.core.timing.ScenarioBatch` chunks (drawn through
the sampler's replayable stream, or sliced zero-copy from a caller-supplied
batch), executes each chunk through the compiled kernel spec, and folds the
outcome arrays into a mergeable :class:`StreamingMetrics` accumulator —
running counts and sums, a per-level quality histogram, and a power-of-two
:class:`QuantileSketch` over per-cycle makespans — instead of retaining
per-cycle arrays.

Determinism contract: the accumulated metrics are **bit-identical** to the
materialised path at any ``chunk_size``.  Exactness comes in three flavours:

* integer folds (quality histogram, deadline misses, manager calls) are
  exact, so chunking cannot move them;
* floating-point folds (total time, total overhead, per-cycle smoothness)
  are strict left-to-right folds over per-cycle scalars, and a left fold
  over concatenated chunks equals the fold over the whole stream;
* the per-cycle scalars themselves are computed by the same NumPy
  expressions in the chunked and materialised paths
  (:func:`repro.analysis.metrics.compute_metrics` delegates to this
  accumulator), so both paths share one code path by construction.

Quantiles are the exception: the sketch answers them within a gated
relative error (:attr:`QuantileSketch.relative_error`), never exactly.

Carry-over state threads across chunk boundaries naturally: the RNG
generator and sampler cursor advance chunk by chunk exactly as they would
cycle by cycle (the documented contract of
:meth:`~repro.core.timing.TimingModel.sample_scenarios`), the kernel is
compiled once and its invocation accounting replayed per chunk, and the
managers themselves reset at every cycle boundary by the engine's own
semantics — so no decision state survives a cycle, let alone a chunk.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.obs.metrics import registry as _obs_registry
from repro.obs.state import enabled as _obs_enabled

from .controller import OverheadModelProtocol, run_cycle
from .deadlines import DeadlineFunction
from .engine import (
    EngineError,
    coerce_vectorize_mode,
    compile_decision_kernel,
    run_lockstep_arrays,
    scenarios_vectorizable,
    _scenario_tensor,
)
from .manager import QualityManager
from .system import CycleOutcome, ParameterizedSystem
from .timing import ActualTimeScenario, ScenarioBatch

__all__ = [
    "QuantileSketch",
    "StreamingMetrics",
    "run_cycles_streamed",
]


class QuantileSketch:
    """A mergeable power-of-two histogram sketch over non-negative values.

    Buckets are addressed by the binary exponent of the value (the
    ``math.frexp`` decomposition, the same bucketing idea as
    :func:`repro.obs.metrics.bucket_exponent`) refined by ``resolution``
    linear sub-buckets per octave, so any answered quantile lies within a
    relative error of ``1 / resolution`` of a true order statistic.  Counts
    are exact integers, which makes merging two sketches exact and
    order-independent.
    """

    __slots__ = ("_resolution", "_buckets", "_nonpositive", "_count")

    def __init__(self, resolution: int = 512) -> None:
        resolution = int(resolution)
        if resolution < 2 or resolution & (resolution - 1):
            raise ValueError(
                f"sketch resolution must be a power of two >= 2, got {resolution}"
            )
        self._resolution = resolution
        self._buckets: dict[int, int] = {}
        self._nonpositive = 0
        self._count = 0

    @property
    def resolution(self) -> int:
        """Linear sub-buckets per octave."""
        return self._resolution

    @property
    def count(self) -> int:
        """Number of values added so far."""
        return self._count

    @property
    def relative_error(self) -> float:
        """Worst-case relative error of an answered quantile."""
        return 1.0 / self._resolution

    def add(self, value: float) -> None:
        """Add one value."""
        self.add_array(np.array([value], dtype=np.float64))

    def add_array(self, values: np.ndarray) -> None:
        """Add a batch of values in one vectorised pass."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        positive = values > 0.0
        n_positive = int(np.count_nonzero(positive))
        self._count += int(values.size)
        self._nonpositive += int(values.size) - n_positive
        if not n_positive:
            return
        mantissa, exponent = np.frexp(values[positive])
        sub = ((mantissa - 0.5) * (2 * self._resolution)).astype(np.int64)
        np.clip(sub, 0, self._resolution - 1, out=sub)
        keys = exponent.astype(np.int64) * self._resolution + sub
        unique, counts = np.unique(keys, return_counts=True)
        buckets = self._buckets
        for key, count in zip(unique.tolist(), counts.tolist()):
            buckets[key] = buckets.get(key, 0) + count

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch into this one (exact — counts are integers)."""
        if other._resolution != self._resolution:
            raise ValueError(
                f"cannot merge sketches of resolution {self._resolution} "
                f"and {other._resolution}"
            )
        self._count += other._count
        self._nonpositive += other._nonpositive
        buckets = self._buckets
        for key, count in other._buckets.items():
            buckets[key] = buckets.get(key, 0) + count

    def _order_stat(self, k: int, ordered: list[int]) -> float:
        """Midpoint of the bucket holding the 0-based ``k``-th order statistic."""
        if k < self._nonpositive:
            return 0.0
        running = self._nonpositive
        for key in ordered:
            running += self._buckets[key]
            if k < running:
                exponent, sub = divmod(key, self._resolution)
                lower = math.ldexp(0.5 * (1.0 + sub / self._resolution), exponent)
                width = math.ldexp(0.5 / self._resolution, exponent)
                return lower + 0.5 * width
        raise AssertionError("order statistic beyond accumulated count")

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (linear interpolation between order stats).

        Matches :func:`numpy.quantile` semantics up to the sketch's
        :attr:`relative_error`.  Raises :class:`ValueError` on an empty
        sketch or a ``q`` outside ``[0, 1]``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q}")
        if not self._count:
            raise ValueError("cannot take a quantile of an empty sketch")
        ordered = sorted(self._buckets)
        rank = q * (self._count - 1)
        low = int(math.floor(rank))
        high = min(low + 1, self._count - 1)
        value_low = self._order_stat(low, ordered)
        if high == low:
            return value_low
        value_high = self._order_stat(high, ordered)
        return value_low + (rank - low) * (value_high - value_low)


class StreamingMetrics:
    """A mergeable, deadline-aware accumulator over executed cycles.

    The streaming analogue of a ``tuple[CycleOutcome, ...]``: chunks of
    outcome arrays (or individual outcomes) fold into running aggregates
    from which :meth:`metrics` derives the exact
    :class:`~repro.analysis.metrics.QualityMetrics` of the run.  The
    materialised path delegates here too
    (:func:`repro.analysis.metrics.compute_metrics` folds its outcomes
    through :meth:`update_outcome`), so streamed and materialised metrics
    are bit-identical by construction.

    Picklable: a worker streams a million cycles and ships back this
    accumulator — a few integers, floats, one small histogram and one
    sketch — instead of the outcome tensors.  :meth:`merge` combines
    accumulators from disjoint cycle ranges; integer counts, the quality
    histogram and the makespan sketch merge exactly, the floating-point
    folds merge by ordinary addition (associativity reordering at the
    merge boundary, ulp-level).
    """

    __slots__ = (
        "_deadlines",
        "_n_cycles",
        "_n_actions",
        "_level_counts",
        "_smoothness_sum",
        "_total_time",
        "_total_overhead",
        "_misses",
        "_worst_lateness",
        "_manager_calls",
        "_makespans",
    )

    def __init__(
        self, deadlines: DeadlineFunction, *, sketch_resolution: int = 512
    ) -> None:
        self._deadlines = deadlines
        self._n_cycles = 0
        self._n_actions: int | None = None
        self._level_counts: dict[int, int] = {}
        self._smoothness_sum = 0.0
        self._total_time = 0.0
        self._total_overhead = 0.0
        self._misses = 0
        self._worst_lateness = 0.0
        self._manager_calls = 0
        self._makespans = QuantileSketch(sketch_resolution)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def deadlines(self) -> DeadlineFunction:
        """The deadline function the misses are audited against."""
        return self._deadlines

    @property
    def n_cycles(self) -> int:
        """Cycles folded in so far."""
        return self._n_cycles

    @property
    def n_actions(self) -> int | None:
        """Actions per cycle (``None`` until the first fold)."""
        return self._n_actions

    @property
    def quality_level_counts(self) -> dict[int, int]:
        """Action counts per chosen quality level, over all folded cycles."""
        return dict(sorted(self._level_counts.items()))

    def makespan_quantile(self, q: float) -> float:
        """Approximate quantile of the per-cycle makespans (sketch-backed)."""
        return self._makespans.quantile(q)

    @property
    def makespan_sketch(self) -> QuantileSketch:
        """The underlying per-cycle makespan sketch."""
        return self._makespans

    # ------------------------------------------------------------------ #
    # folds
    # ------------------------------------------------------------------ #
    def _fold_actions(self, n_actions: int) -> None:
        if self._n_actions is None:
            self._n_actions = int(n_actions)

    def _fold_levels(self, qualities: np.ndarray) -> None:
        levels, counts = np.unique(qualities, return_counts=True)
        level_counts = self._level_counts
        for level, count in zip(levels.tolist(), counts.tolist()):
            level_counts[level] = level_counts.get(level, 0) + count

    def _audit_columns(self, n_actions: int) -> tuple[np.ndarray, np.ndarray]:
        indices = self._deadlines.indices
        within = indices <= n_actions
        return indices[within], self._deadlines.values[within]

    def update_chunk(
        self,
        qualities: np.ndarray,
        completion: np.ndarray,
        invoked: np.ndarray,
        invocation_overheads: np.ndarray,
    ) -> None:
        """Fold one chunk of lockstep outcome arrays.

        ``qualities``/``completion`` have shape ``(n_cycles, n_actions)``;
        ``invoked``/``invocation_overheads`` have shape
        ``(n_actions, n_cycles)`` — the layout produced by
        :func:`repro.core.engine.run_lockstep_arrays`.
        """
        n_cycles, n_actions = qualities.shape
        if not n_cycles:
            return
        self._fold_actions(n_actions)
        self._n_cycles += n_cycles
        self._fold_levels(qualities)
        # per-cycle smoothness, computed row-wise by the same expression as
        # smoothness_index and folded strictly left-to-right
        if n_actions >= 2:
            per_cycle = np.abs(np.diff(qualities.astype(np.float64), axis=1)).mean(
                axis=1
            )
        else:
            per_cycle = np.zeros(n_cycles, dtype=np.float64)
        smoothness = self._smoothness_sum
        for value in per_cycle.tolist():
            smoothness += value
        self._smoothness_sum = smoothness
        # per-cycle makespans: a left fold plus the quantile sketch
        if n_actions:
            makespans = completion[:, -1]
        else:
            makespans = np.zeros(n_cycles, dtype=np.float64)
        total_time = self._total_time
        for value in makespans.tolist():
            total_time += value
        self._total_time = total_time
        self._makespans.add_array(makespans)
        # per-cycle overhead: sum the compressed invocation column exactly as
        # CycleOutcome.total_overhead does (masked order matters for the
        # pairwise summation); an all-zero chunk folds +0.0 per cycle, which
        # leaves the running total bit-unchanged, so it is skipped wholesale
        if invocation_overheads.size and np.any(invocation_overheads):
            total_overhead = self._total_overhead
            for cycle in range(n_cycles):
                mask = invoked[:, cycle]
                total_overhead += float(invocation_overheads[mask, cycle].sum())
            self._total_overhead = total_overhead
        # deadline audit, vectorised over the chunk (the max fold over
        # lateness is order-invariant, the miss count is an exact integer)
        indices, values = self._audit_columns(n_actions)
        if indices.size:
            checked = completion[:, indices - 1]
            late = checked > values + 1e-9
            n_late = int(np.count_nonzero(late))
            if n_late:
                self._misses += n_late
                lateness = (checked - values)[late]
                self._worst_lateness = max(
                    self._worst_lateness, float(lateness.max())
                )
        self._manager_calls += int(np.count_nonzero(invoked))

    def update_outcome(self, outcome: CycleOutcome) -> None:
        """Fold one executed cycle (the scalar and materialised paths)."""
        self._fold_actions(outcome.n_actions)
        self._n_cycles += 1
        self._fold_levels(outcome.qualities)
        qualities = outcome.qualities
        if qualities.shape[0] >= 2:
            smoothness = float(np.abs(np.diff(qualities.astype(np.float64))).mean())
        else:
            smoothness = 0.0
        self._smoothness_sum += smoothness
        makespan = outcome.makespan
        self._total_time += makespan
        self._makespans.add(makespan)
        self._total_overhead += outcome.total_overhead
        indices, values = self._audit_columns(outcome.n_actions)
        if indices.size:
            checked = outcome.completion_times[indices - 1]
            late = checked > values + 1e-9
            n_late = int(np.count_nonzero(late))
            if n_late:
                self._misses += n_late
                lateness = (checked - values)[late]
                self._worst_lateness = max(
                    self._worst_lateness, float(lateness.max())
                )
        self._manager_calls += int(outcome.manager_invocations.shape[0])

    def merge(self, other: "StreamingMetrics") -> None:
        """Fold another accumulator (a disjoint cycle range) into this one."""
        if other._deadlines != self._deadlines:
            raise ValueError(
                "cannot merge streaming accumulators audited against "
                "different deadline functions"
            )
        if not other._n_cycles:
            return
        self._fold_actions(other._n_actions or 0)
        self._n_cycles += other._n_cycles
        level_counts = self._level_counts
        for level, count in other._level_counts.items():
            level_counts[level] = level_counts.get(level, 0) + count
        self._smoothness_sum += other._smoothness_sum
        self._total_time += other._total_time
        self._total_overhead += other._total_overhead
        self._misses += other._misses
        self._worst_lateness = max(self._worst_lateness, other._worst_lateness)
        self._manager_calls += other._manager_calls
        self._makespans.merge(other._makespans)

    # ------------------------------------------------------------------ #
    # finalisation
    # ------------------------------------------------------------------ #
    def metrics(self):
        """The :class:`~repro.analysis.metrics.QualityMetrics` of the stream.

        Raises :class:`ValueError` when no cycle has been folded in, matching
        :func:`~repro.analysis.metrics.compute_metrics` on an empty run.
        """
        # imported lazily: analysis.metrics imports this module at load time
        from repro.analysis.metrics import QualityMetrics

        if not self._n_cycles:
            raise ValueError("compute_metrics needs at least one cycle outcome")
        # iterate the histogram sorted by level: the chunked and per-cycle
        # folds insert keys in different orders, and the float variance sum
        # must run in one canonical order to stay bit-identical
        ordered = sorted(self._level_counts.items())
        count = sum(n for _, n in ordered)
        total = sum(level * n for level, n in ordered)
        mean = float(total) / count
        variance = sum(n * (level - mean) ** 2 for level, n in ordered) / count
        budget = self._deadlines.final_deadline * self._n_cycles
        return QualityMetrics(
            n_cycles=self._n_cycles,
            n_actions=int(self._n_actions or 0),
            mean_quality=mean,
            std_quality=math.sqrt(variance),
            min_quality=int(min(self._level_counts)),
            max_quality=int(max(self._level_counts)),
            smoothness=self._smoothness_sum / self._n_cycles,
            utilisation=self._total_time / budget if budget > 0 else 0.0,
            deadline_misses=self._misses,
            worst_lateness=self._worst_lateness,
            overhead_seconds=self._total_overhead,
            overhead_fraction=(
                self._total_overhead / self._total_time
                if self._total_time > 0
                else 0.0
            ),
            manager_calls=self._manager_calls,
        )


def run_cycles_streamed(
    system: ParameterizedSystem,
    manager: QualityManager,
    cycles: int | None = None,
    *,
    deadlines: DeadlineFunction,
    chunk_size: int,
    scenarios: ScenarioBatch | Sequence[ActualTimeScenario] | None = None,
    rng: np.random.Generator | None = None,
    overhead_model: OverheadModelProtocol | None = None,
    vectorize: object = "auto",
    backend: str | None = None,
) -> StreamingMetrics:
    """Execute cycles in fixed-size chunks, folding into a stream summary.

    The streaming counterpart of :func:`~repro.core.engine.run_cycles_batch`:
    same draw semantics (one RNG threaded through per-chunk
    :meth:`~repro.core.system.ParameterizedSystem.draw_scenarios` calls is
    bit-identical to one up-front draw), same ``vectorize``/``backend``
    switches, same scalar fallback — but at no point does the full scenario
    tensor or a per-cycle outcome list exist.  Caller-supplied ``scenarios``
    are consumed chunk by chunk as zero-copy slices.  Returns the
    :class:`StreamingMetrics` accumulator; its :meth:`~StreamingMetrics.metrics`
    are bit-identical to the materialised path at any ``chunk_size``.
    """
    mode = coerce_vectorize_mode(vectorize)
    chunk = int(chunk_size)
    if chunk < 1:
        raise EngineError(f"chunk_size must be >= 1, got {chunk_size}")
    generator = rng
    if scenarios is None:
        if cycles is None:
            raise EngineError("pass a cycle count or an explicit scenario batch")
        if int(cycles) < 0:
            raise EngineError(f"cycles must be >= 0, got {cycles}")
        n_cycles = int(cycles)
        if generator is None:
            generator = np.random.default_rng(0)
    else:
        if not isinstance(scenarios, ScenarioBatch):
            scenarios = tuple(scenarios)
        n_cycles = len(scenarios)
        if cycles is not None and n_cycles != int(cycles):
            raise EngineError(f"expected {cycles} scenarios, got {n_cycles}")
    kernel = None
    if mode != "never":
        kernel = compile_decision_kernel(manager, overhead_model, backend)
        if kernel is None and mode == "always":
            raise EngineError(
                f"manager {manager.name!r} (with this overhead model) has no "
                "vectorised decision kernel"
            )
        if (
            kernel is not None
            and scenarios is not None
            and not scenarios_vectorizable(system, scenarios)
        ):
            if mode == "always":
                raise EngineError(
                    "vectorised execution requires scenarios drawn for the "
                    "system's quality set"
                )
            kernel = None  # the scalar loop handles foreign quality sets
    accumulator = StreamingMetrics(deadlines)
    mode_label = "vectorized" if kernel is not None else "scalar"
    if _obs_enabled():
        registry = _obs_registry()
        registry.inc(f"engine.batches.{mode_label}.{type(manager).__name__}")
        registry.inc(f"engine.cycles.{mode_label}", n_cycles)
        registry.inc("engine.cycles.streamed", n_cycles)
        if kernel is None:
            registry.inc(f"engine.scalar_fallback.{type(manager).__name__}")
    chunks = 0
    peak_chunk_bytes = 0
    start = 0
    while start < n_cycles:
        stop = min(start + chunk, n_cycles)
        if scenarios is None:
            batch = system.draw_scenarios(stop - start, generator)
        else:
            batch = scenarios[start:stop]
        chunks += 1
        if isinstance(batch, ScenarioBatch):
            peak_chunk_bytes = max(peak_chunk_bytes, batch.nbytes())
        if kernel is not None:
            matrices = _scenario_tensor(system, batch)
            qualities, _, completion, invoked, overheads = run_lockstep_arrays(
                system, manager, kernel, matrices, overhead_model
            )
            accumulator.update_chunk(qualities, completion, invoked, overheads)
        else:
            for scenario in batch:
                accumulator.update_outcome(
                    run_cycle(
                        system,
                        manager,
                        scenario=scenario,
                        overhead_model=overhead_model,
                    )
                )
        start = stop
    if _obs_enabled():
        registry = _obs_registry()
        registry.inc("engine.chunks", chunks)
        registry.set("engine.peak_chunk_bytes", float(peak_chunk_bytes))
    return accumulator
