"""Fundamental types of the quality-management model.

The paper models the application software as an *already scheduled* finite
sequence of actions ``a_1 .. a_n`` (Definition 1).  Each action is an atomic
block of code whose execution time depends on a per-action integer *quality
level*.  This module defines the small, immutable value objects shared by the
rest of the library:

* :class:`Action` — a named, indexed action of the scheduled sequence.
* :class:`ScheduledSequence` — the ordered action sequence ``(A, S)``.
* :class:`SystemState` — a point ``(s_i, t_i)`` of the timed execution.
* :class:`QualitySet` — the finite, contiguous set of integer quality levels.
* Exceptions raised by the library.

Design note: indices follow the paper's convention.  State ``s_0`` is the
initial state (no action executed yet); executing action ``a_i`` (1-based)
moves the system from ``s_{i-1}`` to ``s_i``.  Internally arrays are 0-based;
``state_index`` ``i`` always means "``i`` actions have completed".
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, field
from typing import Iterator, Sequence

__all__ = [
    "Action",
    "ScheduledSequence",
    "SystemState",
    "QualitySet",
    "QualityManagementError",
    "InfeasibleSystemError",
    "DeadlineMissError",
    "InvalidTimingError",
]


class QualityManagementError(Exception):
    """Base class for all errors raised by the quality-management library."""


class InfeasibleSystemError(QualityManagementError):
    """Raised when no quality assignment can meet the deadlines.

    The mixed policy guarantees safety only if running every remaining action
    at the minimal quality level meets every remaining deadline from the
    initial state.  When that pre-condition fails the system is infeasible and
    the compiler / manager refuses to produce a controller.
    """


class DeadlineMissError(QualityManagementError):
    """Raised by the trace auditor when a produced trace misses a deadline."""


class InvalidTimingError(QualityManagementError):
    """Raised when a timing function violates the model's assumptions.

    The model requires execution times to be non-negative, non-decreasing in
    the quality level, and the actual execution time to be bounded by the
    worst case (``C(a, q) <= C^wc(a, q)``).
    """


@dataclass(frozen=True, slots=True)
class Action:
    """A single atomic action of the scheduled application software.

    Parameters
    ----------
    index:
        1-based position of the action in the scheduled sequence (the paper's
        subscript ``i`` of ``a_i``).
    name:
        Human-readable identifier, e.g. ``"frame3/mb42/dct"``.
    group:
        Optional label of the larger unit the action belongs to (a frame, a
        macroblock, a pipeline stage).  Used only for reporting.
    """

    index: int
    name: str
    group: str = ""

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError(f"action index must be >= 1, got {self.index}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name or f"a{self.index}"


@dataclass(frozen=True, slots=True)
class SystemState:
    """A timed state ``(s_i, t_i)`` of a parameterized system.

    ``index`` is the number of actions already completed (so ``index == 0``
    is the initial state and ``index == n`` the final state of a cycle).
    ``time`` is the actual elapsed time ``t_i`` since the start of the cycle.
    """

    index: int
    time: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"state index must be >= 0, got {self.index}")
        if self.time < 0.0:
            raise ValueError(f"state time must be >= 0, got {self.time}")

    def advanced(self, elapsed: float) -> "SystemState":
        """Return the successor state after one action taking ``elapsed`` time."""
        return SystemState(self.index + 1, self.time + elapsed)


class QualitySet:
    """The finite set of integer quality levels ``Q = {q_min, .., q_max}``.

    The paper assumes a finite set of integer quality levels; execution times
    are non-decreasing in the level.  The set is contiguous, which matches the
    paper's experiments (``Q = {0..6}``) and keeps region tables dense.

    Parameters
    ----------
    minimum:
        Smallest (cheapest, lowest-quality) level ``q_min``.
    maximum:
        Largest (most expensive, highest-quality) level ``q_max``.
    """

    __slots__ = ("_minimum", "_maximum")

    def __init__(self, minimum: int, maximum: int) -> None:
        if maximum < minimum:
            raise ValueError(
                f"quality set requires maximum >= minimum, got [{minimum}, {maximum}]"
            )
        self._minimum = int(minimum)
        self._maximum = int(maximum)

    @classmethod
    def of_size(cls, count: int, *, start: int = 0) -> "QualitySet":
        """Build a quality set of ``count`` consecutive levels starting at ``start``."""
        if count < 1:
            raise ValueError(f"quality set needs at least one level, got {count}")
        return cls(start, start + count - 1)

    @property
    def minimum(self) -> int:
        """The minimal quality level ``q_min`` (used by the safe policy)."""
        return self._minimum

    @property
    def maximum(self) -> int:
        """The maximal quality level ``q_max``."""
        return self._maximum

    def __len__(self) -> int:
        return self._maximum - self._minimum + 1

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._minimum, self._maximum + 1))

    def __contains__(self, level: object) -> bool:
        if isinstance(level, bool) or not isinstance(level, numbers.Integral):
            return False
        return self._minimum <= int(level) <= self._maximum

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, QualitySet)
            and other._minimum == self._minimum
            and other._maximum == self._maximum
        )

    def __hash__(self) -> int:
        return hash((self._minimum, self._maximum))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"QualitySet({self._minimum}, {self._maximum})"

    def clamp(self, level: int) -> int:
        """Clamp an arbitrary integer into the quality set."""
        return max(self._minimum, min(self._maximum, int(level)))

    def index_of(self, level: int) -> int:
        """0-based array index of a quality level (used by the tables)."""
        if level not in self:
            raise ValueError(f"quality level {level} not in {self!r}")
        return level - self._minimum

    def level_at(self, index: int) -> int:
        """Inverse of :meth:`index_of`."""
        if not 0 <= index < len(self):
            raise ValueError(f"quality index {index} out of range for {self!r}")
        return self._minimum + index

    def levels(self) -> list[int]:
        """All levels as a list, lowest first."""
        return list(self)


@dataclass(frozen=True)
class ScheduledSequence:
    """The scheduled application software ``(A, S)``: an ordered action list.

    The sequence owns the actions in execution order.  It is deliberately a
    thin container — timing information lives in the
    :class:`~repro.core.timing.ExecutionTimeFunction` objects and deadline
    information in :class:`~repro.core.deadlines.DeadlineFunction` so that the
    same action sequence can be profiled on several platforms.
    """

    actions: tuple[Action, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for position, action in enumerate(self.actions, start=1):
            if action.index != position:
                raise ValueError(
                    "actions must be numbered consecutively from 1: "
                    f"position {position} holds action index {action.index}"
                )

    @classmethod
    def from_names(cls, names: Sequence[str], *, group: str = "") -> "ScheduledSequence":
        """Build a sequence from action names, indexing them 1..n."""
        return cls(
            tuple(Action(index=i, name=name, group=group) for i, name in enumerate(names, 1))
        )

    @classmethod
    def uniform(cls, count: int, *, prefix: str = "a") -> "ScheduledSequence":
        """Build a sequence of ``count`` synthetic actions named ``prefix1..prefixN``."""
        if count < 1:
            raise ValueError(f"a scheduled sequence needs at least one action, got {count}")
        return cls.from_names([f"{prefix}{i}" for i in range(1, count + 1)])

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self) -> Iterator[Action]:
        return iter(self.actions)

    def __getitem__(self, index_1based: int) -> Action:
        """Return action ``a_i`` using the paper's 1-based indexing."""
        if not 1 <= index_1based <= len(self.actions):
            raise IndexError(
                f"action index {index_1based} out of range 1..{len(self.actions)}"
            )
        return self.actions[index_1based - 1]

    def names(self) -> list[str]:
        """All action names in execution order."""
        return [action.name for action in self.actions]

    def groups(self) -> list[str]:
        """Group label of every action in execution order."""
        return [action.group for action in self.actions]
