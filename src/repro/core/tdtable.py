"""The ``t^D`` table — the central object of the quality-management policy.

For a policy ``C^D`` and a deadline function ``D``, the paper defines

    ``t^D(s_i, q) = min_{i+1 <= k <= n, a_k constrained} D(a_k) - C^D(a_{i+1} .. a_k, q)``

as the latest actual time at state ``s_i`` (i.e. after ``i`` completed
actions) from which completing the rest of the cycle at quality ``q`` is
still estimated to meet every remaining deadline.  The Quality Manager picks
``max { q | t^D(s_i, q) >= t_i }``.

Key properties relied on throughout the library (and checked by the test
suite):

* ``t^D(s_i, q)`` is non-increasing in ``q`` (higher quality, less slack);
* for the mixed policy, ``t^D(s_i, q)`` is non-decreasing in ``i`` along a
  cycle (as work gets done, the latest admissible start time moves right) —
  this is what makes Proposition 3's relaxation lower bound tight;
* the quality regions of Proposition 2 are exactly the intervals between
  consecutive ``t^D`` values at one state.

The table is computed once per (system, deadlines, policy) triple with
vectorised suffix scans: ``O(|A| * |Q| * |deadlines|)`` time, ``O(|A| * |Q|)``
memory.
"""

from __future__ import annotations

import numpy as np

from .deadlines import DeadlineFunction
from .policy import MixedPolicy, QualityManagementPolicy
from .system import ParameterizedSystem
from .types import InfeasibleSystemError

__all__ = ["TDTable", "compute_td_table"]


class TDTable:
    """Dense table of ``t^D(s_i, q)`` values.

    ``values[qi, i]`` holds ``t^D(s_i, q)`` for the quality level with row
    index ``qi`` and the state with ``i`` completed actions,
    ``i = 0 .. n-1`` (state ``n`` has no next action, hence no column).

    The table also implements the numeric Quality Manager's choice rule and
    is the raw material from which quality regions (Proposition 2) and
    control relaxation regions (Proposition 3) are derived.
    """

    __slots__ = ("_system", "_deadlines", "_policy", "_values")

    def __init__(
        self,
        system: ParameterizedSystem,
        deadlines: DeadlineFunction,
        policy: QualityManagementPolicy,
        values: np.ndarray,
    ) -> None:
        expected = (len(system.qualities), system.n_actions)
        if values.shape != expected:
            raise ValueError(f"t^D table must have shape {expected}, got {values.shape}")
        self._system = system
        self._deadlines = deadlines
        self._policy = policy
        self._values = np.asarray(values, dtype=np.float64)
        self._values.setflags(write=False)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def system(self) -> ParameterizedSystem:
        """The parameterized system the table was computed for."""
        return self._system

    @property
    def deadlines(self) -> DeadlineFunction:
        """The deadline function the table was computed for."""
        return self._deadlines

    @property
    def policy(self) -> QualityManagementPolicy:
        """The quality-management policy used to compute the table."""
        return self._policy

    @property
    def values(self) -> np.ndarray:
        """Read-only array of shape ``(n_levels, n_actions)``."""
        return self._values

    @property
    def n_states(self) -> int:
        """Number of states with a next action (``n``)."""
        return int(self._values.shape[1])

    @property
    def n_levels(self) -> int:
        """Number of quality levels."""
        return int(self._values.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"TDTable(levels={self.n_levels}, states={self.n_states}, policy={self._policy.name})"

    def td(self, state_index: int, quality: int) -> float:
        """``t^D(s_i, q)`` for a single state and quality level."""
        if not 0 <= state_index < self.n_states:
            raise IndexError(
                f"state index {state_index} out of range 0..{self.n_states - 1}"
            )
        return float(self._values[self._system.qualities.index_of(quality), state_index])

    def column(self, state_index: int) -> np.ndarray:
        """All ``t^D(s_i, q)`` values for one state, lowest quality first."""
        if not 0 <= state_index < self.n_states:
            raise IndexError(
                f"state index {state_index} out of range 0..{self.n_states - 1}"
            )
        return self._values[:, state_index]

    # ------------------------------------------------------------------ #
    # the numeric quality-manager choice
    # ------------------------------------------------------------------ #
    def choose_quality(self, state_index: int, time: float) -> int:
        """``Γ(s_i, t_i) = max { q | t^D(s_i, q) >= t_i }``.

        When no quality satisfies the constraint (the system is late beyond
        what even the minimal quality can absorb — possible only for unsafe
        policies or infeasible systems), the minimal quality is returned as a
        best-effort fallback, mirroring the behaviour of the authors'
        implementation.
        """
        column = self.column(state_index)
        eligible = np.flatnonzero(column >= time)
        if eligible.size == 0:
            return self._system.qualities.minimum
        return self._system.qualities.level_at(int(eligible[-1]))

    def choose_quality_row(self, state_index: int, time: float) -> int:
        """Row index (0-based) variant of :meth:`choose_quality`."""
        return self._system.qualities.index_of(self.choose_quality(state_index, time))

    # ------------------------------------------------------------------ #
    # structural checks (used by validation and the property tests)
    # ------------------------------------------------------------------ #
    def is_monotone_in_quality(self, *, tolerance: float = 1e-9) -> bool:
        """True when every column is non-increasing in the quality level."""
        if self.n_levels < 2:
            return True
        return bool(np.all(np.diff(self._values, axis=0) <= tolerance))

    def initial_feasibility_margin(self) -> float:
        """``t^D(s_0, q_min)``: the slack available before the first action.

        The controlled system can be started safely iff this is >= 0 (for a
        safety-guaranteeing policy).
        """
        return float(self._values[0, 0])


def compute_td_table(
    system: ParameterizedSystem,
    deadlines: DeadlineFunction,
    policy: QualityManagementPolicy | None = None,
    *,
    require_feasible: bool = True,
) -> TDTable:
    """Compute the full ``t^D`` table for a system, deadlines and policy.

    Parameters
    ----------
    system:
        The parameterized system.
    deadlines:
        The deadline function; every constrained action index must exist in
        the system and the last action should be constrained for the problem
        to be well posed (checked when ``require_feasible``).
    policy:
        The quality-management policy; defaults to the paper's
        :class:`~repro.core.policy.MixedPolicy`.
    require_feasible:
        When true (default), raise :class:`InfeasibleSystemError` if even the
        minimal quality cannot guarantee the deadlines from the initial state
        under the chosen policy.
    """
    if policy is None:
        policy = MixedPolicy()
    n = system.n_actions
    n_levels = len(system.qualities)
    if deadlines.last_constrained_index > n:
        raise InfeasibleSystemError(
            f"deadline attached to action {deadlines.last_constrained_index} "
            f"but the system has only {n} actions"
        )

    values = np.full((n_levels, n), np.inf, dtype=np.float64)
    for k, deadline in deadlines:
        # C^D(a_{i+1}..a_k, q) for i = 0..k-1, all levels: shape (n_levels, k)
        costs = policy.horizon_costs(system.timing, k)
        candidate = deadline - costs
        # this deadline constrains states 0 .. k-1 only
        np.minimum(values[:, :k], candidate, out=values[:, :k])

    if not np.all(np.isfinite(values)):
        # Some state has no remaining constrained action — only possible when
        # the last action carries no deadline.  The manager would be
        # unconstrained there; treat as ill-posed.
        raise InfeasibleSystemError(
            "every state must be covered by at least one remaining deadline; "
            "attach a deadline to the last action of the cycle"
        )

    table = TDTable(system, deadlines, policy, values)
    if require_feasible and policy.guarantees_safety and table.initial_feasibility_margin() < 0.0:
        raise InfeasibleSystemError(
            "the system cannot meet its deadlines even at the minimal quality: "
            f"t^D(s_0, q_min) = {table.initial_feasibility_margin():.6g} < 0"
        )
    return table
