"""Core quality-management library.

This package implements the paper's primary contribution: the quality
management model (parameterized systems, policies, the numeric Quality
Manager), speed diagrams, and the symbolic machinery (quality regions and
control relaxation regions) together with the compiler that pre-computes
them.
"""

from .backend import (
    BackendError,
    available_backends,
    backend_available,
    get_backend,
    registered_backends,
)
from .compiler import CompilationReport, CompiledControllers, QualityManagerCompiler
from .controller import (
    ControlledSystem,
    run_cycle,
    run_fixed_quality,
    run_fixed_quality_batch,
)
from .deadlines import DeadlineFunction
from .engine import (
    EngineError,
    compile_decision_kernel,
    run_cycles_batch,
    run_cycles_vectorized,
    supports_vectorized,
)
from .kernelspec import PRIMITIVE_OPS, KernelSpec
from .manager import (
    Decision,
    ManagerWork,
    MemoryFootprint,
    NumericQualityManager,
    QualityManager,
)
from .policy import (
    AveragePolicy,
    MixedPolicy,
    QualityManagementPolicy,
    SafePolicy,
    delta_max_suffix,
    delta_suffix,
)
from .regions import QualityRegionTable, RegionQualityManager
from .relaxation import (
    DEFAULT_RELAXATION_STEPS,
    RelaxationQualityManager,
    RelaxationTable,
)
from .speed import SpeedAssessment, SpeedDiagram
from .streaming import QuantileSketch, StreamingMetrics, run_cycles_streamed
from .system import CycleOutcome, ParameterizedSystem
from .tdtable import TDTable, compute_td_table
from .timing import (
    ActualTimeScenario,
    ScenarioBatch,
    TimingModel,
    TimingTable,
    blend_tables,
    build_table,
    scaled_table,
)
from .types import (
    Action,
    DeadlineMissError,
    InfeasibleSystemError,
    InvalidTimingError,
    QualityManagementError,
    QualitySet,
    ScheduledSequence,
    SystemState,
)
from .validation import (
    DeadlineViolation,
    TraceAudit,
    assert_trace_safe,
    audit_trace,
    check_relaxation_containment,
    check_td_structure,
)

__all__ = [
    # types
    "Action",
    "ScheduledSequence",
    "SystemState",
    "QualitySet",
    "QualityManagementError",
    "InfeasibleSystemError",
    "DeadlineMissError",
    "InvalidTimingError",
    # timing
    "TimingTable",
    "TimingModel",
    "ActualTimeScenario",
    "ScenarioBatch",
    "build_table",
    "scaled_table",
    "blend_tables",
    # deadlines / system
    "DeadlineFunction",
    "ParameterizedSystem",
    "CycleOutcome",
    # policies
    "QualityManagementPolicy",
    "SafePolicy",
    "AveragePolicy",
    "MixedPolicy",
    "delta_suffix",
    "delta_max_suffix",
    # tables & managers
    "TDTable",
    "compute_td_table",
    "QualityManager",
    "NumericQualityManager",
    "Decision",
    "ManagerWork",
    "MemoryFootprint",
    "QualityRegionTable",
    "RegionQualityManager",
    "RelaxationTable",
    "RelaxationQualityManager",
    "DEFAULT_RELAXATION_STEPS",
    # speed diagrams
    "SpeedDiagram",
    "SpeedAssessment",
    # compiler / execution
    "QualityManagerCompiler",
    "CompiledControllers",
    "CompilationReport",
    "ControlledSystem",
    "run_cycle",
    "run_fixed_quality",
    "run_fixed_quality_batch",
    # vectorised batch engine
    "EngineError",
    "compile_decision_kernel",
    "supports_vectorized",
    "run_cycles_vectorized",
    "run_cycles_batch",
    # streaming chunked execution
    "QuantileSketch",
    "StreamingMetrics",
    "run_cycles_streamed",
    # kernel specs and compute backends
    "KernelSpec",
    "PRIMITIVE_OPS",
    "BackendError",
    "get_backend",
    "backend_available",
    "available_backends",
    "registered_backends",
    # validation
    "audit_trace",
    "assert_trace_safe",
    "TraceAudit",
    "DeadlineViolation",
    "check_td_structure",
    "check_relaxation_containment",
]
