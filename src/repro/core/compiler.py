"""The quality-manager "compiler": pre-computation of symbolic controllers.

The paper's tool chain (Figure 1) takes the application software, its timing
functions (``C^av``, ``C^wc``) and the deadline requirements, and generates
the controlled software together with the Quality Manager implementation —
numeric, region-based or relaxation-based.  The region and relaxation tables
were pre-computed off-line with a Matlab/Simulink prototype; here the same
role is played by :class:`QualityManagerCompiler`, which produces all three
manager flavours from one :class:`~repro.core.tdtable.TDTable` and reports
their memory footprints (experiment E1).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Sequence

from .deadlines import DeadlineFunction
from .manager import MemoryFootprint, NumericQualityManager, QualityManager
from .policy import MixedPolicy, QualityManagementPolicy
from .regions import QualityRegionTable, RegionQualityManager
from .relaxation import DEFAULT_RELAXATION_STEPS, RelaxationQualityManager, RelaxationTable
from .system import ParameterizedSystem
from .tdtable import TDTable, compute_td_table

__all__ = ["CompilationReport", "CompiledControllers", "QualityManagerCompiler"]


@dataclass(frozen=True, slots=True)
class CompilationReport:
    """Sizes and pre-computation costs of the generated symbolic controllers.

    The integer counts correspond to the paper's §4.1 figures:
    ``region_integers = |A| * |Q|`` and
    ``relaxation_integers = 2 * |A| * |Q| * |ρ|``.
    """

    n_actions: int
    n_levels: int
    relaxation_steps: tuple[int, ...]
    region_footprint: MemoryFootprint
    relaxation_footprint: MemoryFootprint
    td_precompute_seconds: float
    region_precompute_seconds: float
    relaxation_precompute_seconds: float

    @property
    def region_integers(self) -> int:
        """Number of stored integers for the quality-region tables."""
        return self.region_footprint.integers

    @property
    def relaxation_integers(self) -> int:
        """Number of stored integers for the control-relaxation tables."""
        return self.relaxation_footprint.integers


@dataclass(frozen=True)
class CompiledControllers:
    """The three Quality Manager implementations generated for one system."""

    numeric: NumericQualityManager
    region: RegionQualityManager
    relaxation: RelaxationQualityManager
    td_table: TDTable
    report: CompilationReport
    extras: dict[str, QualityManager] = field(default_factory=dict)

    def managers(self) -> dict[str, QualityManager]:
        """All generated managers keyed by their reporting name."""
        result: dict[str, QualityManager] = {
            self.numeric.name: self.numeric,
            self.region.name: self.region,
            self.relaxation.name: self.relaxation,
        }
        result.update(self.extras)
        return result


class QualityManagerCompiler:
    """Generates numeric and symbolic Quality Managers for a parameterized system.

    Parameters
    ----------
    policy:
        The quality-management policy; defaults to the paper's mixed policy.
    relaxation_steps:
        The candidate relaxation step set ``ρ``; defaults to the paper's
        ``{1, 10, 20, 30, 40, 50}``.
    require_feasible:
        Refuse to compile controllers for systems that cannot meet their
        deadlines even at the minimal quality (default ``True``).
    """

    def __init__(
        self,
        *,
        policy: QualityManagementPolicy | None = None,
        relaxation_steps: Sequence[int] = DEFAULT_RELAXATION_STEPS,
        require_feasible: bool = True,
    ) -> None:
        self._policy = policy if policy is not None else MixedPolicy()
        self._steps = tuple(sorted({int(r) for r in relaxation_steps}))
        self._require_feasible = require_feasible

    @property
    def policy(self) -> QualityManagementPolicy:
        """The policy used to derive ``t^D``."""
        return self._policy

    @property
    def relaxation_steps(self) -> tuple[int, ...]:
        """The relaxation step set ``ρ``."""
        return self._steps

    def compile(
        self,
        system: ParameterizedSystem,
        deadlines: DeadlineFunction,
    ) -> CompiledControllers:
        """Generate the three Quality Managers and the compilation report."""
        t0 = _time.perf_counter()
        td_table = compute_td_table(
            system, deadlines, self._policy, require_feasible=self._require_feasible
        )
        t1 = _time.perf_counter()
        regions = QualityRegionTable(td_table)
        t2 = _time.perf_counter()
        relaxation_table = RelaxationTable(td_table, self._steps)
        t3 = _time.perf_counter()

        numeric = NumericQualityManager(td_table)
        region_manager = RegionQualityManager(regions)
        relaxation_manager = RelaxationQualityManager(regions, relaxation_table)

        report = CompilationReport(
            n_actions=system.n_actions,
            n_levels=len(system.qualities),
            relaxation_steps=self._steps,
            region_footprint=regions.memory_footprint(),
            relaxation_footprint=relaxation_table.memory_footprint(),
            td_precompute_seconds=t1 - t0,
            region_precompute_seconds=t2 - t1,
            relaxation_precompute_seconds=t3 - t2,
        )
        return CompiledControllers(
            numeric=numeric,
            region=region_manager,
            relaxation=relaxation_manager,
            td_table=td_table,
            report=report,
        )
