"""Deadline functions ``D : A -> R+``.

The quality-management problem (Definition 3) is parameterised by a deadline
function associating a deadline with (a subset of) actions: executing action
``a_i`` must finish no later than ``D(a_i)``, measured from the start of the
cycle.  The paper's experiments use a single global deadline attached to the
last action of the cycle (``D = 30 s``); the formulation however supports
multiple intermediate deadlines, which matter for e.g. per-frame deadlines
inside a group of pictures.  This module provides both forms plus a periodic
helper.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import numpy as np

from .types import QualityManagementError

__all__ = ["DeadlineFunction"]


class DeadlineFunction:
    """A sparse mapping from action indices (1-based) to absolute deadlines.

    Only actions that actually carry a deadline are stored; the quality
    management policy minimises over this sparse set (the ``min_{i<=k<=n}`` in
    the definition of ``t^D``).  Deadlines are expressed in the same time unit
    as the timing tables, relative to the start of the cycle.
    """

    __slots__ = ("_deadlines", "_indices", "_values")

    def __init__(self, deadlines: Mapping[int, float]) -> None:
        if not deadlines:
            raise QualityManagementError("a deadline function needs at least one deadline")
        cleaned: dict[int, float] = {}
        for index, value in deadlines.items():
            idx = int(index)
            val = float(value)
            if idx < 1:
                raise QualityManagementError(
                    f"deadline attached to invalid action index {idx} (must be >= 1)"
                )
            if not np.isfinite(val) or val < 0.0:
                raise QualityManagementError(
                    f"deadline for action {idx} must be a non-negative finite number, got {val}"
                )
            cleaned[idx] = val
        self._deadlines = dict(sorted(cleaned.items()))
        self._indices = np.array(list(self._deadlines.keys()), dtype=np.intp)
        self._values = np.array(list(self._deadlines.values()), dtype=np.float64)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def single(cls, last_action_index: int, deadline: float) -> "DeadlineFunction":
        """One global deadline on the last action of the cycle (the paper's setup)."""
        return cls({last_action_index: deadline})

    @classmethod
    def periodic(
        cls,
        n_actions: int,
        period_actions: int,
        period_time: float,
        *,
        offset: float = 0.0,
    ) -> "DeadlineFunction":
        """A deadline every ``period_actions`` actions, ``period_time`` apart.

        Models e.g. a per-frame deadline inside a multi-frame cycle: action
        ``k * period_actions`` must complete by ``offset + k * period_time``.
        The final action always receives a deadline even if it does not fall
        on a period boundary.
        """
        if period_actions < 1:
            raise QualityManagementError("period_actions must be >= 1")
        if period_time <= 0.0:
            raise QualityManagementError("period_time must be > 0")
        deadlines: dict[int, float] = {}
        k = 1
        while k * period_actions <= n_actions:
            deadlines[k * period_actions] = offset + k * period_time
            k += 1
        if n_actions not in deadlines:
            deadlines[n_actions] = offset + k * period_time
        return cls(deadlines)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, float]]) -> "DeadlineFunction":
        """Build from ``(action_index, deadline)`` pairs."""
        return cls(dict(pairs))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def indices(self) -> np.ndarray:
        """Sorted array of 1-based action indices carrying a deadline."""
        return self._indices

    @property
    def values(self) -> np.ndarray:
        """Deadline values aligned with :attr:`indices`."""
        return self._values

    @property
    def final_deadline(self) -> float:
        """The deadline of the latest constrained action."""
        return float(self._values[-1])

    @property
    def last_constrained_index(self) -> int:
        """Largest action index that carries a deadline."""
        return int(self._indices[-1])

    def __len__(self) -> int:
        return len(self._deadlines)

    def __iter__(self) -> Iterator[tuple[int, float]]:
        return iter(self._deadlines.items())

    def __contains__(self, action_index: object) -> bool:
        return action_index in self._deadlines

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DeadlineFunction) and other._deadlines == self._deadlines

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"DeadlineFunction({self._deadlines!r})"

    def deadline_of(self, action_index: int) -> float:
        """``D(a_k)`` for a constrained action; raises ``KeyError`` otherwise."""
        return self._deadlines[action_index]

    def get(self, action_index: int, default: float | None = None) -> float | None:
        """Deadline of an action or ``default`` when it carries none."""
        return self._deadlines.get(action_index, default)

    def remaining(self, state_index: int) -> list[tuple[int, float]]:
        """Deadlines still ahead of a state with ``state_index`` completed actions.

        Returns ``(action_index, deadline)`` pairs with ``action_index >
        state_index``, in increasing index order.  The mixed policy minimises
        its slack over exactly this set.
        """
        position = int(np.searchsorted(self._indices, state_index, side="right"))
        return [
            (int(idx), float(val))
            for idx, val in zip(self._indices[position:], self._values[position:])
        ]

    def covers(self, n_actions: int) -> bool:
        """True when the last action of an ``n_actions`` cycle carries a deadline.

        The quality-management problem is only well posed when the final
        action is constrained (otherwise "maximal overall execution time" is
        unbounded); the compiler checks this.
        """
        return self.last_constrained_index == n_actions

    def scaled(self, factor: float) -> "DeadlineFunction":
        """Return a copy with every deadline multiplied by ``factor``."""
        if factor <= 0.0:
            raise QualityManagementError(f"deadline scale factor must be > 0, got {factor}")
        return DeadlineFunction({idx: val * factor for idx, val in self._deadlines.items()})

    def shifted(self, offset: float) -> "DeadlineFunction":
        """Return a copy with ``offset`` added to every deadline."""
        shifted = {idx: val + offset for idx, val in self._deadlines.items()}
        return DeadlineFunction(shifted)
