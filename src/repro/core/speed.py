"""Speed diagrams (Section 3.1): virtual time, ideal and optimal speeds.

A speed diagram plots the evolution of a controlled system in a plane whose
horizontal axis is the *actual* time ``t`` and whose vertical axis is a
*virtual* time ``y`` computed from average execution times, normalised so
that the target deadline sits on the diagonal:

    ``y_i(q) = C^av(a_1..a_i, q) / C^av(a_1..a_k, q) * D(a_k)``

Points on the 45° diagonal are optimal (actual time equals virtual time);
below the diagonal the computation is late, above it is ahead.  Two speeds
govern the quality choice (§3.1.2):

* the *ideal* speed ``v_idl(q) = D(a_k) / C^av(a_1..a_k, q)`` — the constant
  slope of a trajectory run entirely at quality ``q`` when actual times equal
  average times;
* the *optimal* speed ``v_opt(q)`` — the slope from the current point to the
  target point ``( D(a_k) - δ_max(a_{i+1}..a_k, q), D(a_k) )``, i.e. finishing
  exactly at the deadline minus the safety margin.

Proposition 1 states that the mixed-policy constraint
``t_i <= D(a_k) - C^D(a_{i+1}..a_k, q)`` holds iff ``v_idl(q) >= v_opt(q)``;
the Quality Manager therefore picks the largest quality whose ideal speed
still exceeds the optimal speed.  :class:`SpeedDiagram` exposes all these
quantities, plus helpers to extract trajectories and region borders for the
figures of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .deadlines import DeadlineFunction
from .policy import MixedPolicy
from .system import CycleOutcome, ParameterizedSystem
from .tdtable import TDTable, compute_td_table

__all__ = ["SpeedAssessment", "SpeedDiagram"]


@dataclass(frozen=True, slots=True)
class SpeedAssessment:
    """Outcome of evaluating Proposition 1 at one state and quality level.

    Attributes
    ----------
    ideal_speed:
        ``v_idl(q)``.
    optimal_speed:
        ``v_opt(q)``; ``inf`` when the remaining budget (denominator) is not
        positive, i.e. the state is too late for this quality.
    constraint_slack:
        ``D(a_k) - C^D(a_{i+1}..a_k, q) - t_i`` — non-negative iff the mixed
        policy accepts quality ``q`` at this state.
    speeds_admissible:
        ``v_idl(q) >= v_opt(q)``.
    constraint_admissible:
        ``constraint_slack >= 0``.  Proposition 1 says the two booleans agree.
    """

    ideal_speed: float
    optimal_speed: float
    constraint_slack: float
    speeds_admissible: bool
    constraint_admissible: bool

    @property
    def proposition1_agrees(self) -> bool:
        """True when the geometric and the constraint characterisations agree.

        Exactly at a region boundary (``constraint_slack == 0``) the two
        characterisations coincide mathematically but floating-point rounding
        can tip the two comparisons in opposite directions; states within
        1e-9 of the boundary are therefore counted as agreeing.
        """
        if self.speeds_admissible == self.constraint_admissible:
            return True
        return abs(self.constraint_slack) <= 1e-9


class SpeedDiagram:
    """Speed-diagram geometry for one parameterized system and target deadline.

    Parameters
    ----------
    system:
        The parameterized system.
    deadlines:
        The deadline function; the diagram is drawn with respect to one
        *target* constrained action ``a_k``.
    target_index:
        1-based index of the target deadline action; defaults to the last
        constrained action (the paper's global deadline).
    td_table:
        Optional pre-computed ``t^D`` table (mixed policy).  Recomputed when
        omitted.
    """

    def __init__(
        self,
        system: ParameterizedSystem,
        deadlines: DeadlineFunction,
        *,
        target_index: int | None = None,
        td_table: TDTable | None = None,
    ) -> None:
        self._system = system
        self._deadlines = deadlines
        k = deadlines.last_constrained_index if target_index is None else int(target_index)
        if k not in deadlines:
            raise ValueError(f"target action {k} carries no deadline")
        if k > system.n_actions:
            raise ValueError(
                f"target action {k} beyond the system's {system.n_actions} actions"
            )
        self._target = k
        self._deadline = deadlines.deadline_of(k)
        self._policy = MixedPolicy()
        if td_table is None:
            td_table = compute_td_table(system, deadlines, self._policy, require_feasible=False)
        self._td = td_table
        # safety margins δ_max(a_{i+1}..a_k, q) for i = 0..k-1, all levels
        self._margins = self._policy.safety_margins(system.timing, k)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def system(self) -> ParameterizedSystem:
        """The parameterized system the diagram describes."""
        return self._system

    @property
    def target_index(self) -> int:
        """1-based index of the target deadline action ``a_k``."""
        return self._target

    @property
    def deadline(self) -> float:
        """The target deadline ``D(a_k)``."""
        return self._deadline

    @property
    def td_table(self) -> TDTable:
        """The mixed-policy ``t^D`` table used by the diagram."""
        return self._td

    # ------------------------------------------------------------------ #
    # virtual time
    # ------------------------------------------------------------------ #
    def virtual_time(self, state_index: int, quality: int) -> float:
        """``y_i(q)``: normalised virtual time at state ``s_i`` for quality ``q``."""
        if not 0 <= state_index <= self._target:
            raise IndexError(
                f"state index {state_index} out of range 0..{self._target}"
            )
        total = self._system.average.total(1, self._target, quality)
        if total <= 0.0:
            # degenerate (all-zero average) — everything is "done" immediately
            return self._deadline if state_index >= self._target else 0.0
        done = self._system.average.total(1, state_index, quality)
        return done / total * self._deadline

    def virtual_times(self, quality: int) -> np.ndarray:
        """``y_i(q)`` for every state ``i = 0 .. k`` (length ``k + 1``)."""
        qi = self._system.qualities.index_of(quality)
        prefix = self._system.average.prefix[qi, : self._target + 1]
        total = prefix[-1]
        if total <= 0.0:
            values = np.zeros(self._target + 1)
            values[-1] = self._deadline
            return values
        return prefix / total * self._deadline

    # ------------------------------------------------------------------ #
    # speeds
    # ------------------------------------------------------------------ #
    def ideal_speed(self, quality: int) -> float:
        """``v_idl(q) = D(a_k) / C^av(a_1..a_k, q)``.

        Independent of the state (the trajectory at constant quality and
        average times is a straight line).  Returns ``inf`` when the average
        total is zero.
        """
        total = self._system.average.total(1, self._target, quality)
        if total <= 0.0:
            return np.inf
        return self._deadline / total

    def safety_margin(self, state_index: int, quality: int) -> float:
        """``δ_max(a_{i+1}..a_k, q)`` — the mixed policy's safety margin."""
        if not 0 <= state_index < self._target:
            raise IndexError(
                f"state index {state_index} out of range 0..{self._target - 1}"
            )
        qi = self._system.qualities.index_of(quality)
        return float(self._margins[qi, state_index])

    def optimal_speed(self, state_index: int, time: float, quality: int) -> float:
        """``v_opt(q)`` from ``(t_i, y_i(q))`` to ``(D - δ_max, D)``.

        Returns ``inf`` when the remaining actual-time budget
        ``D(a_k) - δ_max - t_i`` is not positive (the state is too late to
        reach the safety-margin target at any finite speed).
        """
        remaining_virtual = self._system.average.total(
            state_index + 1, self._target, quality
        )
        margin = self.safety_margin(state_index, quality)
        budget = self._deadline - margin - time
        if budget <= 0.0:
            return np.inf
        total = self._system.average.total(1, self._target, quality)
        if total <= 0.0:
            return 0.0
        return (self._deadline / total) * (remaining_virtual / budget)

    def assess(self, state_index: int, time: float, quality: int) -> SpeedAssessment:
        """Evaluate both sides of Proposition 1 at one state and quality level."""
        ideal = self.ideal_speed(quality)
        optimal = self.optimal_speed(state_index, time, quality)
        remaining_average = self._system.average.total(
            state_index + 1, self._target, quality
        )
        margin = self.safety_margin(state_index, quality)
        mixed_cost = remaining_average + margin
        slack = self._deadline - mixed_cost - time
        return SpeedAssessment(
            ideal_speed=ideal,
            optimal_speed=optimal,
            constraint_slack=slack,
            speeds_admissible=bool(ideal >= optimal),
            constraint_admissible=bool(slack >= 0.0),
        )

    def admissible_qualities(self, state_index: int, time: float) -> list[int]:
        """Quality levels whose ideal speed exceeds the optimal speed at this state."""
        return [
            q
            for q in self._system.qualities
            if self.assess(state_index, time, q).speeds_admissible
        ]

    def choose_quality(self, state_index: int, time: float) -> int:
        """The manager's choice expressed geometrically.

        The largest quality whose ideal speed is still at least the optimal
        speed — the "least ideal speed exceeding the optimal speed".  Falls
        back to the minimal quality when none is admissible, mirroring
        :meth:`TDTable.choose_quality`.
        """
        admissible = self.admissible_qualities(state_index, time)
        if not admissible:
            return self._system.qualities.minimum
        return max(admissible)

    # ------------------------------------------------------------------ #
    # figure material
    # ------------------------------------------------------------------ #
    def trajectory(
        self,
        outcome: CycleOutcome,
        *,
        reference_quality: int | None = None,
    ) -> dict[str, np.ndarray]:
        """Speed-diagram trajectory of an executed cycle.

        Returns a mapping with the actual times ``t_i``, the virtual times
        ``y_i`` (computed either at a fixed ``reference_quality`` or at the
        quality chosen for the next action of each state) and the per-state
        chosen qualities.  State 0 (origin) is included.
        """
        k = min(self._target, outcome.n_actions)
        times = np.concatenate(([0.0], outcome.completion_times[:k]))
        qualities = outcome.qualities[:k]
        if reference_quality is not None:
            virtual = self.virtual_times(reference_quality)[: k + 1]
        else:
            virtual = np.empty(k + 1)
            virtual[0] = 0.0
            for i in range(1, k + 1):
                # virtual progress measured at the quality the action ran at
                virtual[i] = self.virtual_time(i, int(qualities[i - 1]))
        return {
            "actual_time": times,
            "virtual_time": virtual,
            "quality": np.concatenate((qualities, [qualities[-1]] if k else [])),
        }

    def region_border(self, quality: int) -> dict[str, np.ndarray]:
        """The border of quality region ``R_q`` in diagram coordinates (Figure 4).

        For every state ``i`` the border point is ``( t^D(s_i, q), y_i(q) )``;
        the region lies to the left of (at smaller actual times than) the
        border.
        """
        k = self._target
        boundary_times = self._td.values[self._system.qualities.index_of(quality), :k]
        virtual = self.virtual_times(quality)[:k]
        return {"actual_time": boundary_times.copy(), "virtual_time": virtual}

    def diagonal(self, points: int = 2) -> dict[str, np.ndarray]:
        """The optimal-behaviour diagonal from the origin to ``(D, D)``."""
        ts = np.linspace(0.0, self._deadline, max(2, points))
        return {"actual_time": ts, "virtual_time": ts.copy()}
