"""The default NumPy backend: one vectorised program per kernel primitive.

Every program's ``decide(state_index, times)`` performs, for the whole batch
at once, the exact floating-point operation sequence the scalar manager
performs per cycle — same operands, same order — so outcomes are
bit-identical to the scalar loop by construction.  Stateful primitives
(``skip``/``feedback``) keep per-cycle state vectors and re-initialise them
when a batch starts deciding at state 0 (their specs always answer
``steps=1``, so every cycle of the batch decides at every state and the
batch width is constant).
"""

from __future__ import annotations

import numpy as np

from repro.core.kernelspec import KernelSpec

__all__ = ["NumpyKernelBackend", "choose_rows"]


def choose_rows(
    boundaries: np.ndarray, n_levels: int, state_index: int, times: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Quality rows by interval lookup: ``max { q | t^D(s_i, q) >= t }``.

    ``boundaries[state_index]`` is ascending, so the eligible levels form a
    suffix; ``searchsorted`` finds its first entry ``>= t`` and the count of
    eligible levels follows.  Returns ``(rows, late)`` where late cycles
    (no eligible level) fall back to row 0 — the minimal quality, exactly
    :meth:`~repro.core.tdtable.TDTable.choose_quality`'s best-effort rule.
    """
    first = np.searchsorted(boundaries[state_index], times, side="left")
    counts = n_levels - first
    late = counts == 0
    rows = np.where(late, 0, counts - 1)
    return rows, late


class _ConstantProgram:
    """``constant``: fixed row; one consultation per action or per cycle."""

    def __init__(self, spec: KernelSpec) -> None:
        tables = spec.tables
        self._row = int(tables["row"])
        self._consult = bool(tables["consult"])
        self._horizon = tables["horizon"]

    def decide(self, state_index: int, times: np.ndarray):
        count = times.shape[0]
        rows = np.full(count, self._row, dtype=np.intp)
        if self._consult:
            steps = np.ones(count, dtype=np.int64)
        else:
            remaining = (self._horizon - state_index) if self._horizon else 10**9
            steps = np.full(count, max(1, remaining), dtype=np.int64)
        return rows, steps, None


class _LookupProgram:
    """``lookup``: one searchsorted interval lookup per invocation."""

    def __init__(self, spec: KernelSpec) -> None:
        self._boundaries = spec.tables["boundaries"]
        self._n_levels = int(spec.n_levels)

    def decide(self, state_index: int, times: np.ndarray):
        rows, late = choose_rows(self._boundaries, self._n_levels, state_index, times)
        steps = np.ones(times.shape[0], dtype=np.int64)
        return rows, steps, late


class _RelaxationProgram:
    """``relaxation``: interval lookup + stored ``R^r_q`` bound comparisons.

    ``lower``/``upper`` hold one ``(n_states, n_levels)`` array per step of
    ``steps`` (ascending); the scan keeps the largest containing region,
    exactly :meth:`~repro.core.relaxation.RelaxationTable.max_relaxation`.
    """

    def __init__(self, spec: KernelSpec) -> None:
        tables = spec.tables
        self._boundaries = tables["boundaries"]
        self._n_levels = int(spec.n_levels)
        self._steps = tuple(int(r) for r in tables["steps"])
        self._lower = tuple(tables["lower"])
        self._upper = tuple(tables["upper"])

    def decide(self, state_index: int, times: np.ndarray):
        rows, late = choose_rows(self._boundaries, self._n_levels, state_index, times)
        steps = np.ones(times.shape[0], dtype=np.int64)
        live = ~late
        for r, lower, upper in zip(self._steps, self._lower, self._upper):
            if r <= 1:
                continue  # the scalar scan never improves on the initial best of 1
            low = lower[state_index][rows]
            high = upper[state_index][rows]
            contained = live & (low < times) & (times <= high)
            steps[contained] = r
        return rows, steps, late


class _AffineProgram:
    """``affine``: interval lookup + affine bound evaluation per step count.

    Mirrors :meth:`~repro.extensions.linear_approx.LinearRelaxationTable.bounds`:
    ``upper = u_slope * i + u_intercept``; a non-finite lower intercept means
    the lower bound is ``-inf``; states past ``valid_until[r]`` have an empty
    region and are skipped.
    """

    def __init__(self, spec: KernelSpec) -> None:
        tables = spec.tables
        self._boundaries = tables["boundaries"]
        self._n_levels = int(spec.n_levels)
        self._steps = tuple(int(r) for r in tables["steps"])
        self._u_slope = tables["u_slope"]
        self._u_intercept = tables["u_intercept"]
        self._l_slope = tables["l_slope"]
        self._l_intercept = tables["l_intercept"]
        self._valid_until = tables["valid_until"]

    def decide(self, state_index: int, times: np.ndarray):
        rows, late = choose_rows(self._boundaries, self._n_levels, state_index, times)
        steps = np.ones(times.shape[0], dtype=np.int64)
        live = ~late
        for index, r in enumerate(self._steps):
            if r <= 1:
                continue
            if state_index > self._valid_until[index]:
                continue  # fewer than r actions remain: the region is empty
            upper = self._u_slope[index][rows] * state_index + self._u_intercept[index][rows]
            l_intercept = self._l_intercept[index][rows]
            low_raw = self._l_slope[index][rows] * state_index + l_intercept
            low = np.where(np.isfinite(l_intercept), low_raw, -np.inf)
            contained = live & (low < times) & (times <= upper)
            steps[contained] = r
        return rows, steps, late


class _SkipProgram:
    """``skip``: per-cycle countdown + average-time deadline projections.

    The countdown vector re-initialises at state 0 (the scalar manager's
    ``reset()`` per cycle); every invocation covers one action, so the batch
    always decides in lockstep and the vector stays aligned with the batch.
    """

    def __init__(self, spec: KernelSpec) -> None:
        tables = spec.tables
        self._nominal_row = int(tables["nominal_row"])
        self._window = int(tables["window"])
        self._costs = tables["costs"]
        self._deadlines = tables["deadlines"]
        self._counts = tables["counts"]
        self._skip_remaining: np.ndarray | None = None

    def decide(self, state_index: int, times: np.ndarray):
        count = times.shape[0]
        if state_index == 0 or self._skip_remaining is None:
            self._skip_remaining = np.zeros(count, dtype=np.int64)
        late = np.zeros(count, dtype=bool)
        for j in range(int(self._counts[state_index])):
            late |= (times + self._costs[state_index, j]) > self._deadlines[
                state_index, j
            ]
        counting = self._skip_remaining > 0
        rows = np.where(counting | late, 0, self._nominal_row).astype(np.intp)
        self._skip_remaining = np.where(
            counting,
            self._skip_remaining - 1,
            np.where(late, self._window - 1, 0),
        )
        steps = np.ones(count, dtype=np.int64)
        return rows, steps, None


class _FeedbackProgram:
    """``feedback``: the PID recurrence over the pre-computed reference schedule.

    Integral/previous-error vectors re-initialise at state 0 (the scalar
    manager's ``reset()`` per cycle); arithmetic order matches the scalar
    ``decide`` exactly, and ``np.rint`` matches Python's banker's rounding
    on float64.
    """

    def __init__(self, spec: KernelSpec) -> None:
        tables = spec.tables
        self._expected = tables["expected"]
        self._step_scale = float(tables["step_scale"])
        self._kp = float(tables["kp"])
        self._ki = float(tables["ki"])
        self._kd = float(tables["kd"])
        self._reference = float(tables["reference"])
        self._minimum = int(tables["minimum"])
        self._maximum = int(tables["maximum"])
        self._integral: np.ndarray | None = None
        self._previous: np.ndarray | None = None

    def decide(self, state_index: int, times: np.ndarray):
        count = times.shape[0]
        if state_index == 0 or self._integral is None:
            self._integral = np.zeros(count, dtype=np.float64)
            self._previous = np.zeros(count, dtype=np.float64)
        if self._step_scale > 0:
            error = (times - self._expected[state_index]) / self._step_scale
        else:
            error = np.zeros(count, dtype=np.float64)
        self._integral += error
        derivative = error - self._previous
        self._previous = error
        correction = self._kp * error + self._ki * self._integral + self._kd * derivative
        level = np.clip(np.rint(self._reference - correction), self._minimum, self._maximum)
        rows = (level.astype(np.int64) - self._minimum).astype(np.intp)
        steps = np.ones(count, dtype=np.int64)
        return rows, steps, None


_PROGRAMS = {
    "constant": _ConstantProgram,
    "lookup": _LookupProgram,
    "relaxation": _RelaxationProgram,
    "affine": _AffineProgram,
    "skip": _SkipProgram,
    "feedback": _FeedbackProgram,
}


class NumpyKernelBackend:
    """The default backend: every primitive as vectorised NumPy."""

    name = "numpy"

    def compile(self, spec: KernelSpec):
        """One program instance per spec (stateful primitives own their state)."""
        try:
            program = _PROGRAMS[spec.op]
        except KeyError:  # pragma: no cover - specs validate their op
            raise ValueError(f"numpy backend cannot execute primitive {spec.op!r}")
        return program(spec)
