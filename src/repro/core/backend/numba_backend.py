"""Optional numba backend: JIT inner loops for the comparison-bound primitives.

Only the primitives whose inner loops are pure comparisons — ``lookup`` and
``relaxation`` — are JIT-compiled here; comparisons have no rounding
behaviour, so bit-identity with the scalar loop (and the NumPy backend) is
structural.  The arithmetic-bearing primitives (``affine``, ``feedback``)
and the control-heavy stateful ones (``skip``, ``constant``) delegate to the
NumPy programs unchanged: they are either already memory-bound or their
float-op ordering is what guarantees parity, and re-deriving it under a JIT
buys nothing.

The backend is *gated*: :func:`make_numba_backend` returns ``None`` when
numba is not installed, so the registry reports it unavailable instead of
failing at import time.  Install it with the ``numba`` extra
(``pip install repro[numba]``) and select it via ``--backend numba`` /
``REPRO_BACKEND=numba`` / ``Session.backend("numba")``.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernelspec import KernelSpec

__all__ = ["make_numba_backend"]


def make_numba_backend():
    """Build the numba backend, or return ``None`` when numba is missing."""
    try:
        from numba import njit
    except ImportError:
        return None

    from .numpy_backend import NumpyKernelBackend

    @njit(cache=True)
    def _lookup_rows(boundaries_row, n_levels, times, rows, late):
        for k in range(times.shape[0]):
            t = times[k]
            first = np.searchsorted(boundaries_row, t)
            count = n_levels - first
            if count == 0:
                late[k] = True
                rows[k] = 0
            else:
                late[k] = False
                rows[k] = count - 1

    @njit(cache=True)
    def _relaxation_steps(rows, late, times, lower, upper, r, steps):
        # lower/upper are the (n_levels,) bound slices for the current state.
        for k in range(times.shape[0]):
            if late[k]:
                continue
            q = rows[k]
            t = times[k]
            if lower[q] < t and t <= upper[q]:
                steps[k] = r

    class _NumbaLookupProgram:
        def __init__(self, spec: KernelSpec) -> None:
            self._boundaries = spec.tables["boundaries"]
            self._n_levels = int(spec.n_levels)

        def _rows(self, state_index: int, times: np.ndarray):
            count = times.shape[0]
            rows = np.empty(count, dtype=np.intp)
            late = np.empty(count, dtype=np.bool_)
            _lookup_rows(
                self._boundaries[state_index], self._n_levels, times, rows, late
            )
            return rows, late

        def decide(self, state_index: int, times: np.ndarray):
            rows, late = self._rows(state_index, times)
            steps = np.ones(times.shape[0], dtype=np.int64)
            return rows, steps, late

    class _NumbaRelaxationProgram(_NumbaLookupProgram):
        def __init__(self, spec: KernelSpec) -> None:
            super().__init__(spec)
            tables = spec.tables
            self._steps = tuple(int(r) for r in tables["steps"])
            self._lower = tuple(tables["lower"])
            self._upper = tuple(tables["upper"])

        def decide(self, state_index: int, times: np.ndarray):
            rows, late = self._rows(state_index, times)
            steps = np.ones(times.shape[0], dtype=np.int64)
            for r, lower, upper in zip(self._steps, self._lower, self._upper):
                if r <= 1:
                    continue
                _relaxation_steps(
                    rows, late, times, lower[state_index], upper[state_index], r, steps
                )
            return rows, steps, late

    class NumbaKernelBackend:
        """JIT lookup/relaxation; NumPy programs for everything else."""

        name = "numba"

        def __init__(self) -> None:
            self._fallback = NumpyKernelBackend()

        def compile(self, spec: KernelSpec):
            if spec.op == "lookup":
                return _NumbaLookupProgram(spec)
            if spec.op == "relaxation":
                return _NumbaRelaxationProgram(spec)
            return self._fallback.compile(spec)

    return NumbaKernelBackend()
