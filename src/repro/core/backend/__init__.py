"""Pluggable compute backends for the lowered decision kernels.

A *backend* turns a declarative :class:`~repro.core.kernelspec.KernelSpec`
into an executable program: an object whose ``decide(state_index, times)``
returns ``(rows, steps, late)`` arrays for one lockstep batch invocation
(``late`` is ``None`` for ops without a late path).  The engine
(:mod:`repro.core.engine`) binds overhead charges and accounting around the
program, so backends only implement the primitive math — and because every
primitive performs the exact floating-point operation sequence of the scalar
managers, outcomes stay bit-identical across backends.

Two backends are registered:

* ``numpy`` (the default) — pure NumPy implementations of all primitives;
* ``numba`` — JIT-compiled inner loops for the comparison-bound primitives
  (``lookup``/``relaxation``), delegating the rest to the NumPy programs.
  It is *optional*: when numba is not installed the backend reports itself
  unavailable and selecting it raises :class:`BackendError`.

Selection: :func:`get_backend` resolves an explicit name, else the
``REPRO_BACKEND`` environment variable, else ``numpy``.  The choice is
plumbed end-to-end — ``Session.backend()``, the CLI ``--backend`` flags and
the sweep :class:`~repro.runtime.plan.ExecutionPayload` all carry it, so
pool, spool and service workers execute under the same backend as a local
run.
"""

from __future__ import annotations

import os
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.core.kernelspec import KernelSpec

__all__ = [
    "ENV_BACKEND",
    "BackendError",
    "KernelProgram",
    "KernelBackend",
    "register_backend",
    "registered_backends",
    "available_backends",
    "backend_available",
    "get_backend",
]

#: environment variable naming the default backend
ENV_BACKEND = "REPRO_BACKEND"


class BackendError(ValueError):
    """Unknown backend name, or a registered backend that is not installed."""


@runtime_checkable
class KernelProgram(Protocol):
    """An executable lowering of one spec: batch decisions, no accounting."""

    def decide(
        self, state_index: int, times: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Return ``(rows, steps, late)`` for one lockstep invocation.

        ``late`` flags the cycles on the spec's late path (``None`` when the
        op has no late/normal distinction).
        """
        ...


@runtime_checkable
class KernelBackend(Protocol):
    """A registry entry: compiles specs into :class:`KernelProgram` objects."""

    name: str

    def compile(self, spec: KernelSpec) -> KernelProgram:
        """Build the executable program for one spec."""
        ...


#: factories return the backend instance, or ``None`` when unavailable
_FACTORIES: dict[str, Callable[[], "KernelBackend | None"]] = {}
_INSTANCES: dict[str, "KernelBackend | None"] = {}


def register_backend(name: str, factory: Callable[[], "KernelBackend | None"]) -> None:
    """Register a backend factory; the factory returns ``None`` if unavailable."""
    _FACTORIES[str(name)] = factory
    _INSTANCES.pop(str(name), None)


def _instance(name: str) -> "KernelBackend | None":
    if name not in _INSTANCES:
        _INSTANCES[name] = _FACTORIES[name]()
    return _INSTANCES[name]


def registered_backends() -> tuple[str, ...]:
    """Every registered backend name, available or not, sorted."""
    return tuple(sorted(_FACTORIES))


def backend_available(name: str) -> bool:
    """True when the named backend exists and its dependencies are installed."""
    return name in _FACTORIES and _instance(name) is not None


def available_backends() -> tuple[str, ...]:
    """The registered backends usable in this environment, sorted."""
    return tuple(name for name in registered_backends() if backend_available(name))


def get_backend(name: str | None = None) -> KernelBackend:
    """Resolve a backend: explicit name, else ``$REPRO_BACKEND``, else numpy.

    Raises :class:`BackendError` for unknown names and for registered
    backends whose dependencies are missing (e.g. ``numba`` without numba
    installed).
    """
    if name is None:
        name = os.environ.get(ENV_BACKEND, "").strip() or "numpy"
    name = str(name)
    if name not in _FACTORIES:
        raise BackendError(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(registered_backends())}"
        )
    backend = _instance(name)
    if backend is None:
        raise BackendError(
            f"backend {name!r} is registered but not available in this "
            "environment (its optional dependency is not installed); "
            f"available backends: {', '.join(available_backends())}"
        )
    return backend


def _numpy_factory() -> "KernelBackend | None":
    from .numpy_backend import NumpyKernelBackend

    return NumpyKernelBackend()


def _numba_factory() -> "KernelBackend | None":
    from .numba_backend import make_numba_backend

    return make_numba_backend()


register_backend("numpy", _numpy_factory)
register_backend("numba", _numba_factory)
