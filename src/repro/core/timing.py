"""Execution-time functions of parameterized systems.

The paper characterises a parameterized system by three timing functions
(Definition 1):

* the worst-case execution time ``C^wc(a, q)``, non-decreasing in ``q``;
* the average execution time ``C^av(a, q)``, non-decreasing in ``q``, used by
  the mixed policy to improve smoothness;
* the *actual* execution time ``C(a, q)``, unknown in advance, bounded by the
  worst case: ``C(a, q) <= C^wc(a, q)``.

This module provides a small hierarchy of timing functions backed by dense
NumPy tables (`levels x actions`), because every policy computation in the
library reduces to prefix/suffix sums over such tables.  The tables are
validated on construction (non-negativity, monotonicity in quality) so the
rest of the library can assume the model's hypotheses hold.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from .types import InvalidTimingError, QualitySet

__all__ = [
    "TimingTable",
    "build_table",
    "scaled_table",
    "blend_tables",
    "ActualTimeScenario",
    "ScenarioBatch",
    "TimingModel",
    "supports_replay",
]


def supports_replay(sampler: object) -> bool:
    """True when a scenario sampler's stream can be re-positioned.

    The ``seek``/``cursor`` contract of
    :class:`~repro.media.timing_model.FrameScenarioSampler` (and of the
    derived-system wrappers, which delegate the pair): what lets the parallel
    sweep engine replay the exact draw order of a serial run.  This is the
    single predicate every replay decision — offset tracking, re-draw
    transport eligibility, worker-side seeks — consults.
    """
    return hasattr(sampler, "seek") and hasattr(sampler, "cursor")


class TimingTable:
    """A dense execution-time table ``C(a_i, q)`` for one timing function.

    The table stores one row per quality level (lowest level first) and one
    column per action (execution order).  It is the concrete representation
    used for ``C^wc`` and ``C^av``; actual execution times are produced by a
    :class:`~repro.core.system.ParameterizedSystem` sampler and are not stored
    here because they change on every run.

    Parameters
    ----------
    qualities:
        The quality set the rows correspond to.
    values:
        Array of shape ``(len(qualities), n_actions)`` with non-negative
        entries, non-decreasing along the quality axis.
    name:
        Label used in error messages and reports (e.g. ``"Cwc"``).
    """

    __slots__ = ("_qualities", "_values", "_name", "_prefix")

    def __init__(
        self,
        qualities: QualitySet,
        values: np.ndarray,
        *,
        name: str = "C",
        validate: bool = True,
    ) -> None:
        array = np.asarray(values, dtype=np.float64)
        if array.ndim != 2:
            raise InvalidTimingError(
                f"{name}: timing table must be 2-D (levels x actions), got shape {array.shape}"
            )
        if array.shape[0] != len(qualities):
            raise InvalidTimingError(
                f"{name}: table has {array.shape[0]} quality rows, "
                f"but the quality set has {len(qualities)} levels"
            )
        if validate:
            if not np.all(np.isfinite(array)):
                raise InvalidTimingError(f"{name}: timing values must be finite")
            if np.any(array < 0.0):
                raise InvalidTimingError(f"{name}: timing values must be non-negative")
            if array.shape[0] > 1 and np.any(np.diff(array, axis=0) < -1e-12):
                raise InvalidTimingError(
                    f"{name}: execution times must be non-decreasing in the quality level"
                )
        self._qualities = qualities
        self._values = array
        self._values.setflags(write=False)
        self._name = name
        # Prefix sums with a leading zero column: prefix[q, i] = sum of the
        # first i actions at level q.  Shared by every policy computation.
        prefix = np.zeros((array.shape[0], array.shape[1] + 1), dtype=np.float64)
        np.cumsum(array, axis=1, out=prefix[:, 1:])
        prefix.setflags(write=False)
        self._prefix = prefix

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def qualities(self) -> QualitySet:
        """The quality set indexing the rows."""
        return self._qualities

    @property
    def name(self) -> str:
        """Label of the timing function (``"Cwc"``, ``"Cav"`` ...)."""
        return self._name

    @property
    def n_actions(self) -> int:
        """Number of actions (columns)."""
        return int(self._values.shape[1])

    @property
    def values(self) -> np.ndarray:
        """The read-only ``(levels, actions)`` array."""
        return self._values

    @property
    def prefix(self) -> np.ndarray:
        """Read-only prefix sums, shape ``(levels, actions + 1)``.

        ``prefix[qi, i]`` is the total time of actions ``a_1 .. a_i`` at the
        quality level with row index ``qi``; ``prefix[:, 0]`` is zero.
        """
        return self._prefix

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TimingTable)
            and other._qualities == self._qualities
            and np.array_equal(other._values, self._values)
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"TimingTable(name={self._name!r}, levels={len(self._qualities)}, "
            f"actions={self.n_actions})"
        )

    # ------------------------------------------------------------------ #
    # queries in the paper's notation
    # ------------------------------------------------------------------ #
    def of(self, action_index: int, quality: int) -> float:
        """``C(a_i, q)`` for a single action (1-based ``action_index``)."""
        if not 1 <= action_index <= self.n_actions:
            raise IndexError(
                f"action index {action_index} out of range 1..{self.n_actions}"
            )
        qi = self._qualities.index_of(quality)
        return float(self._values[qi, action_index - 1])

    def row(self, quality: int) -> np.ndarray:
        """The per-action times at one quality level, shape ``(n_actions,)``."""
        return self._values[self._qualities.index_of(quality)]

    def total(self, first: int, last: int, quality: int) -> float:
        """``C(a_first .. a_last, q)``: total time of an action range (1-based, inclusive).

        Returns 0 when the range is empty (``first > last``), matching the
        convention used throughout the paper's summations.
        """
        if first > last:
            return 0.0
        if first < 1 or last > self.n_actions:
            raise IndexError(
                f"range {first}..{last} out of bounds for {self.n_actions} actions"
            )
        qi = self._qualities.index_of(quality)
        return float(self._prefix[qi, last] - self._prefix[qi, first - 1])

    def suffix_totals(self, quality: int) -> np.ndarray:
        """``C(a_{i+1} .. a_n, q)`` for every state index ``i`` in ``0..n``.

        Entry ``i`` is the remaining work after ``i`` completed actions; the
        last entry is 0.
        """
        qi = self._qualities.index_of(quality)
        total = self._prefix[qi, -1]
        return total - self._prefix[qi]

    def with_name(self, name: str) -> "TimingTable":
        """Return the same table under a different label."""
        return TimingTable(self._qualities, self._values, name=name, validate=False)

    def dominates(self, other: "TimingTable", *, tolerance: float = 1e-9) -> bool:
        """True when this table is entry-wise >= ``other`` (``C^wc`` vs ``C^av``)."""
        if other.n_actions != self.n_actions or other.qualities != self.qualities:
            return False
        return bool(np.all(self._values + tolerance >= other._values))


def build_table(
    qualities: QualitySet,
    per_action: Sequence[Mapping[int, float]] | Sequence[Sequence[float]],
    *,
    name: str = "C",
) -> TimingTable:
    """Build a :class:`TimingTable` from per-action specifications.

    ``per_action`` holds one entry per action, either a mapping
    ``{quality: time}`` covering every level of ``qualities`` or a sequence of
    times ordered from the lowest to the highest level.
    """
    n_levels = len(qualities)
    columns: list[list[float]] = []
    for position, spec in enumerate(per_action, start=1):
        if isinstance(spec, Mapping):
            try:
                column = [float(spec[level]) for level in qualities]
            except KeyError as missing:
                raise InvalidTimingError(
                    f"{name}: action {position} is missing quality level {missing.args[0]}"
                ) from None
        else:
            column = [float(v) for v in spec]
            if len(column) != n_levels:
                raise InvalidTimingError(
                    f"{name}: action {position} provides {len(column)} times, "
                    f"expected {n_levels}"
                )
        columns.append(column)
    values = np.array(columns, dtype=np.float64).T if columns else np.zeros((n_levels, 0))
    return TimingTable(qualities, values, name=name)


def scaled_table(table: TimingTable, factor: float, *, name: str | None = None) -> TimingTable:
    """Return a copy of ``table`` with every entry multiplied by ``factor``.

    Used to derive worst-case estimates from average estimates (or vice versa)
    and to model platforms of different speeds.
    """
    if factor < 0.0:
        raise InvalidTimingError(f"scaling factor must be non-negative, got {factor}")
    return TimingTable(
        table.qualities,
        table.values * float(factor),
        name=name or table.name,
        validate=False,
    )


def blend_tables(
    first: TimingTable,
    second: TimingTable,
    weight: float,
    *,
    name: str = "Cblend",
) -> TimingTable:
    """Convex combination ``weight * first + (1 - weight) * second``.

    Useful for sensitivity studies on the quality of the average estimate
    (e.g. blending the true average with the worst case).
    """
    if not 0.0 <= weight <= 1.0:
        raise InvalidTimingError(f"blend weight must lie in [0, 1], got {weight}")
    if first.qualities != second.qualities or first.n_actions != second.n_actions:
        raise InvalidTimingError("blended tables must share shape and quality set")
    values = weight * first.values + (1.0 - weight) * second.values
    return TimingTable(first.qualities, values, name=name)


class ActualTimeScenario:
    """Actual execution times ``C(a, q)`` for one cycle, for every level.

    Because the quality of each action is only decided on-line by the Quality
    Manager, a scenario stores the actual time the action *would* take at
    every quality level (a ``(levels, actions)`` matrix, already clipped into
    ``[0, C^wc]`` and forced non-decreasing in quality).  The executor reads
    the row matching the chosen level as the cycle unfolds.
    """

    __slots__ = ("_qualities", "_matrix")

    def __init__(self, qualities: QualitySet, matrix: np.ndarray) -> None:
        array = np.asarray(matrix, dtype=np.float64)
        if array.ndim != 2 or array.shape[0] != len(qualities):
            raise InvalidTimingError(
                f"scenario matrix must have shape (levels, actions), got {array.shape}"
            )
        self._qualities = qualities
        self._matrix = array
        self._matrix.setflags(write=False)

    @property
    def qualities(self) -> QualitySet:
        """The quality set indexing the rows."""
        return self._qualities

    @property
    def matrix(self) -> np.ndarray:
        """Read-only ``(levels, actions)`` matrix of actual times."""
        return self._matrix

    @property
    def n_actions(self) -> int:
        """Number of actions in the cycle."""
        return int(self._matrix.shape[1])

    def actual_time(self, action_index: int, quality: int) -> float:
        """``C(a_i, q)`` for this cycle (1-based ``action_index``)."""
        if not 1 <= action_index <= self.n_actions:
            raise IndexError(
                f"action index {action_index} out of range 1..{self.n_actions}"
            )
        return float(self._matrix[self._qualities.index_of(quality), action_index - 1])

    def times_for(self, quality_rows: np.ndarray) -> np.ndarray:
        """Per-action actual times for a vector of 0-based quality row indices."""
        rows = np.asarray(quality_rows, dtype=np.intp)
        return self._matrix[rows, np.arange(self.n_actions)]


def _without_writable_aliases(array: np.ndarray) -> np.ndarray:
    """The array itself when no writable base aliases it, else a copy.

    Walks the view chain: an array whose memory is reachable through a
    still-writable base cannot be made immutable by freezing the view alone,
    so it is detached; an owned array (or one whose whole chain is already
    frozen) passes through for the zero-copy adoption paths.
    """
    base = array.base
    while base is not None:
        if getattr(base, "flags", None) is not None and base.flags.writeable:
            return array.copy()
        base = getattr(base, "base", None)
    return array


class ScenarioBatch:
    """The actual execution times of many consecutive cycles, columnar.

    One ``(n_cycles, levels, actions)`` float64 tensor plus the quality set —
    the batch analogue of :class:`ActualTimeScenario` and the native currency
    of the scenario pipeline: the batched samplers produce it, the vectorised
    cycle engine (:mod:`repro.core.engine`) executes its tensor directly, and
    the parallel sweep transport (:mod:`repro.runtime.plan`) ships it as a
    single array instead of a tuple of per-cycle objects.

    Per-cycle consumers keep working: ``len(batch)`` is the cycle count,
    ``batch[i]`` returns an :class:`ActualTimeScenario` *view* of cycle ``i``
    (zero-copy, read-only), slices return sub-batches, and iteration yields
    the per-cycle views in order.  The tensor is frozen on construction so a
    consumer of one view can never corrupt its siblings.
    """

    __slots__ = ("_qualities", "_tensor")

    def __init__(self, qualities: QualitySet, tensor: np.ndarray) -> None:
        array = np.asarray(tensor, dtype=np.float64)
        if array.ndim != 3 or array.shape[1] != len(qualities):
            raise InvalidTimingError(
                "scenario batch tensor must have shape (n_cycles, levels, actions) "
                f"with {len(qualities)} levels, got shape {array.shape}"
            )
        # an owned writable array is adopted and frozen in place (the same
        # ownership-transfer convention as TimingTable/ActualTimeScenario);
        # a *view* whose base chain is still writable is copied instead —
        # freezing only the view would leave a writable alias that could
        # corrupt the batch behind its back
        array = _without_writable_aliases(array)
        array.setflags(write=False)
        self._qualities = qualities
        self._tensor = array

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, qualities: QualitySet, n_actions: int) -> "ScenarioBatch":
        """A zero-cycle batch with the given ``(levels, actions)`` footprint."""
        return cls(qualities, np.empty((0, len(qualities), int(n_actions))))

    @classmethod
    def shared(cls, qualities: QualitySet, matrix: np.ndarray, count: int) -> "ScenarioBatch":
        """A batch whose every cycle views one shared ``(levels, actions)`` matrix.

        The sampler-less draw path (actual times equal the averages): the
        matrix is frozen and broadcast along a stride-0 cycle axis, so the
        batch costs one matrix regardless of ``count``.  Built directly
        (NumPy's broadcast machinery creates internal views that defeat the
        constructor's writable-alias inspection); the same alias rule as
        ``__init__`` applies to the matrix — an owned array is adopted and
        frozen, a view over still-writable memory is copied first — so no
        caller-visible alias can mutate the batch.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        count = int(count)
        if matrix.ndim != 2 or matrix.shape[0] != len(qualities):
            raise InvalidTimingError(
                "shared scenario matrix must have shape (levels, actions) "
                f"with {len(qualities)} levels, got shape {matrix.shape}"
            )
        if count < 0:
            raise ValueError(f"scenario count must be >= 0, got {count}")
        matrix = _without_writable_aliases(matrix)
        matrix.setflags(write=False)
        batch = cls.__new__(cls)
        batch._qualities = qualities
        batch._tensor = np.broadcast_to(matrix, (count, *matrix.shape))
        return batch

    @classmethod
    def from_scenarios(
        cls, scenarios: Sequence["ActualTimeScenario"]
    ) -> "ScenarioBatch":
        """Stack per-cycle scenarios into one batch (they must share a quality set)."""
        scenarios = tuple(scenarios)
        if not scenarios:
            raise InvalidTimingError(
                "cannot infer the quality set of an empty scenario sequence; "
                "use ScenarioBatch.empty(qualities, n_actions)"
            )
        qualities = scenarios[0].qualities
        for scenario in scenarios[1:]:
            if scenario.qualities != qualities:
                raise InvalidTimingError(
                    "all scenarios of a batch must share one quality set"
                )
        return cls(qualities, np.stack([scenario.matrix for scenario in scenarios]))

    @classmethod
    def coerce(
        cls, scenarios: "ScenarioBatch | Sequence[ActualTimeScenario]"
    ) -> "ScenarioBatch":
        """The batch itself, or per-cycle scenarios stacked into one."""
        if isinstance(scenarios, cls):
            return scenarios
        return cls.from_scenarios(scenarios)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def qualities(self) -> QualitySet:
        """The quality set indexing the middle axis."""
        return self._qualities

    @property
    def tensor(self) -> np.ndarray:
        """The read-only ``(n_cycles, levels, actions)`` tensor."""
        return self._tensor

    @property
    def n_cycles(self) -> int:
        """Number of cycles in the batch (also ``len(batch)``)."""
        return int(self._tensor.shape[0])

    @property
    def n_actions(self) -> int:
        """Number of actions per cycle."""
        return int(self._tensor.shape[2])

    def __len__(self) -> int:
        return int(self._tensor.shape[0])

    def __getitem__(
        self, index: "int | slice | np.integer"
    ) -> "ActualTimeScenario | ScenarioBatch":
        if isinstance(index, slice):
            # the parent tensor is frozen on construction, so a slice is
            # adopted as a zero-copy view: no re-validation, no alias walk,
            # no defensive copy — the invariant chunked streaming relies on
            # when it carves a caller-supplied batch into per-chunk slices
            view = self._tensor[index]
            if view.shape[0] == 0:
                # an empty sub-batch (``batch[n:n]``, the degenerate case
                # padding/masking code hits at chunk boundaries) must stand
                # on its own: a zero-copy view would pin the whole parent
                # buffer alive through ``.base`` for no data at all
                view = np.empty(
                    (0,) + self._tensor.shape[1:], dtype=self._tensor.dtype
                )
                view.setflags(write=False)
            batch = ScenarioBatch.__new__(ScenarioBatch)
            batch._qualities = self._qualities
            batch._tensor = view
            return batch
        return ActualTimeScenario(self._qualities, self._tensor[int(index)])

    def __iter__(self):
        for cycle in range(len(self)):
            yield ActualTimeScenario(self._qualities, self._tensor[cycle])

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ScenarioBatch)
            and other._qualities == self._qualities
            and np.array_equal(other._tensor, self._tensor)
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ScenarioBatch(cycles={len(self)}, levels={len(self._qualities)}, "
            f"actions={self.n_actions})"
        )

    def __reduce__(self):
        # shared-matrix batches (stride-0 cycle axis, the sampler-less draw
        # path) ship one matrix plus the count instead of n_cycles copies
        if len(self) > 1 and self._tensor.strides[0] == 0:
            return (
                _broadcast_batch,
                (self._qualities, np.ascontiguousarray(self._tensor[0]), len(self)),
            )
        # re-run __init__ on unpickle: restores the frozen flag and accepts
        # the contiguous copy pickling needs anyway
        return (ScenarioBatch, (self._qualities, np.ascontiguousarray(self._tensor)))

    def scenarios(self) -> tuple["ActualTimeScenario", ...]:
        """Materialise the per-cycle views (for tuple-shaped legacy consumers)."""
        return tuple(self)

    def nbytes(self) -> int:
        """Size of one contiguous copy of the tensor, in bytes."""
        return int(self._tensor.size * self._tensor.itemsize)


def _broadcast_batch(
    qualities: QualitySet, matrix: np.ndarray, count: int
) -> ScenarioBatch:
    """Unpickle helper: rebuild a shared-matrix batch as a zero-copy broadcast."""
    return ScenarioBatch.shared(qualities, matrix, count)


class TimingModel:
    """A pair of (worst-case, average) timing tables plus an actual-time sampler.

    This bundles the three timing functions of Definition 1.  The sampler
    produces one :class:`ActualTimeScenario` per cycle; the result is always
    clipped into ``[0, C^wc]`` and made non-decreasing along the quality axis,
    so a sloppy sampler can never break the model's hypotheses.

    Parameters
    ----------
    worst_case:
        The ``C^wc`` table.
    average:
        The ``C^av`` table.  Must be dominated by ``worst_case``.
    scenario_sampler:
        Optional callable ``rng -> matrix`` returning a ``(levels, actions)``
        array of raw actual times for one cycle.  When omitted, actual times
        equal the average times (the paper's "ideal" case ``C = C^av``).
    """

    __slots__ = ("worst_case", "average", "_sampler")

    def __init__(
        self,
        worst_case: TimingTable,
        average: TimingTable,
        scenario_sampler: Callable[[np.random.Generator], np.ndarray] | None = None,
    ) -> None:
        if worst_case.qualities != average.qualities:
            raise InvalidTimingError("Cwc and Cav must share the same quality set")
        if worst_case.n_actions != average.n_actions:
            raise InvalidTimingError("Cwc and Cav must cover the same action sequence")
        if not worst_case.dominates(average):
            raise InvalidTimingError("Cav must be dominated by Cwc (Cav <= Cwc)")
        self.worst_case = worst_case
        self.average = average
        self._sampler = scenario_sampler

    @property
    def qualities(self) -> QualitySet:
        """Quality set shared by both tables."""
        return self.worst_case.qualities

    @property
    def n_actions(self) -> int:
        """Number of actions covered by the model."""
        return self.worst_case.n_actions

    @property
    def scenario_sampler(self) -> Callable[[np.random.Generator], np.ndarray] | None:
        """The raw scenario sampler, or ``None`` when actual times equal ``C^av``."""
        return self._sampler

    def sample_scenario(self, rng: np.random.Generator) -> ActualTimeScenario:
        """Draw the actual execution times of one cycle.

        The raw sample is clipped into ``[0, C^wc]`` and forced non-decreasing
        along the quality axis (a running maximum), enforcing Definition 1.
        """
        if self._sampler is None:
            raw = self.average.values
        else:
            raw = np.asarray(self._sampler(rng), dtype=np.float64)
            if raw.shape != self.worst_case.values.shape:
                raise InvalidTimingError(
                    "scenario sampler must return a (levels, actions) matrix matching Cwc"
                )
        clipped = np.clip(raw, 0.0, self.worst_case.values)
        monotone = np.maximum.accumulate(clipped, axis=0)
        # the running maximum can push values above Cwc at higher levels when
        # the worst case itself is not strictly increasing; clip again.
        monotone = np.minimum(monotone, self.worst_case.values)
        return ActualTimeScenario(self.qualities, monotone)

    def sample_scenarios(
        self,
        count: int,
        rng: np.random.Generator,
    ) -> ScenarioBatch:
        """Draw the actual execution times of ``count`` consecutive cycles.

        Bit-identical to ``count`` successive :meth:`sample_scenario` calls —
        the same random variates in the same order, the same sampler-state
        advancement for stateful samplers — but columnar: the result is one
        :class:`ScenarioBatch` holding a ``(count, levels, actions)`` tensor,
        never ``count`` separate per-cycle objects.  Samplers exposing a
        ``sample_batch(count, rng)`` method (e.g.
        :class:`~repro.media.timing_model.FrameScenarioSampler`) produce the
        raw tensor in one NumPy kernel and the Definition 1 enforcement (clip
        into ``[0, C^wc]``, running maximum along quality) is applied to the
        whole tensor in one pass.  Samplers declaring
        ``returns_fresh_batches = True`` (the built-in
        :class:`~repro.media.timing_model.FrameScenarioSampler` and the
        derived-system wrappers) hand over ownership of that array and the
        enforcement runs in place — one buffer at paper scale; any other
        sampler's array is copied first, so a custom sampler that retains
        its buffer is never corrupted behind its back.  Without a sampler
        the batch is a zero-copy broadcast of the single shared
        average-times matrix (frozen, so no consumer can corrupt the
        siblings).
        """
        count = int(count)
        if count < 0:
            raise ValueError(f"scenario count must be >= 0, got {count}")
        shape = self.worst_case.values.shape
        if count == 0:
            return ScenarioBatch.empty(self.qualities, shape[1])
        if self._sampler is None:
            # actual times equal the averages: every cycle sees one identical,
            # already-validated matrix — broadcast it (stride-0 first axis, no
            # copies); the matrix is frozen so a consumer holding one cycle's
            # view cannot corrupt the shared data
            return ScenarioBatch.shared(
                self.qualities, self.sample_scenario(rng).matrix, count
            )
        batch_sampler = getattr(self._sampler, "sample_batch", None)
        if batch_sampler is None:
            return ScenarioBatch(
                self.qualities,
                np.stack([self.sample_scenario(rng).matrix for _ in range(count)]),
            )
        raw = np.asarray(batch_sampler(count, rng), dtype=np.float64)
        expected = (count, *shape)
        if raw.shape != expected:
            raise InvalidTimingError(
                f"batch scenario sampler must return a {expected} array, "
                f"got shape {raw.shape}"
            )
        owned = bool(getattr(self._sampler, "returns_fresh_batches", False))
        if not owned or not raw.flags.writeable:
            raw = raw.copy()
        # Definition 1 on the whole tensor, in place (one buffer at paper scale)
        ceiling = self.worst_case.values[None, :, :]
        np.clip(raw, 0.0, ceiling, out=raw)
        np.maximum.accumulate(raw, axis=1, out=raw)
        np.minimum(raw, ceiling, out=raw)
        return ScenarioBatch(self.qualities, raw)

    def sample_actual(
        self,
        quality_rows: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw actual execution times for a cycle run at fixed per-action levels.

        ``quality_rows`` holds the 0-based quality row index chosen for every
        action.  Convenience wrapper over :meth:`sample_scenario`.
        """
        rows = np.asarray(quality_rows, dtype=np.intp)
        if rows.shape != (self.n_actions,):
            raise ValueError(
                f"expected one quality row per action ({self.n_actions}), got shape {rows.shape}"
            )
        return self.sample_scenario(rng).times_for(rows)
