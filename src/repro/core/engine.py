"""Vectorised batch execution of ``PS || Γ``: many cycles as NumPy kernels.

The scalar loop of :func:`repro.core.controller.run_cycle` pays Python
interpreter cost for every action of every cycle — manager call, overhead
charge, scenario read, float accumulation.  The paper's table-driven managers
make the *per-action management cost* a small constant, which means all of
that per-action work is mechanically the same across cycles: a batch of
cycles can execute in lockstep, one NumPy operation per action covering every
cycle at once.

The engine works in three parts:

* **decision kernels** — each table-driven manager is lowered once into a
  :class:`DecisionKernel`: the quality choice becomes an interval lookup via
  :func:`numpy.searchsorted` over the pre-computed ``t^D`` boundaries of the
  :class:`~repro.core.tdtable.TDTable` (the quality regions of Proposition 2),
  and the relaxation step choice becomes masked comparisons against the
  stored :class:`~repro.core.relaxation.RelaxationTable` bounds;
* **the lockstep executor** — :func:`run_cycles_vectorized` advances every
  cycle of the batch by exactly one action per iteration, so the per-cycle
  sequence of floating-point additions (overhead, then one duration per
  action) is *identical* to the scalar loop and the resulting
  :class:`~repro.core.system.CycleOutcome` batches are bit-identical;
* **the dispatcher** — :func:`run_cycles_batch` draws scenarios through the
  batched :meth:`~repro.core.system.ParameterizedSystem.draw_scenarios` API
  (a columnar :class:`~repro.core.timing.ScenarioBatch` whose tensor the
  executor consumes directly, no re-stacking) and picks the vectorised path
  when a kernel exists, falling back to the scalar loop (same results,
  slower) for managers with no kernel — the numeric manager, the adaptive
  baselines, the extension managers — or for overhead models that do not
  declare deterministic charges.

Determinism contract: for any manager/overhead/scenario combination, the
outcomes returned by this module are bit-identical to a sequence of scalar
:func:`~repro.core.controller.run_cycle` calls on the same scenarios.
Overhead-model bookkeeping is preserved through a bulk hook: charges are
pre-computed per distinct work record via ``cost_of`` instead of calling
``charge`` once per invocation, and after the batch the exact invocation
counts are replayed through ``charge_batch(work, count)`` when the model
exposes it (the built-in models do); a model with neither hook simply does
not see the individual calls.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.obs.metrics import registry as _obs_registry
from repro.obs.state import enabled as _obs_enabled

from .controller import OverheadModelProtocol, run_cycle
from .manager import ManagerWork, QualityManager
from .regions import RegionQualityManager
from .relaxation import RelaxationQualityManager
from .system import CycleOutcome, ParameterizedSystem
from .timing import ActualTimeScenario, ScenarioBatch

__all__ = [
    "EngineError",
    "DecisionKernel",
    "coerce_vectorize_mode",
    "overhead_model_vectorizable",
    "compile_decision_kernel",
    "supports_vectorized",
    "scenarios_vectorizable",
    "run_cycles_vectorized",
    "run_cycles_batch",
]

#: accepted values of the ``vectorize`` switch after coercion
_MODES = ("auto", "always", "never")


class EngineError(ValueError):
    """Invalid engine input, or ``vectorize="always"`` without a kernel."""


def coerce_vectorize_mode(value: object) -> str:
    """Normalise a ``vectorize`` switch to ``"auto"``/``"always"``/``"never"``.

    ``True`` means ``"always"`` (raise when no kernel exists), ``False`` means
    ``"never"`` (scalar loop), ``None`` means ``"auto"`` (vectorise when the
    manager/overhead pair supports it — the recommended default).
    """
    if value is None:
        return "auto"
    if value is True:
        return "always"
    if value is False:
        return "never"
    if isinstance(value, str) and value in _MODES:
        return value
    raise EngineError(
        f"vectorize must be one of {_MODES}, True, False or None, got {value!r}"
    )


@runtime_checkable
class DecisionKernel(Protocol):
    """A manager lowered into batch decisions over pre-computed tables.

    ``decide_batch(state_index, times)`` answers, for every cycle currently
    deciding at ``state_index`` with elapsed time ``times[c]``, the 0-based
    quality row, the relaxation step count and the overhead charge of that
    invocation — the vectorised equivalent of one
    :meth:`~repro.core.manager.QualityManager.decide` call per cycle.
    """

    def decide_batch(
        self, state_index: int, times: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, steps, overheads)`` arrays, one entry per time."""
        ...


def overhead_model_vectorizable(model: OverheadModelProtocol | None) -> bool:
    """True when charges can be pre-computed per distinct work record.

    The engine calls ``cost_of(work)`` once per work record the kernel can
    emit instead of ``charge(work)`` once per invocation; that is only valid
    for models declaring ``deterministic_charges`` (a pure function of the
    work record), e.g. :class:`~repro.platform.overhead.LinearOverheadModel`.
    """
    if model is None:
        return True
    return bool(getattr(model, "deterministic_charges", False)) and hasattr(
        model, "cost_of"
    )


def _charge_for(model: OverheadModelProtocol | None, work: ManagerWork) -> float:
    """The pre-computed cost of one invocation performing ``work``."""
    if model is None:
        return 0.0
    return float(model.cost_of(work))  # type: ignore[attr-defined]


def _ascending_boundaries(td_values: np.ndarray) -> np.ndarray | None:
    """Per-state ``t^D`` boundaries as ascending rows for ``searchsorted``.

    Returns a ``(n_states, n_levels)`` array whose row ``i`` holds the
    state's boundaries lowest-quality-last (ascending), or ``None`` when the
    columns are not non-increasing in quality — the interval-lookup kernel
    then would not reproduce the scalar "last eligible level" rule and the
    caller must fall back to the scalar loop.
    """
    if td_values.shape[0] > 1 and not bool(np.all(np.diff(td_values, axis=0) <= 0.0)):
        return None
    return np.ascontiguousarray(td_values[::-1].T)


def _choose_rows(
    boundaries: np.ndarray, n_levels: int, state_index: int, times: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Quality rows by interval lookup: ``max { q | t^D(s_i, q) >= t }``.

    ``boundaries[state_index]`` is ascending, so the eligible levels form a
    suffix; ``searchsorted`` finds its first entry ``>= t`` and the count of
    eligible levels follows.  Returns ``(rows, late)`` where late cycles
    (no eligible level) fall back to row 0 — the minimal quality, exactly
    :meth:`TDTable.choose_quality`'s best-effort rule.
    """
    first = np.searchsorted(boundaries[state_index], times, side="left")
    counts = n_levels - first
    late = counts == 0
    rows = np.where(late, 0, counts - 1)
    return rows, late


class _FixedWorkKernel:
    """Shared invocation accounting for kernels with one distinct work record."""

    def __init__(self, work: ManagerWork, charge: float) -> None:
        self._work = work
        self._charge = float(charge)
        self._invocations = 0

    def reset_accounting(self) -> None:
        self._invocations = 0

    def accounting(self) -> list[tuple[ManagerWork, int]]:
        """Invocation count per distinct work record since the last reset."""
        return [(self._work, self._invocations)]


class _ConstantKernel(_FixedWorkKernel):
    """Kernel for the constant-quality baseline (fixed row, fixed charge)."""

    def __init__(
        self,
        row: int,
        consult_every_action: bool,
        horizon: int | None,
        work: ManagerWork,
        charge: float,
    ) -> None:
        super().__init__(work, charge)
        self._row = int(row)
        self._consult = bool(consult_every_action)
        self._horizon = horizon

    def decide_batch(
        self, state_index: int, times: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        count = times.shape[0]
        self._invocations += count
        rows = np.full(count, self._row, dtype=np.intp)
        if self._consult:
            steps = np.ones(count, dtype=np.int64)
        else:
            remaining = (self._horizon - state_index) if self._horizon else 10**9
            steps = np.full(count, max(1, remaining), dtype=np.int64)
        overheads = np.full(count, self._charge, dtype=np.float64)
        return rows, steps, overheads


class _RegionKernel(_FixedWorkKernel):
    """Kernel for the quality-region manager: one interval lookup per cycle."""

    def __init__(
        self, boundaries: np.ndarray, n_levels: int, work: ManagerWork, charge: float
    ) -> None:
        super().__init__(work, charge)
        self._boundaries = boundaries
        self._n_levels = int(n_levels)

    def decide_batch(
        self, state_index: int, times: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        self._invocations += times.shape[0]
        rows, _ = _choose_rows(self._boundaries, self._n_levels, state_index, times)
        steps = np.ones(times.shape[0], dtype=np.int64)
        overheads = np.full(times.shape[0], self._charge, dtype=np.float64)
        return rows, steps, overheads


class _RelaxationKernel:
    """Kernel for the relaxation manager: region lookup + stored ``R^r_q`` bounds.

    ``lower``/``upper`` hold one ``(n_states, n_levels)`` array per step of
    ``step_values`` (ascending); the step choice scans them in ascending
    order and keeps the largest containing region, exactly
    :meth:`RelaxationTable.max_relaxation`.
    """

    def __init__(
        self,
        boundaries: np.ndarray,
        n_levels: int,
        step_values: Sequence[int],
        lower: Sequence[np.ndarray],
        upper: Sequence[np.ndarray],
        work: ManagerWork,
        charge: float,
        late_work: ManagerWork,
        late_charge: float,
    ) -> None:
        self._boundaries = boundaries
        self._n_levels = int(n_levels)
        self._steps = tuple(int(r) for r in step_values)
        self._lower = tuple(lower)
        self._upper = tuple(upper)
        self._work = work
        self._charge = float(charge)
        self._late_work = late_work
        self._late_charge = float(late_charge)
        self._invocations = 0
        self._late_invocations = 0

    def reset_accounting(self) -> None:
        self._invocations = 0
        self._late_invocations = 0

    def accounting(self) -> list[tuple[ManagerWork, int]]:
        """Invocation count per distinct work record since the last reset."""
        return [
            (self._work, self._invocations),
            (self._late_work, self._late_invocations),
        ]

    def decide_batch(
        self, state_index: int, times: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        rows, late = _choose_rows(self._boundaries, self._n_levels, state_index, times)
        steps = np.ones(times.shape[0], dtype=np.int64)
        live = ~late
        n_late = int(late.sum())
        self._late_invocations += n_late
        self._invocations += times.shape[0] - n_late
        for r, lower, upper in zip(self._steps, self._lower, self._upper):
            if r <= 1:
                continue  # the scalar scan never improves on the initial best of 1
            low = lower[state_index][rows]
            high = upper[state_index][rows]
            contained = live & (low < times) & (times <= high)
            steps[contained] = r
        overheads = np.where(late, self._late_charge, self._charge)
        return rows, steps, overheads


def compile_decision_kernel(
    manager: QualityManager,
    overhead_model: OverheadModelProtocol | None = None,
) -> DecisionKernel | None:
    """Lower a manager into a :class:`DecisionKernel`, or ``None``.

    ``None`` means the scalar loop must be used: the manager is not one of
    the table-driven implementations (exact types only — subclasses may
    override ``decide`` arbitrarily), its ``t^D`` table is not monotone in
    quality, or the overhead model's charges cannot be pre-computed.
    """
    if not overhead_model_vectorizable(overhead_model):
        return None
    from repro.baselines.constant import ConstantQualityManager

    n_levels = len(manager.qualities)
    if type(manager) is ConstantQualityManager:
        work = ManagerWork(kind=manager.name, comparisons=0, table_lookups=1)
        return _ConstantKernel(
            manager.qualities.index_of(manager.level),
            manager.consults_every_action,
            manager.horizon,
            work,
            _charge_for(overhead_model, work),
        )
    if type(manager) is RegionQualityManager:
        boundaries = _ascending_boundaries(manager.regions.td_table.values)
        if boundaries is None:
            return None
        work = ManagerWork(
            kind=manager.name,
            arithmetic_ops=0,
            comparisons=n_levels,
            table_lookups=n_levels,
        )
        return _RegionKernel(
            boundaries, n_levels, work, _charge_for(overhead_model, work)
        )
    if type(manager) is RelaxationQualityManager:
        table = manager.relaxation
        boundaries = _ascending_boundaries(table.td_table.values)
        if boundaries is None:
            return None
        n_rho = len(table.steps)
        work = ManagerWork(
            kind=manager.name,
            comparisons=n_levels + 2 * n_rho,
            table_lookups=n_levels + 2 * n_rho,
        )
        late_work = ManagerWork(
            kind=manager.name, comparisons=n_levels, table_lookups=n_levels
        )
        return _RelaxationKernel(
            boundaries,
            n_levels,
            table.steps,
            [np.ascontiguousarray(table.lower_bounds(r).T) for r in table.steps],
            [np.ascontiguousarray(table.upper_bounds(r).T) for r in table.steps],
            work,
            _charge_for(overhead_model, work),
            late_work,
            _charge_for(overhead_model, late_work),
        )
    return None


def supports_vectorized(
    manager: QualityManager,
    overhead_model: OverheadModelProtocol | None = None,
) -> bool:
    """True when the manager/overhead pair lowers to a decision kernel."""
    return compile_decision_kernel(manager, overhead_model) is not None


def scenarios_vectorizable(
    system: ParameterizedSystem,
    scenarios: ScenarioBatch | Sequence[ActualTimeScenario],
) -> bool:
    """True when every scenario indexes by the system's own quality set.

    The kernels translate quality rows through the *system's* quality set;
    a scenario drawn for a different (e.g. wider) set is still executable by
    the scalar loop, which uses the scenario's own level-to-row mapping.
    """
    if isinstance(scenarios, ScenarioBatch):
        return scenarios.qualities == system.qualities
    return all(scenario.qualities == system.qualities for scenario in scenarios)


def _scenario_tensor(
    system: ParameterizedSystem,
    scenarios: ScenarioBatch | Sequence[ActualTimeScenario],
) -> np.ndarray:
    """Validate the scenarios and return the ``(n_cycles, levels, actions)`` tensor.

    A :class:`~repro.core.timing.ScenarioBatch` is consumed directly — the
    engine executes its tensor with no re-stacking and no per-cycle objects;
    a sequence of per-cycle scenarios is validated and stacked once.
    """
    if isinstance(scenarios, ScenarioBatch):
        if scenarios.n_actions != system.n_actions:
            raise ValueError(
                f"scenario batch covers {scenarios.n_actions} actions, "
                f"system has {system.n_actions}"
            )
        if scenarios.qualities != system.qualities:
            raise EngineError(
                "vectorised execution requires scenarios drawn for the system's "
                f"quality set; got {scenarios.qualities!r} vs {system.qualities!r}"
            )
        return scenarios.tensor
    for scenario in scenarios:
        if scenario.n_actions != system.n_actions:
            raise ValueError(
                f"scenario covers {scenario.n_actions} actions, "
                f"system has {system.n_actions}"
            )
        if scenario.qualities != system.qualities:
            raise EngineError(
                "vectorised execution requires scenarios drawn for the system's "
                f"quality set; got {scenario.qualities!r} vs {system.qualities!r}"
            )
    return np.stack([scenario.matrix for scenario in scenarios])


def run_cycles_vectorized(
    system: ParameterizedSystem,
    manager: QualityManager,
    scenarios: ScenarioBatch | Sequence[ActualTimeScenario],
    *,
    overhead_model: OverheadModelProtocol | None = None,
    kernel: DecisionKernel | None = None,
) -> tuple[CycleOutcome, ...]:
    """Execute a batch of cycles through the lockstep vectorised engine.

    ``scenarios`` is a :class:`~repro.core.timing.ScenarioBatch` (its tensor
    is executed directly) or a sequence of per-cycle scenarios (stacked
    once).  All cycles advance one action per iteration, so every cycle
    performs the exact floating-point operation sequence of the scalar loop
    (overhead added at each invocation, one duration added per action) and
    the returned outcomes are bit-identical to per-cycle
    :func:`~repro.core.controller.run_cycle` calls.  Raises
    :class:`EngineError` when the manager has no kernel.
    """
    if kernel is None:
        kernel = compile_decision_kernel(manager, overhead_model)
        if kernel is None:
            raise EngineError(
                f"manager {manager.name!r} (with this overhead model) has no "
                "vectorised decision kernel; use run_cycles_batch for automatic "
                "scalar fallback"
            )
    if not len(scenarios):
        return ()
    matrices = _scenario_tensor(system, scenarios)
    n_cycles = matrices.shape[0]
    n_actions = system.n_actions
    level_minimum = system.qualities.minimum
    manager.reset()
    reset_accounting = getattr(kernel, "reset_accounting", None)
    if reset_accounting is not None:
        reset_accounting()

    qualities = np.empty((n_cycles, n_actions), dtype=np.int64)
    durations = np.empty((n_cycles, n_actions), dtype=np.float64)
    completion = np.empty((n_cycles, n_actions), dtype=np.float64)
    invoked = np.zeros((n_actions, n_cycles), dtype=bool)
    invocation_overheads = np.zeros((n_actions, n_cycles), dtype=np.float64)

    elapsed = np.zeros(n_cycles, dtype=np.float64)
    remaining = np.zeros(n_cycles, dtype=np.int64)  # actions left in the window
    rows = np.zeros(n_cycles, dtype=np.intp)
    cycle_index = np.arange(n_cycles)

    for i in range(n_actions):
        deciding = remaining == 0
        if deciding.any():
            times = elapsed[deciding]
            decided_rows, decided_steps, decided_overheads = kernel.decide_batch(
                i, times
            )
            rows[deciding] = decided_rows
            remaining[deciding] = np.minimum(decided_steps, n_actions - i)
            elapsed[deciding] = times + decided_overheads
            invoked[i] = deciding
            invocation_overheads[i, deciding] = decided_overheads
        step_durations = matrices[cycle_index, rows, i]
        elapsed += step_durations
        durations[:, i] = step_durations
        completion[:, i] = elapsed
        qualities[:, i] = level_minimum + rows
        remaining -= 1

    if overhead_model is not None:
        # replay the invocation accounting in bulk: models exposing the
        # charge_batch hook see exact call counts per distinct work record
        charge_batch = getattr(overhead_model, "charge_batch", None)
        accounting = getattr(kernel, "accounting", None)
        if charge_batch is not None and accounting is not None:
            for work, count in accounting():
                if count:
                    charge_batch(work, count)

    states = np.arange(n_actions, dtype=np.int64)
    outcomes = []
    for c in range(n_cycles):
        mask = invoked[:, c]
        outcomes.append(
            CycleOutcome(
                qualities=qualities[c],
                durations=durations[c],
                completion_times=completion[c],
                manager_invocations=states[mask],
                manager_overheads=invocation_overheads[mask, c],
            )
        )
    return tuple(outcomes)


def run_cycles_batch(
    system: ParameterizedSystem,
    manager: QualityManager,
    cycles: int | None = None,
    *,
    scenarios: ScenarioBatch | Sequence[ActualTimeScenario] | None = None,
    rng: np.random.Generator | None = None,
    overhead_model: OverheadModelProtocol | None = None,
    vectorize: object = "auto",
) -> tuple[CycleOutcome, ...]:
    """Execute a batch of cycles, vectorised when possible.

    The batch entry point used by :class:`~repro.api.session.Session` and the
    :mod:`~repro.runtime.pool` workers.  ``scenarios`` fixes the actual times
    of every cycle — a :class:`~repro.core.timing.ScenarioBatch` tensor is
    executed directly, a sequence of per-cycle scenarios is accepted too;
    when omitted, ``cycles`` scenarios are drawn up-front as one batch via
    :meth:`~repro.core.system.ParameterizedSystem.draw_scenarios`
    (bit-identical to the scalar loop's per-cycle draws, including the
    sampler-state advancement).  ``vectorize`` is ``"auto"`` (kernel when
    available, scalar otherwise), ``"always"``/``True`` (raise without a
    kernel) or ``"never"``/``False`` (scalar loop).
    """
    mode = coerce_vectorize_mode(vectorize)
    if scenarios is None:
        if cycles is None:
            raise EngineError("pass a cycle count or an explicit scenario batch")
        if int(cycles) < 0:
            raise EngineError(f"cycles must be >= 0, got {cycles}")
        generator = rng if rng is not None else np.random.default_rng(0)
        scenarios = system.draw_scenarios(int(cycles), generator)
    else:
        if not isinstance(scenarios, ScenarioBatch):
            scenarios = tuple(scenarios)
        if cycles is not None and len(scenarios) != int(cycles):
            raise EngineError(
                f"expected {cycles} scenarios, got {len(scenarios)}"
            )
    kernel = None
    if mode != "never":
        kernel = compile_decision_kernel(manager, overhead_model)
        if kernel is None and mode == "always":
            raise EngineError(
                f"manager {manager.name!r} (with this overhead model) has no "
                "vectorised decision kernel"
            )
        if kernel is not None and not scenarios_vectorizable(system, scenarios):
            if mode == "always":
                raise EngineError(
                    "vectorised execution requires scenarios drawn for the "
                    "system's quality set"
                )
            kernel = None  # the scalar loop handles foreign quality sets
    if _obs_enabled():
        mode_label = "vectorized" if kernel is not None else "scalar"
        registry = _obs_registry()
        registry.inc(f"engine.batches.{mode_label}.{type(manager).__name__}")
        registry.inc(f"engine.cycles.{mode_label}", len(scenarios))
    if kernel is not None:
        return run_cycles_vectorized(
            system, manager, scenarios, overhead_model=overhead_model, kernel=kernel
        )
    return tuple(
        run_cycle(system, manager, scenario=scenario, overhead_model=overhead_model)
        for scenario in scenarios
    )
