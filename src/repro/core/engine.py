"""Vectorised batch execution of ``PS || Γ``: many cycles as NumPy kernels.

The scalar loop of :func:`repro.core.controller.run_cycle` pays Python
interpreter cost for every action of every cycle — manager call, overhead
charge, scenario read, float accumulation.  The paper's table-driven managers
make the *per-action management cost* a small constant, which means all of
that per-action work is mechanically the same across cycles: a batch of
cycles can execute in lockstep, one NumPy operation per action covering every
cycle at once.

The engine works in three parts:

* **decision kernels** — each manager lowers itself once into a declarative
  :class:`~repro.core.kernelspec.KernelSpec` (pre-computed tables plus one
  primitive op) via :meth:`~repro.core.manager.QualityManager.lower`; a
  compute backend (:mod:`repro.core.backend` — NumPy by default, numba
  optionally) compiles the spec into a batch program, and the engine binds
  overhead charges and invocation accounting around it
  (:class:`DecisionKernel`).  The engine never branches on manager classes:
  every registered manager — numeric, the adaptive baselines (skip, elastic,
  feedback), the symbolic managers and the extensions (dvfs, multitask,
  linear-approx) — runs through the same spec protocol;
* **the lockstep executor** — :func:`run_cycles_vectorized` advances every
  cycle of the batch by exactly one action per iteration, so the per-cycle
  sequence of floating-point additions (overhead, then one duration per
  action) is *identical* to the scalar loop and the resulting
  :class:`~repro.core.system.CycleOutcome` batches are bit-identical;
* **the dispatcher** — :func:`run_cycles_batch` draws scenarios through the
  batched :meth:`~repro.core.system.ParameterizedSystem.draw_scenarios` API
  (a columnar :class:`~repro.core.timing.ScenarioBatch` whose tensor the
  executor consumes directly, no re-stacking) and picks the vectorised path
  when a kernel exists, falling back to the scalar loop (same results,
  slower, counted under ``engine.scalar_fallback`` in :mod:`repro.obs`) for
  managers that do not lower or overhead models that do not declare
  deterministic charges.

Determinism contract: for any manager/overhead/scenario combination, the
outcomes returned by this module are bit-identical to a sequence of scalar
:func:`~repro.core.controller.run_cycle` calls on the same scenarios.
Overhead-model bookkeeping is preserved through a bulk hook: charges are
pre-computed per distinct work record via ``cost_of`` instead of calling
``charge`` once per invocation, and after the batch the exact invocation
counts are replayed through ``charge_batch(work, count)`` when the model
exposes it (the built-in models do); a model with neither hook simply does
not see the individual calls.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.obs.metrics import registry as _obs_registry
from repro.obs.state import enabled as _obs_enabled

from .backend import get_backend
from .controller import OverheadModelProtocol, run_cycle
from .kernelspec import KernelSpec
from .manager import ManagerWork, QualityManager
from .system import CycleOutcome, ParameterizedSystem
from .timing import ActualTimeScenario, ScenarioBatch

__all__ = [
    "EngineError",
    "DecisionKernel",
    "coerce_vectorize_mode",
    "overhead_model_vectorizable",
    "compile_decision_kernel",
    "supports_vectorized",
    "scenarios_vectorizable",
    "run_cycles_vectorized",
    "run_lockstep_arrays",
    "run_cycles_batch",
]

#: accepted values of the ``vectorize`` switch after coercion
_MODES = ("auto", "always", "never")


class EngineError(ValueError):
    """Invalid engine input, or ``vectorize="always"`` without a kernel."""


def coerce_vectorize_mode(value: object) -> str:
    """Normalise a ``vectorize`` switch to ``"auto"``/``"always"``/``"never"``.

    ``True`` means ``"always"`` (raise when no kernel exists), ``False`` means
    ``"never"`` (scalar loop), ``None`` means ``"auto"`` (vectorise when the
    manager/overhead pair supports it — the recommended default).
    """
    if value is None:
        return "auto"
    if value is True:
        return "always"
    if value is False:
        return "never"
    if isinstance(value, str) and value in _MODES:
        return value
    raise EngineError(
        f"vectorize must be one of {_MODES}, True, False or None, got {value!r}"
    )


@runtime_checkable
class DecisionKernel(Protocol):
    """A manager lowered into batch decisions over pre-computed tables.

    ``decide_batch(state_index, times)`` answers, for every cycle currently
    deciding at ``state_index`` with elapsed time ``times[c]``, the 0-based
    quality row, the relaxation step count and the overhead charge of that
    invocation — the vectorised equivalent of one
    :meth:`~repro.core.manager.QualityManager.decide` call per cycle.
    """

    def decide_batch(
        self, state_index: int, times: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, steps, overheads)`` arrays, one entry per time."""
        ...


def overhead_model_vectorizable(model: OverheadModelProtocol | None) -> bool:
    """True when charges can be pre-computed per distinct work record.

    The engine calls ``cost_of(work)`` once per work record the kernel can
    emit instead of ``charge(work)`` once per invocation; that is only valid
    for models declaring ``deterministic_charges`` (a pure function of the
    work record), e.g. :class:`~repro.platform.overhead.LinearOverheadModel`.
    """
    if model is None:
        return True
    return bool(getattr(model, "deterministic_charges", False)) and hasattr(
        model, "cost_of"
    )


def _charge_for(model: OverheadModelProtocol | None, work: ManagerWork) -> float:
    """The pre-computed cost of one invocation performing ``work``."""
    if model is None:
        return 0.0
    return float(model.cost_of(work))  # type: ignore[attr-defined]


class _SpecKernel:
    """A compiled spec bound to overhead charges and invocation accounting.

    The backend program answers the pure decisions ``(rows, steps, late)``;
    this wrapper adds what the engine owes the overhead model: the
    pre-computed charge of each invocation (per-state when the spec carries
    one work record per state, late-split when the spec has a distinct late
    record, fixed otherwise) and the exact invocation counts replayed through
    ``charge_batch`` after the batch.
    """

    def __init__(
        self,
        spec: KernelSpec,
        program: object,
        overhead_model: OverheadModelProtocol | None,
    ) -> None:
        self._program = program
        work = spec.work
        self._per_state = isinstance(work, tuple)
        if self._per_state:
            self._works: tuple[ManagerWork, ...] = work
            self._charges = np.array(
                [_charge_for(overhead_model, record) for record in work],
                dtype=np.float64,
            )
            self._counts = np.zeros(len(work), dtype=np.int64)
        else:
            self._work: ManagerWork = work
            self._charge = _charge_for(overhead_model, work)
            self._invocations = 0
        self._late_work = spec.late_work
        self._late_charge = (
            _charge_for(overhead_model, spec.late_work)
            if spec.late_work is not None
            else 0.0
        )
        self._late_invocations = 0

    def reset_accounting(self) -> None:
        if self._per_state:
            self._counts[:] = 0
        else:
            self._invocations = 0
        self._late_invocations = 0

    def accounting(self) -> list[tuple[ManagerWork, int]]:
        """Invocation count per distinct work record since the last reset."""
        if self._per_state:
            return [
                (record, int(count))
                for record, count in zip(self._works, self._counts)
            ]
        if self._late_work is not None:
            return [
                (self._work, self._invocations),
                (self._late_work, self._late_invocations),
            ]
        return [(self._work, self._invocations)]

    def decide_batch(
        self, state_index: int, times: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        rows, steps, late = self._program.decide(state_index, times)  # type: ignore[attr-defined]
        count = times.shape[0]
        if self._per_state:
            self._counts[state_index] += count
            overheads = np.full(count, self._charges[state_index], dtype=np.float64)
        elif self._late_work is not None and late is not None:
            n_late = int(late.sum())
            self._late_invocations += n_late
            self._invocations += count - n_late
            overheads = np.where(late, self._late_charge, self._charge)
        else:
            self._invocations += count
            overheads = np.full(count, self._charge, dtype=np.float64)
        return rows, steps, overheads


def compile_decision_kernel(
    manager: QualityManager,
    overhead_model: OverheadModelProtocol | None = None,
    backend: str | None = None,
) -> DecisionKernel | None:
    """Lower a manager into a :class:`DecisionKernel`, or ``None``.

    Asks the manager for its declarative spec
    (:meth:`~repro.core.manager.QualityManager.lower`), compiles it on the
    selected compute backend (explicit name, else ``$REPRO_BACKEND``, else
    numpy) and binds overhead charges around the program.  ``None`` means the
    scalar loop must be used: the manager does not lower (no spec, or
    non-monotone tables) or the overhead model's charges cannot be
    pre-computed.  Naming an unknown or unavailable backend raises
    :class:`~repro.core.backend.BackendError` — a requested backend is never
    silently substituted.
    """
    if not overhead_model_vectorizable(overhead_model):
        return None
    spec = manager.lower()
    if spec is None:
        return None
    program = get_backend(backend).compile(spec)
    return _SpecKernel(spec, program, overhead_model)


def supports_vectorized(
    manager: QualityManager,
    overhead_model: OverheadModelProtocol | None = None,
    backend: str | None = None,
) -> bool:
    """True when the manager/overhead pair lowers to a decision kernel."""
    return compile_decision_kernel(manager, overhead_model, backend) is not None


def scenarios_vectorizable(
    system: ParameterizedSystem,
    scenarios: ScenarioBatch | Sequence[ActualTimeScenario],
) -> bool:
    """True when every scenario indexes by the system's own quality set.

    The kernels translate quality rows through the *system's* quality set;
    a scenario drawn for a different (e.g. wider) set is still executable by
    the scalar loop, which uses the scenario's own level-to-row mapping.
    """
    if isinstance(scenarios, ScenarioBatch):
        return scenarios.qualities == system.qualities
    return all(scenario.qualities == system.qualities for scenario in scenarios)


def _scenario_tensor(
    system: ParameterizedSystem,
    scenarios: ScenarioBatch | Sequence[ActualTimeScenario],
) -> np.ndarray:
    """Validate the scenarios and return the ``(n_cycles, levels, actions)`` tensor.

    A :class:`~repro.core.timing.ScenarioBatch` is consumed directly — the
    engine executes its tensor with no re-stacking and no per-cycle objects;
    a sequence of per-cycle scenarios is validated and stacked once.
    """
    if isinstance(scenarios, ScenarioBatch):
        if scenarios.n_actions != system.n_actions:
            raise ValueError(
                f"scenario batch covers {scenarios.n_actions} actions, "
                f"system has {system.n_actions}"
            )
        if scenarios.qualities != system.qualities:
            raise EngineError(
                "vectorised execution requires scenarios drawn for the system's "
                f"quality set; got {scenarios.qualities!r} vs {system.qualities!r}"
            )
        return scenarios.tensor
    for scenario in scenarios:
        if scenario.n_actions != system.n_actions:
            raise ValueError(
                f"scenario covers {scenario.n_actions} actions, "
                f"system has {system.n_actions}"
            )
        if scenario.qualities != system.qualities:
            raise EngineError(
                "vectorised execution requires scenarios drawn for the system's "
                f"quality set; got {scenario.qualities!r} vs {system.qualities!r}"
            )
    return np.stack([scenario.matrix for scenario in scenarios])


def run_cycles_vectorized(
    system: ParameterizedSystem,
    manager: QualityManager,
    scenarios: ScenarioBatch | Sequence[ActualTimeScenario],
    *,
    overhead_model: OverheadModelProtocol | None = None,
    kernel: DecisionKernel | None = None,
    backend: str | None = None,
) -> tuple[CycleOutcome, ...]:
    """Execute a batch of cycles through the lockstep vectorised engine.

    ``scenarios`` is a :class:`~repro.core.timing.ScenarioBatch` (its tensor
    is executed directly) or a sequence of per-cycle scenarios (stacked
    once).  All cycles advance one action per iteration, so every cycle
    performs the exact floating-point operation sequence of the scalar loop
    (overhead added at each invocation, one duration added per action) and
    the returned outcomes are bit-identical to per-cycle
    :func:`~repro.core.controller.run_cycle` calls.  Raises
    :class:`EngineError` when the manager has no kernel.
    """
    if kernel is None:
        kernel = compile_decision_kernel(manager, overhead_model, backend)
        if kernel is None:
            raise EngineError(
                f"manager {manager.name!r} (with this overhead model) has no "
                "vectorised decision kernel; use run_cycles_batch for automatic "
                "scalar fallback"
            )
    if not len(scenarios):
        return ()
    matrices = _scenario_tensor(system, scenarios)
    qualities, durations, completion, invoked, invocation_overheads = (
        run_lockstep_arrays(system, manager, kernel, matrices, overhead_model)
    )
    n_cycles = matrices.shape[0]
    n_actions = system.n_actions
    states = np.arange(n_actions, dtype=np.int64)
    outcomes = []
    for c in range(n_cycles):
        mask = invoked[:, c]
        outcomes.append(
            CycleOutcome(
                qualities=qualities[c],
                durations=durations[c],
                completion_times=completion[c],
                manager_invocations=states[mask],
                manager_overheads=invocation_overheads[mask, c],
            )
        )
    return tuple(outcomes)


def run_lockstep_arrays(
    system: ParameterizedSystem,
    manager: QualityManager,
    kernel: DecisionKernel,
    matrices: np.ndarray,
    overhead_model: OverheadModelProtocol | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The lockstep executor over a raw scenario tensor, outcome-free.

    Advances every cycle of ``matrices`` (shape ``(n_cycles, levels,
    actions)``) one action per iteration and returns the five outcome arrays
    — ``qualities``/``durations``/``completion`` of shape ``(n_cycles,
    n_actions)`` plus ``invoked``/``invocation_overheads`` of shape
    ``(n_actions, n_cycles)`` — without building per-cycle
    :class:`~repro.core.system.CycleOutcome` objects.
    :func:`run_cycles_vectorized` wraps the arrays into outcomes; the
    streaming driver (:mod:`repro.core.streaming`) folds them into an
    accumulator chunk by chunk instead.  Overhead-model accounting is
    replayed through ``charge_batch`` before returning, exactly as the
    materialised path does.
    """
    n_cycles = matrices.shape[0]
    n_actions = system.n_actions
    level_minimum = system.qualities.minimum
    manager.reset()
    reset_accounting = getattr(kernel, "reset_accounting", None)
    if reset_accounting is not None:
        reset_accounting()

    qualities = np.empty((n_cycles, n_actions), dtype=np.int64)
    durations = np.empty((n_cycles, n_actions), dtype=np.float64)
    completion = np.empty((n_cycles, n_actions), dtype=np.float64)
    invoked = np.zeros((n_actions, n_cycles), dtype=bool)
    invocation_overheads = np.zeros((n_actions, n_cycles), dtype=np.float64)

    elapsed = np.zeros(n_cycles, dtype=np.float64)
    remaining = np.zeros(n_cycles, dtype=np.int64)  # actions left in the window
    rows = np.zeros(n_cycles, dtype=np.intp)
    cycle_index = np.arange(n_cycles)

    for i in range(n_actions):
        deciding = remaining == 0
        if deciding.any():
            times = elapsed[deciding]
            decided_rows, decided_steps, decided_overheads = kernel.decide_batch(
                i, times
            )
            rows[deciding] = decided_rows
            remaining[deciding] = np.minimum(decided_steps, n_actions - i)
            elapsed[deciding] = times + decided_overheads
            invoked[i] = deciding
            invocation_overheads[i, deciding] = decided_overheads
        step_durations = matrices[cycle_index, rows, i]
        elapsed += step_durations
        durations[:, i] = step_durations
        completion[:, i] = elapsed
        qualities[:, i] = level_minimum + rows
        remaining -= 1

    if overhead_model is not None:
        # replay the invocation accounting in bulk: models exposing the
        # charge_batch hook see exact call counts per distinct work record
        charge_batch = getattr(overhead_model, "charge_batch", None)
        accounting = getattr(kernel, "accounting", None)
        if charge_batch is not None and accounting is not None:
            for work, count in accounting():
                if count:
                    charge_batch(work, count)

    return qualities, durations, completion, invoked, invocation_overheads


def run_cycles_batch(
    system: ParameterizedSystem,
    manager: QualityManager,
    cycles: int | None = None,
    *,
    scenarios: ScenarioBatch | Sequence[ActualTimeScenario] | None = None,
    rng: np.random.Generator | None = None,
    overhead_model: OverheadModelProtocol | None = None,
    vectorize: object = "auto",
    backend: str | None = None,
) -> tuple[CycleOutcome, ...]:
    """Execute a batch of cycles, vectorised when possible.

    The batch entry point used by :class:`~repro.api.session.Session` and the
    :mod:`~repro.runtime.pool` workers.  ``scenarios`` fixes the actual times
    of every cycle — a :class:`~repro.core.timing.ScenarioBatch` tensor is
    executed directly, a sequence of per-cycle scenarios is accepted too;
    when omitted, ``cycles`` scenarios are drawn up-front as one batch via
    :meth:`~repro.core.system.ParameterizedSystem.draw_scenarios`
    (bit-identical to the scalar loop's per-cycle draws, including the
    sampler-state advancement).  ``vectorize`` is ``"auto"`` (kernel when
    available, scalar otherwise), ``"always"``/``True`` (raise without a
    kernel) or ``"never"``/``False`` (scalar loop).  ``backend`` names the
    compute backend compiling the kernel (``None``: ``$REPRO_BACKEND``, else
    numpy).
    """
    mode = coerce_vectorize_mode(vectorize)
    if scenarios is None:
        if cycles is None:
            raise EngineError("pass a cycle count or an explicit scenario batch")
        if int(cycles) < 0:
            raise EngineError(f"cycles must be >= 0, got {cycles}")
        generator = rng if rng is not None else np.random.default_rng(0)
        scenarios = system.draw_scenarios(int(cycles), generator)
    else:
        if not isinstance(scenarios, ScenarioBatch):
            scenarios = tuple(scenarios)
        if cycles is not None and len(scenarios) != int(cycles):
            raise EngineError(
                f"expected {cycles} scenarios, got {len(scenarios)}"
            )
    kernel = None
    if mode != "never":
        kernel = compile_decision_kernel(manager, overhead_model, backend)
        if kernel is None and mode == "always":
            raise EngineError(
                f"manager {manager.name!r} (with this overhead model) has no "
                "vectorised decision kernel"
            )
        if kernel is not None and not scenarios_vectorizable(system, scenarios):
            if mode == "always":
                raise EngineError(
                    "vectorised execution requires scenarios drawn for the "
                    "system's quality set"
                )
            kernel = None  # the scalar loop handles foreign quality sets
    if _obs_enabled():
        mode_label = "vectorized" if kernel is not None else "scalar"
        registry = _obs_registry()
        registry.inc(f"engine.batches.{mode_label}.{type(manager).__name__}")
        registry.inc(f"engine.cycles.{mode_label}", len(scenarios))
        if kernel is None:
            registry.inc(f"engine.scalar_fallback.{type(manager).__name__}")
    if kernel is not None:
        return run_cycles_vectorized(
            system, manager, scenarios, overhead_model=overhead_model, kernel=kernel
        )
    return tuple(
        run_cycle(system, manager, scenario=scenario, overhead_model=overhead_model)
        for scenario in scenarios
    )
