"""Quality regions (Proposition 2) and the region-based symbolic manager.

For a quality level ``q``, the quality region ``R_q`` is the set of states
``(s_i, t_i)`` where the Quality Manager chooses exactly ``q``.  Proposition 2
shows that at a fixed state index ``i`` the region is an interval of actual
times:

* ``t_i ∈ ( t^D(s_i, q+1), t^D(s_i, q) ]``  for ``q < q_max``;
* ``t_i ∈ ( -inf, t^D(s_i, q_max) ]``        for ``q = q_max``.

Pre-computing the ``t^D(s_i, q)`` values therefore turns the on-line quality
choice into a constant number of comparisons against stored bounds — the
"Quality Manager using quality regions" of §4.1, whose table holds
``|A| * |Q|`` integers (8,323 for the paper's encoder).
"""

from __future__ import annotations

import numpy as np

from .manager import Decision, ManagerWork, MemoryFootprint, QualityManager
from .tdtable import TDTable
from .types import QualitySet

__all__ = ["QualityRegionTable", "RegionQualityManager"]


class QualityRegionTable:
    """The per-state interval bounds of every quality region.

    Thin, semantically-named wrapper around a :class:`TDTable`: the upper
    bound of ``R_q`` at state ``s_i`` is ``t^D(s_i, q)`` and the lower bound
    is ``t^D(s_i, q+1)`` (or ``-inf`` for ``q_max``).
    """

    __slots__ = ("_td",)

    def __init__(self, td_table: TDTable) -> None:
        self._td = td_table

    @property
    def td_table(self) -> TDTable:
        """The underlying ``t^D`` table."""
        return self._td

    @property
    def qualities(self) -> QualitySet:
        """Quality set of the underlying system."""
        return self._td.system.qualities

    @property
    def n_states(self) -> int:
        """Number of states with a next action."""
        return self._td.n_states

    def bounds(self, state_index: int, quality: int) -> tuple[float, float]:
        """``(lower, upper)`` bounds of ``R_q`` at state ``s_i``.

        Membership is ``lower < t_i <= upper``.  ``lower`` is ``-inf`` for the
        maximal quality level.
        """
        qualities = self.qualities
        upper = self._td.td(state_index, quality)
        if quality == qualities.maximum:
            lower = -np.inf
        else:
            lower = self._td.td(state_index, quality + 1)
        return lower, upper

    def contains(self, state_index: int, time: float, quality: int) -> bool:
        """True when ``(s_i, t_i)`` belongs to the quality region ``R_q``."""
        lower, upper = self.bounds(state_index, quality)
        return lower < time <= upper

    def region_of(self, state_index: int, time: float) -> int | None:
        """The quality level whose region contains ``(s_i, t_i)``, or ``None``.

        ``None`` means the state is *late*: it lies to the right of
        ``t^D(s_i, q_min)``, i.e. even the minimal quality cannot guarantee
        the deadlines from here.  The managers fall back to ``q_min`` in that
        case (best effort), matching :meth:`TDTable.choose_quality`.
        """
        column = self._td.column(state_index)
        eligible = np.flatnonzero(column >= time)
        if eligible.size == 0:
            return None
        return self.qualities.level_at(int(eligible[-1]))

    def boundaries(self, state_index: int) -> np.ndarray:
        """All region boundaries at one state: ``t^D(s_i, q)`` for every ``q``.

        Sorted by quality level (lowest first); since ``t^D`` is non-increasing
        in ``q`` the array is non-increasing.  Used by the speed-diagram
        renderer to draw region borders (Figure 4).
        """
        return self._td.column(state_index)

    def memory_footprint(self) -> MemoryFootprint:
        """Table storage: one entry per (state, level) pair — ``|A| * |Q|``."""
        return MemoryFootprint(integers=self.n_states * len(self.qualities))

    def partition_is_consistent(self, *, tolerance: float = 1e-9) -> bool:
        """Check that at every state the regions tile the time axis without overlap.

        Equivalent to the ``t^D`` columns being non-increasing in ``q``.
        """
        return self._td.is_monotone_in_quality(tolerance=tolerance)


class RegionQualityManager(QualityManager):
    """Symbolic Quality Manager backed by pre-computed quality regions.

    On each call it reads the stored bounds for the current state and finds
    the region containing the current time, using at most ``|Q|`` comparisons
    and table lookups — independent of the number of remaining actions.  This
    is the "symbolic — no control relaxation" manager of Figures 7 and 8.
    """

    name = "region"

    def __init__(self, regions: QualityRegionTable) -> None:
        self._regions = regions

    @property
    def qualities(self) -> QualitySet:
        return self._regions.qualities

    @property
    def regions(self) -> QualityRegionTable:
        """The pre-computed quality-region table."""
        return self._regions

    def decide(self, state_index: int, time: float) -> Decision:
        quality = self._regions.region_of(state_index, time)
        n_levels = len(self.qualities)
        if quality is None:
            quality = self.qualities.minimum
        work = ManagerWork(
            kind=self.name,
            arithmetic_ops=0,
            comparisons=n_levels,
            table_lookups=n_levels,
        )
        return Decision(quality=quality, steps=1, work=work)

    def lower(self):
        """Interval lookup over the stored region boundaries (Proposition 2)."""
        from .kernelspec import interval_spec

        n_levels = len(self.qualities)
        work = ManagerWork(
            kind=self.name,
            arithmetic_ops=0,
            comparisons=n_levels,
            table_lookups=n_levels,
        )
        return interval_spec(self.name, self._regions.td_table.values, work)

    def memory_footprint(self) -> MemoryFootprint:
        return self._regions.memory_footprint()
