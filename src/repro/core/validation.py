"""Validation and auditing of controlled-system behaviour.

Safety (Definition 3) is the property the whole construction is built to
guarantee; this module makes it a *checked* property rather than an assumed
one.  Every experiment audits its produced traces against the deadline
function, and the structural invariants relied on by the symbolic
construction (monotonicity of ``t^D``, consistency of the region partition,
containment of relaxation regions in quality regions) can be re-verified on
any compiled controller.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .deadlines import DeadlineFunction
from .regions import QualityRegionTable
from .relaxation import RelaxationTable
from .system import CycleOutcome
from .tdtable import TDTable
from .types import DeadlineMissError

__all__ = [
    "DeadlineViolation",
    "TraceAudit",
    "audit_trace",
    "assert_trace_safe",
    "check_td_structure",
    "check_relaxation_containment",
]


@dataclass(frozen=True, slots=True)
class DeadlineViolation:
    """One missed deadline in an executed cycle."""

    action_index: int
    deadline: float
    completion_time: float

    @property
    def lateness(self) -> float:
        """By how much the deadline was missed (always positive)."""
        return self.completion_time - self.deadline


@dataclass(frozen=True, slots=True)
class TraceAudit:
    """Result of auditing one cycle trace against a deadline function."""

    violations: tuple[DeadlineViolation, ...]
    checked_deadlines: int

    @property
    def is_safe(self) -> bool:
        """True when no deadline was missed."""
        return not self.violations

    @property
    def worst_lateness(self) -> float:
        """Largest lateness over all violations (0 when safe)."""
        if not self.violations:
            return 0.0
        return max(v.lateness for v in self.violations)


def audit_trace(outcome: CycleOutcome, deadlines: DeadlineFunction) -> TraceAudit:
    """Check every deadline of a cycle against the actual completion times.

    Completion times include any charged management overhead, so the audit
    verifies the deadline property of the *implemented* controller, not of the
    idealised model.
    """
    violations: list[DeadlineViolation] = []
    checked = 0
    for action_index, deadline in deadlines:
        if action_index > outcome.n_actions:
            continue
        checked += 1
        completion = float(outcome.completion_times[action_index - 1])
        if completion > deadline + 1e-9:
            violations.append(
                DeadlineViolation(
                    action_index=action_index,
                    deadline=deadline,
                    completion_time=completion,
                )
            )
    return TraceAudit(violations=tuple(violations), checked_deadlines=checked)


def assert_trace_safe(outcome: CycleOutcome, deadlines: DeadlineFunction) -> None:
    """Raise :class:`DeadlineMissError` when the trace misses any deadline."""
    audit = audit_trace(outcome, deadlines)
    if not audit.is_safe:
        worst = audit.violations[0]
        raise DeadlineMissError(
            f"{len(audit.violations)} deadline(s) missed; first: action {worst.action_index} "
            f"finished at {worst.completion_time:.6g} > deadline {worst.deadline:.6g}"
        )


def check_td_structure(td_table: TDTable, *, tolerance: float = 1e-9) -> dict[str, bool]:
    """Verify the structural properties of a ``t^D`` table.

    Returns a mapping of property name to boolean:

    * ``monotone_in_quality`` — every column non-increasing in ``q``;
    * ``monotone_in_state`` — every row non-decreasing along the cycle (holds
      for the mixed policy; the paper relies on it for Proposition 3's lower
      bound);
    * ``initially_feasible`` — ``t^D(s_0, q_min) >= 0``.
    """
    values = td_table.values
    monotone_quality = td_table.is_monotone_in_quality(tolerance=tolerance)
    if values.shape[1] < 2:
        monotone_state = True
    else:
        monotone_state = bool(np.all(np.diff(values, axis=1) >= -tolerance))
    return {
        "monotone_in_quality": monotone_quality,
        "monotone_in_state": monotone_state,
        "initially_feasible": td_table.initial_feasibility_margin() >= -tolerance,
    }


def check_relaxation_containment(
    regions: QualityRegionTable,
    relaxation: RelaxationTable,
    *,
    tolerance: float = 1e-9,
) -> bool:
    """Verify ``R^r_q ⊆ R_q`` for every quality level and step count.

    In interval terms: the relaxation upper bound never exceeds the region
    upper bound and the relaxation lower bound never undercuts the region
    lower bound, at every state where the relaxation region is non-empty.
    """
    td = regions.td_table.values
    qualities = regions.qualities
    n_levels, n_states = td.shape
    for r in relaxation.steps:
        for qi in range(n_levels):
            quality = qualities.level_at(qi)
            for state in range(n_states):
                lower_r, upper_r = relaxation.bounds(state, quality, r)
                if not np.isfinite(upper_r):
                    continue  # empty region at this state
                lower_q, upper_q = regions.bounds(state, quality)
                if upper_r > upper_q + tolerance:
                    return False
                if np.isfinite(lower_q) and lower_r < lower_q - tolerance:
                    return False
    return True
