"""Quality-management policies.

A policy is defined (Section 2.2.1) by an execution-time estimation function
``C^D(a_i .. a_k, q)``: the estimated time needed to run the remaining
actions up to a deadline-carrying action ``a_k`` when the next action is run
at quality ``q``.  Given a policy, the Quality Manager is

    ``Γ(s_{i-1}, t_{i-1}) = max { q | t^D(s_{i-1}, q) >= t_{i-1} }``

with ``t^D(s_{i-1}, q) = min_{i<=k<=n} D(a_k) - C^D(a_i .. a_k, q)``.

Three policies are provided:

* :class:`SafePolicy` — the worst-case policy ``C^sf`` of §2.2.2: the next
  action at quality ``q``, every later action at the minimal quality.  Safe
  but produces strongly fluctuating quality (starts high, ends low).
* :class:`AveragePolicy` — uses the average times ``C^av`` only.  Smooth but
  *unsafe*: deadlines can be missed when actual times exceed the average.
  Provided as an ablation baseline.
* :class:`MixedPolicy` — the paper's policy ``C^D = C^av + δ_max``, combining
  the average estimate with the safety margin
  ``δ_max(a_i..a_k, q) = max_{i<=j<=k} ( C^sf(a_j..a_k, q) - C^av(a_j..a_k, q) )``.
  Safe *and* smooth; all the symbolic machinery of Section 3 is built on it.

Every policy exposes a single vectorised primitive,
:meth:`QualityManagementPolicy.horizon_costs`, returning
``C^D(a_{i+1} .. a_k, q)`` for every state index ``i`` in ``0..k-1`` and
every quality level, from which the ``t^D`` table is assembled by
:mod:`repro.core.tdtable`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .timing import TimingModel

__all__ = [
    "QualityManagementPolicy",
    "SafePolicy",
    "AveragePolicy",
    "MixedPolicy",
    "delta_suffix",
    "delta_max_suffix",
]


def delta_suffix(model: TimingModel, horizon: int, quality: int) -> np.ndarray:
    """``δ(a_j .. a_k, q)`` for ``j = 1 .. k`` with ``k = horizon``.

    ``δ(a_j..a_k, q) = C^sf(a_j..a_k, q) - C^av(a_j..a_k, q)`` where
    ``C^sf(a_j..a_k, q) = C^wc(a_j, q) + C^wc(a_{j+1}..a_k, q_min)``.

    Returns an array of length ``horizon`` whose entry ``j-1`` (0-based) is
    ``δ(a_j..a_k, q)``.
    """
    if not 1 <= horizon <= model.n_actions:
        raise ValueError(f"horizon {horizon} out of range 1..{model.n_actions}")
    qualities = model.qualities
    qi = qualities.index_of(quality)
    qmin_i = 0
    wc = model.worst_case
    av = model.average
    # worst case of the action a_j itself at quality q, j = 1..k
    first_wc = wc.values[qi, :horizon]
    # worst case of a_{j+1}..a_k at q_min: prefix[qmin, k] - prefix[qmin, j]
    tail_wc_min = wc.prefix[qmin_i, horizon] - wc.prefix[qmin_i, 1 : horizon + 1]
    # average of a_j..a_k at q: prefix[q, k] - prefix[q, j-1]
    avg = av.prefix[qi, horizon] - av.prefix[qi, 0:horizon]
    return first_wc + tail_wc_min - avg


def delta_max_suffix(model: TimingModel, horizon: int, quality: int) -> np.ndarray:
    """``δ_max(a_{i+1} .. a_k, q)`` for every state index ``i = 0 .. k-1``.

    ``δ_max(a_{i+1}..a_k, q) = max_{i+1 <= j <= k} δ(a_j..a_k, q)`` — the
    safety margin of the mixed policy.  Computed as a reverse running maximum
    of :func:`delta_suffix` so the whole column costs ``O(k)``.
    """
    deltas = delta_suffix(model, horizon, quality)
    # suffix running maximum: out[i] = max(deltas[i:])  (0-based i = state index)
    return np.maximum.accumulate(deltas[::-1])[::-1]


class QualityManagementPolicy(ABC):
    """Abstract estimation function ``C^D`` defining a quality manager."""

    #: short identifier used in reports and benchmark labels
    name: str = "abstract"

    #: whether the policy guarantees that no deadline is missed for any
    #: admissible actual-time function (``C <= C^wc``)
    guarantees_safety: bool = False

    @abstractmethod
    def horizon_costs(self, model: TimingModel, horizon: int) -> np.ndarray:
        """``C^D(a_{i+1} .. a_k, q)`` for ``i = 0..k-1``, ``k = horizon``.

        Returns an array of shape ``(n_levels, horizon)``; entry ``[qi, i]``
        is the estimated time to complete actions ``a_{i+1} .. a_k`` when the
        next action runs at the quality level with row index ``qi``.
        """

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class SafePolicy(QualityManagementPolicy):
    """Worst-case ("safe") policy: ``C^sf(a_{i+1}..a_k, q) = C^wc(a_{i+1}, q) + C^wc(a_{i+2}..a_k, q_min)``.

    Always safe, never smooth: because the tail is costed at the minimal
    quality, the manager front-loads high qualities and finishes cycles at the
    minimal level.
    """

    name = "safe"
    guarantees_safety = True

    def horizon_costs(self, model: TimingModel, horizon: int) -> np.ndarray:
        if not 1 <= horizon <= model.n_actions:
            raise ValueError(f"horizon {horizon} out of range 1..{model.n_actions}")
        wc = model.worst_case
        n_levels = len(model.qualities)
        # next action a_{i+1} at quality q: wc.values[:, i] for i = 0..k-1
        head = wc.values[:, :horizon]
        # remaining a_{i+2}..a_k at q_min: prefix[0, k] - prefix[0, i+1]
        tail = wc.prefix[0, horizon] - wc.prefix[0, 1 : horizon + 1]
        return head + np.broadcast_to(tail, (n_levels, horizon))


class AveragePolicy(QualityManagementPolicy):
    """Average-only policy: ``C^D(a_{i+1}..a_k, q) = C^av(a_{i+1}..a_k, q)``.

    Optimistic: it assumes every remaining action behaves exactly like the
    average.  Smooth but unsafe — used as an ablation to show why the mixed
    policy's safety margin is needed.
    """

    name = "average"
    guarantees_safety = False

    def horizon_costs(self, model: TimingModel, horizon: int) -> np.ndarray:
        if not 1 <= horizon <= model.n_actions:
            raise ValueError(f"horizon {horizon} out of range 1..{model.n_actions}")
        av = model.average
        # average of a_{i+1}..a_k at q: prefix[:, k] - prefix[:, i]
        return av.prefix[:, horizon : horizon + 1] - av.prefix[:, :horizon]


class MixedPolicy(QualityManagementPolicy):
    """The paper's mixed policy ``C^D = C^av + δ_max`` (§2.2.2).

    The average term drives smoothness; the ``δ_max`` term is a safety margin
    large enough to absorb the worst case of any suffix of the remaining
    actions, which makes the policy safe (Theorem of [Combaz et al., EMSOFT
    2005], restated as Proposition 1 here).
    """

    name = "mixed"
    guarantees_safety = True

    def horizon_costs(self, model: TimingModel, horizon: int) -> np.ndarray:
        if not 1 <= horizon <= model.n_actions:
            raise ValueError(f"horizon {horizon} out of range 1..{model.n_actions}")
        av = model.average
        n_levels = len(model.qualities)
        average_part = av.prefix[:, horizon : horizon + 1] - av.prefix[:, :horizon]
        margins = np.empty((n_levels, horizon), dtype=np.float64)
        for qi in range(n_levels):
            quality = model.qualities.level_at(qi)
            margins[qi] = delta_max_suffix(model, horizon, quality)
        return average_part + margins

    def safety_margins(self, model: TimingModel, horizon: int) -> np.ndarray:
        """``δ_max(a_{i+1}..a_k, q)`` for all states and levels, shape ``(n_levels, horizon)``.

        Exposed separately because the optimal-speed computation of the speed
        diagram (§3.1.2) needs the margin without the average term.
        """
        if not 1 <= horizon <= model.n_actions:
            raise ValueError(f"horizon {horizon} out of range 1..{model.n_actions}")
        n_levels = len(model.qualities)
        margins = np.empty((n_levels, horizon), dtype=np.float64)
        for qi in range(n_levels):
            quality = model.qualities.level_at(qi)
            margins[qi] = delta_max_suffix(model, horizon, quality)
        return margins
