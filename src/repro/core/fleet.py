"""Fleet-scale execution: many heterogeneous sessions, one NumPy step.

:mod:`repro.core.engine` batches the cycles of *one* ``PS || Γ`` pair;
this module adds the third axis the ROADMAP names — thousands of
independent sessions (each its own quality set, deadlines, manager,
chunk size and seed) advancing together, one action per NumPy step.

The machinery generalises :func:`~repro.core.engine.run_lockstep_arrays`
rather than adding a second executor:

* **bucketing** — every member's manager lowers to a
  :class:`~repro.core.kernelspec.KernelSpec`; :func:`bucket_key` reduces
  the spec to its *shape* ``(op, n_levels, n_actions, table dims, work
  structure)`` and :class:`FleetPlan` groups members whose shapes match.
  Within a bucket the per-member tables stack along a leading member
  axis, so one fused program answers every member's decisions in one
  vectorised call — the same prune-don't-enumerate discipline the
  engine applies per manager, lifted across managers.  Members whose
  manager does not lower (or whose overhead model / scenarios rule the
  kernel out) fall back to their own solo streamed run — parity by
  identity;
* **padding/masking** — a bucket's members rarely share a cycle count,
  so each chunk lays lanes out rectangularly: every active member owns
  ``width`` lanes, of which only ``min(width, remaining)`` are real.
  Padded lanes carry zero durations, are masked out of the metric folds
  and the overhead accounting, and their cost is reported through the
  ``fleet.padding_waste`` gauge;
* **parity** — each member draws its scenarios from its *own*
  ``np.random.default_rng(seed)`` stream (persisted across chunks, the
  documented :meth:`~repro.core.timing.TimingModel.sample_scenarios`
  contract), every fused program performs the member's exact per-lane
  floating-point operation sequence, and each member folds into its own
  :class:`~repro.core.streaming.StreamingMetrics` — so the resulting
  summaries are **bit-identical** to running every member alone
  (``tests/test_fleet_differential.py`` fuzzes this across the whole
  manager registry).

Memory stays constant in the run length: one rectangular chunk of lanes
exists at a time, exactly like the streamed solo path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.obs.metrics import registry as _obs_registry
from repro.obs.state import enabled as _obs_enabled

from .backend import get_backend
from .controller import OverheadModelProtocol
from .deadlines import DeadlineFunction
from .engine import (
    EngineError,
    _charge_for,
    coerce_vectorize_mode,
    overhead_model_vectorizable,
    scenarios_vectorizable,
)
from .kernelspec import KernelSpec
from .manager import QualityManager
from .streaming import StreamingMetrics, run_cycles_streamed
from .system import ParameterizedSystem
from .timing import ScenarioBatch

__all__ = [
    "DEFAULT_FLEET_CHUNK",
    "FleetError",
    "FleetMember",
    "FleetBucket",
    "FleetPlan",
    "bucket_key",
    "run_fleet",
]

#: lanes per member per chunk when a member sets no chunk size of its own
DEFAULT_FLEET_CHUNK = 1024


class FleetError(ValueError):
    """Invalid fleet input (empty fleet, bad member, duplicate label)."""


@dataclass(frozen=True)
class FleetMember:
    """One session of the fleet, in core terms.

    The :mod:`repro.api.fleet` layer builds these from
    :class:`~repro.api.session.Session` objects; the core accepts them
    directly so tests and the pool workers can bypass the facade.  A
    member's ``system`` must not share a *stateful* scenario sampler
    with another member (the API layer snapshots such samplers) —
    otherwise interleaved draws would break solo parity.
    """

    label: str
    system: ParameterizedSystem
    manager: QualityManager
    deadlines: DeadlineFunction
    cycles: int
    seed: int | None = None
    scenarios: ScenarioBatch | None = None
    chunk_size: int | None = None
    overhead_model: OverheadModelProtocol | None = None
    vectorize: Any = "auto"
    backend: str | None = None

    def __post_init__(self) -> None:
        cycles = int(self.cycles)
        if cycles < 1:
            raise FleetError(
                f"fleet member {self.label!r} needs cycles >= 1, got {self.cycles}"
            )
        object.__setattr__(self, "cycles", cycles)
        if self.chunk_size is not None:
            chunk = int(self.chunk_size)
            if chunk < 1:
                raise FleetError(
                    f"fleet member {self.label!r} needs chunk_size >= 1, "
                    f"got {self.chunk_size}"
                )
            object.__setattr__(self, "chunk_size", chunk)
        if self.scenarios is not None:
            batch = ScenarioBatch.coerce(self.scenarios)
            if len(batch) != cycles:
                raise FleetError(
                    f"fleet member {self.label!r} carries {len(batch)} scenarios "
                    f"for {cycles} cycles"
                )
            object.__setattr__(self, "scenarios", batch)
        coerce_vectorize_mode(self.vectorize)

    def effective_chunk(self) -> int:
        """The member's streaming chunk size (its own, else the fleet default)."""
        return self.chunk_size if self.chunk_size is not None else DEFAULT_FLEET_CHUNK

    def make_rng(self) -> np.random.Generator:
        """The member's private scenario RNG stream (seed 0 when unset)."""
        return np.random.default_rng(0 if self.seed is None else int(self.seed))


def _table_signature(value: Any) -> tuple:
    """The *shape* of one spec table: dims for arrays, length for sequences.

    Table values never enter the signature — only their dimensions — so
    members whose tables differ element-wise still share a bucket and get
    stacked along the member axis.
    """
    if isinstance(value, np.ndarray):
        return ("array", value.shape)
    if isinstance(value, (tuple, list)):
        return ("seq", tuple(_table_signature(item) for item in value))
    return ("scalar",)


def bucket_key(spec: KernelSpec, n_actions: int) -> tuple:
    """The hashable kernel-spec shape members must share to stack.

    ``(op, n_levels, n_actions, sorted table signatures, work structure)``:
    everything the fused programs index by position, nothing they gather
    per member.  Per-state work tuples and late-work splits change how
    overhead accounting folds, so the work structure is part of the key.
    """
    tables = tuple(
        sorted((name, _table_signature(value)) for name, value in spec.tables.items())
    )
    if isinstance(spec.work, tuple):
        work = ("per-state", len(spec.work))
    else:
        work = ("single", spec.late_work is not None)
    return (spec.op, int(spec.n_levels), int(n_actions), tables, work)


@dataclass(frozen=True)
class FleetBucket:
    """Members sharing one kernel-spec shape, executed as one lane block."""

    key: tuple
    indices: tuple[int, ...]
    specs: tuple[KernelSpec, ...] = field(repr=False)


@dataclass(frozen=True)
class FleetPlan:
    """The bucketing of a fleet: stackable groups plus scalar fallbacks."""

    members: tuple[FleetMember, ...]
    buckets: tuple[FleetBucket, ...]
    fallback: tuple[int, ...]

    @classmethod
    def plan(cls, members: Sequence[FleetMember]) -> "FleetPlan":
        """Bucket ``members`` by kernel-spec shape.

        A member joins a bucket when its manager lowers, its overhead
        model declares deterministic charges and its scenarios (when
        shipped by value) index the system's own quality set; otherwise
        it is routed to the solo streamed fallback.  ``vectorize="never"``
        forces the fallback, ``"always"`` raises when no kernel exists —
        the same contract as the engine's dispatcher.
        """
        members = tuple(members)
        if not members:
            raise FleetError("a fleet needs at least one member")
        seen: set[str] = set()
        for member in members:
            if member.label in seen:
                raise FleetError(f"duplicate fleet member label {member.label!r}")
            seen.add(member.label)
        grouped: dict[tuple, list[int]] = {}
        specs: dict[tuple, list[KernelSpec]] = {}
        fallback: list[int] = []
        for index, member in enumerate(members):
            mode = coerce_vectorize_mode(member.vectorize)
            # validate the backend name up front — never silently substituted
            get_backend(member.backend)
            spec = member.manager.lower() if mode != "never" else None
            stackable = (
                spec is not None
                and overhead_model_vectorizable(member.overhead_model)
                and (
                    member.scenarios is None
                    or scenarios_vectorizable(member.system, member.scenarios)
                )
            )
            if mode == "always" and not stackable:
                raise EngineError(
                    f"fleet member {member.label!r} ({member.manager.name!r}) has "
                    "no vectorised decision kernel for this overhead model and "
                    "scenario set"
                )
            if mode == "never" or not stackable:
                fallback.append(index)
                continue
            key = bucket_key(spec, member.system.n_actions)
            grouped.setdefault(key, []).append(index)
            specs.setdefault(key, []).append(spec)
        buckets = tuple(
            FleetBucket(key=key, indices=tuple(indices), specs=tuple(specs[key]))
            for key, indices in grouped.items()
        )
        return cls(members=members, buckets=buckets, fallback=tuple(fallback))


# --------------------------------------------------------------------- #
# fused per-bucket programs
#
# Each mirrors its numpy-backend counterpart with a leading member axis:
# ``decide(state_index, times, members)`` receives, per deciding lane,
# the elapsed time and the lane's member index into the stacked tables.
# Every operation is element-wise per lane with the member's own
# operands, so each lane performs the exact floating-point sequence its
# member's solo program performs — bit-identical by construction.
# --------------------------------------------------------------------- #


def _choose_rows_stacked(
    boundaries: np.ndarray,
    n_levels: int,
    state_index: int,
    times: np.ndarray,
    members: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-lane interval lookup over member-stacked boundary tables.

    ``searchsorted(row, t, side="left")`` on an ascending row equals the
    count of entries strictly below ``t`` — an exact float comparison —
    which is how the lookup gathers per lane without a per-member loop.
    """
    first = np.sum(boundaries[members, state_index, :] < times[:, None], axis=1)
    counts = n_levels - first
    late = counts == 0
    rows = np.where(late, 0, counts - 1)
    return rows, late


class _StackedConstant:
    """``constant`` across members: fixed rows, per-member consult/horizon."""

    def __init__(self, specs: Sequence[KernelSpec]) -> None:
        self._rows = np.array(
            [int(spec.tables["row"]) for spec in specs], dtype=np.int64
        )
        self._consult = np.array(
            [bool(spec.tables["consult"]) for spec in specs], dtype=bool
        )
        # a falsy horizon (None or 0) means "never consult again"
        self._horizon = np.array(
            [int(spec.tables["horizon"] or 0) for spec in specs], dtype=np.int64
        )

    def decide(self, state_index: int, times: np.ndarray, members: np.ndarray):
        rows = self._rows[members].astype(np.intp)
        horizon = self._horizon[members]
        remaining = np.where(horizon != 0, horizon - state_index, 10**9)
        steps = np.where(self._consult[members], 1, np.maximum(1, remaining))
        return rows, steps, None


class _StackedLookup:
    """``lookup`` across members: one stacked interval lookup per invocation."""

    def __init__(self, specs: Sequence[KernelSpec]) -> None:
        self._boundaries = np.stack([spec.tables["boundaries"] for spec in specs])
        self._n_levels = int(specs[0].n_levels)

    def decide(self, state_index: int, times: np.ndarray, members: np.ndarray):
        rows, late = _choose_rows_stacked(
            self._boundaries, self._n_levels, state_index, times, members
        )
        steps = np.ones(times.shape[0], dtype=np.int64)
        return rows, steps, late


class _StackedRelaxation:
    """``relaxation`` across members: stacked ``R^r_q`` bound scans.

    Members share the *number* of relaxation steps (part of the bucket
    key) but not their values: the scan walks step positions, gathering
    each lane's own step count and bounds, and a per-lane ``r > 1`` mask
    reproduces the solo scan's ``continue``.
    """

    def __init__(self, specs: Sequence[KernelSpec]) -> None:
        self._boundaries = np.stack([spec.tables["boundaries"] for spec in specs])
        self._n_levels = int(specs[0].n_levels)
        self._steps = np.stack(
            [
                np.array([int(r) for r in spec.tables["steps"]], dtype=np.int64)
                for spec in specs
            ]
        )
        n_steps = self._steps.shape[1]
        self._lower = tuple(
            np.stack([spec.tables["lower"][k] for spec in specs])
            for k in range(n_steps)
        )
        self._upper = tuple(
            np.stack([spec.tables["upper"][k] for spec in specs])
            for k in range(n_steps)
        )

    def decide(self, state_index: int, times: np.ndarray, members: np.ndarray):
        rows, late = _choose_rows_stacked(
            self._boundaries, self._n_levels, state_index, times, members
        )
        steps = np.ones(times.shape[0], dtype=np.int64)
        live = ~late
        for k in range(self._steps.shape[1]):
            r_vals = self._steps[members, k]
            low = self._lower[k][members, state_index, rows]
            high = self._upper[k][members, state_index, rows]
            contained = live & (r_vals > 1) & (low < times) & (times <= high)
            steps = np.where(contained, r_vals, steps)
        return rows, steps, late


class _StackedAffine:
    """``affine`` across members: stacked affine bound evaluation per step."""

    def __init__(self, specs: Sequence[KernelSpec]) -> None:
        self._boundaries = np.stack([spec.tables["boundaries"] for spec in specs])
        self._n_levels = int(specs[0].n_levels)
        self._steps = np.stack(
            [
                np.array([int(r) for r in spec.tables["steps"]], dtype=np.int64)
                for spec in specs
            ]
        )
        self._valid_until = np.stack(
            [
                np.array([int(v) for v in spec.tables["valid_until"]], dtype=np.int64)
                for spec in specs
            ]
        )
        n_steps = self._steps.shape[1]

        def stacked(name: str) -> tuple[np.ndarray, ...]:
            return tuple(
                np.stack([spec.tables[name][k] for spec in specs])
                for k in range(n_steps)
            )

        self._u_slope = stacked("u_slope")
        self._u_intercept = stacked("u_intercept")
        self._l_slope = stacked("l_slope")
        self._l_intercept = stacked("l_intercept")

    def decide(self, state_index: int, times: np.ndarray, members: np.ndarray):
        rows, late = _choose_rows_stacked(
            self._boundaries, self._n_levels, state_index, times, members
        )
        steps = np.ones(times.shape[0], dtype=np.int64)
        live = ~late
        for k in range(self._steps.shape[1]):
            r_vals = self._steps[members, k]
            valid = (r_vals > 1) & (state_index <= self._valid_until[members, k])
            upper = (
                self._u_slope[k][members, rows] * state_index
                + self._u_intercept[k][members, rows]
            )
            l_intercept = self._l_intercept[k][members, rows]
            low_raw = self._l_slope[k][members, rows] * state_index + l_intercept
            low = np.where(np.isfinite(l_intercept), low_raw, -np.inf)
            contained = live & valid & (low < times) & (times <= upper)
            steps = np.where(contained, r_vals, steps)
        return rows, steps, late


class _StackedSkip:
    """``skip`` across members: stacked countdowns and deadline projections.

    Lane count is constant per chunk (``steps=1`` always), so the
    per-lane countdown vector stays aligned; a ``j < counts`` mask
    reproduces each member's own projection-loop length.
    """

    def __init__(self, specs: Sequence[KernelSpec]) -> None:
        self._nominal_row = np.array(
            [int(spec.tables["nominal_row"]) for spec in specs], dtype=np.int64
        )
        self._window = np.array(
            [int(spec.tables["window"]) for spec in specs], dtype=np.int64
        )
        self._costs = np.stack([spec.tables["costs"] for spec in specs])
        self._deadlines = np.stack([spec.tables["deadlines"] for spec in specs])
        self._counts = np.stack([spec.tables["counts"] for spec in specs])
        self._skip_remaining: np.ndarray | None = None

    def decide(self, state_index: int, times: np.ndarray, members: np.ndarray):
        count = times.shape[0]
        if state_index == 0 or self._skip_remaining is None:
            self._skip_remaining = np.zeros(count, dtype=np.int64)
        late = np.zeros(count, dtype=bool)
        counts = self._counts[members, state_index]
        for j in range(self._costs.shape[2]):
            projected = (
                times + self._costs[members, state_index, j]
            ) > self._deadlines[members, state_index, j]
            late |= (j < counts) & projected
        counting = self._skip_remaining > 0
        rows = np.where(counting | late, 0, self._nominal_row[members]).astype(np.intp)
        self._skip_remaining = np.where(
            counting,
            self._skip_remaining - 1,
            np.where(late, self._window[members] - 1, 0),
        )
        steps = np.ones(count, dtype=np.int64)
        return rows, steps, None


class _StackedFeedback:
    """``feedback`` across members: the PID recurrence with per-lane gains."""

    def __init__(self, specs: Sequence[KernelSpec]) -> None:
        self._expected = np.stack([spec.tables["expected"] for spec in specs])
        self._step_scale = np.array(
            [float(spec.tables["step_scale"]) for spec in specs], dtype=np.float64
        )
        self._kp = np.array(
            [float(spec.tables["kp"]) for spec in specs], dtype=np.float64
        )
        self._ki = np.array(
            [float(spec.tables["ki"]) for spec in specs], dtype=np.float64
        )
        self._kd = np.array(
            [float(spec.tables["kd"]) for spec in specs], dtype=np.float64
        )
        self._reference = np.array(
            [float(spec.tables["reference"]) for spec in specs], dtype=np.float64
        )
        self._minimum = np.array(
            [int(spec.tables["minimum"]) for spec in specs], dtype=np.int64
        )
        self._maximum = np.array(
            [int(spec.tables["maximum"]) for spec in specs], dtype=np.int64
        )
        self._integral: np.ndarray | None = None
        self._previous: np.ndarray | None = None

    def decide(self, state_index: int, times: np.ndarray, members: np.ndarray):
        count = times.shape[0]
        if state_index == 0 or self._integral is None:
            self._integral = np.zeros(count, dtype=np.float64)
            self._previous = np.zeros(count, dtype=np.float64)
        scale = self._step_scale[members]
        positive = scale > 0
        error = np.where(
            positive,
            (times - self._expected[members, state_index])
            / np.where(positive, scale, 1.0),
            0.0,
        )
        self._integral += error
        derivative = error - self._previous
        self._previous = error
        correction = (
            self._kp[members] * error
            + self._ki[members] * self._integral
            + self._kd[members] * derivative
        )
        level = np.clip(
            np.rint(self._reference[members] - correction),
            self._minimum[members],
            self._maximum[members],
        )
        rows = (level.astype(np.int64) - self._minimum[members]).astype(np.intp)
        steps = np.ones(count, dtype=np.int64)
        return rows, steps, None


_STACKED_PROGRAMS = {
    "constant": _StackedConstant,
    "lookup": _StackedLookup,
    "relaxation": _StackedRelaxation,
    "affine": _StackedAffine,
    "skip": _StackedSkip,
    "feedback": _StackedFeedback,
}


class _FleetKernel:
    """A bucket's fused program bound to per-member charges and accounting.

    The fleet analogue of the engine's spec kernel: overhead charges are
    pre-computed per member (per-state, late-split or fixed, following
    the shared work structure) and gathered per lane, and invocation
    counts are kept per member over *real* lanes only — padded lanes
    decide like everyone else but never touch the accounting.
    """

    def __init__(
        self,
        specs: Sequence[KernelSpec],
        models: Sequence[OverheadModelProtocol | None],
    ) -> None:
        self._specs = tuple(specs)
        self._n_members = len(self._specs)
        self._program = _STACKED_PROGRAMS[specs[0].op](specs)
        self._per_state = isinstance(specs[0].work, tuple)
        if self._per_state:
            self._charges = np.stack(
                [
                    np.array(
                        [_charge_for(model, record) for record in spec.work],
                        dtype=np.float64,
                    )
                    for spec, model in zip(specs, models)
                ]
            )
            self._counts = np.zeros(self._charges.shape, dtype=np.int64)
        else:
            self._charge = np.array(
                [_charge_for(model, spec.work) for spec, model in zip(specs, models)],
                dtype=np.float64,
            )
            self._invocations = np.zeros(self._n_members, dtype=np.int64)
        self._has_late_work = specs[0].late_work is not None
        self._late_charge = np.array(
            [
                _charge_for(model, spec.late_work)
                if spec.late_work is not None
                else 0.0
                for spec, model in zip(specs, models)
            ],
            dtype=np.float64,
        )
        self._late_invocations = np.zeros(self._n_members, dtype=np.int64)

    def reset_accounting(self) -> None:
        if self._per_state:
            self._counts[:] = 0
        else:
            self._invocations[:] = 0
        self._late_invocations[:] = 0

    def decide_fleet(
        self,
        state_index: int,
        times: np.ndarray,
        members: np.ndarray,
        real: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-lane ``(rows, steps, overheads)``; accounting over real lanes."""
        rows, steps, late = self._program.decide(state_index, times, members)
        if self._per_state:
            self._counts[:, state_index] += np.bincount(
                members[real], minlength=self._n_members
            )
            overheads = self._charges[members, state_index]
        elif self._has_late_work and late is not None:
            late_real = np.bincount(members[real & late], minlength=self._n_members)
            self._late_invocations += late_real
            self._invocations += (
                np.bincount(members[real], minlength=self._n_members) - late_real
            )
            overheads = np.where(
                late, self._late_charge[members], self._charge[members]
            )
        else:
            self._invocations += np.bincount(members[real], minlength=self._n_members)
            overheads = self._charge[members]
        return rows, steps, overheads

    def replay_accounting(
        self, member: int, model: OverheadModelProtocol | None
    ) -> None:
        """Replay one member's invocation counts through ``charge_batch``."""
        if model is None:
            return
        charge_batch = getattr(model, "charge_batch", None)
        if charge_batch is None:
            return
        spec = self._specs[member]
        if self._per_state:
            for record, count in zip(spec.work, self._counts[member].tolist()):
                if count:
                    charge_batch(record, int(count))
            return
        count = int(self._invocations[member])
        if count:
            charge_batch(spec.work, count)
        if spec.late_work is not None:
            n_late = int(self._late_invocations[member])
            if n_late:
                charge_batch(spec.late_work, n_late)


def _fleet_lockstep(
    kernel: _FleetKernel,
    tensor: np.ndarray,
    lane_member: np.ndarray,
    real: np.ndarray,
    lane_level_min: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One rectangular chunk of lanes through the generalised lockstep loop.

    The body is :func:`~repro.core.engine.run_lockstep_arrays` with two
    generalisations: decisions carry each lane's member index into the
    stacked tables, and quality rows translate through a per-lane level
    minimum (members keep their own quality sets).  Per lane, the
    floating-point sequence — overhead add at each invocation, one
    duration add per action — is identical to the solo loop.
    """
    n_lanes, _, n_actions = tensor.shape
    kernel.reset_accounting()

    qualities = np.empty((n_lanes, n_actions), dtype=np.int64)
    completion = np.empty((n_lanes, n_actions), dtype=np.float64)
    invoked = np.zeros((n_actions, n_lanes), dtype=bool)
    invocation_overheads = np.zeros((n_actions, n_lanes), dtype=np.float64)

    elapsed = np.zeros(n_lanes, dtype=np.float64)
    remaining = np.zeros(n_lanes, dtype=np.int64)
    rows = np.zeros(n_lanes, dtype=np.intp)
    lane_index = np.arange(n_lanes)

    for i in range(n_actions):
        deciding = remaining == 0
        if deciding.any():
            times = elapsed[deciding]
            decided_rows, decided_steps, decided_overheads = kernel.decide_fleet(
                i, times, lane_member[deciding], real[deciding]
            )
            rows[deciding] = decided_rows
            remaining[deciding] = np.minimum(decided_steps, n_actions - i)
            elapsed[deciding] = times + decided_overheads
            invoked[i] = deciding
            invocation_overheads[i, deciding] = decided_overheads
        step_durations = tensor[lane_index, rows, i]
        elapsed += step_durations
        completion[:, i] = elapsed
        qualities[:, i] = lane_level_min + rows
        remaining -= 1

    return qualities, completion, invoked, invocation_overheads


def _run_bucket(
    members: Sequence[FleetMember],
    bucket: FleetBucket,
    summaries: list[StreamingMetrics | None],
) -> tuple[int, int]:
    """Advance one bucket to completion, chunk by chunk.

    Returns ``(padded_lanes, total_lanes)`` for the waste gauge.  Each
    chunk is a rectangle: every still-running member owns ``width``
    lanes (``width`` = the bucket's chunk size capped by the longest
    remaining run), real lanes carry that member's next scenarios and
    fold into its accumulator, padded lanes carry zeros and are masked
    out of folds and accounting.
    """
    group = [members[index] for index in bucket.indices]
    kernel = _FleetKernel(bucket.specs, [member.overhead_model for member in group])
    n_members = len(group)
    n_actions = group[0].system.n_actions
    n_levels = int(bucket.specs[0].n_levels)
    level_min = np.array(
        [member.system.qualities.minimum for member in group], dtype=np.int64
    )
    bucket_chunk = min(member.effective_chunk() for member in group)
    accumulators = [StreamingMetrics(member.deadlines) for member in group]
    rngs = [
        member.make_rng() if member.scenarios is None else None for member in group
    ]
    remaining = np.array([member.cycles for member in group], dtype=np.int64)
    position = np.zeros(n_members, dtype=np.int64)
    padded_lanes = 0
    total_lanes = 0

    while (remaining > 0).any():
        active = np.flatnonzero(remaining > 0)
        width = int(min(bucket_chunk, int(remaining[active].max())))
        counts = np.minimum(remaining[active], width)
        n_lanes = len(active) * width
        tensor = np.zeros((n_lanes, n_levels, n_actions), dtype=np.float64)
        real = np.zeros(n_lanes, dtype=bool)
        lane_member = np.repeat(active, width)
        for slot, member_index in enumerate(active.tolist()):
            member = group[member_index]
            count = int(counts[slot])
            start = slot * width
            if member.scenarios is None:
                batch = member.system.draw_scenarios(count, rngs[member_index])
            else:
                offset = int(position[member_index])
                batch = member.scenarios[offset : offset + count]
            tensor[start : start + count] = batch.tensor
            real[start : start + count] = True
            member.manager.reset()
        lane_level_min = level_min[lane_member]
        qualities, completion, invoked, overheads = _fleet_lockstep(
            kernel, tensor, lane_member, real, lane_level_min
        )
        for slot, member_index in enumerate(active.tolist()):
            count = int(counts[slot])
            start = slot * width
            lanes = slice(start, start + count)
            accumulators[member_index].update_chunk(
                qualities[lanes],
                completion[lanes],
                invoked[:, lanes],
                overheads[:, lanes],
            )
            kernel.replay_accounting(
                member_index, group[member_index].overhead_model
            )
            remaining[member_index] -= count
            position[member_index] += count
        padded_lanes += n_lanes - int(counts.sum())
        total_lanes += n_lanes

    for slot, index in enumerate(bucket.indices):
        summaries[index] = accumulators[slot]
    return padded_lanes, total_lanes


def run_fleet(
    members: Sequence[FleetMember],
    *,
    plan: FleetPlan | None = None,
) -> list[StreamingMetrics]:
    """Execute a whole fleet, one :class:`StreamingMetrics` per member.

    Buckets run through the fused lockstep path; members the plan routed
    to the fallback run through their own solo
    :func:`~repro.core.streaming.run_cycles_streamed` — in both cases
    the returned summaries are bit-identical to running every member
    alone with its own seed.  Pass a pre-computed ``plan`` to skip
    re-bucketing (it must have been built from the same members).
    """
    members = tuple(members)
    if plan is None:
        plan = FleetPlan.plan(members)
    elif plan.members != members:
        raise FleetError("the supplied plan was built from different members")
    summaries: list[StreamingMetrics | None] = [None] * len(members)
    for index in plan.fallback:
        member = plan.members[index]
        summaries[index] = run_cycles_streamed(
            member.system,
            member.manager,
            member.cycles,
            deadlines=member.deadlines,
            chunk_size=member.effective_chunk(),
            scenarios=member.scenarios,
            rng=member.make_rng() if member.scenarios is None else None,
            overhead_model=member.overhead_model,
            vectorize=member.vectorize,
            backend=member.backend,
        )
    padded_lanes = 0
    total_lanes = 0
    for bucket in plan.buckets:
        padded, total = _run_bucket(plan.members, bucket, summaries)
        padded_lanes += padded
        total_lanes += total
    if _obs_enabled():
        registry = _obs_registry()
        registry.inc("fleet.buckets", len(plan.buckets))
        registry.inc("fleet.sessions", len(plan.members))
        registry.inc("fleet.fallback_sessions", len(plan.fallback))
        registry.set(
            "fleet.padding_waste",
            padded_lanes / total_lanes if total_lanes else 0.0,
        )
    # every index was filled by exactly one bucket or fallback run
    return [summary for summary in summaries if summary is not None]
