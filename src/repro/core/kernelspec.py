"""Declarative kernel specs: the "tables in, kernel out" lowering protocol.

Every :class:`~repro.core.manager.QualityManager` can describe its decision
rule as a :class:`KernelSpec` — pre-computed boundary/bound/coefficient
arrays plus the name of one *primitive operation* from a small closed set —
via :meth:`~repro.core.manager.QualityManager.lower`.  The vectorised engine
(:mod:`repro.core.engine`) never needs to know the manager class: it hands
the spec to a compute backend (:mod:`repro.core.backend`), which returns an
executable program for the primitive, and binds overhead charges and
invocation accounting around it.

The primitive ops (:data:`PRIMITIVE_OPS`):

``constant``
    A fixed quality row, optionally consulted once per cycle (the constant
    baseline).
``lookup``
    Searchsorted interval lookup over per-state ascending boundaries — the
    quality regions of Proposition 2.  Covers the region manager and every
    manager whose rule is "last level whose stored time bound is >= t"
    (numeric, safe-only/average-only, elastic).
``relaxation``
    ``lookup`` plus masked comparisons against stored relaxation-region
    bounds (Proposition 3) to pick the step count.
``affine``
    ``lookup`` plus affine bound evaluation — the linear-approximation
    manager, whose bounds are ``slope * i + intercept`` per (step, level).
``skip``
    Stateful countdown recurrence with per-state deadline projections (the
    skip-over baseline).
``feedback``
    Stateful PID recurrence over a pre-computed reference schedule (the
    feedback baseline).

A spec's ``work`` is either one :class:`~repro.core.manager.ManagerWork`
record (every invocation performs the same abstract work) or a tuple with
one record per state (e.g. the numeric manager's scan shrinks as the cycle
advances); ``late_work`` is the distinct record charged on the late path of
the relaxation-style ops.  :meth:`KernelSpec.relabel` rewrites every record's
``kind`` — delegating wrappers (dvfs, multitask) lower via their inner
manager's spec and relabel it so overhead accounting stays keyed by the
wrapper's reporting name.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

import numpy as np

from .manager import ManagerWork

__all__ = [
    "PRIMITIVE_OPS",
    "KernelSpec",
    "ascending_boundaries",
    "interval_spec",
]

#: the closed set of primitive operations a spec may name
PRIMITIVE_OPS = ("constant", "lookup", "relaxation", "affine", "skip", "feedback")


@dataclass(frozen=True)
class KernelSpec:
    """One lowered manager: a primitive op plus its pre-computed tables.

    Attributes
    ----------
    op:
        Primitive operation name, one of :data:`PRIMITIVE_OPS`.
    kind:
        The manager's reporting name — the ``kind`` of every work record,
        i.e. the key overhead models account charges under.
    n_levels:
        Number of quality levels (rows are 0-based level indices).
    tables:
        The op's pre-computed arrays and scalars (see the backend programs
        for the exact keys each op consumes).
    work:
        One work record for every invocation, or a tuple with one record per
        state index.
    late_work:
        The distinct work record of the late path, for ops that have one
        (``relaxation``/``affine``); ``None`` otherwise.
    """

    op: str
    kind: str
    n_levels: int
    tables: Mapping[str, Any] = field(default_factory=dict)
    work: ManagerWork | tuple[ManagerWork, ...] = ManagerWork(kind="abstract")
    late_work: ManagerWork | None = None

    def __post_init__(self) -> None:
        if self.op not in PRIMITIVE_OPS:
            raise ValueError(
                f"unknown kernel primitive {self.op!r}; expected one of {PRIMITIVE_OPS}"
            )

    def relabel(self, kind: str) -> "KernelSpec":
        """A copy whose every work record carries ``kind`` (wrapper managers)."""

        def rekind(work: ManagerWork) -> ManagerWork:
            return ManagerWork(
                kind=kind,
                arithmetic_ops=work.arithmetic_ops,
                comparisons=work.comparisons,
                table_lookups=work.table_lookups,
            )

        work = (
            tuple(rekind(record) for record in self.work)
            if isinstance(self.work, tuple)
            else rekind(self.work)
        )
        late = rekind(self.late_work) if self.late_work is not None else None
        return replace(self, kind=kind, work=work, late_work=late)


def ascending_boundaries(td_values: np.ndarray) -> np.ndarray | None:
    """Per-state time boundaries as ascending rows for ``searchsorted``.

    ``td_values`` is the ``(n_levels, n_states)`` layout of
    :attr:`~repro.core.tdtable.TDTable.values` (rows ordered by ascending
    level index, values non-increasing in level).  Returns a
    ``(n_states, n_levels)`` array whose row ``i`` holds the state's
    boundaries lowest-quality-last (ascending), or ``None`` when the columns
    are not non-increasing in quality — the interval-lookup primitive then
    would not reproduce the scalar "last eligible level" rule and the caller
    must not lower.
    """
    if td_values.shape[0] > 1 and not bool(np.all(np.diff(td_values, axis=0) <= 0.0)):
        return None
    return np.ascontiguousarray(td_values[::-1].T)


def interval_spec(
    kind: str,
    td_values: np.ndarray,
    work: ManagerWork | tuple[ManagerWork, ...],
) -> KernelSpec | None:
    """A ``lookup`` spec over a monotone per-level time table, or ``None``.

    The shared lowering of every "last level with stored bound >= t" manager
    (region, numeric, safe-only/average-only, elastic): ``None`` when the
    table is not monotone in quality, in which case the manager keeps the
    scalar loop.
    """
    boundaries = ascending_boundaries(np.asarray(td_values, dtype=np.float64))
    if boundaries is None:
        return None
    return KernelSpec(
        op="lookup",
        kind=kind,
        n_levels=int(td_values.shape[0]),
        tables={"boundaries": boundaries},
        work=work,
    )
