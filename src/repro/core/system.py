"""Parameterized systems (Definition 1).

A :class:`ParameterizedSystem` bundles the scheduled action sequence with its
quality set and timing model (``C^wc``, ``C^av`` and an actual-time sampler).
It is the object that every quality manager, region compiler and experiment
consumes.  The class is deliberately immutable: building variants (different
platform speed, different number of actions) goes through the constructors
and the :meth:`ParameterizedSystem.rescaled` helper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .deadlines import DeadlineFunction
from .timing import ActualTimeScenario, ScenarioBatch, TimingModel, TimingTable
from .types import InvalidTimingError, QualitySet, ScheduledSequence

__all__ = ["ParameterizedSystem", "CycleOutcome"]


class _TransformedSampler:
    """Base of the derived-system samplers: wraps an inner sampler.

    Sampler *state* (``seek``/``cursor``/``rewind`` of stateful samplers such
    as :class:`~repro.media.timing_model.FrameScenarioSampler`) is delegated
    to the wrapped sampler, so derived systems keep the parallel sweep
    engine's replay guarantees; ``hasattr`` checks see exactly what the inner
    sampler offers.  Instances are plain picklable objects — a derived system
    built from a picklable sampler can cross a process boundary.
    """

    __slots__ = ("_inner",)

    def __init__(self, inner: Callable[[np.random.Generator], np.ndarray]) -> None:
        self._inner = inner

    def __getattr__(self, name: str):
        if name.startswith("_"):  # also guards unpickling before _inner exists
            raise AttributeError(name)
        return getattr(self._inner, name)

    def __getstate__(self):
        return self._inner

    def __setstate__(self, state) -> None:
        self._inner = state

    def _raw_batch(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """The inner sampler's next ``count`` raw matrices, stacked."""
        batch = getattr(self._inner, "sample_batch", None)
        if batch is not None:
            return np.asarray(batch(count, rng), dtype=np.float64)
        if count == 0:
            raise ValueError(
                "cannot size an empty batch: the wrapped sampler has no sample_batch"
            )
        return np.stack(
            [np.asarray(self._inner(rng), dtype=np.float64) for _ in range(count)]
        )


class _ScaledSampler(_TransformedSampler):
    """Sampler of :meth:`ParameterizedSystem.rescaled` (times x factor)."""

    __slots__ = ("_factor",)

    #: the scaling multiply always allocates — batches are never the inner
    #: sampler's buffer, so TimingModel may consume them in place
    returns_fresh_batches = True

    def __init__(self, inner, factor: float) -> None:
        super().__init__(inner)
        self._factor = float(factor)

    def __call__(self, rng: np.random.Generator) -> np.ndarray:
        return np.asarray(self._inner(rng), dtype=np.float64) * self._factor

    def sample_batch(self, count: int, rng: np.random.Generator) -> np.ndarray:
        return self._raw_batch(int(count), rng) * self._factor

    def __getstate__(self):
        return (self._inner, self._factor)

    def __setstate__(self, state) -> None:
        self._inner, self._factor = state


class _TruncatedSampler(_TransformedSampler):
    """Sampler of :meth:`ParameterizedSystem.truncated` (first ``n`` actions)."""

    __slots__ = ("_n_actions",)

    #: sample_batch copies its slice unconditionally — see below
    returns_fresh_batches = True

    def __init__(self, inner, n_actions: int) -> None:
        super().__init__(inner)
        self._n_actions = int(n_actions)

    def __call__(self, rng: np.random.Generator) -> np.ndarray:
        return np.asarray(self._inner(rng), dtype=np.float64)[:, : self._n_actions]

    def sample_batch(self, count: int, rng: np.random.Generator) -> np.ndarray:
        # copy the slice: a view would pin the full-width draw of the inner
        # sampler in memory for the lifetime of the batch, and a full-width
        # truncation would alias a buffer the inner sampler might retain
        return self._raw_batch(int(count), rng)[:, :, : self._n_actions].copy()

    def __getstate__(self):
        return (self._inner, self._n_actions)

    def __setstate__(self, state) -> None:
        self._inner, self._n_actions = state


@dataclass(frozen=True)
class CycleOutcome:
    """The timed execution of one cycle of a controlled system.

    Attributes
    ----------
    qualities:
        Quality level chosen for every action, in execution order.
    durations:
        Actual execution time of every action.
    completion_times:
        ``t_i`` for ``i = 1..n`` (cumulative sums of ``durations``).
    manager_invocations:
        State indices (0-based, number of completed actions) at which the
        quality manager was actually invoked.  With control relaxation this is
        a strict subset of all state indices.
    manager_overheads:
        Time charged to each manager invocation (same length as
        ``manager_invocations``); zero when no platform overhead model is
        used.
    """

    qualities: np.ndarray
    durations: np.ndarray
    completion_times: np.ndarray
    manager_invocations: np.ndarray
    manager_overheads: np.ndarray

    @property
    def n_actions(self) -> int:
        """Number of actions executed in the cycle."""
        return int(self.qualities.shape[0])

    @property
    def makespan(self) -> float:
        """Completion time of the last action (``t_n``)."""
        return float(self.completion_times[-1]) if self.n_actions else 0.0

    @property
    def total_overhead(self) -> float:
        """Total time spent in quality-manager invocations."""
        return float(self.manager_overheads.sum())

    @property
    def mean_quality(self) -> float:
        """Average quality level over the cycle."""
        return float(self.qualities.mean()) if self.n_actions else 0.0

    def quality_changes(self) -> int:
        """Number of consecutive action pairs whose quality differs (smoothness proxy)."""
        if self.n_actions < 2:
            return 0
        return int(np.count_nonzero(np.diff(self.qualities)))


class ParameterizedSystem:
    """An application software with quality-parameterised execution times.

    Parameters
    ----------
    sequence:
        The scheduled action sequence ``(A, S)``.
    timing:
        The timing model providing ``C^wc``, ``C^av`` and the actual-time
        sampler.  Must cover exactly the actions of ``sequence``.
    """

    __slots__ = ("_sequence", "_timing")

    def __init__(self, sequence: ScheduledSequence, timing: TimingModel) -> None:
        if timing.n_actions != len(sequence):
            raise InvalidTimingError(
                f"timing model covers {timing.n_actions} actions but the sequence "
                f"has {len(sequence)}"
            )
        self._sequence = sequence
        self._timing = timing

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_tables(
        cls,
        names: Sequence[str],
        qualities: QualitySet,
        worst_case: np.ndarray,
        average: np.ndarray,
        *,
        scenario_sampler: Callable[[np.random.Generator], np.ndarray] | None = None,
    ) -> "ParameterizedSystem":
        """Build a system directly from dense ``(levels, actions)`` arrays."""
        sequence = ScheduledSequence.from_names(list(names))
        wc = TimingTable(qualities, worst_case, name="Cwc")
        av = TimingTable(qualities, average, name="Cav")
        return cls(sequence, TimingModel(wc, av, scenario_sampler))

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def sequence(self) -> ScheduledSequence:
        """The scheduled action sequence."""
        return self._sequence

    @property
    def timing(self) -> TimingModel:
        """The timing model (``C^wc``, ``C^av``, sampler)."""
        return self._timing

    @property
    def qualities(self) -> QualitySet:
        """The quality set ``Q``."""
        return self._timing.qualities

    @property
    def n_actions(self) -> int:
        """Number of actions ``n`` in one cycle."""
        return len(self._sequence)

    @property
    def worst_case(self) -> TimingTable:
        """The ``C^wc`` table."""
        return self._timing.worst_case

    @property
    def average(self) -> TimingTable:
        """The ``C^av`` table."""
        return self._timing.average

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ParameterizedSystem(actions={self.n_actions}, "
            f"levels={len(self.qualities)})"
        )

    # ------------------------------------------------------------------ #
    # feasibility and derived systems
    # ------------------------------------------------------------------ #
    def minimal_completion_bound(self, deadlines: DeadlineFunction) -> float:
        """Largest slack of the all-minimal-quality worst case against the deadlines.

        Returns ``min_k ( D(a_k) - C^wc(a_1..a_k, q_min) )``.  The system is
        feasible (a safe manager exists) iff this bound is non-negative.
        """
        slack = np.inf
        qmin = self.qualities.minimum
        for index, deadline in deadlines:
            if index > self.n_actions:
                raise InvalidTimingError(
                    f"deadline attached to action {index} but the system has only "
                    f"{self.n_actions} actions"
                )
            slack = min(slack, deadline - self.worst_case.total(1, index, qmin))
        return float(slack)

    def is_feasible(self, deadlines: DeadlineFunction) -> bool:
        """True when running everything at ``q_min`` meets every deadline in the worst case."""
        return self.minimal_completion_bound(deadlines) >= 0.0

    def rescaled(self, factor: float) -> "ParameterizedSystem":
        """A copy of the system whose execution times are all multiplied by ``factor``.

        Models porting the same application to a slower (``factor > 1``) or
        faster (``factor < 1``) platform.
        """
        if factor <= 0.0:
            raise InvalidTimingError(f"rescale factor must be > 0, got {factor}")
        wc = TimingTable(self.qualities, self.worst_case.values * factor, name="Cwc")
        av = TimingTable(self.qualities, self.average.values * factor, name="Cav")
        sampler = self._timing.scenario_sampler
        scaled_sampler = None if sampler is None else _ScaledSampler(sampler, factor)
        return ParameterizedSystem(self._sequence, TimingModel(wc, av, scaled_sampler))

    def truncated(self, n_actions: int) -> "ParameterizedSystem":
        """A copy keeping only the first ``n_actions`` actions of the cycle."""
        if not 1 <= n_actions <= self.n_actions:
            raise ValueError(
                f"truncation length {n_actions} out of range 1..{self.n_actions}"
            )
        sequence = ScheduledSequence(self._sequence.actions[:n_actions])
        wc = TimingTable(self.qualities, self.worst_case.values[:, :n_actions], name="Cwc")
        av = TimingTable(self.qualities, self.average.values[:, :n_actions], name="Cav")
        sampler = self._timing.scenario_sampler
        truncated_sampler = (
            None if sampler is None else _TruncatedSampler(sampler, n_actions)
        )
        return ParameterizedSystem(sequence, TimingModel(wc, av, truncated_sampler))

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def draw_scenario(self, rng: np.random.Generator) -> ActualTimeScenario:
        """Draw the actual execution times of one cycle (all levels x actions)."""
        return self._timing.sample_scenario(rng)

    def draw_scenarios(self, count: int, rng: np.random.Generator) -> ScenarioBatch:
        """Draw the actual times of ``count`` consecutive cycles, columnar.

        Bit-identical to ``count`` successive :meth:`draw_scenario` calls
        (same rng consumption, same sampler-state advancement), returned as
        one :class:`~repro.core.timing.ScenarioBatch` tensor; see
        :meth:`TimingModel.sample_scenarios <repro.core.timing.TimingModel.sample_scenarios>`.
        Per-cycle views are available via indexing/iteration.
        """
        return self._timing.sample_scenarios(count, rng)

    def sample_actual_times(
        self,
        qualities: Sequence[int] | np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw actual execution times for a full cycle at the given quality levels.

        ``qualities`` holds one quality *level* per action; the result is
        clipped into ``[0, C^wc]``.
        """
        levels = np.asarray(qualities, dtype=np.int64)
        if levels.shape != (self.n_actions,):
            raise ValueError(
                f"expected {self.n_actions} quality levels, got shape {levels.shape}"
            )
        rows = levels - self.qualities.minimum
        if rows.min(initial=0) < 0 or rows.max(initial=0) >= len(self.qualities):
            raise ValueError("quality levels outside the system's quality set")
        return self._timing.sample_actual(rows, rng)
