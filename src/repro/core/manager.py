"""Quality Managers (Definition 2) and the numeric implementation.

A Quality Manager is a function ``Γ : S x R+ -> Q`` mapping the current state
``(s_i, t_i)`` to the quality level of the next action.  This module defines
the common interface used by the executor plus the *numeric* implementation
that recomputes the policy constraint on every call — the reference point the
symbolic managers of :mod:`repro.core.regions` and
:mod:`repro.core.relaxation` are compared against.

Overhead accounting
-------------------

The whole point of the paper is that *how* the choice is computed matters:
the numeric manager's per-call cost grows with the number of remaining
actions, the symbolic managers' cost is a small constant, and control
relaxation removes most calls altogether.  Each decision therefore carries a
:class:`ManagerWork` record describing the abstract work performed
(arithmetic operations, comparisons, table lookups).  The platform layer
(:mod:`repro.platform.overhead`) converts this record into virtual time that
is charged to the running cycle.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .tdtable import TDTable
from .types import QualitySet

if TYPE_CHECKING:  # avoids a cycle: kernelspec imports ManagerWork from here
    from .kernelspec import KernelSpec

__all__ = [
    "ManagerWork",
    "MemoryFootprint",
    "Decision",
    "QualityManager",
    "NumericQualityManager",
]


@dataclass(frozen=True, slots=True)
class ManagerWork:
    """Abstract cost drivers of one Quality Manager invocation.

    Attributes
    ----------
    kind:
        Implementation family (``"numeric"``, ``"region"``, ``"relaxation"``,
        ``"constant"`` ...).  Overhead models may apply per-family constants.
    arithmetic_ops:
        Number of floating-point additions/subtractions/multiplications the
        on-line implementation would perform.
    comparisons:
        Number of scalar comparisons.
    table_lookups:
        Number of pre-computed table entries read.
    """

    kind: str
    arithmetic_ops: int = 0
    comparisons: int = 0
    table_lookups: int = 0

    def scaled(self, factor: int) -> "ManagerWork":
        """Multiply every counter by an integer factor (used for repeated scans)."""
        return ManagerWork(
            kind=self.kind,
            arithmetic_ops=self.arithmetic_ops * factor,
            comparisons=self.comparisons * factor,
            table_lookups=self.table_lookups * factor,
        )


@dataclass(frozen=True, slots=True)
class MemoryFootprint:
    """Pre-computed storage required by a Quality Manager implementation.

    ``integers`` counts the stored scalar table entries (the unit the paper
    reports: 8,323 for quality regions, 99,876 for relaxation regions on the
    encoder); ``bytes`` estimates the raw storage at ``bytes_per_entry`` bytes
    per entry.  The paper's KB figures (300 KB / 800 KB) also include code and
    auxiliary structures of the bare-metal runtime, so the integer counts are
    the primary comparison point.
    """

    integers: int
    bytes_per_entry: int = 4

    @property
    def bytes(self) -> int:
        """Raw table storage in bytes."""
        return self.integers * self.bytes_per_entry

    @property
    def kilobytes(self) -> float:
        """Raw table storage in KiB."""
        return self.bytes / 1024.0


@dataclass(frozen=True, slots=True)
class Decision:
    """Result of one Quality Manager consultation.

    Attributes
    ----------
    quality:
        Quality level to apply to the next ``steps`` actions.
    steps:
        Number of actions to execute before consulting the manager again
        (always 1 without control relaxation).
    work:
        Abstract work performed by this invocation (for overhead accounting).
    """

    quality: int
    steps: int
    work: ManagerWork

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError(f"a decision must cover at least one action, got {self.steps}")


class QualityManager(ABC):
    """Interface shared by every Quality Manager implementation."""

    #: short identifier used in reports and benchmark labels
    name: str = "abstract"

    @abstractmethod
    def decide(self, state_index: int, time: float) -> Decision:
        """Choose the quality of the next action(s) at state ``(s_i, t_i)``.

        ``state_index`` is the number of completed actions in the current
        cycle (0-based); ``time`` is the actual elapsed time since the start
        of the cycle, *including* any already-charged management overhead.
        """

    def reset(self) -> None:
        """Prepare for a new cycle.  Stateless managers need not override."""

    def lower(self) -> "KernelSpec | None":
        """Declarative kernel spec of this manager's decision rule, or ``None``.

        The "tables in, kernel out" protocol of :mod:`repro.core.kernelspec`:
        a returned spec names one primitive op plus the pre-computed tables it
        consumes, and a compute backend (:mod:`repro.core.backend`) turns it
        into a batch program whose decisions are bit-identical to
        :meth:`decide`.  ``None`` means the rule cannot be expressed as a
        primitive (or its tables are not monotone) and the scalar loop must be
        used.  A subclass that overrides :meth:`decide` MUST override this
        too — an inherited spec would describe the parent's rule.
        """
        return None

    @abstractmethod
    def memory_footprint(self) -> MemoryFootprint:
        """Pre-computed storage the implementation needs at run time."""

    @property
    @abstractmethod
    def qualities(self) -> QualitySet:
        """The quality set the manager chooses from."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(name={self.name!r})"


class NumericQualityManager(QualityManager):
    """Straightforward on-line implementation of the quality-management policy.

    On every call it evaluates ``t^D(s_i, q)`` for each quality level by
    scanning the remaining actions (the paper's §2.2.1 formulation, the first
    of the three generated managers of §4.1).  In this reproduction the values
    are read from the pre-computed :class:`~repro.core.tdtable.TDTable` — they
    are identical to what the on-line computation would produce — but the
    *work* reported models the on-line scan: proportional to
    ``(n - i) * |Q|`` arithmetic operations plus ``|Q|`` comparisons.

    Parameters
    ----------
    td_table:
        The ``t^D`` table of the system/deadline/policy triple.
    ops_per_action_level:
        Arithmetic operations the on-line scan performs per remaining action
        and quality level (additions for the running sums and the margin
        update).  The default of 4 matches the mixed policy: one ``C^av``
        accumulation, one ``C^wc``(q_min) accumulation, one ``δ`` update and
        one running-max update.
    """

    name = "numeric"

    def __init__(self, td_table: TDTable, *, ops_per_action_level: int = 4) -> None:
        self._table = td_table
        self._ops_per_action_level = int(ops_per_action_level)

    @property
    def qualities(self) -> QualitySet:
        return self._table.system.qualities

    @property
    def td_table(self) -> TDTable:
        """The underlying ``t^D`` table (shared with symbolic managers)."""
        return self._table

    def decide(self, state_index: int, time: float) -> Decision:
        quality = self._table.choose_quality(state_index, time)
        remaining = self._table.n_states - state_index
        n_levels = self._table.n_levels
        work = ManagerWork(
            kind=self.name,
            arithmetic_ops=remaining * n_levels * self._ops_per_action_level,
            comparisons=n_levels,
            table_lookups=0,
        )
        return Decision(quality=quality, steps=1, work=work)

    def lower(self) -> "KernelSpec | None":
        """Interval lookup over ``t^D`` with the on-line scan's per-state work.

        The chosen qualities are what the on-line computation would produce
        (they are read from the same table), but the reported work shrinks as
        the cycle advances — hence one work record per state.
        """
        from .kernelspec import interval_spec

        n = self._table.n_states
        n_levels = self._table.n_levels
        work = tuple(
            ManagerWork(
                kind=self.name,
                arithmetic_ops=(n - i) * n_levels * self._ops_per_action_level,
                comparisons=n_levels,
                table_lookups=0,
            )
            for i in range(n)
        )
        return interval_spec(self.name, self._table.values, work)

    def memory_footprint(self) -> MemoryFootprint:
        """The numeric manager stores only the raw timing tables it scans.

        It needs ``C^av`` and ``C^wc`` for every (action, level) pair plus the
        ``C^wc`` at ``q_min`` prefix — i.e. ``2 * |A| * |Q|`` entries.  This is
        *not* counted as symbolic-table overhead by the paper (the application
        itself ships those tables), so experiments report it separately.
        """
        n = self._table.n_states
        levels = self._table.n_levels
        return MemoryFootprint(integers=2 * n * levels)
