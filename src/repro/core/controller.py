"""Controlled-system execution: the composition ``PS || Γ``.

The controlled system executes the scheduled actions one by one; before an
action starts, the Quality Manager may be consulted to fix the quality of the
next action (or of the next ``r`` actions when control relaxation applies).
Each consultation can be charged a management overhead, provided by an
overhead model — that charge is exactly the quantity the symbolic managers
reduce.

The execution loop lives here, in the core package, so that it can be used
without the platform layer (zero overhead, ideal clock).  The platform
executor (:mod:`repro.platform.executor`) wraps this loop with a calibrated
overhead model and clock effects.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from .deadlines import DeadlineFunction
from .manager import ManagerWork, QualityManager
from .system import CycleOutcome, ParameterizedSystem
from .timing import ActualTimeScenario

__all__ = ["OverheadModelProtocol", "run_cycle", "run_fixed_quality", "ControlledSystem"]


class OverheadModelProtocol(Protocol):
    """Anything that can convert abstract manager work into virtual seconds."""

    def charge(self, work: ManagerWork) -> float:
        """Time (in the system's time unit) consumed by one manager invocation."""
        ...


def run_cycle(
    system: ParameterizedSystem,
    manager: QualityManager,
    *,
    scenario: ActualTimeScenario | None = None,
    rng: np.random.Generator | None = None,
    overhead_model: OverheadModelProtocol | None = None,
) -> CycleOutcome:
    """Execute one cycle of ``PS || Γ`` and return its timed trace.

    Parameters
    ----------
    system:
        The parameterized system to execute.
    manager:
        The Quality Manager deciding action qualities.
    scenario:
        Actual execution times for the cycle.  Drawn from the system's timing
        model when omitted (requires ``rng`` unless the model is
        deterministic).
    rng:
        Random generator used to draw the scenario when none is supplied.
    overhead_model:
        Optional model charging virtual time for each manager invocation.
        Without it management is free (the idealised semantics of Section 2).
    """
    if scenario is None:
        scenario = system.draw_scenario(rng if rng is not None else np.random.default_rng(0))
    if scenario.n_actions != system.n_actions:
        raise ValueError(
            f"scenario covers {scenario.n_actions} actions, system has {system.n_actions}"
        )
    manager.reset()

    n = system.n_actions
    qualities = np.empty(n, dtype=np.int64)
    durations = np.empty(n, dtype=np.float64)
    completion = np.empty(n, dtype=np.float64)
    invocation_states: list[int] = []
    invocation_overheads: list[float] = []

    elapsed = 0.0
    completed = 0
    while completed < n:
        decision = manager.decide(completed, elapsed)
        overhead = overhead_model.charge(decision.work) if overhead_model is not None else 0.0
        invocation_states.append(completed)
        invocation_overheads.append(overhead)
        elapsed += overhead
        steps = min(decision.steps, n - completed)
        for _ in range(steps):
            action_index = completed + 1
            duration = scenario.actual_time(action_index, decision.quality)
            qualities[completed] = decision.quality
            durations[completed] = duration
            elapsed += duration
            completion[completed] = elapsed
            completed += 1

    return CycleOutcome(
        qualities=qualities,
        durations=durations,
        completion_times=completion,
        manager_invocations=np.array(invocation_states, dtype=np.int64),
        manager_overheads=np.array(invocation_overheads, dtype=np.float64),
    )


def run_fixed_quality(
    system: ParameterizedSystem,
    quality: int,
    *,
    scenario: ActualTimeScenario | None = None,
    rng: np.random.Generator | None = None,
) -> CycleOutcome:
    """Execute one cycle at a constant quality level with no management at all.

    Used by baselines and by the profiler to measure per-quality behaviour.
    """
    if quality not in system.qualities:
        raise ValueError(f"quality {quality} not in {system.qualities!r}")
    if scenario is None:
        scenario = system.draw_scenario(rng if rng is not None else np.random.default_rng(0))
    n = system.n_actions
    row = system.qualities.index_of(quality)
    durations = scenario.matrix[row].copy()
    completion = np.cumsum(durations)
    return CycleOutcome(
        qualities=np.full(n, quality, dtype=np.int64),
        durations=durations,
        completion_times=completion,
        manager_invocations=np.empty(0, dtype=np.int64),
        manager_overheads=np.empty(0, dtype=np.float64),
    )


class ControlledSystem:
    """Convenience wrapper bundling a system, deadlines and a Quality Manager.

    Provides multi-cycle execution (the application software is cyclic:
    deadlines restart at every cycle) and keeps the pieces together for
    experiments.
    """

    def __init__(
        self,
        system: ParameterizedSystem,
        deadlines: DeadlineFunction,
        manager: QualityManager,
        *,
        overhead_model: OverheadModelProtocol | None = None,
    ) -> None:
        self._system = system
        self._deadlines = deadlines
        self._manager = manager
        self._overhead_model = overhead_model

    @property
    def system(self) -> ParameterizedSystem:
        """The underlying parameterized system."""
        return self._system

    @property
    def deadlines(self) -> DeadlineFunction:
        """The per-cycle deadline function."""
        return self._deadlines

    @property
    def manager(self) -> QualityManager:
        """The Quality Manager in charge of quality choices."""
        return self._manager

    def run_cycle(
        self,
        *,
        scenario: ActualTimeScenario | None = None,
        rng: np.random.Generator | None = None,
    ) -> CycleOutcome:
        """Execute a single cycle (see :func:`run_cycle`)."""
        return run_cycle(
            self._system,
            self._manager,
            scenario=scenario,
            rng=rng,
            overhead_model=self._overhead_model,
        )

    def run_cycles(
        self,
        n_cycles: int,
        *,
        rng: np.random.Generator | None = None,
        scenarios: Sequence[ActualTimeScenario] | None = None,
    ) -> list[CycleOutcome]:
        """Execute several consecutive cycles and return their traces.

        Each cycle restarts the clock at zero (deadlines are relative to the
        cycle start).  ``scenarios`` fixes the actual times of every cycle,
        which allows comparing different managers on identical inputs.
        """
        if n_cycles < 1:
            raise ValueError(f"n_cycles must be >= 1, got {n_cycles}")
        if scenarios is not None and len(scenarios) != n_cycles:
            raise ValueError(
                f"expected {n_cycles} scenarios, got {len(scenarios)}"
            )
        generator = rng if rng is not None else np.random.default_rng(0)
        outcomes = []
        for cycle in range(n_cycles):
            scenario = scenarios[cycle] if scenarios is not None else None
            outcomes.append(self.run_cycle(scenario=scenario, rng=generator))
        return outcomes
