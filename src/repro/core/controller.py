"""Controlled-system execution: the composition ``PS || Γ``.

The controlled system executes the scheduled actions one by one; before an
action starts, the Quality Manager may be consulted to fix the quality of the
next action (or of the next ``r`` actions when control relaxation applies).
Each consultation can be charged a management overhead, provided by an
overhead model — that charge is exactly the quantity the symbolic managers
reduce.

The execution loop lives here, in the core package, so that it can be used
without the platform layer (zero overhead, ideal clock).  The platform
executor (:mod:`repro.platform.executor`) wraps this loop with a calibrated
overhead model and clock effects.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from .deadlines import DeadlineFunction
from .manager import ManagerWork, QualityManager
from .system import CycleOutcome, ParameterizedSystem
from .timing import ActualTimeScenario, ScenarioBatch

__all__ = [
    "OverheadModelProtocol",
    "run_cycle",
    "run_fixed_quality",
    "run_fixed_quality_batch",
    "ControlledSystem",
]


class OverheadModelProtocol(Protocol):
    """Anything that can convert abstract manager work into virtual seconds."""

    def charge(self, work: ManagerWork) -> float:
        """Time (in the system's time unit) consumed by one manager invocation."""
        ...


def run_cycle(
    system: ParameterizedSystem,
    manager: QualityManager,
    *,
    scenario: ActualTimeScenario | None = None,
    rng: np.random.Generator | None = None,
    overhead_model: OverheadModelProtocol | None = None,
) -> CycleOutcome:
    """Execute one cycle of ``PS || Γ`` and return its timed trace.

    Parameters
    ----------
    system:
        The parameterized system to execute.
    manager:
        The Quality Manager deciding action qualities.
    scenario:
        Actual execution times for the cycle.  Drawn from the system's timing
        model when omitted (requires ``rng`` unless the model is
        deterministic).
    rng:
        Random generator used to draw the scenario when none is supplied.
    overhead_model:
        Optional model charging virtual time for each manager invocation.
        Without it management is free (the idealised semantics of Section 2).
    """
    if scenario is None:
        scenario = system.draw_scenario(rng if rng is not None else np.random.default_rng(0))
    if scenario.n_actions != system.n_actions:
        raise ValueError(
            f"scenario covers {scenario.n_actions} actions, system has {system.n_actions}"
        )
    manager.reset()

    n = system.n_actions
    qualities = np.empty(n, dtype=np.int64)
    durations = np.empty(n, dtype=np.float64)
    completion = np.empty(n, dtype=np.float64)
    invocation_states: list[int] = []
    invocation_overheads: list[float] = []

    elapsed = 0.0
    completed = 0
    while completed < n:
        decision = manager.decide(completed, elapsed)
        overhead = overhead_model.charge(decision.work) if overhead_model is not None else 0.0
        invocation_states.append(completed)
        invocation_overheads.append(overhead)
        elapsed += overhead
        steps = min(decision.steps, n - completed)
        for _ in range(steps):
            action_index = completed + 1
            duration = scenario.actual_time(action_index, decision.quality)
            qualities[completed] = decision.quality
            durations[completed] = duration
            elapsed += duration
            completion[completed] = elapsed
            completed += 1

    return CycleOutcome(
        qualities=qualities,
        durations=durations,
        completion_times=completion,
        manager_invocations=np.array(invocation_states, dtype=np.int64),
        manager_overheads=np.array(invocation_overheads, dtype=np.float64),
    )


def run_fixed_quality(
    system: ParameterizedSystem,
    quality: int,
    *,
    scenario: ActualTimeScenario | None = None,
    rng: np.random.Generator | None = None,
) -> CycleOutcome:
    """Execute one cycle at a constant quality level with no management at all.

    Used by baselines and by the profiler to measure per-quality behaviour.
    When the caller supplies the scenario it also owns the matrix, so the
    durations are returned as a read-only view of its row — no copy, no
    recomputation.  An internally drawn scenario is copied instead, so the
    outcome does not pin the full ``(levels, actions)`` matrix in memory.
    """
    if quality not in system.qualities:
        raise ValueError(f"quality {quality} not in {system.qualities!r}")
    row = system.qualities.index_of(quality)
    if scenario is None:
        scenario = system.draw_scenario(rng if rng is not None else np.random.default_rng(0))
        durations = scenario.matrix[row].copy()
    else:
        if scenario.qualities != system.qualities:
            # the row gather below uses the *system's* level-to-row mapping; a
            # scenario drawn for another quality set would silently yield a
            # different level's durations
            raise ValueError(
                f"scenario quality set {scenario.qualities!r} does not match "
                f"the system's {system.qualities!r}"
            )
        durations = scenario.matrix[row]
    n = system.n_actions
    completion = np.cumsum(durations)
    return CycleOutcome(
        qualities=np.full(n, quality, dtype=np.int64),
        durations=durations,
        completion_times=completion,
        manager_invocations=np.empty(0, dtype=np.int64),
        manager_overheads=np.empty(0, dtype=np.float64),
    )


def run_fixed_quality_batch(
    system: ParameterizedSystem,
    quality: int,
    scenarios: "ScenarioBatch | Sequence[ActualTimeScenario]",
) -> tuple[CycleOutcome, ...]:
    """Vectorised :func:`run_fixed_quality` over a batch of scenarios.

    One row gather plus one ``cumsum`` for the whole batch — for a
    :class:`~repro.core.timing.ScenarioBatch` the row gather is a single
    tensor slice, no per-cycle objects; the outcomes are bit-identical to
    per-scenario :func:`run_fixed_quality` calls (``numpy.cumsum`` along the
    action axis performs the same sequential additions as the scalar path).
    """
    if quality not in system.qualities:
        raise ValueError(f"quality {quality} not in {system.qualities!r}")
    if not len(scenarios):
        return ()
    row = system.qualities.index_of(quality)
    n = system.n_actions
    if isinstance(scenarios, ScenarioBatch):
        if scenarios.n_actions != n:
            raise ValueError(
                f"scenario batch covers {scenarios.n_actions} actions, system has {n}"
            )
        if scenarios.qualities != system.qualities:
            raise ValueError(
                f"scenario quality set {scenarios.qualities!r} does not match "
                f"the system's {system.qualities!r}"
            )
        durations = scenarios.tensor[:, row, :]
    else:
        for scenario in scenarios:
            if scenario.n_actions != n:
                raise ValueError(
                    f"scenario covers {scenario.n_actions} actions, system has {n}"
                )
            if scenario.qualities != system.qualities:
                raise ValueError(
                    f"scenario quality set {scenario.qualities!r} does not match "
                    f"the system's {system.qualities!r}"
                )
        durations = np.stack([scenario.matrix[row] for scenario in scenarios])
    completion = np.cumsum(durations, axis=1)
    return tuple(
        CycleOutcome(
            qualities=np.full(n, quality, dtype=np.int64),
            durations=durations[index],
            completion_times=completion[index],
            manager_invocations=np.empty(0, dtype=np.int64),
            manager_overheads=np.empty(0, dtype=np.float64),
        )
        for index in range(len(scenarios))
    )


class ControlledSystem:
    """Convenience wrapper bundling a system, deadlines and a Quality Manager.

    Provides multi-cycle execution (the application software is cyclic:
    deadlines restart at every cycle) and keeps the pieces together for
    experiments.
    """

    def __init__(
        self,
        system: ParameterizedSystem,
        deadlines: DeadlineFunction,
        manager: QualityManager,
        *,
        overhead_model: OverheadModelProtocol | None = None,
    ) -> None:
        self._system = system
        self._deadlines = deadlines
        self._manager = manager
        self._overhead_model = overhead_model

    @property
    def system(self) -> ParameterizedSystem:
        """The underlying parameterized system."""
        return self._system

    @property
    def deadlines(self) -> DeadlineFunction:
        """The per-cycle deadline function."""
        return self._deadlines

    @property
    def manager(self) -> QualityManager:
        """The Quality Manager in charge of quality choices."""
        return self._manager

    def run_cycle(
        self,
        *,
        scenario: ActualTimeScenario | None = None,
        rng: np.random.Generator | None = None,
    ) -> CycleOutcome:
        """Execute a single cycle (see :func:`run_cycle`)."""
        return run_cycle(
            self._system,
            self._manager,
            scenario=scenario,
            rng=rng,
            overhead_model=self._overhead_model,
        )

    def run_cycles(
        self,
        n_cycles: int,
        *,
        rng: np.random.Generator | None = None,
        scenarios: ScenarioBatch | Sequence[ActualTimeScenario] | None = None,
        vectorize: object = "auto",
    ) -> list[CycleOutcome]:
        """Execute several consecutive cycles and return their traces.

        Each cycle restarts the clock at zero (deadlines are relative to the
        cycle start).  ``scenarios`` fixes the actual times of every cycle,
        which allows comparing different managers on identical inputs.
        ``vectorize`` selects the batch engine (:mod:`repro.core.engine`):
        ``"auto"`` (default) runs table-driven managers through the
        vectorised kernels — bit-identical outcomes, one NumPy step per
        action instead of a Python iteration per action per cycle.
        """
        from .engine import run_cycles_batch

        if n_cycles < 1:
            raise ValueError(f"n_cycles must be >= 1, got {n_cycles}")
        if scenarios is not None and len(scenarios) != n_cycles:
            raise ValueError(
                f"expected {n_cycles} scenarios, got {len(scenarios)}"
            )
        generator = rng if rng is not None else np.random.default_rng(0)
        return list(
            run_cycles_batch(
                self._system,
                self._manager,
                n_cycles,
                scenarios=scenarios,
                rng=generator,
                overhead_model=self._overhead_model,
                vectorize=vectorize,
            )
        )
