"""Control relaxation regions (Proposition 3) and the relaxation manager.

A control relaxation region ``R^r_q`` contains the states from which the
Quality Manager is *guaranteed* to choose quality ``q`` for the next ``r``
actions, whatever the actual execution times (bounded by ``C^wc``).  From such
a state the manager can safely be switched off for ``r`` steps — the chosen
qualities are unchanged, only the management overhead disappears.

Proposition 3 characterises the region at state index ``i`` as an interval of
actual times:

* upper bound ``t^{D,r}(s_i, q) = min_{i <= j <= i+r-1} ( t^D(s_j, q) - C^wc(a_{i+1}..a_j, q) )``;
* lower bound ``t^D(s_{i+r-1}, q+1)`` for ``q < q_max`` (``-inf`` for ``q_max``).

This module pre-computes both bounds for a set ``ρ`` of candidate relaxation
step counts (the paper uses ``ρ = {1, 10, 20, 30, 40, 50}``), giving the
"Quality Manager using control relaxation regions" of §4.1 whose table holds
``2 * |A| * |Q| * |ρ|`` integers (99,876 for the paper's encoder).

The lower bound implemented here is ``max_{i <= j <= i+r-1} t^D(s_j, q+1)``,
which is the condition actually required by equation (3) of the paper; it
reduces to the paper's ``t^D(s_{i+r-1}, q+1)`` whenever ``t^D`` is
non-decreasing along the cycle (true for the mixed policy), and remains
correct for policies where it is not.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .manager import Decision, ManagerWork, MemoryFootprint, QualityManager
from .regions import QualityRegionTable
from .tdtable import TDTable
from .types import QualitySet

__all__ = ["RelaxationTable", "RelaxationQualityManager", "DEFAULT_RELAXATION_STEPS"]

#: the paper's relaxation step set ``ρ`` for the MPEG encoder experiment
DEFAULT_RELAXATION_STEPS: tuple[int, ...] = (1, 10, 20, 30, 40, 50)


def _window_min(values: np.ndarray, window: int) -> np.ndarray:
    """Minimum of ``values[i : i + window]`` for every valid start ``i``.

    Returns an array of length ``len(values) - window + 1``.
    """
    if window == 1:
        return values.copy()
    return np.lib.stride_tricks.sliding_window_view(values, window).min(axis=1)


def _window_max(values: np.ndarray, window: int) -> np.ndarray:
    """Maximum of ``values[i : i + window]`` for every valid start ``i``."""
    if window == 1:
        return values.copy()
    return np.lib.stride_tricks.sliding_window_view(values, window).max(axis=1)


class RelaxationTable:
    """Pre-computed control relaxation bounds for a set of step counts ``ρ``.

    For every ``r`` in ``ρ``, quality level ``q`` and state index ``i`` the
    table stores the interval ``( lower_r(s_i, q), upper_r(s_i, q) ]`` such
    that ``(s_i, t_i) ∈ R^r_q`` iff ``t_i`` falls inside it.  States with
    fewer than ``r`` remaining actions are marked unreachable (empty
    interval).
    """

    __slots__ = ("_td", "_steps", "_upper", "_lower")

    def __init__(self, td_table: TDTable, steps: Sequence[int] = DEFAULT_RELAXATION_STEPS) -> None:
        cleaned = sorted({int(r) for r in steps})
        if not cleaned or cleaned[0] < 1:
            raise ValueError(f"relaxation steps must be positive integers, got {steps!r}")
        self._td = td_table
        self._steps = tuple(cleaned)
        self._upper: dict[int, np.ndarray] = {}
        self._lower: dict[int, np.ndarray] = {}
        self._precompute()

    @classmethod
    def from_arrays(
        cls,
        td_table: TDTable,
        steps: Sequence[int],
        upper: Sequence[np.ndarray],
        lower: Sequence[np.ndarray],
    ) -> "RelaxationTable":
        """Rehydrate a table from already-computed bounds, skipping the precompute.

        ``upper``/``lower`` hold one ``(n_levels, n_states)`` array per step of
        ``steps`` (ascending order, no duplicates) — exactly what
        :attr:`steps` ordering produces.  This is the deserialisation path of
        :mod:`repro.runtime.artifacts`; the arrays are trusted to be the
        output of a previous :meth:`_precompute`.
        """
        cleaned = tuple(sorted({int(r) for r in steps}))
        if not cleaned or cleaned[0] < 1:
            raise ValueError(f"relaxation steps must be positive integers, got {steps!r}")
        if tuple(int(r) for r in steps) != cleaned:
            # the bounds arrays are paired positionally — accepting any other
            # ordering would silently attach step r's bounds to a different r
            raise ValueError(f"relaxation steps must be unique and ascending, got {steps!r}")
        if len(upper) != len(cleaned) or len(lower) != len(cleaned):
            raise ValueError(
                f"expected one upper and one lower array per step ({len(cleaned)}), "
                f"got {len(upper)} and {len(lower)}"
            )
        expected = (td_table.n_levels, td_table.n_states)
        table = cls.__new__(cls)
        table._td = td_table
        table._steps = cleaned
        table._upper = {}
        table._lower = {}
        for position, r in enumerate(cleaned):
            for name, source, store in (
                ("upper", upper[position], table._upper),
                ("lower", lower[position], table._lower),
            ):
                array = np.array(source, dtype=np.float64)
                if array.shape != expected:
                    raise ValueError(
                        f"{name} bounds for step {r} must have shape {expected}, "
                        f"got {array.shape}"
                    )
                array.setflags(write=False)
                store[r] = array
        return table

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _precompute(self) -> None:
        td = self._td.values  # (n_levels, n_states)
        system = self._td.system
        n_levels, n_states = td.shape
        wc_prefix = system.worst_case.prefix  # (n_levels, n_states + 1)

        for r in self._steps:
            upper = np.full((n_levels, n_states), -np.inf, dtype=np.float64)
            lower = np.full((n_levels, n_states), np.inf, dtype=np.float64)
            if r > n_states:
                # no state has r remaining actions: the region is empty
                self._upper[r] = upper
                self._lower[r] = lower
                continue
            valid = n_states - r + 1  # states 0 .. n_states - r
            for qi in range(n_levels):
                # upper bound: min_{j in [i, i+r-1]} ( t^D(s_j, q) - Cwc(a_{i+1}..a_j, q) )
                #            = min_j ( t^D(s_j, q) - P^wc[q, j] ) + P^wc[q, i]
                shifted = td[qi] - wc_prefix[qi, :n_states]
                upper[qi, :valid] = _window_min(shifted, r) + wc_prefix[qi, :valid]
                # lower bound: max_{j in [i, i+r-1]} t^D(s_j, q+1), -inf at q_max
                if qi + 1 < n_levels:
                    lower[qi, :valid] = _window_max(td[qi + 1], r)
                else:
                    lower[qi, :valid] = -np.inf
            upper.setflags(write=False)
            lower.setflags(write=False)
            self._upper[r] = upper
            self._lower[r] = lower

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def td_table(self) -> TDTable:
        """The underlying ``t^D`` table."""
        return self._td

    @property
    def steps(self) -> tuple[int, ...]:
        """The relaxation step set ``ρ`` (sorted ascending)."""
        return self._steps

    @property
    def qualities(self) -> QualitySet:
        """Quality set of the underlying system."""
        return self._td.system.qualities

    @property
    def n_states(self) -> int:
        """Number of states with a next action."""
        return self._td.n_states

    def upper_bounds(self, r: int) -> np.ndarray:
        """Read-only ``(n_levels, n_states)`` upper bounds ``t^{D,r}`` for one step.

        Raw material of the vectorised decision kernels
        (:mod:`repro.core.engine`); ``-inf`` marks unreachable states.
        """
        if r not in self._upper:
            raise KeyError(f"relaxation step count {r} not in ρ = {self._steps}")
        return self._upper[r]

    def lower_bounds(self, r: int) -> np.ndarray:
        """Read-only ``(n_levels, n_states)`` lower bounds for one step count."""
        if r not in self._lower:
            raise KeyError(f"relaxation step count {r} not in ρ = {self._steps}")
        return self._lower[r]

    def bounds(self, state_index: int, quality: int, r: int) -> tuple[float, float]:
        """``(lower, upper)`` bounds of ``R^r_q`` at state ``s_i``.

        Membership is ``lower < t_i <= upper``; an empty interval (upper
        ``-inf``) means the region is unreachable at this state (fewer than
        ``r`` actions remain).
        """
        if r not in self._upper:
            raise KeyError(f"relaxation step count {r} not in ρ = {self._steps}")
        if not 0 <= state_index < self.n_states:
            raise IndexError(
                f"state index {state_index} out of range 0..{self.n_states - 1}"
            )
        qi = self.qualities.index_of(quality)
        return (
            float(self._lower[r][qi, state_index]),
            float(self._upper[r][qi, state_index]),
        )

    def contains(self, state_index: int, time: float, quality: int, r: int) -> bool:
        """True when ``(s_i, t_i)`` belongs to the control relaxation region ``R^r_q``."""
        lower, upper = self.bounds(state_index, quality, r)
        return lower < time <= upper

    def max_relaxation(self, state_index: int, time: float, quality: int) -> int:
        """Largest ``r`` in ``ρ`` whose region contains the state, else 1.

        This is the number of steps the manager can be switched off for from
        ``(s_i, t_i)`` when it has just chosen quality ``q``.
        """
        qi = self.qualities.index_of(quality)
        best = 1
        for r in self._steps:
            if r <= best:
                continue
            lower = self._lower[r][qi, state_index]
            upper = self._upper[r][qi, state_index]
            if lower < time <= upper:
                best = r
        return best

    def memory_footprint(self) -> MemoryFootprint:
        """Table storage: two entries per (state, level, step) — ``2 |A| |Q| |ρ|``."""
        return MemoryFootprint(
            integers=2 * self.n_states * len(self.qualities) * len(self._steps)
        )


class RelaxationQualityManager(QualityManager):
    """Symbolic Quality Manager using quality regions *and* control relaxation.

    On each invocation it (1) determines the quality level from the quality
    regions, exactly like :class:`~repro.core.regions.RegionQualityManager`,
    and (2) looks up the largest relaxation step count ``r ∈ ρ`` whose region
    contains the current state.  The executor then runs the next ``r`` actions
    at that quality without consulting the manager — the chosen qualities are
    provably identical to what the un-relaxed manager would have chosen
    (Proposition 3), so only overhead is removed.  This is the "symbolic —
    control relaxation" manager of Figures 7 and 8.
    """

    name = "relaxation"

    def __init__(
        self,
        regions: QualityRegionTable,
        relaxation: RelaxationTable,
    ) -> None:
        if regions.td_table is not relaxation.td_table and not np.array_equal(
            regions.td_table.values, relaxation.td_table.values
        ):
            raise ValueError(
                "quality regions and relaxation table must be derived from the same t^D table"
            )
        self._regions = regions
        self._relaxation = relaxation

    @property
    def qualities(self) -> QualitySet:
        return self._regions.qualities

    @property
    def regions(self) -> QualityRegionTable:
        """The quality-region table used for the quality choice."""
        return self._regions

    @property
    def relaxation(self) -> RelaxationTable:
        """The control-relaxation table used for the step-count choice."""
        return self._relaxation

    def decide(self, state_index: int, time: float) -> Decision:
        n_levels = len(self.qualities)
        quality = self._regions.region_of(state_index, time)
        if quality is None:
            # late state: best-effort minimal quality, no relaxation
            work = ManagerWork(
                kind=self.name,
                comparisons=n_levels,
                table_lookups=n_levels,
            )
            return Decision(quality=self.qualities.minimum, steps=1, work=work)
        steps = self._relaxation.max_relaxation(state_index, time, quality)
        n_rho = len(self._relaxation.steps)
        work = ManagerWork(
            kind=self.name,
            comparisons=n_levels + 2 * n_rho,
            table_lookups=n_levels + 2 * n_rho,
        )
        return Decision(quality=quality, steps=steps, work=work)

    def lower(self):
        """A ``relaxation`` spec: region lookup + stored ``R^r_q`` bound scans."""
        from .kernelspec import KernelSpec, ascending_boundaries

        table = self._relaxation
        boundaries = ascending_boundaries(table.td_table.values)
        if boundaries is None:
            return None
        n_levels = len(self.qualities)
        n_rho = len(table.steps)
        return KernelSpec(
            op="relaxation",
            kind=self.name,
            n_levels=n_levels,
            tables={
                "boundaries": boundaries,
                "steps": table.steps,
                "lower": tuple(
                    np.ascontiguousarray(table.lower_bounds(r).T) for r in table.steps
                ),
                "upper": tuple(
                    np.ascontiguousarray(table.upper_bounds(r).T) for r in table.steps
                ),
            },
            work=ManagerWork(
                kind=self.name,
                comparisons=n_levels + 2 * n_rho,
                table_lookups=n_levels + 2 * n_rho,
            ),
            late_work=ManagerWork(
                kind=self.name, comparisons=n_levels, table_lookups=n_levels
            ),
        )

    def memory_footprint(self) -> MemoryFootprint:
        """Storage of the relaxation tables (the region bounds are a subset: r=1)."""
        return self._relaxation.memory_footprint()
