"""Extensions: the paper's future-work directions, implemented.

* :mod:`repro.extensions.power` — quality level replaced by CPU frequency,
  objective replaced by energy minimisation (DVFS).
* :mod:`repro.extensions.multitask` — several cyclic tasks composed into one
  hyper-cycle with per-task deadlines.
* :mod:`repro.extensions.linear_approx` — control relaxation regions
  approximated by conservative linear constraints (massive table shrinkage).
"""

from .linear_approx import LinearRelaxationQualityManager, LinearRelaxationTable
from .multitask import (
    ComposedTaskSet,
    MultitaskQualityManager,
    TaskSpec,
    compose_tasks,
    per_task_quality,
)
from .power import (
    DvfsQualityManager,
    DvfsTask,
    FrequencyScale,
    build_dvfs_system,
    energy_of_outcome,
)

__all__ = [
    "FrequencyScale",
    "DvfsTask",
    "DvfsQualityManager",
    "build_dvfs_system",
    "energy_of_outcome",
    "TaskSpec",
    "ComposedTaskSet",
    "MultitaskQualityManager",
    "compose_tasks",
    "per_task_quality",
    "LinearRelaxationTable",
    "LinearRelaxationQualityManager",
]
