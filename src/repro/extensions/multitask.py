"""Multi-task extension (the paper's future-work direction).

The paper's formulation assumes a single, already-scheduled task.  The
conclusion lists "adaption to multiple tasks" as future work.  The natural
first step — implemented here — keeps the single-processor, static-schedule
setting: several cyclic tasks are composed into one hyper-cycle schedule
(sequential or round-robin interleaving of their action blocks), each task
keeping its own deadline attached to its last action inside the hyper-cycle.
The composed system is an ordinary parameterized system with *multiple*
deadlines, which the core machinery already supports (the ``min`` over
remaining deadlines in ``t^D``), so the mixed-policy manager, the quality
regions and the relaxation regions all apply unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.deadlines import DeadlineFunction
from repro.core.manager import Decision, ManagerWork, MemoryFootprint, QualityManager
from repro.core.system import CycleOutcome, ParameterizedSystem
from repro.core.timing import TimingModel, TimingTable
from repro.core.types import Action, QualitySet, ScheduledSequence

__all__ = [
    "TaskSpec",
    "ComposedTaskSet",
    "MultitaskQualityManager",
    "compose_tasks",
    "per_task_quality",
]


@dataclass(frozen=True)
class TaskSpec:
    """One task to be composed into a hyper-cycle.

    Attributes
    ----------
    name:
        Task identifier (used to prefix action names and in reports).
    system:
        The task's own parameterized system (one cycle).
    deadline:
        The task's relative deadline within the hyper-cycle.
    block_size:
        Number of consecutive actions of this task scheduled before switching
        to the next task under round-robin interleaving.
    """

    name: str
    system: ParameterizedSystem
    deadline: float
    block_size: int = 8

    def __post_init__(self) -> None:
        if self.deadline <= 0.0:
            raise ValueError(f"{self.name}: deadline must be > 0")
        if self.block_size < 1:
            raise ValueError(f"{self.name}: block size must be >= 1")


@dataclass(frozen=True)
class ComposedTaskSet:
    """The result of composing several tasks into one schedulable hyper-cycle."""

    system: ParameterizedSystem
    deadlines: DeadlineFunction
    task_names: tuple[str, ...]
    action_task: np.ndarray  # 0-based task index of every action of the hyper-cycle
    task_last_action: dict[str, int]  # 1-based index of each task's final action

    @property
    def n_tasks(self) -> int:
        """Number of composed tasks."""
        return len(self.task_names)


def _interleave_indices(lengths: list[int], block: list[int]) -> list[tuple[int, int]]:
    """Round-robin interleaving: yields (task_index, local_action_index 0-based)."""
    cursors = [0] * len(lengths)
    order: list[tuple[int, int]] = []
    while any(c < n for c, n in zip(cursors, lengths)):
        for task_index, n in enumerate(lengths):
            take = min(block[task_index], n - cursors[task_index])
            for offset in range(take):
                order.append((task_index, cursors[task_index] + offset))
            cursors[task_index] += take
    return order


def compose_tasks(
    tasks: list[TaskSpec],
    *,
    interleaving: str = "round_robin",
) -> ComposedTaskSet:
    """Compose several tasks into one parameterized system with multiple deadlines.

    ``interleaving`` is ``"round_robin"`` (blocks of each task alternate, the
    realistic static schedule for independent streams) or ``"sequential"``
    (task 1 entirely, then task 2, ...).  All tasks must share the same
    quality set — quality levels keep their per-task meaning, the manager
    simply assigns one level per action as before.
    """
    if not tasks:
        raise ValueError("compose_tasks needs at least one task")
    qualities: QualitySet = tasks[0].system.qualities
    for spec in tasks[1:]:
        if spec.system.qualities != qualities:
            raise ValueError("all composed tasks must share the same quality set")

    lengths = [spec.system.n_actions for spec in tasks]
    blocks = [spec.block_size for spec in tasks]
    if interleaving == "round_robin":
        order = _interleave_indices(lengths, blocks)
    elif interleaving == "sequential":
        order = [(ti, ai) for ti, spec in enumerate(tasks) for ai in range(spec.system.n_actions)]
    else:
        raise ValueError(f"unknown interleaving {interleaving!r}")

    n_levels = len(qualities)
    total_actions = sum(lengths)
    average = np.empty((n_levels, total_actions), dtype=np.float64)
    worst = np.empty((n_levels, total_actions), dtype=np.float64)
    actions: list[Action] = []
    action_task = np.empty(total_actions, dtype=np.int64)
    task_last_action: dict[str, int] = {}

    for position, (task_index, local_index) in enumerate(order, start=1):
        spec = tasks[task_index]
        average[:, position - 1] = spec.system.average.values[:, local_index]
        worst[:, position - 1] = spec.system.worst_case.values[:, local_index]
        source = spec.system.sequence.actions[local_index]
        actions.append(
            Action(index=position, name=f"{spec.name}/{source.name}", group=spec.name)
        )
        action_task[position - 1] = task_index
        if local_index == spec.system.n_actions - 1:
            task_last_action[spec.name] = position

    # scenario sampler: draw each task's scenario and scatter it into the
    # hyper-cycle's action order
    samplers = [spec.system.timing.scenario_sampler for spec in tasks]
    column_of = [np.flatnonzero(action_task == ti) for ti in range(len(tasks))]

    def sampler(rng: np.random.Generator) -> np.ndarray:
        matrix = np.empty((n_levels, total_actions), dtype=np.float64)
        for ti, spec in enumerate(tasks):
            if samplers[ti] is None:
                task_matrix = spec.system.average.values
            else:
                task_matrix = np.asarray(samplers[ti](rng), dtype=np.float64)
            local_order = [order[int(pos)][1] for pos in column_of[ti]]
            matrix[:, column_of[ti]] = task_matrix[:, local_order]
        return matrix

    sequence = ScheduledSequence(tuple(actions))
    model = TimingModel(
        TimingTable(qualities, worst, name="Cwc"),
        TimingTable(qualities, average, name="Cav"),
        sampler,
    )
    system = ParameterizedSystem(sequence, model)
    deadline_map = {task_last_action[spec.name]: spec.deadline for spec in tasks}
    # the final action of the hyper-cycle must carry a deadline for the
    # problem to be well posed; it always does because some task ends last.
    deadlines = DeadlineFunction(deadline_map)
    return ComposedTaskSet(
        system=system,
        deadlines=deadlines,
        task_names=tuple(spec.name for spec in tasks),
        action_task=action_task,
        task_last_action=task_last_action,
    )


class MultitaskQualityManager(QualityManager):
    """The composed-controller of a multi-task hyper-cycle (registry key ``"multitask"``).

    Delegates to an inner compiled manager whose tables were generated for
    the composed system's *multiple* deadlines (the ``min`` over remaining
    deadlines in ``t^D`` handles the interleaving), and adds the per-task
    reporting surface: bind a :class:`ComposedTaskSet` to split an outcome's
    chosen qualities back into per-task averages.
    """

    name = "multitask"

    def __init__(
        self,
        inner: QualityManager,
        composed: ComposedTaskSet | None = None,
    ) -> None:
        if composed is not None and len(composed.system.qualities) != len(inner.qualities):
            raise ValueError(
                "composed task set and inner manager disagree on the quality set"
            )
        self._inner = inner
        self._composed = composed

    @property
    def qualities(self) -> QualitySet:
        return self._inner.qualities

    @property
    def inner(self) -> QualityManager:
        """The compiled manager making the actual decisions."""
        return self._inner

    @property
    def composed(self) -> ComposedTaskSet | None:
        """The bound task set used for per-task reporting, if any."""
        return self._composed

    def reset(self) -> None:
        self._inner.reset()

    def decide(self, state_index: int, time: float) -> Decision:
        decision = self._inner.decide(state_index, time)
        work = ManagerWork(
            kind=self.name,
            arithmetic_ops=decision.work.arithmetic_ops,
            comparisons=decision.work.comparisons,
            table_lookups=decision.work.table_lookups,
        )
        return Decision(quality=decision.quality, steps=decision.steps, work=work)

    def lower(self):
        """The inner manager's spec, relabelled to report under ``"multitask"``."""
        spec = self._inner.lower()
        return None if spec is None else spec.relabel(self.name)

    def memory_footprint(self) -> MemoryFootprint:
        return self._inner.memory_footprint()

    def task_qualities(
        self,
        outcome: CycleOutcome,
        composed: ComposedTaskSet | None = None,
    ) -> dict[str, float]:
        """Mean chosen quality per task for one hyper-cycle execution."""
        task_set = composed if composed is not None else self._composed
        if task_set is None:
            raise ValueError(
                "no ComposedTaskSet bound; pass one here or at construction"
            )
        return per_task_quality(task_set, outcome)


def per_task_quality(composed: ComposedTaskSet, outcome: CycleOutcome) -> dict[str, float]:
    """Mean chosen quality of each task within one hyper-cycle execution."""
    result: dict[str, float] = {}
    for task_index, name in enumerate(composed.task_names):
        mask = composed.action_task == task_index
        result[name] = float(outcome.qualities[mask].mean()) if mask.any() else 0.0
    return result
