"""Linear-constraint approximation of control relaxation regions (future work).

The paper's conclusion proposes "using linear constraints to approximate
control relaxation regions": the exact relaxation tables store two integers
per (state, level, step count) — 99,876 entries for the encoder — while the
bounds, plotted against the state index, are close to straight lines (the
``t^D`` values grow roughly linearly along the cycle).  Replacing each
per-state bound column by a *conservative* affine function of the state index
shrinks the table to four coefficients per (level, step count) at the cost of
some lost relaxation opportunities.

Conservativeness is the key requirement and is guaranteed by construction:

* the stored *upper* bound line lies **at or below** the exact upper bound at
  every valid state (least-squares fit shifted down by its maximum positive
  residual), so the approximated region never admits a state the exact region
  would reject;
* the stored *lower* bound line lies **at or above** the exact lower bound,
  for the same reason.

Because the approximated region is a subset of the exact region ``R^r_q``
(itself a subset of the quality region), the chosen qualities are still
provably identical to the un-relaxed manager — only fewer steps may be
granted.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.manager import Decision, ManagerWork, MemoryFootprint, QualityManager
from repro.core.regions import QualityRegionTable
from repro.core.relaxation import DEFAULT_RELAXATION_STEPS, RelaxationTable
from repro.core.tdtable import TDTable
from repro.core.types import QualitySet

__all__ = ["LinearRelaxationTable", "LinearRelaxationQualityManager"]


def _conservative_fit(states: np.ndarray, values: np.ndarray, *, kind: str) -> tuple[float, float]:
    """Affine fit of ``values`` over ``states`` that never crosses them the wrong way.

    ``kind`` is ``"under"`` (fit must stay <= values, used for upper bounds)
    or ``"over"`` (fit must stay >= values, used for lower bounds).  Returns
    the ``(slope, intercept)`` pair.
    """
    finite = np.isfinite(values)
    if finite.sum() < 2:
        # degenerate column: an empty/constant region — return a line that
        # makes the approximated region empty (slope 0, unreachable intercept)
        if kind == "under":
            return 0.0, -np.inf
        return 0.0, np.inf
    x = states[finite].astype(np.float64)
    y = values[finite]
    slope, intercept = np.polyfit(x, y, 1)
    fitted = slope * x + intercept
    if kind == "under":
        overshoot = float(np.max(fitted - y))
        intercept -= max(0.0, overshoot)
    else:
        undershoot = float(np.max(y - fitted))
        intercept += max(0.0, undershoot)
    return float(slope), float(intercept)


class LinearRelaxationTable:
    """Affine conservative approximation of a :class:`RelaxationTable`.

    Stores, for every quality level and relaxation step count, the slope and
    intercept of an under-approximating upper bound and an over-approximating
    lower bound — ``4 * |Q| * |ρ|`` scalars instead of ``2 * |A| * |Q| * |ρ|``.
    """

    __slots__ = ("_exact", "_steps", "_qualities", "_upper_coeffs", "_lower_coeffs", "_valid_until")

    def __init__(self, exact: RelaxationTable) -> None:
        self._exact = exact
        self._steps = exact.steps
        self._qualities = exact.qualities
        n_states = exact.n_states
        states = np.arange(n_states, dtype=np.float64)
        n_levels = len(self._qualities)
        self._upper_coeffs: dict[int, np.ndarray] = {}
        self._lower_coeffs: dict[int, np.ndarray] = {}
        self._valid_until: dict[int, int] = {}
        for r in self._steps:
            upper = np.empty((n_levels, 2), dtype=np.float64)
            lower = np.empty((n_levels, 2), dtype=np.float64)
            last_valid = n_states - r  # last state index with r remaining actions
            self._valid_until[r] = last_valid
            for qi in range(n_levels):
                quality = self._qualities.level_at(qi)
                exact_upper = np.array(
                    [exact.bounds(i, quality, r)[1] for i in range(max(last_valid + 1, 0))]
                )
                exact_lower = np.array(
                    [exact.bounds(i, quality, r)[0] for i in range(max(last_valid + 1, 0))]
                )
                if last_valid < 0 or exact_upper.size == 0:
                    upper[qi] = (0.0, -np.inf)
                    lower[qi] = (0.0, np.inf)
                    continue
                upper[qi] = _conservative_fit(states[: last_valid + 1], exact_upper, kind="under")
                # a lower bound of -inf (q_max) stays -inf: encode as slope 0
                if np.all(np.isneginf(exact_lower)):
                    lower[qi] = (0.0, -np.inf)
                else:
                    lower[qi] = _conservative_fit(states[: last_valid + 1], exact_lower, kind="over")
            self._upper_coeffs[r] = upper
            self._lower_coeffs[r] = lower

    @property
    def steps(self) -> tuple[int, ...]:
        """The relaxation step set ``ρ``."""
        return self._steps

    @property
    def qualities(self) -> QualitySet:
        """Quality set of the underlying system."""
        return self._qualities

    @property
    def exact(self) -> RelaxationTable:
        """The exact table this approximates (kept only for validation)."""
        return self._exact

    def upper_coefficients(self, r: int) -> np.ndarray:
        """``(n_levels, 2)`` slope/intercept pairs of the upper bound lines.

        Raw material of the ``affine`` kernel spec (:meth:`LinearRelaxationQualityManager.lower`).
        """
        if r not in self._upper_coeffs:
            raise KeyError(f"relaxation step count {r} not in ρ = {self._steps}")
        return self._upper_coeffs[r]

    def lower_coefficients(self, r: int) -> np.ndarray:
        """``(n_levels, 2)`` slope/intercept pairs of the lower bound lines."""
        if r not in self._lower_coeffs:
            raise KeyError(f"relaxation step count {r} not in ρ = {self._steps}")
        return self._lower_coeffs[r]

    def valid_until(self, r: int) -> int:
        """Last state index with ``r`` remaining actions (region empty beyond)."""
        if r not in self._valid_until:
            raise KeyError(f"relaxation step count {r} not in ρ = {self._steps}")
        return self._valid_until[r]

    def bounds(self, state_index: int, quality: int, r: int) -> tuple[float, float]:
        """Approximated ``(lower, upper)`` bounds of ``R^r_q`` at one state."""
        if r not in self._upper_coeffs:
            raise KeyError(f"relaxation step count {r} not in ρ = {self._steps}")
        if state_index > self._valid_until[r]:
            return np.inf, -np.inf
        qi = self._qualities.index_of(quality)
        u_slope, u_intercept = self._upper_coeffs[r][qi]
        l_slope, l_intercept = self._lower_coeffs[r][qi]
        upper = u_slope * state_index + u_intercept
        lower = l_slope * state_index + l_intercept if np.isfinite(l_intercept) else -np.inf
        return float(lower), float(upper)

    def contains(self, state_index: int, time: float, quality: int, r: int) -> bool:
        """Membership test against the approximated region."""
        lower, upper = self.bounds(state_index, quality, r)
        return lower < time <= upper

    def max_relaxation(self, state_index: int, time: float, quality: int) -> int:
        """Largest ``r`` whose approximated region contains the state, else 1."""
        best = 1
        for r in self._steps:
            if r <= best:
                continue
            if self.contains(state_index, time, quality, r):
                best = r
        return best

    def is_conservative(self, *, tolerance: float = 1e-9) -> bool:
        """Verify the approximation never exceeds the exact bounds (safety audit)."""
        for r in self._steps:
            last_valid = self._valid_until[r]
            for quality in self._qualities:
                for state in range(0, max(last_valid + 1, 0)):
                    exact_lower, exact_upper = self._exact.bounds(state, quality, r)
                    approx_lower, approx_upper = self.bounds(state, quality, r)
                    if not np.isfinite(approx_upper):
                        continue
                    if approx_upper > exact_upper + tolerance:
                        return False
                    if np.isfinite(exact_lower) and approx_lower < exact_lower - tolerance:
                        return False
        return True

    def memory_footprint(self) -> MemoryFootprint:
        """Four stored scalars per (level, step) pair."""
        return MemoryFootprint(integers=4 * len(self._qualities) * len(self._steps))


class LinearRelaxationQualityManager(QualityManager):
    """Relaxation manager whose step-count decision uses the linear approximation.

    The quality choice still uses the exact quality regions (``|A| * |Q|``
    integers); only the much larger relaxation tables are replaced by the
    ``4 * |Q| * |ρ|`` affine coefficients.
    """

    name = "linear-relaxation"

    def __init__(
        self,
        regions: QualityRegionTable,
        linear_table: LinearRelaxationTable,
    ) -> None:
        self._regions = regions
        self._linear = linear_table

    @classmethod
    def from_td_table(
        cls,
        td_table: TDTable,
        steps: Sequence[int] = DEFAULT_RELAXATION_STEPS,
    ) -> "LinearRelaxationQualityManager":
        """Build regions, exact relaxation bounds and their linear approximation."""
        regions = QualityRegionTable(td_table)
        exact = RelaxationTable(td_table, steps)
        return cls(regions, LinearRelaxationTable(exact))

    @property
    def qualities(self) -> QualitySet:
        return self._regions.qualities

    @property
    def linear_table(self) -> LinearRelaxationTable:
        """The affine relaxation approximation."""
        return self._linear

    def decide(self, state_index: int, time: float) -> Decision:
        n_levels = len(self.qualities)
        quality = self._regions.region_of(state_index, time)
        if quality is None:
            work = ManagerWork(kind=self.name, comparisons=n_levels, table_lookups=n_levels)
            return Decision(quality=self.qualities.minimum, steps=1, work=work)
        steps = self._linear.max_relaxation(state_index, time, quality)
        n_rho = len(self._linear.steps)
        work = ManagerWork(
            kind=self.name,
            arithmetic_ops=2 * n_rho,
            comparisons=n_levels + 2 * n_rho,
            table_lookups=n_levels + 4 * n_rho,
        )
        return Decision(quality=quality, steps=steps, work=work)

    def lower(self):
        """An ``affine`` spec: region lookup + the four coefficients per (q, r)."""
        from repro.core.kernelspec import KernelSpec, ascending_boundaries

        boundaries = ascending_boundaries(self._regions.td_table.values)
        if boundaries is None:
            return None
        table = self._linear
        steps = table.steps
        n_levels = len(self.qualities)
        n_rho = len(steps)
        upper = [table.upper_coefficients(r) for r in steps]
        lower = [table.lower_coefficients(r) for r in steps]
        return KernelSpec(
            op="affine",
            kind=self.name,
            n_levels=n_levels,
            tables={
                "boundaries": boundaries,
                "steps": steps,
                "u_slope": tuple(np.ascontiguousarray(c[:, 0]) for c in upper),
                "u_intercept": tuple(np.ascontiguousarray(c[:, 1]) for c in upper),
                "l_slope": tuple(np.ascontiguousarray(c[:, 0]) for c in lower),
                "l_intercept": tuple(np.ascontiguousarray(c[:, 1]) for c in lower),
                "valid_until": tuple(table.valid_until(r) for r in steps),
            },
            work=ManagerWork(
                kind=self.name,
                arithmetic_ops=2 * n_rho,
                comparisons=n_levels + 2 * n_rho,
                table_lookups=n_levels + 4 * n_rho,
            ),
            late_work=ManagerWork(
                kind=self.name, comparisons=n_levels, table_lookups=n_levels
            ),
        )

    def memory_footprint(self) -> MemoryFootprint:
        """Quality-region table plus the affine coefficients."""
        return MemoryFootprint(
            integers=self._regions.memory_footprint().integers
            + self._linear.memory_footprint().integers
        )
