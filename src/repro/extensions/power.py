"""Power management extension (the paper's future-work direction).

The conclusion sketches applying the technique "to power management where
quality level is replaced by frequency and the objective is to minimize
energy consumption without missing the deadlines".  The mapping is direct:

* each action has a (data-dependent) cycle count bounded by a worst case;
* the platform offers a finite set of frequencies; execution time of an
  action is ``cycles / frequency``;
* running *slower* saves energy (dynamic power grows roughly with the cube of
  the frequency, so energy per cycle grows roughly with its square), so the
  controller should pick the *lowest* frequency that still guarantees the
  deadlines — the exact dual of picking the highest quality.

The extension therefore reuses the whole quality-management machinery
unchanged by defining the "quality level" ``ℓ`` as the *inverse* frequency
index: level 0 is the highest frequency (cheapest in time, most expensive in
energy) and the top level is the lowest frequency.  Execution times are then
non-decreasing in the level, exactly as Definition 1 requires, and the mixed
policy's "choose the maximal admissible level" becomes "choose the lowest
admissible frequency", i.e. minimal energy without deadline misses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.deadlines import DeadlineFunction
from repro.core.manager import Decision, ManagerWork, MemoryFootprint, QualityManager
from repro.core.system import CycleOutcome, ParameterizedSystem
from repro.core.timing import TimingModel, TimingTable
from repro.core.types import QualitySet, ScheduledSequence

__all__ = [
    "FrequencyScale",
    "DvfsTask",
    "DvfsQualityManager",
    "build_dvfs_system",
    "energy_of_outcome",
]


@dataclass(frozen=True)
class FrequencyScale:
    """The platform's available frequencies and its power model.

    Attributes
    ----------
    frequencies:
        Available clock frequencies in Hz, strictly increasing.
    dynamic_exponent:
        Exponent of the dynamic power law ``P ∝ f ** dynamic_exponent``
        (3.0 for the classic ``f·V²`` model with voltage scaling linear in f).
    static_power:
        Frequency-independent power draw in watts (leakage); favours finishing
        early only when it dominates, which the energy model captures.
    reference_power:
        Dynamic power at the highest frequency, in watts.
    """

    frequencies: tuple[float, ...]
    dynamic_exponent: float = 3.0
    static_power: float = 0.05
    reference_power: float = 0.8

    def __post_init__(self) -> None:
        if len(self.frequencies) < 1:
            raise ValueError("a frequency scale needs at least one frequency")
        freqs = list(self.frequencies)
        if any(f <= 0 for f in freqs) or any(b <= a for a, b in zip(freqs, freqs[1:])):
            raise ValueError("frequencies must be positive and strictly increasing")
        if self.dynamic_exponent < 1.0:
            raise ValueError("dynamic_exponent must be >= 1")

    @property
    def n_levels(self) -> int:
        """Number of frequency steps."""
        return len(self.frequencies)

    @property
    def maximum(self) -> float:
        """The highest available frequency."""
        return self.frequencies[-1]

    def frequency_of_level(self, level: int) -> float:
        """Frequency corresponding to a *quality* level.

        Level 0 is the highest frequency; the top level is the lowest.
        """
        if not 0 <= level < self.n_levels:
            raise ValueError(f"level {level} out of range 0..{self.n_levels - 1}")
        return self.frequencies[self.n_levels - 1 - level]

    def dynamic_power(self, frequency: float) -> float:
        """Dynamic power draw at a frequency (watts)."""
        return self.reference_power * (frequency / self.maximum) ** self.dynamic_exponent

    def energy(self, frequency: float, duration: float) -> float:
        """Energy (joules) consumed running for ``duration`` at ``frequency``."""
        return (self.dynamic_power(frequency) + self.static_power) * duration


@dataclass(frozen=True)
class DvfsTask:
    """A cyclic task described by per-action cycle counts.

    Attributes
    ----------
    names:
        Action names (one cycle of the task).
    average_cycles:
        Expected cycle count of each action.
    worst_case_cycles:
        Worst-case cycle count of each action (>= average).
    deadline:
        Cycle deadline in seconds.
    """

    names: tuple[str, ...]
    average_cycles: np.ndarray
    worst_case_cycles: np.ndarray
    deadline: float

    def __post_init__(self) -> None:
        avg = np.asarray(self.average_cycles, dtype=np.float64)
        wc = np.asarray(self.worst_case_cycles, dtype=np.float64)
        if avg.shape != wc.shape or avg.ndim != 1 or avg.shape[0] != len(self.names):
            raise ValueError("cycle arrays must be 1-D and match the action names")
        if np.any(avg < 0) or np.any(wc < avg):
            raise ValueError("cycle counts must satisfy 0 <= average <= worst case")
        if self.deadline <= 0:
            raise ValueError("deadline must be > 0")

    @property
    def n_actions(self) -> int:
        """Number of actions per cycle."""
        return len(self.names)

    @classmethod
    def synthetic(
        cls,
        n_actions: int,
        *,
        mean_cycles: float = 2.0e6,
        worst_ratio: float = 1.8,
        utilisation: float = 0.7,
        max_frequency: float = 600e6,
        seed: int = 0,
    ) -> "DvfsTask":
        """A random task whose worst case uses ``utilisation`` of the CPU at ``max_frequency``."""
        rng = np.random.default_rng(seed)
        average = rng.uniform(0.4, 1.6, size=n_actions) * mean_cycles
        worst = average * worst_ratio
        deadline = float(worst.sum() / max_frequency / utilisation)
        return cls(
            names=tuple(f"job{i}" for i in range(1, n_actions + 1)),
            average_cycles=average,
            worst_case_cycles=worst,
            deadline=deadline,
        )


def build_dvfs_system(
    task: DvfsTask,
    scale: FrequencyScale,
    *,
    cycle_variability: tuple[float, float] = (0.55, 1.45),
    seed: int = 0,
) -> tuple[ParameterizedSystem, DeadlineFunction]:
    """Map a DVFS task onto the quality-management model.

    Level ``ℓ`` corresponds to frequency ``scale.frequency_of_level(ℓ)`` so
    execution times are non-decreasing in the level and the standard managers
    apply unchanged: the chosen level maximisation is frequency minimisation.
    """
    qualities = QualitySet.of_size(scale.n_levels)
    inv_freqs = np.array(
        [1.0 / scale.frequency_of_level(level) for level in qualities], dtype=np.float64
    )
    average = np.outer(inv_freqs, np.asarray(task.average_cycles, dtype=np.float64))
    worst = np.outer(inv_freqs, np.asarray(task.worst_case_cycles, dtype=np.float64))

    avg_cycles = np.asarray(task.average_cycles, dtype=np.float64)
    lo, hi = cycle_variability

    def sampler(rng: np.random.Generator) -> np.ndarray:
        factors = rng.uniform(lo, hi, size=task.n_actions)
        cycles = avg_cycles * factors
        return np.outer(inv_freqs, cycles)

    sequence = ScheduledSequence.from_names(list(task.names))
    model = TimingModel(
        TimingTable(qualities, worst, name="Cwc"),
        TimingTable(qualities, average, name="Cav"),
        sampler,
    )
    system = ParameterizedSystem(sequence, model)
    deadlines = DeadlineFunction.single(task.n_actions, task.deadline)
    return system, deadlines


class DvfsQualityManager(QualityManager):
    """Frequency manager: a compiled Quality Manager under the DVFS mapping.

    Delegates every level choice (and relaxation step count) to an inner
    compiled manager — typically the relaxation manager of the system built
    by :func:`build_dvfs_system` — and carries the :class:`FrequencyScale`
    that gives the levels their physical meaning.  Because level ``ℓ`` maps
    to the ``ℓ``-th *slowest* frequency, the inner manager's "maximal
    admissible quality" rule is exactly "minimal admissible frequency", i.e.
    minimal energy without deadline misses; this wrapper adds the
    frequency/energy reporting surface on top (registry key ``"dvfs"``).
    """

    name = "dvfs"

    def __init__(self, inner: QualityManager, scale: FrequencyScale) -> None:
        if scale.n_levels != len(inner.qualities):
            raise ValueError(
                f"frequency scale has {scale.n_levels} steps but the manager "
                f"chooses between {len(inner.qualities)} levels"
            )
        self._inner = inner
        self._scale = scale

    @property
    def qualities(self) -> QualitySet:
        return self._inner.qualities

    @property
    def scale(self) -> FrequencyScale:
        """The platform frequency scale the levels map onto."""
        return self._scale

    @property
    def inner(self) -> QualityManager:
        """The compiled manager making the actual decisions."""
        return self._inner

    def reset(self) -> None:
        self._inner.reset()

    def decide(self, state_index: int, time: float) -> Decision:
        decision = self._inner.decide(state_index, time)
        work = ManagerWork(
            kind=self.name,
            arithmetic_ops=decision.work.arithmetic_ops,
            comparisons=decision.work.comparisons,
            table_lookups=decision.work.table_lookups,
        )
        return Decision(quality=decision.quality, steps=decision.steps, work=work)

    def lower(self):
        """The inner manager's spec, relabelled to report under ``"dvfs"``."""
        spec = self._inner.lower()
        return None if spec is None else spec.relabel(self.name)

    def memory_footprint(self) -> MemoryFootprint:
        return self._inner.memory_footprint()

    def frequency_of(self, level: int) -> float:
        """The clock frequency a chosen level corresponds to."""
        return self._scale.frequency_of_level(int(level))

    def energy_of(self, outcome: CycleOutcome, *, include_static: bool = True) -> float:
        """Energy (joules) of one executed cycle under this manager's scale."""
        return energy_of_outcome(outcome, self._scale, include_static=include_static)


def energy_of_outcome(
    outcome: CycleOutcome,
    scale: FrequencyScale,
    *,
    include_static: bool = True,
) -> float:
    """Total energy (joules) of one executed cycle under the DVFS mapping.

    Each action ran at the frequency corresponding to its chosen level for its
    recorded duration; management overhead is charged at the highest
    frequency (the manager runs before the frequency switch).
    """
    energy = 0.0
    for level, duration in zip(outcome.qualities, outcome.durations):
        frequency = scale.frequency_of_level(int(level))
        power = scale.dynamic_power(frequency) + (scale.static_power if include_static else 0.0)
        energy += power * float(duration)
    overhead_power = scale.dynamic_power(scale.maximum) + (
        scale.static_power if include_static else 0.0
    )
    energy += overhead_power * float(outcome.manager_overheads.sum())
    return energy
