"""Experiment runner: regenerate every paper artefact in one call.

``python -m repro.experiments.runner`` runs the full paper-scale evaluation
(29 CIF frames, 1,189 actions per frame) and prints the reports; the ``fast``
mode used by tests runs a QCIF-sized workload with fewer frames so the whole
suite stays quick.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.api.session import Session
from repro.media.workload import EncoderWorkload, paper_encoder, small_encoder

from .exp_diagrams import DiagramExperimentResult, run_diagram_experiment
from .exp_fig7 import Fig7Result, run_fig7_experiment
from .exp_fig8 import Fig8Result, run_fig8_experiment
from .exp_memory import MemoryExperimentResult, run_memory_experiment
from .exp_overhead import OverheadExperimentResult, run_overhead_experiment

__all__ = ["ExperimentSuiteResult", "run_all_experiments", "main"]


@dataclass(frozen=True)
class ExperimentSuiteResult:
    """Results of all reproduced experiments."""

    memory: MemoryExperimentResult
    overhead: OverheadExperimentResult
    fig7: Fig7Result
    fig8: Fig8Result
    diagrams: DiagramExperimentResult

    def render(self) -> str:
        """All experiment reports concatenated."""
        sections = [
            ("E1 — symbolic table memory (§4.1)", self.memory.render()),
            ("E2 — quality-management overhead (§4.2)", self.overhead.render()),
            ("E3 — Figure 7: average quality per frame", self.fig7.render()),
            ("E4 — Figure 8: per-action overhead", self.fig8.render()),
            ("E5 — Figures 3–6: speed-diagram geometry", self.diagrams.render()),
        ]
        blocks = []
        for title, body in sections:
            blocks.append("=" * len(title))
            blocks.append(title)
            blocks.append("=" * len(title))
            blocks.append(body)
            blocks.append("")
        return "\n".join(blocks)


def run_all_experiments(
    *,
    fast: bool = False,
    seed: int = 0,
    workload: EncoderWorkload | None = None,
    workers: int | None = None,
    vectorize: str = "auto",
    backend: str | None = None,
    scenario_transport: str | None = None,
    spool: str | None = None,
    spool_timeout: float | None = None,
    chunk_size: int | None = None,
) -> ExperimentSuiteResult:
    """Run experiments E1–E5 and return their results.

    ``fast`` switches to the QCIF workload with a short frame sequence; the
    shapes (orderings, matches) are preserved, only the scale changes.
    ``workers`` routes the manager comparisons of E2/E3 through the
    :mod:`repro.runtime` sweep pool (results are bit-identical to serial).
    ``spool`` fans those comparisons out over a shared spool directory
    instead (:meth:`repro.api.Session.remote`); ``workers`` then counts the
    local ``repro worker`` subprocesses to spawn (0/None waits for external
    workers attached to the spool — set ``spool_timeout`` to bound the wait
    when none may be attached).
    ``vectorize`` selects the cycle engine for the session-driven
    experiments — ``"auto"`` (default) batch-executes the table-driven
    managers through :mod:`repro.core.engine`, ``"never"`` forces the scalar
    loop; either way the artefacts are bit-identical.  ``backend`` selects
    the kernel compute backend (default ``$REPRO_BACKEND``, else
    ``"numpy"``); every registered backend is bit-identical too.
    ``scenario_transport``
    selects how a parallel comparison ships its shared scenarios to the
    workers (``"value"`` pre-draws and ships the
    :class:`~repro.core.timing.ScenarioBatch` tensor, ``"redraw"`` ships no
    scenario data and workers re-draw it); ``None`` keeps each mode's
    default — ``"value"`` on the process pool, ``"redraw"`` on a spool.
    Only meaningful with ``workers``/``spool``.  ``chunk_size`` streams the
    metric-only comparisons (E2) in constant memory through the chunked
    engine; the Figure 7 experiment needs per-cycle traces and always forces
    the materialised path for its own runs.
    """
    if workload is not None:
        wl = workload
    elif fast:
        wl = small_encoder(seed=seed, n_frames=6)
    else:
        wl = paper_encoder(seed=seed)
    n_frames = wl.n_frames

    # E1 only compiles tables (no cycle execution), so it always runs at paper
    # scale — the integer counts are the whole point of the comparison.
    memory = run_memory_experiment(paper_encoder(seed=seed), seed=seed)
    # E2 and E3 share one facade session: the symbolic tables are compiled
    # once and reused from the session's cache across both experiments.
    session = Session().system(wl).seed(seed).vectorize(vectorize)
    if backend is not None:
        session.backend(backend)
    if chunk_size is not None:
        session.chunk_size(chunk_size)
    if spool is not None:
        session.remote(
            spool,
            timeout=spool_timeout,
            local_workers=workers or 0,
            scenario_transport=scenario_transport,
        )
    elif workers is not None:
        session.parallel(workers, scenario_transport=scenario_transport)
    overhead = run_overhead_experiment(wl, n_frames=n_frames, seed=seed, session=session)
    fig7 = run_fig7_experiment(wl, n_frames=n_frames, seed=seed, session=session)
    fig8 = run_fig8_experiment(wl, seed=seed)
    diagrams = run_diagram_experiment(small_encoder(seed=seed) if not fast else wl, seed=seed)
    return ExperimentSuiteResult(
        memory=memory, overhead=overhead, fig7=fig7, fig8=fig8, diagrams=diagrams
    )


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description="Reproduce the paper's experiments")
    parser.add_argument("--fast", action="store_true", help="small workload for a quick run")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run the manager comparisons through the sweep pool with N workers",
    )
    parser.add_argument(
        "--vectorize",
        choices=("auto", "always", "never"),
        default="auto",
        help="cycle engine: vectorised NumPy kernels (auto/always) or the scalar loop",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="kernel compute backend, e.g. numpy or numba (default: $REPRO_BACKEND, else numpy)",
    )
    parser.add_argument(
        "--scenario-transport",
        choices=("value", "redraw"),
        default=None,
        help=(
            "parallel compare scenario transport (default: value on the "
            "process pool, redraw on a spool; only meaningful with "
            "--workers/--spool)"
        ),
    )
    parser.add_argument(
        "--spool",
        default=None,
        help="shared spool directory for distributed comparisons (see docs/distributed-sweeps.md)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="overall bound in seconds for a --spool run (default: wait forever)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help=(
            "stream the metric-only experiments in chunks of N cycles "
            "(default: $REPRO_CHUNK, else materialised)"
        ),
    )
    arguments = parser.parse_args(argv)
    result = run_all_experiments(
        fast=arguments.fast,
        seed=arguments.seed,
        workers=arguments.workers,
        vectorize=arguments.vectorize,
        backend=arguments.backend,
        scenario_transport=arguments.scenario_transport,
        spool=arguments.spool,
        spool_timeout=arguments.timeout,
        chunk_size=arguments.chunk_size,
    )
    print(result.render())
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(main())
