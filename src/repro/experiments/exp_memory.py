"""Experiment E1 — memory footprint of the symbolic tables (§4.1).

The paper characterises quality regions by ``|A| * |Q|`` integers (8,323 for
the encoder) and control relaxation regions by ``2 * |A| * |Q| * |ρ|``
integers (99,876).  This experiment compiles the symbolic controllers for the
paper-scale encoder workload and reports the stored table sizes, which should
match the formulas (and hence the paper's counts) exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reports import memory_report
from repro.core.compiler import CompilationReport, QualityManagerCompiler
from repro.media.workload import EncoderWorkload, paper_encoder

from .config import PAPER_REFERENCE

__all__ = ["MemoryExperimentResult", "run_memory_experiment"]


@dataclass(frozen=True)
class MemoryExperimentResult:
    """Result of the memory-footprint experiment."""

    report: CompilationReport
    paper_region_integers: int
    paper_relaxation_integers: int

    @property
    def region_matches_paper(self) -> bool:
        """True when the quality-region table size equals the paper's count."""
        return self.report.region_integers == self.paper_region_integers

    @property
    def relaxation_matches_paper(self) -> bool:
        """True when the relaxation table size equals the paper's count."""
        return self.report.relaxation_integers == self.paper_relaxation_integers

    def render(self) -> str:
        """Text report comparing measured sizes against the paper."""
        lines = [memory_report(self.report), ""]
        lines.append(
            f"paper reports {self.paper_region_integers} integers for quality regions "
            f"(match: {self.region_matches_paper})"
        )
        lines.append(
            f"paper reports {self.paper_relaxation_integers} integers for relaxation regions "
            f"(match: {self.relaxation_matches_paper})"
        )
        return "\n".join(lines)


def run_memory_experiment(
    workload: EncoderWorkload | None = None,
    *,
    seed: int = 0,
) -> MemoryExperimentResult:
    """Compile the symbolic controllers for the encoder and report table sizes."""
    wl = workload if workload is not None else paper_encoder(seed=seed)
    system = wl.build_system()
    deadlines = wl.deadlines()
    compiler = QualityManagerCompiler()
    compiled = compiler.compile(system, deadlines)
    return MemoryExperimentResult(
        report=compiled.report,
        paper_region_integers=PAPER_REFERENCE.region_integers,
        paper_relaxation_integers=PAPER_REFERENCE.relaxation_integers,
    )
