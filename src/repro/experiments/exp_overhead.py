"""Experiment E2 — execution-time overhead of the three Quality Managers (§4.2).

The paper reports, for a 29-frame CIF sequence on the iPod: 5.7 % overhead
for the numeric manager, 1.9 % for the symbolic manager using quality regions
and below 1.1 % with control relaxation.  The reproduction runs the three
managers on identical synthetic-encoder scenarios on the iPod-like virtual
platform and reports the same quantities.  The expected *shape* is the strict
ordering numeric > region > relaxation with roughly the paper's ratios; the
absolute values depend on the overhead calibration, exactly as the paper's
depend on the iPod.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import QualityMetrics
from repro.analysis.reports import overhead_report
from repro.api.session import Session
from repro.media.workload import EncoderWorkload
from repro.platform.machine import Machine

from .config import PAPER_REFERENCE
from .facade import resolve_facade_session

__all__ = ["OverheadExperimentResult", "run_overhead_experiment"]


@dataclass(frozen=True)
class OverheadExperimentResult:
    """Per-manager metrics of the overhead experiment."""

    metrics: dict[str, QualityMetrics]
    n_frames: int
    machine_name: str

    @property
    def overhead_percentages(self) -> dict[str, float]:
        """Execution-time overhead per manager, in percent."""
        return {
            name: 100.0 * metric.overhead_fraction for name, metric in self.metrics.items()
        }

    @property
    def ordering_matches_paper(self) -> bool:
        """True when numeric > region > relaxation overhead, as the paper reports."""
        pct = self.overhead_percentages
        return pct["numeric"] > pct["region"] > pct["relaxation"]

    @property
    def all_safe(self) -> bool:
        """True when no manager missed any deadline."""
        return all(metric.is_safe for metric in self.metrics.values())

    def render(self) -> str:
        """Text report including the paper's reference percentages."""
        lines = [overhead_report(self.metrics), ""]
        lines.append(
            "paper reports: numeric {:.1f} %, regions {:.1f} %, relaxation < {:.1f} %".format(
                PAPER_REFERENCE.overhead_numeric_pct,
                PAPER_REFERENCE.overhead_region_pct,
                PAPER_REFERENCE.overhead_relaxation_pct,
            )
        )
        lines.append(f"overhead ordering matches paper: {self.ordering_matches_paper}")
        lines.append(f"all managers safe: {self.all_safe}")
        return "\n".join(lines)


def run_overhead_experiment(
    workload: EncoderWorkload | None = None,
    *,
    n_frames: int | None = None,
    machine: Machine | None = None,
    seed: int | None = None,
    session: Session | None = None,
) -> OverheadExperimentResult:
    """Run the three managers on identical scenarios and measure their overhead.

    Driven through the :mod:`repro.api` facade; passing a ``session`` shares
    its compilation cache with other experiments on the same workload (see
    :func:`repro.experiments.facade.resolve_facade_session` for the
    inheritance rules).
    """
    session, machine, used_seed, frames = resolve_facade_session(
        workload, session, machine, seed, n_frames
    )
    batch = session.relaxation_steps(1, 10, 20, 30, 40, 50).compare(
        cycles=frames, seed=used_seed
    )
    return OverheadExperimentResult(
        metrics=dict(batch.metrics),
        n_frames=frames,
        machine_name=machine.name,
    )
