"""Experiment E2 — execution-time overhead of the three Quality Managers (§4.2).

The paper reports, for a 29-frame CIF sequence on the iPod: 5.7 % overhead
for the numeric manager, 1.9 % for the symbolic manager using quality regions
and below 1.1 % with control relaxation.  The reproduction runs the three
managers on identical synthetic-encoder scenarios on the iPod-like virtual
platform and reports the same quantities.  The expected *shape* is the strict
ordering numeric > region > relaxation with roughly the paper's ratios; the
absolute values depend on the overhead calibration, exactly as the paper's
depend on the iPod.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import QualityMetrics, compute_metrics
from repro.analysis.reports import overhead_report
from repro.core.compiler import QualityManagerCompiler
from repro.media.workload import EncoderWorkload, paper_encoder
from repro.platform.executor import PlatformExecutor
from repro.platform.machine import Machine, ipod_video

from .config import PAPER_REFERENCE

__all__ = ["OverheadExperimentResult", "run_overhead_experiment"]


@dataclass(frozen=True)
class OverheadExperimentResult:
    """Per-manager metrics of the overhead experiment."""

    metrics: dict[str, QualityMetrics]
    n_frames: int
    machine_name: str

    @property
    def overhead_percentages(self) -> dict[str, float]:
        """Execution-time overhead per manager, in percent."""
        return {
            name: 100.0 * metric.overhead_fraction for name, metric in self.metrics.items()
        }

    @property
    def ordering_matches_paper(self) -> bool:
        """True when numeric > region > relaxation overhead, as the paper reports."""
        pct = self.overhead_percentages
        return pct["numeric"] > pct["region"] > pct["relaxation"]

    @property
    def all_safe(self) -> bool:
        """True when no manager missed any deadline."""
        return all(metric.is_safe for metric in self.metrics.values())

    def render(self) -> str:
        """Text report including the paper's reference percentages."""
        lines = [overhead_report(self.metrics), ""]
        lines.append(
            "paper reports: numeric {:.1f} %, regions {:.1f} %, relaxation < {:.1f} %".format(
                PAPER_REFERENCE.overhead_numeric_pct,
                PAPER_REFERENCE.overhead_region_pct,
                PAPER_REFERENCE.overhead_relaxation_pct,
            )
        )
        lines.append(f"overhead ordering matches paper: {self.ordering_matches_paper}")
        lines.append(f"all managers safe: {self.all_safe}")
        return "\n".join(lines)


def run_overhead_experiment(
    workload: EncoderWorkload | None = None,
    *,
    n_frames: int | None = None,
    machine: Machine | None = None,
    seed: int = 0,
) -> OverheadExperimentResult:
    """Run the three managers on identical scenarios and measure their overhead."""
    wl = workload if workload is not None else paper_encoder(seed=seed)
    frames = n_frames if n_frames is not None else wl.n_frames
    system = wl.build_system()
    deadlines = wl.deadlines()
    compiled = QualityManagerCompiler(relaxation_steps=(1, 10, 20, 30, 40, 50)).compile(
        system, deadlines
    )
    executor = PlatformExecutor(machine if machine is not None else ipod_video())
    results = executor.compare(
        system, deadlines, compiled.managers(), n_cycles=frames, seed=seed
    )
    metrics = {
        name: compute_metrics(result.outcomes, deadlines) for name, result in results.items()
    }
    return OverheadExperimentResult(
        metrics=metrics,
        n_frames=frames,
        machine_name=executor.machine.name,
    )
