"""Shared facade-session resolution for the experiment runners.

Both E2 (overhead) and E3 (Figure 7) accept the same quartet of optional
arguments — ``workload``, ``session``, ``machine``, ``seed`` — with the same
inheritance rules.  This helper resolves them in one place:

* a passed ``session`` is cloned so the caller's configuration and frame
  sampler are never touched, while its compilation cache stays shared;
* an explicit ``workload`` always wins over the session's system;
* unset ``machine``/``seed`` inherit the session's configuration, falling
  back to the iPod platform and seed 0.
"""

from __future__ import annotations

from repro.api.session import Session
from repro.media.workload import EncoderWorkload, paper_encoder
from repro.platform.machine import Machine, ipod_video

__all__ = ["resolve_facade_session"]


def resolve_facade_session(
    workload: EncoderWorkload | None,
    session: Session | None,
    machine: Machine | None,
    seed: int | None,
    n_frames: int | None,
) -> tuple[Session, Machine, int, int]:
    """Resolve experiment arguments to ``(session, machine, seed, frames)``."""
    if session is None:
        used_seed = 0 if seed is None else int(seed)
        wl = workload if workload is not None else paper_encoder(seed=used_seed)
        session = Session().system(wl)
    else:
        used_seed = session.current_seed if seed is None else int(seed)
        # clone: reconfiguring must not clobber the caller's session (the
        # clone still shares the caller's compilation cache)
        session = session.clone()
        if workload is not None:
            wl = workload
            session = session.system(wl)  # an explicit workload always wins
        else:
            wl = session.resolved_workload()
    if machine is None:
        machine = session.current_machine if session.current_machine is not None else ipod_video()
    if n_frames is not None:
        frames = int(n_frames)
    elif wl is not None:
        frames = wl.n_frames
    else:
        raise ValueError("pass n_frames when the session holds a bare system")
    return session.machine(machine).seed(used_seed), machine, used_seed, frames
