"""Experiment E3 — Figure 7: average quality level per frame.

The paper plots, over a 29-frame CIF sequence, the per-frame average quality
level chosen by the three Quality Managers.  The symbolic managers choose
higher quality levels than the numeric one because their saved overhead is
re-invested in the time budget.  The reproduction produces the same series
from the synthetic encoder on the iPod-like platform.

Expected shape: for (almost) every frame,
``quality(relaxation) >= quality(region) >= quality(numeric)``, all three
within the paper's 3–4.5 band (our calibration sits slightly higher but the
ordering and the per-frame variation with content are the point).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reports import quality_series_report
from repro.api.results import RunResult
from repro.api.session import Session
from repro.media.workload import EncoderWorkload
from repro.platform.machine import Machine

from .facade import resolve_facade_session

__all__ = ["Fig7Result", "run_fig7_experiment"]


@dataclass(frozen=True)
class Fig7Result:
    """Per-frame average-quality series for each manager (the Figure 7 data)."""

    series: dict[str, np.ndarray]
    runs: dict[str, RunResult]

    @property
    def n_frames(self) -> int:
        """Number of frames in the series."""
        return len(next(iter(self.series.values())))

    @property
    def mean_quality(self) -> dict[str, float]:
        """Sequence-average quality per manager."""
        return {name: float(values.mean()) for name, values in self.series.items()}

    def symbolic_dominates_numeric(self, *, tolerance: float = 1e-9) -> bool:
        """True when both symbolic managers average at least the numeric quality."""
        numeric = self.mean_quality.get("numeric", 0.0)
        return (
            self.mean_quality.get("region", 0.0) >= numeric - tolerance
            and self.mean_quality.get("relaxation", 0.0) >= numeric - tolerance
        )

    def render(self) -> str:
        """Text rendering of the per-frame series plus the summary means."""
        lines = [quality_series_report(self.series), ""]
        for name, mean in self.mean_quality.items():
            lines.append(f"sequence mean quality [{name}]: {mean:.3f}")
        lines.append(
            f"symbolic managers sustain >= numeric quality: {self.symbolic_dominates_numeric()}"
        )
        return "\n".join(lines)


def run_fig7_experiment(
    workload: EncoderWorkload | None = None,
    *,
    n_frames: int | None = None,
    machine: Machine | None = None,
    seed: int | None = None,
    session: Session | None = None,
) -> Fig7Result:
    """Run the three managers over the frame sequence and collect per-frame quality.

    Driven through the :mod:`repro.api` facade; passing a ``session`` shares
    its compilation cache with other experiments on the same workload (see
    :func:`repro.experiments.facade.resolve_facade_session` for the
    inheritance rules).
    """
    session, machine, used_seed, frames = resolve_facade_session(
        workload, session, machine, seed, n_frames
    )
    # the per-frame series needs materialised cycle traces: opt this compare
    # out of any session/$REPRO_CHUNK streaming default
    batch = session.compare(cycles=frames, seed=used_seed, chunk_size=None)
    series = {name: run.mean_quality_per_cycle for name, run in batch.runs.items()}
    return Fig7Result(series=series, runs=dict(batch.runs))
