"""Experiment E4 — Figure 8: per-action management overhead with and without relaxation.

Figure 8 plots, for actions a200..a700 of one frame, the execution-time
overhead attributable to the Quality Manager before each action, for the
symbolic manager with and without control relaxation.  Without relaxation the
manager runs before every action (a constant per-call cost); with relaxation
whole stretches of actions carry zero overhead, and the paper observes the
relaxation step count adapting dynamically along the frame (r = 40, then 1,
then 10).

Expected shape here: the no-relaxation series is a roughly constant non-zero
line; the relaxation series is zero almost everywhere with isolated spikes;
the total overhead over the window is several times smaller with relaxation;
and the relaxation step counts used along the window span several distinct
values from ρ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.compiler import QualityManagerCompiler
from repro.media.workload import EncoderWorkload, paper_encoder
from repro.platform.executor import PlatformExecutor
from repro.platform.machine import Machine, ipod_video
from repro.platform.tracing import per_action_overhead, relaxation_steps_used

from .config import PAPER_REFERENCE

__all__ = ["Fig8Result", "run_fig8_experiment"]


@dataclass(frozen=True)
class Fig8Result:
    """Per-action overhead series over the Figure 8 action window."""

    first_action: int
    last_action: int
    region_overhead: np.ndarray
    relaxation_overhead: np.ndarray
    relaxation_steps: np.ndarray
    window_steps: np.ndarray

    @property
    def region_total(self) -> float:
        """Total overhead of the no-relaxation manager over the window."""
        return float(self.region_overhead.sum())

    @property
    def relaxation_total(self) -> float:
        """Total overhead of the relaxation manager over the window."""
        return float(self.relaxation_overhead.sum())

    @property
    def overhead_reduction_factor(self) -> float:
        """How many times smaller the relaxation overhead is over the window."""
        if self.relaxation_total <= 0.0:
            return np.inf
        return self.region_total / self.relaxation_total

    @property
    def distinct_step_counts(self) -> list[int]:
        """The distinct relaxation step counts used inside the window."""
        return sorted(int(s) for s in np.unique(self.window_steps))

    def render(self) -> str:
        """Text summary of the Figure 8 reproduction."""
        lines = [
            f"action window: a{self.first_action}..a{self.last_action}",
            f"overhead without relaxation: {1e3 * self.region_total:.3f} ms",
            f"overhead with relaxation:    {1e3 * self.relaxation_total:.3f} ms",
            f"reduction factor: {self.overhead_reduction_factor:.1f}x",
            f"relaxation step counts used in the window: {self.distinct_step_counts}",
            f"paper observes r in {list(PAPER_REFERENCE.fig8_observed_steps)} along its window",
        ]
        return "\n".join(lines)


def run_fig8_experiment(
    workload: EncoderWorkload | None = None,
    *,
    first_action: int | None = None,
    last_action: int | None = None,
    frame_index: int = 0,
    machine: Machine | None = None,
    seed: int = 0,
) -> Fig8Result:
    """Measure per-action overhead with and without relaxation over one frame window."""
    wl = workload if workload is not None else paper_encoder(seed=seed)
    system = wl.build_system()
    deadlines = wl.deadlines()
    n = system.n_actions
    lo = first_action if first_action is not None else min(PAPER_REFERENCE.fig8_first_action, n // 4)
    hi = last_action if last_action is not None else min(PAPER_REFERENCE.fig8_last_action, n - 1)
    if not 1 <= lo < hi <= n:
        raise ValueError(f"invalid action window {lo}..{hi} for {n} actions")

    compiled = QualityManagerCompiler().compile(system, deadlines)
    executor = PlatformExecutor(machine if machine is not None else ipod_video())
    managers = {"region": compiled.region, "relaxation": compiled.relaxation}
    runs = executor.compare(
        system, deadlines, managers, n_cycles=frame_index + 1, seed=seed
    )
    region_outcome = runs["region"].outcomes[frame_index]
    relaxation_outcome = runs["relaxation"].outcomes[frame_index]

    region_series = per_action_overhead(region_outcome)[lo - 1 : hi]
    relaxation_series = per_action_overhead(relaxation_outcome)[lo - 1 : hi]
    steps = relaxation_steps_used(relaxation_outcome)
    # step counts granted by invocations that fall inside the window
    invocations = relaxation_outcome.manager_invocations
    in_window = (invocations >= lo - 1) & (invocations < hi)
    window_steps = steps[in_window] if steps.size else steps

    return Fig8Result(
        first_action=lo,
        last_action=hi,
        region_overhead=region_series,
        relaxation_overhead=relaxation_series,
        relaxation_steps=steps,
        window_steps=window_steps,
    )
