"""Constants of the paper's experimental setup and reported reference values.

Everything the evaluation section states numerically is collected here so the
experiment modules and EXPERIMENTS.md compare against a single source.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PaperSetup", "PaperReference", "PAPER_SETUP", "PAPER_REFERENCE"]


@dataclass(frozen=True, slots=True)
class PaperSetup:
    """The experimental configuration of §4.1."""

    n_actions: int = 1_189
    n_levels: int = 7
    deadline_seconds: float = 30.0
    n_frames: int = 29
    macroblocks_per_frame: int = 396
    frame_width: int = 352
    frame_height: int = 288
    relaxation_steps: tuple[int, ...] = (1, 10, 20, 30, 40, 50)


@dataclass(frozen=True, slots=True)
class PaperReference:
    """The numbers the paper reports (used as expected shapes, not exact targets)."""

    #: stored integers of the quality-region tables (§4.1)
    region_integers: int = 8_323
    #: stored integers of the control-relaxation tables (§4.1)
    relaxation_integers: int = 99_876
    #: reported memory overhead on the iPod, in KB (includes runtime structures)
    region_memory_kb: int = 300
    relaxation_memory_kb: int = 800
    #: execution-time overhead of the three managers, in percent (§4.2)
    overhead_numeric_pct: float = 5.7
    overhead_region_pct: float = 1.9
    overhead_relaxation_pct: float = 1.1
    #: the action window shown in Figure 8
    fig8_first_action: int = 200
    fig8_last_action: int = 700
    #: relaxation step counts observed along Figure 8's window
    fig8_observed_steps: tuple[int, ...] = (40, 1, 10)
    #: approximate range of the average quality level in Figure 7
    fig7_quality_range: tuple[float, float] = (3.0, 4.5)


PAPER_SETUP = PaperSetup()
PAPER_REFERENCE = PaperReference()
