"""Reproduction of the paper's evaluation (Section 4).

One module per artefact:

* :mod:`repro.experiments.exp_memory` — E1, table sizes of §4.1;
* :mod:`repro.experiments.exp_overhead` — E2, overhead percentages of §4.2;
* :mod:`repro.experiments.exp_fig7` — E3, Figure 7;
* :mod:`repro.experiments.exp_fig8` — E4, Figure 8;
* :mod:`repro.experiments.exp_diagrams` — E5, the geometry of Figures 3–6;
* :mod:`repro.experiments.runner` — run everything and print paper-style reports.
"""

from .config import PAPER_REFERENCE, PAPER_SETUP, PaperReference, PaperSetup
from .exp_diagrams import DiagramExperimentResult, run_diagram_experiment
from .exp_fig7 import Fig7Result, run_fig7_experiment
from .exp_fig8 import Fig8Result, run_fig8_experiment
from .exp_memory import MemoryExperimentResult, run_memory_experiment
from .exp_overhead import OverheadExperimentResult, run_overhead_experiment
from .runner import ExperimentSuiteResult, run_all_experiments

__all__ = [
    "PaperSetup",
    "PaperReference",
    "PAPER_SETUP",
    "PAPER_REFERENCE",
    "MemoryExperimentResult",
    "run_memory_experiment",
    "OverheadExperimentResult",
    "run_overhead_experiment",
    "Fig7Result",
    "run_fig7_experiment",
    "Fig8Result",
    "run_fig8_experiment",
    "DiagramExperimentResult",
    "run_diagram_experiment",
    "ExperimentSuiteResult",
    "run_all_experiments",
]
