"""Experiment E5 — the conceptual figures 3–6: speed-diagram geometry.

Figures 3–6 of the paper are not measurements but geometric illustrations:
the speed diagram with its ideal/optimal speed vectors (Figure 3), a quality
region (Figure 4), the control-relaxation principle (Figure 5) and a control
relaxation region (Figure 6).  This experiment regenerates the underlying
data from a compiled encoder controller: a trajectory of one executed frame,
the region borders of every quality level, the relaxation-region bounds, and
a numerical verification of Proposition 1 (the geometric and constraint-based
characterisations agree) over a grid of sampled states.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.diagrams import render_speed_diagram
from repro.core.compiler import QualityManagerCompiler
from repro.core.controller import run_cycle
from repro.core.speed import SpeedDiagram
from repro.core.system import CycleOutcome
from repro.media.workload import EncoderWorkload, small_encoder

__all__ = ["DiagramExperimentResult", "run_diagram_experiment"]


@dataclass(frozen=True)
class DiagramExperimentResult:
    """Speed-diagram data series and the Proposition 1 verification outcome."""

    diagram: SpeedDiagram
    outcome: CycleOutcome
    trajectory: dict[str, np.ndarray]
    region_borders: dict[int, dict[str, np.ndarray]]
    proposition1_checked: int
    proposition1_agreements: int

    @property
    def proposition1_holds(self) -> bool:
        """True when the two characterisations agreed at every sampled state."""
        return self.proposition1_checked == self.proposition1_agreements

    def render(self) -> str:
        """ASCII speed diagram plus the verification summary."""
        picture = render_speed_diagram(
            self.diagram,
            self.outcome,
            qualities_to_show=sorted(self.region_borders)[:3],
        )
        summary = (
            f"Proposition 1 verified at {self.proposition1_agreements}/"
            f"{self.proposition1_checked} sampled (state, quality) pairs"
        )
        return picture + "\n" + summary


def run_diagram_experiment(
    workload: EncoderWorkload | None = None,
    *,
    seed: int = 0,
    samples_per_state: int = 3,
    state_stride: int | None = None,
) -> DiagramExperimentResult:
    """Build the speed diagram of an encoder cycle and verify Proposition 1.

    The verification samples actual times around each state's region
    boundaries (below, at, above) for every quality level and checks that the
    speed-based and constraint-based admissibility tests agree.
    """
    wl = workload if workload is not None else small_encoder(seed=seed)
    system = wl.build_system()
    deadlines = wl.deadlines()
    compiled = QualityManagerCompiler().compile(system, deadlines)
    diagram = SpeedDiagram(system, deadlines, td_table=compiled.td_table)

    rng = np.random.default_rng(seed)
    outcome = run_cycle(system, compiled.region, rng=rng)
    trajectory = diagram.trajectory(outcome)
    borders = {q: diagram.region_border(q) for q in system.qualities}

    stride = state_stride if state_stride is not None else max(1, system.n_actions // 40)
    checked = 0
    agreements = 0
    for state in range(0, system.n_actions, stride):
        for quality in system.qualities:
            boundary = compiled.td_table.td(state, quality)
            probes = np.linspace(boundary * 0.5, boundary * 1.5, samples_per_state)
            for probe in probes:
                if probe < 0:
                    continue
                assessment = diagram.assess(state, float(probe), quality)
                checked += 1
                if assessment.proposition1_agrees:
                    agreements += 1

    return DiagramExperimentResult(
        diagram=diagram,
        outcome=outcome,
        trajectory=trajectory,
        region_borders=borders,
        proposition1_checked=checked,
        proposition1_agreements=agreements,
    )
