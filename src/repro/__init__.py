"""repro — Speed diagrams and symbolic quality management.

A Python reproduction of *"Using Speed Diagrams for Symbolic Quality
Management"* (J. Combaz, J.-C. Fernandez, J. Sifakis, L. Strus — IPPS 2007).

The library provides:

* :mod:`repro.core` — the quality-management model: parameterized systems,
  quality-management policies, the numeric Quality Manager, speed diagrams,
  quality regions, control relaxation regions and the controller compiler.
* :mod:`repro.platform` — a virtual execution platform: virtual clock,
  overhead models for the different manager implementations, a profiler and
  an executor that charges management overhead.
* :mod:`repro.media` — a synthetic MPEG-like video encoder workload
  generator reproducing the shape of the paper's 1,189-action encoder.
* :mod:`repro.baselines` — quality/overload managers from related work used
  as comparison points.
* :mod:`repro.analysis` — metrics, speed-diagram rendering and report tables.
* :mod:`repro.experiments` — one module per table/figure of the paper.
* :mod:`repro.extensions` — the paper's future-work directions (power
  management, multi-task control, linear region approximation).

Quick start::

    from repro.core import (DeadlineFunction, QualityManagerCompiler,
                            ControlledSystem)
    from repro.media import build_encoder_system

    system = build_encoder_system(seed=0)
    deadlines = DeadlineFunction.single(system.n_actions, 30.0)
    controllers = QualityManagerCompiler().compile(system, deadlines)
    controlled = ControlledSystem(system, deadlines, controllers.relaxation)
    outcome = controlled.run_cycle()
"""

from . import core

__version__ = "1.0.0"

__all__ = ["core", "__version__"]
