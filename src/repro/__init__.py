"""repro — Speed diagrams and symbolic quality management.

A Python reproduction of *"Using Speed Diagrams for Symbolic Quality
Management"* (J. Combaz, J.-C. Fernandez, J. Sifakis, L. Strus — IPPS 2007).

The library provides:

* :mod:`repro.api` — the unified facade: the manager registry, the fluent
  :class:`~repro.api.Session` builder and the batched multi-cycle run layer.
  This is the canonical entry point.
* :mod:`repro.core` — the quality-management model: parameterized systems,
  quality-management policies, the numeric Quality Manager, speed diagrams,
  quality regions, control relaxation regions and the controller compiler.
* :mod:`repro.platform` — a virtual execution platform: virtual clock,
  overhead models for the different manager implementations, a profiler and
  an executor that charges management overhead.
* :mod:`repro.media` — a synthetic MPEG-like video encoder workload
  generator reproducing the shape of the paper's 1,189-action encoder.
* :mod:`repro.baselines` — quality/overload managers from related work used
  as comparison points.
* :mod:`repro.analysis` — metrics, speed-diagram rendering and report tables.
* :mod:`repro.experiments` — one module per table/figure of the paper.
* :mod:`repro.extensions` — the paper's future-work directions (power
  management, multi-task control, linear region approximation).
* :mod:`repro.runtime` — the scaling layer: a persistent compiled-controller
  artifact cache and a process-based parallel sweep engine.
* :mod:`repro.service` — the always-on sweep service: priority/tenant
  queues over the spool, resident warm workers and an asyncio fan-in
  client for hundreds of concurrent sweeps.
* :mod:`repro.obs` — unified telemetry: metrics registries, cross-process
  span tracing and JSONL export, off by default (``REPRO_OBS=1``).

Quick start::

    from repro.api import Session

    result = (
        Session()
        .system("small")            # the QCIF encoder workload
        .manager("relaxation")      # any key from available_managers()
        .machine("ipod")            # the paper's virtual platform
        .seed(0)
        .run(cycles=6)
    )
    print(result.metrics.as_row())
    print(result.quality_histogram)

Submodules are imported lazily: ``import repro`` is cheap, and e.g.
``repro.media`` is loaded on first attribute access.
"""

from importlib import import_module
from typing import Any

__version__ = "1.1.0"

_SUBMODULES = (
    "analysis",
    "api",
    "baselines",
    "cli",
    "core",
    "experiments",
    "extensions",
    "media",
    "obs",
    "platform",
    "runtime",
    "service",
)

__all__ = [*_SUBMODULES, "__version__"]


def __getattr__(name: str) -> Any:
    if name in _SUBMODULES:
        module = import_module(f".{name}", __name__)
        globals()[name] = module  # cache: next access skips __getattr__
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
