"""Command-line interface.

``python -m repro <command>`` exposes the main workflows without writing any
code; every command is driven through the :mod:`repro.api` facade:

* ``info`` — the paper's experimental setup and the reference numbers;
* ``managers`` — the registry table of available Quality Manager keys;
* ``run`` — run one manager (any registry spec) for N cycles and print its
  metrics;
* ``compare`` — run several managers on identical scenarios and print the
  overhead / quality tables;
* ``sweep`` — run a manager × seed scenario grid through the
  :mod:`repro.runtime` sweep engine (optionally across worker processes,
  with the persistent compiled-controller cache);
* ``experiments`` — run the full experiment suite (all tables and figures);
* ``diagram`` — print the speed diagram of one controlled cycle.
"""

from __future__ import annotations

import argparse
from typing import Sequence

__all__ = ["main", "build_parser"]

_DEFAULT_COMPARE = "numeric,region,relaxation"


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Speed diagrams and symbolic quality management (IPPS 2007 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("info", help="print the paper's setup and reference numbers")

    commands.add_parser("managers", help="list the registered Quality Manager keys")

    run = commands.add_parser("run", help="run one manager and print its metrics")
    run.add_argument(
        "--manager",
        default="relaxation",
        help="registry spec, e.g. 'relaxation' or 'constant:level=3' (see 'managers')",
    )
    run.add_argument("--cycles", type=int, default=6, help="number of cycles to run")
    run.add_argument("--seed", type=int, default=0, help="random seed")
    run.add_argument(
        "--small", action="store_true", help="use the QCIF workload instead of the paper's CIF"
    )

    compare = commands.add_parser(
        "compare", help="compare the numeric and symbolic managers on the encoder workload"
    )
    compare.add_argument("--frames", type=int, default=6, help="number of frames to encode")
    compare.add_argument("--seed", type=int, default=0, help="random seed")
    compare.add_argument(
        "--small", action="store_true", help="use the QCIF workload instead of the paper's CIF"
    )
    compare.add_argument(
        "--managers",
        default=_DEFAULT_COMPARE,
        help="comma-separated registry specs to compare (see 'managers')",
    )

    sweep = commands.add_parser(
        "sweep", help="run a manager x seed scenario grid (optionally in parallel)"
    )
    sweep.add_argument(
        "--managers",
        default="relaxation",
        help="comma-separated registry specs forming the manager axis",
    )
    sweep.add_argument(
        "--scenarios",
        type=int,
        default=8,
        help="scenarios per manager (seeds derived via SeedSequence.spawn)",
    )
    sweep.add_argument("--cycles", type=int, default=4, help="cycles per scenario")
    sweep.add_argument("--seed", type=int, default=0, help="base random seed")
    sweep.add_argument(
        "--small", action="store_true", help="use the QCIF workload instead of the paper's CIF"
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (0 = serial, the default; N >= 1 uses the sweep pool)",
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        help="compiled-artifact cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro/compiled)",
    )
    sweep.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent compiled-artifact cache",
    )
    sweep.add_argument(
        "--scenario-transport",
        choices=("value", "redraw"),
        default="redraw",
        help=(
            "how parallel sweep units obtain their scenarios: redraw (the "
            "default) ships no scenario data and each worker re-draws its "
            "slice of the stream; value pre-draws every unit's slice in the "
            "parent and ships the ScenarioBatch tensors — results are "
            "bit-identical either way"
        ),
    )

    experiments = commands.add_parser(
        "experiments", help="run the full experiment suite (every table and figure)"
    )
    experiments.add_argument("--fast", action="store_true", help="small workload, quick run")
    experiments.add_argument("--seed", type=int, default=0, help="random seed")
    experiments.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run the manager comparisons through the sweep pool with N workers",
    )
    experiments.add_argument(
        "--vectorize",
        choices=("auto", "always", "never"),
        default="auto",
        help="cycle engine: vectorised NumPy kernels (auto/always) or the scalar loop",
    )
    experiments.add_argument(
        "--scenario-transport",
        choices=("value", "redraw"),
        default="value",
        help="parallel compare scenario transport (only meaningful with --workers)",
    )

    diagram = commands.add_parser("diagram", help="print the speed diagram of one cycle")
    diagram.add_argument("--seed", type=int, default=0, help="random seed")
    return parser


def _run_info() -> int:
    from repro.analysis import format_table
    from repro.experiments import PAPER_REFERENCE, PAPER_SETUP

    setup_rows = [
        ("actions per cycle", PAPER_SETUP.n_actions),
        ("quality levels", PAPER_SETUP.n_levels),
        ("deadline per cycle", f"{PAPER_SETUP.deadline_seconds:.0f} s"),
        ("frames in the sequence", PAPER_SETUP.n_frames),
        ("macroblocks per frame", PAPER_SETUP.macroblocks_per_frame),
        ("relaxation step set ρ", list(PAPER_SETUP.relaxation_steps)),
    ]
    reference_rows = [
        ("quality-region integers", PAPER_REFERENCE.region_integers),
        ("relaxation integers", PAPER_REFERENCE.relaxation_integers),
        ("overhead, numeric", f"{PAPER_REFERENCE.overhead_numeric_pct} %"),
        ("overhead, regions", f"{PAPER_REFERENCE.overhead_region_pct} %"),
        ("overhead, relaxation", f"< {PAPER_REFERENCE.overhead_relaxation_pct} %"),
    ]
    print(format_table(["parameter", "value"], setup_rows, title="Paper setup (§4.1)"))
    print()
    print(format_table(["quantity", "paper"], reference_rows, title="Paper-reported results (§4.2)"))
    return 0


def _run_managers() -> int:
    from repro.analysis import format_table
    from repro.api import registry_table

    rows = registry_table()
    print(
        format_table(
            ["key", "parameters", "description"],
            rows,
            title="Registered Quality Managers (repro.api)",
        )
    )
    print("\nusage: python -m repro run --manager <key>[:param=value,...]")
    return 0


def _session(seed: int, small: bool, n_frames: int):
    from repro.api import Session
    from repro.media import paper_encoder, small_encoder

    # the QCIF workload generates exactly the requested frame sequence; the
    # paper workload is always the full 29-frame CIF sequence (of which the
    # first n_frames cycles are run), matching the pre-facade CLI
    workload = (
        small_encoder(seed=seed, n_frames=n_frames) if small else paper_encoder(seed=seed)
    )
    return Session().system(workload).machine("ipod").seed(seed)


def _run_run(manager: str, cycles: int, seed: int, small: bool) -> int:
    from repro.analysis import sparkline

    try:
        session = _session(seed, small, cycles).manager(manager)
        result = session.run(cycles=cycles)
    except ValueError as error:  # RegistryError/SessionError/bad manager params
        print(f"error: {error}")
        return 2
    print(result.render())
    series = result.mean_quality_per_cycle
    print("\naverage quality per cycle:")
    print(f"  {result.manager_name:11s} {sparkline(series, width=40)}  mean {series.mean():.2f}")
    print("\nquality histogram (level: actions):")
    for level, count in sorted(result.quality_histogram.items()):
        print(f"  {level}: {count}")
    return 0


def _run_compare(frames: int, seed: int, small: bool, managers: str = _DEFAULT_COMPARE) -> int:
    from repro.analysis import memory_report, metrics_report, sparkline

    specs = [spec.strip() for spec in managers.split(",") if spec.strip()]
    try:
        session = _session(seed, small, frames)
        print(memory_report(session.compile().report))
        print()
        batch = session.compare(*specs, cycles=frames, seed=seed)
    except ValueError as error:  # RegistryError/SessionError/bad manager params
        print(f"error: {error}")
        return 2
    print(metrics_report(batch.metrics))
    print("\naverage quality per frame:")
    for name, run in batch.runs.items():
        series = run.mean_quality_per_cycle
        print(f"  {name:11s} {sparkline(series, width=40)}  mean {series.mean():.2f}")
    return 0


def _run_sweep(
    managers: str,
    scenarios: int,
    cycles: int,
    seed: int,
    small: bool,
    workers: int,
    cache_dir: str | None,
    no_cache: bool,
    scenario_transport: str = "value",
) -> int:
    import time

    from repro.analysis import format_table, grid_specs, run_session_sweep, sweep_table
    from repro.runtime.plan import spawn_seeds

    if scenarios < 1:
        print("error: --scenarios must be >= 1")
        return 2
    specs = [spec.strip() for spec in managers.split(",") if spec.strip()]
    try:
        session = _session(seed, small, cycles)
        # an explicit opt-out also keeps the *pool* from using its default
        # cache location — workers then compile locally
        session.artifacts(False if no_cache else (cache_dir if cache_dir is not None else True))
        if workers >= 1:
            session.parallel(workers, scenario_transport=scenario_transport)
        grid = grid_specs(
            managers=specs, seeds=spawn_seeds(seed, scenarios), cycles=cycles
        )
        start = time.perf_counter()
        points = run_session_sweep(
            session,
            grid,
            parallel=workers >= 1,
            workers=workers if workers >= 1 else None,
        )
        elapsed = time.perf_counter() - start
    except (ValueError, RuntimeError) as error:  # registry/session/sweep errors
        print(f"error: {error}")
        return 2
    headers, rows = sweep_table(points)
    mode = f"{workers} worker(s)" if workers >= 1 else "serial"
    print(
        format_table(
            headers,
            rows,
            title=f"Sweep: {len(grid)} scenarios x {cycles} cycles ({mode})",
        )
    )
    print(f"\ncompleted in {elapsed:.2f} s ({mode})")
    if session.artifact_cache is not None:
        cache = session.artifact_cache
        print(
            f"artifact cache: {cache.directory} "
            f"({len(cache)} artifact(s), session hits={cache.hits}, misses={cache.misses})"
        )
    return 0


def _run_experiments(
    fast: bool,
    seed: int,
    workers: int | None = None,
    vectorize: str = "auto",
    scenario_transport: str = "value",
) -> int:
    from repro.experiments import run_all_experiments

    try:
        result = run_all_experiments(
            fast=fast,
            seed=seed,
            workers=workers,
            vectorize=vectorize,
            scenario_transport=scenario_transport,
        )
    except (ValueError, RuntimeError) as error:  # bad --workers / sweep failures
        print(f"error: {error}")
        return 2
    print(result.render())
    return 0


def _run_diagram(seed: int) -> int:
    from repro.analysis import render_speed_diagram
    from repro.api import Session
    from repro.core import SpeedDiagram

    session = Session().system("small").seed(seed).manager("relaxation")
    controllers = session.compile()
    diagram = SpeedDiagram(
        session.resolved_system(), session.resolved_deadlines(), td_table=controllers.td_table
    )
    outcome = next(session.stream(1))
    print(render_speed_diagram(diagram, outcome, qualities_to_show=[0, 3, 6]))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    arguments = build_parser().parse_args(argv)
    if arguments.command == "info":
        return _run_info()
    if arguments.command == "managers":
        return _run_managers()
    if arguments.command == "run":
        return _run_run(arguments.manager, arguments.cycles, arguments.seed, arguments.small)
    if arguments.command == "compare":
        return _run_compare(arguments.frames, arguments.seed, arguments.small, arguments.managers)
    if arguments.command == "sweep":
        return _run_sweep(
            arguments.managers,
            arguments.scenarios,
            arguments.cycles,
            arguments.seed,
            arguments.small,
            arguments.workers,
            arguments.cache_dir,
            arguments.no_cache,
            arguments.scenario_transport,
        )
    if arguments.command == "experiments":
        return _run_experiments(
            arguments.fast,
            arguments.seed,
            arguments.workers,
            arguments.vectorize,
            arguments.scenario_transport,
        )
    if arguments.command == "diagram":
        return _run_diagram(arguments.seed)
    raise AssertionError(f"unhandled command {arguments.command!r}")  # pragma: no cover
