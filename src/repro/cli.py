"""Command-line interface.

``python -m repro <command>`` exposes the main workflows without writing any
code:

* ``info`` — the paper's experimental setup and the reference numbers;
* ``compare`` — compile the three Quality Managers for an encoder workload,
  run them on identical scenarios and print the overhead / quality tables;
* ``experiments`` — run the full experiment suite (all tables and figures);
* ``diagram`` — print the speed diagram of one controlled cycle.
"""

from __future__ import annotations

import argparse
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Speed diagrams and symbolic quality management (IPPS 2007 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("info", help="print the paper's setup and reference numbers")

    compare = commands.add_parser(
        "compare", help="compare the numeric and symbolic managers on the encoder workload"
    )
    compare.add_argument("--frames", type=int, default=6, help="number of frames to encode")
    compare.add_argument("--seed", type=int, default=0, help="random seed")
    compare.add_argument(
        "--small", action="store_true", help="use the QCIF workload instead of the paper's CIF"
    )

    experiments = commands.add_parser(
        "experiments", help="run the full experiment suite (every table and figure)"
    )
    experiments.add_argument("--fast", action="store_true", help="small workload, quick run")
    experiments.add_argument("--seed", type=int, default=0, help="random seed")

    diagram = commands.add_parser("diagram", help="print the speed diagram of one cycle")
    diagram.add_argument("--seed", type=int, default=0, help="random seed")
    return parser


def _run_info() -> int:
    from repro.analysis import format_table
    from repro.experiments import PAPER_REFERENCE, PAPER_SETUP

    setup_rows = [
        ("actions per cycle", PAPER_SETUP.n_actions),
        ("quality levels", PAPER_SETUP.n_levels),
        ("deadline per cycle", f"{PAPER_SETUP.deadline_seconds:.0f} s"),
        ("frames in the sequence", PAPER_SETUP.n_frames),
        ("macroblocks per frame", PAPER_SETUP.macroblocks_per_frame),
        ("relaxation step set ρ", list(PAPER_SETUP.relaxation_steps)),
    ]
    reference_rows = [
        ("quality-region integers", PAPER_REFERENCE.region_integers),
        ("relaxation integers", PAPER_REFERENCE.relaxation_integers),
        ("overhead, numeric", f"{PAPER_REFERENCE.overhead_numeric_pct} %"),
        ("overhead, regions", f"{PAPER_REFERENCE.overhead_region_pct} %"),
        ("overhead, relaxation", f"< {PAPER_REFERENCE.overhead_relaxation_pct} %"),
    ]
    print(format_table(["parameter", "value"], setup_rows, title="Paper setup (§4.1)"))
    print()
    print(format_table(["quantity", "paper"], reference_rows, title="Paper-reported results (§4.2)"))
    return 0


def _run_compare(frames: int, seed: int, small: bool) -> int:
    from repro.analysis import compute_metrics, memory_report, metrics_report, sparkline
    from repro.core import QualityManagerCompiler
    from repro.media import paper_encoder, small_encoder
    from repro.platform import PlatformExecutor, ipod_video

    workload = small_encoder(seed=seed, n_frames=frames) if small else paper_encoder(seed=seed)
    system = workload.build_system()
    deadlines = workload.deadlines()
    controllers = QualityManagerCompiler().compile(system, deadlines)
    print(memory_report(controllers.report))
    print()
    executor = PlatformExecutor(ipod_video())
    results = executor.compare(system, deadlines, controllers.managers(), n_cycles=frames, seed=seed)
    metrics = {
        name: compute_metrics(result.outcomes, deadlines) for name, result in results.items()
    }
    print(metrics_report(metrics))
    print("\naverage quality per frame:")
    for name, result in results.items():
        series = result.mean_quality_per_cycle
        print(f"  {name:11s} {sparkline(series, width=40)}  mean {series.mean():.2f}")
    return 0


def _run_experiments(fast: bool, seed: int) -> int:
    from repro.experiments import run_all_experiments

    print(run_all_experiments(fast=fast, seed=seed).render())
    return 0


def _run_diagram(seed: int) -> int:
    from repro.analysis import render_speed_diagram
    from repro.core import QualityManagerCompiler, SpeedDiagram, run_cycle
    from repro.media import small_encoder

    import numpy as np

    workload = small_encoder(seed=seed)
    system = workload.build_system()
    deadlines = workload.deadlines()
    controllers = QualityManagerCompiler().compile(system, deadlines)
    diagram = SpeedDiagram(system, deadlines, td_table=controllers.td_table)
    outcome = run_cycle(system, controllers.relaxation, rng=np.random.default_rng(seed))
    print(render_speed_diagram(diagram, outcome, qualities_to_show=[0, 3, 6]))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    arguments = build_parser().parse_args(argv)
    if arguments.command == "info":
        return _run_info()
    if arguments.command == "compare":
        return _run_compare(arguments.frames, arguments.seed, arguments.small)
    if arguments.command == "experiments":
        return _run_experiments(arguments.fast, arguments.seed)
    if arguments.command == "diagram":
        return _run_diagram(arguments.seed)
    raise AssertionError(f"unhandled command {arguments.command!r}")  # pragma: no cover
