"""Command-line interface.

``python -m repro <command>`` exposes the main workflows without writing any
code; every command is driven through the :mod:`repro.api` facade:

* ``info`` — the paper's experimental setup and the reference numbers;
* ``managers`` — the registry table of available Quality Manager keys;
* ``run`` — run one manager (any registry spec) for N cycles and print its
  metrics;
* ``compare`` — run several managers on identical scenarios and print the
  overhead / quality tables;
* ``sweep`` — run a manager × seed scenario grid through the
  :mod:`repro.runtime` sweep engine (optionally across worker processes,
  with the persistent compiled-controller cache, or over a shared spool
  directory with ``--spool``);
* ``worker`` — attach this machine to a shared sweep spool and execute
  distributed work units (see ``docs/distributed-sweeps.md``); ``--resident``
  keeps hydrated runtimes warm across plans (see ``docs/service.md``);
* ``service`` — run or inspect the always-on sweep service on a spool:
  ``start`` (resident workers + queue dispatcher), ``status``, ``drain``;
* ``experiments`` — run the full experiment suite (all tables and figures);
* ``diagram`` — print the speed diagram of one controlled cycle;
* ``obs`` — render the telemetry a ``REPRO_OBS=1`` run exported (merged
  metrics plus trace trees; see ``docs/observability.md``).

The top-level ``--log-level`` flag (or the ``REPRO_LOG`` environment
variable) sets the ``repro`` logging level for the process and every
worker it spawns.  Every subcommand's ``--help`` epilog states its
defaults explicitly.
"""

from __future__ import annotations

import argparse
from typing import Sequence

__all__ = ["main", "build_parser"]

_DEFAULT_COMPARE = "numeric,region,relaxation"


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed separately for testing)."""
    from repro.obs.logconfig import LEVELS

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Speed diagrams and symbolic quality management (IPPS 2007 reproduction)",
    )
    parser.add_argument(
        "--log-level",
        choices=LEVELS,
        default=None,
        help=(
            "logging level for the 'repro' loggers, inherited by spawned "
            "workers (default: $REPRO_LOG, else warning)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "info",
        help="print the paper's setup and reference numbers",
        epilog="No options (and so no defaults); prints the §4.1 setup and §4.2 reference tables.",
    )

    commands.add_parser(
        "managers",
        help="list the registered Quality Manager keys",
        epilog=(
            "No options (and so no defaults); prints the live registry table, "
            "including which managers lower to vectorised kernels on the "
            "active compute backend ($REPRO_BACKEND, else numpy)."
        ),
    )

    run = commands.add_parser(
        "run",
        help="run one manager and print its metrics",
        epilog=(
            "Defaults: --manager relaxation, --cycles 6, --seed 0, the paper's "
            "CIF workload (use --small for QCIF) on the 'ipod' virtual machine, "
            "the default kernel backend ($REPRO_BACKEND, else numpy), and "
            "--chunk-size $REPRO_CHUNK, else off (materialised execution; a "
            "chunk size streams the run in constant memory and prints "
            "summary metrics only)."
        ),
    )
    run.add_argument(
        "--manager",
        default="relaxation",
        help="registry spec, e.g. 'relaxation' or 'constant:level=3' (see 'managers')",
    )
    run.add_argument("--cycles", type=int, default=6, help="number of cycles to run")
    run.add_argument("--seed", type=int, default=0, help="random seed")
    run.add_argument(
        "--small", action="store_true", help="use the QCIF workload instead of the paper's CIF"
    )
    run.add_argument(
        "--backend",
        default=None,
        help="kernel compute backend, e.g. numpy or numba (default: $REPRO_BACKEND, else numpy)",
    )
    run.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help=(
            "stream the run in chunks of N cycles (constant memory, summary "
            "metrics only; default: $REPRO_CHUNK, else materialised)"
        ),
    )

    compare = commands.add_parser(
        "compare",
        help="compare the numeric and symbolic managers on the encoder workload",
        epilog=(
            f"Defaults: --managers {_DEFAULT_COMPARE}, --frames 6, --seed 0, the "
            "paper's CIF workload (use --small for QCIF) on the 'ipod' virtual "
            "machine, the default kernel backend ($REPRO_BACKEND, else "
            "numpy), and --chunk-size $REPRO_CHUNK, else off (materialised); "
            "every manager sees identical scenarios."
        ),
    )
    compare.add_argument("--frames", type=int, default=6, help="number of frames to encode")
    compare.add_argument("--seed", type=int, default=0, help="random seed")
    compare.add_argument(
        "--small", action="store_true", help="use the QCIF workload instead of the paper's CIF"
    )
    compare.add_argument(
        "--managers",
        default=_DEFAULT_COMPARE,
        help="comma-separated registry specs to compare (see 'managers')",
    )
    compare.add_argument(
        "--backend",
        default=None,
        help="kernel compute backend, e.g. numpy or numba (default: $REPRO_BACKEND, else numpy)",
    )
    compare.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help=(
            "stream every manager's run in chunks of N cycles (summary "
            "metrics only; default: $REPRO_CHUNK, else materialised)"
        ),
    )

    fleet = commands.add_parser(
        "fleet",
        help="advance many sessions as one vectorised fleet and print per-session metrics",
        epilog=(
            "Defaults: --sessions 16, --managers relaxation,numeric,skip,constant "
            "(cycled across the fleet), --cycles 6, --seed 0 (one spawned child "
            "seed per session), the paper's CIF workload (use --small for QCIF) "
            "on the 'ipod' virtual machine, the default kernel backend "
            "($REPRO_BACKEND, else numpy), and --chunk-size unset (the fleet "
            "default lane width per chunk); results are bit-identical to "
            "running every session alone."
        ),
    )
    fleet.add_argument(
        "--sessions", type=int, default=16, help="number of sessions in the fleet"
    )
    fleet.add_argument(
        "--managers",
        default="relaxation,numeric,skip,constant",
        help="comma-separated registry specs cycled across the fleet (see 'managers')",
    )
    fleet.add_argument("--cycles", type=int, default=6, help="cycles per session")
    fleet.add_argument(
        "--seed", type=int, default=0, help="base seed (spawns one child seed per session)"
    )
    fleet.add_argument(
        "--small", action="store_true", help="use the QCIF workload instead of the paper's CIF"
    )
    fleet.add_argument(
        "--backend",
        default=None,
        help="kernel compute backend, e.g. numpy or numba (default: $REPRO_BACKEND, else numpy)",
    )
    fleet.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="lanes per session per chunk (default: the fleet engine's default width)",
    )

    sweep = commands.add_parser(
        "sweep",
        help="run a manager x seed scenario grid (optionally in parallel)",
        epilog=(
            "Defaults: --managers relaxation, --scenarios 8, --cycles 4, --seed 0, "
            "serial execution (--workers 0), the persistent artifact cache at "
            "$REPRO_CACHE_DIR else ~/.cache/repro/compiled, and the re-draw "
            "scenario transport.  --spool fans the grid out over a shared spool "
            "directory instead of the in-process pool (--workers then spawns that "
            "many local spool workers; 0 waits for external 'repro worker' "
            "processes).  --chunk-size defaults to $REPRO_CHUNK, else off "
            "(materialised).  Results are bit-identical to serial either way."
        ),
    )
    sweep.add_argument(
        "--managers",
        default="relaxation",
        help="comma-separated registry specs forming the manager axis",
    )
    sweep.add_argument(
        "--scenarios",
        type=int,
        default=8,
        help="scenarios per manager (seeds derived via SeedSequence.spawn)",
    )
    sweep.add_argument("--cycles", type=int, default=4, help="cycles per scenario")
    sweep.add_argument("--seed", type=int, default=0, help="base random seed")
    sweep.add_argument(
        "--small", action="store_true", help="use the QCIF workload instead of the paper's CIF"
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (0 = serial, the default; N >= 1 uses the sweep pool)",
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        help="compiled-artifact cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro/compiled)",
    )
    sweep.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent compiled-artifact cache",
    )
    sweep.add_argument(
        "--scenario-transport",
        choices=("value", "redraw"),
        default="redraw",
        help=(
            "how parallel sweep units obtain their scenarios: redraw (the "
            "default) ships no scenario data and each worker re-draws its "
            "slice of the stream; value pre-draws every unit's slice in the "
            "parent and ships the ScenarioBatch tensors — results are "
            "bit-identical either way"
        ),
    )
    sweep.add_argument(
        "--spool",
        default=None,
        help=(
            "shared spool directory: fan the grid out to 'repro worker' "
            "processes (any host) instead of the in-process pool; --workers "
            "spawns local spool workers (default: none, wait for external)"
        ),
    )
    sweep.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        help="spool lease expiry in seconds before a unit is requeued (default: 30)",
    )
    sweep.add_argument(
        "--timeout",
        type=float,
        default=None,
        help=(
            "overall wall-clock bound in seconds for a --spool run "
            "(default: wait forever; set it when no workers may be attached)"
        ),
    )
    sweep.add_argument(
        "--backend",
        default=None,
        help="kernel compute backend, e.g. numpy or numba (default: $REPRO_BACKEND, else numpy)",
    )
    sweep.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help=(
            "stream every grid cell in chunks of N cycles — workers fold "
            "accumulators and ship summaries back (default: $REPRO_CHUNK, "
            "else materialised)"
        ),
    )

    worker = commands.add_parser(
        "worker",
        help="execute distributed sweep units from a shared spool directory",
        epilog=(
            "Defaults: --cache-dir $REPRO_CACHE_DIR else ~/.cache/repro/compiled "
            "(the worker's local artifact cache; missing artifacts sync from "
            "spool/artifacts), --poll 0.2s, --heartbeat 2.0s, --worker-id "
            "<hostname>-<pid>, and no --max-idle/--max-units limit (run until "
            "killed).  Start any number of workers on any host that sees the "
            "spool; claims are atomic renames, so two workers never hold the "
            "same unit at once (a unit re-runs only after its lease expires, "
            "and re-runs produce identical results). "
            "See docs/distributed-sweeps.md for the operational runbook."
        ),
    )
    worker.add_argument("--spool", required=True, help="the shared spool directory")
    worker.add_argument(
        "--cache-dir",
        default=None,
        help="local compiled-artifact cache (default: $REPRO_CACHE_DIR or ~/.cache/repro/compiled)",
    )
    worker.add_argument(
        "--poll", type=float, default=0.2, help="pending-scan interval in seconds (default: 0.2)"
    )
    worker.add_argument(
        "--heartbeat",
        type=float,
        default=2.0,
        help="lease heartbeat interval in seconds while executing (default: 2.0)",
    )
    worker.add_argument(
        "--max-idle",
        type=float,
        default=None,
        help="exit after this many idle seconds (default: run until killed)",
    )
    worker.add_argument(
        "--max-units",
        type=int,
        default=None,
        help="exit after executing this many units (default: unlimited)",
    )
    worker.add_argument(
        "--worker-id", default=None, help="lease owner tag (default: <hostname>-<pid>)"
    )
    worker.add_argument(
        "--quiet", action="store_true", help="suppress per-unit progress lines"
    )
    worker.add_argument(
        "--resident",
        action="store_true",
        help=(
            "stay warm across plans: cache hydrated runtimes by payload "
            "content hash (see docs/service.md)"
        ),
    )
    worker.add_argument(
        "--max-resident",
        type=int,
        default=8,
        help="distinct payload configurations a --resident worker keeps warm (default: 8)",
    )

    service = commands.add_parser(
        "service",
        help="run or inspect the always-on sweep service on a spool",
        epilog=(
            "Defaults shared by the subcommands: --queue-quota unlimited, "
            "--poll 0.2s; see each subcommand's --help and docs/service.md."
        ),
    )
    service_commands = service.add_subparsers(dest="service_command", required=True)

    service_start = service_commands.add_parser(
        "start",
        help="run the service loop: resident workers + queue dispatcher",
        epilog=(
            "Defaults: --workers 2 resident worker subprocesses, --max-resident 8 "
            "warm payload configurations per worker, --queue-quota unlimited "
            "per-tenant in-flight units, --poll 0.2s, --heartbeat 2.0s, "
            "--cache-dir $REPRO_CACHE_DIR else ~/.cache/repro/compiled, and no "
            "--max-runtime bound (run until SIGTERM; the shutdown drains "
            "gracefully — workers finish or release their current claim)."
        ),
    )
    service_start.add_argument("--spool", required=True, help="the shared spool directory")
    service_start.add_argument(
        "--workers", type=int, default=2, help="resident worker subprocesses (default: 2)"
    )
    service_start.add_argument(
        "--max-resident",
        type=int,
        default=8,
        help="warm payload configurations per worker (default: 8)",
    )
    service_start.add_argument(
        "--queue-quota",
        type=int,
        default=None,
        help="per-tenant in-flight unit bound for every queue (default: unlimited)",
    )
    service_start.add_argument(
        "--poll", type=float, default=0.2, help="pump/scan interval in seconds (default: 0.2)"
    )
    service_start.add_argument(
        "--heartbeat",
        type=float,
        default=2.0,
        help="worker lease heartbeat in seconds (default: 2.0)",
    )
    service_start.add_argument(
        "--cache-dir",
        default=None,
        help="workers' local artifact cache (default: $REPRO_CACHE_DIR or ~/.cache/repro/compiled)",
    )
    service_start.add_argument(
        "--max-runtime",
        type=float,
        default=None,
        help="stop after this many seconds (default: run until SIGTERM)",
    )

    service_status = service_commands.add_parser(
        "status",
        help="print queue depths, in-flight counts and resident workers",
        epilog=(
            "Defaults: --metrics off; workers whose heartbeat is older than "
            "the default 30s lease timeout are reported stale rather than "
            "alive, and long-dead presence files are aged out.  Nothing is "
            "dispatched."
        ),
    )
    service_status.add_argument("--spool", required=True, help="the shared spool directory")
    service_status.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "include per-tenant queue wait ages and each resident worker's "
            "published counters (warm hits, hydrations, executed units)"
        ),
    )

    service_drain = service_commands.add_parser(
        "drain",
        help="pump until the queues, pending and claimed sets are empty",
        epilog=(
            "Defaults: --timeout none (wait forever — workers must be attached), "
            "--queue-quota unlimited, --poll 0.2s.  Exits 0 when drained, 1 on "
            "timeout."
        ),
    )
    service_drain.add_argument("--spool", required=True, help="the shared spool directory")
    service_drain.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="give up after this many seconds (default: wait forever)",
    )
    service_drain.add_argument(
        "--queue-quota",
        type=int,
        default=None,
        help="per-tenant in-flight unit bound while draining (default: unlimited)",
    )
    service_drain.add_argument(
        "--poll", type=float, default=0.2, help="pump interval in seconds (default: 0.2)"
    )

    experiments = commands.add_parser(
        "experiments",
        help="run the full experiment suite (every table and figure)",
        epilog=(
            "Defaults: the paper-scale CIF workload (use --fast for QCIF), "
            "--seed 0, serial comparisons (--workers routes E2/E3 through the "
            "sweep pool), --vectorize auto, the scenario transport of the "
            "chosen mode (value on the pool, redraw on a spool), no spool "
            "(--spool fans comparisons out over a shared spool; --workers "
            "then spawns local spool workers), and --chunk-size $REPRO_CHUNK, "
            "else off (materialised; a chunk size streams the metric-only "
            "experiments in constant memory).  Artefacts are bit-identical "
            "across all execution modes."
        ),
    )
    experiments.add_argument("--fast", action="store_true", help="small workload, quick run")
    experiments.add_argument("--seed", type=int, default=0, help="random seed")
    experiments.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run the manager comparisons through the sweep pool with N workers",
    )
    experiments.add_argument(
        "--vectorize",
        choices=("auto", "always", "never"),
        default="auto",
        help="cycle engine: vectorised NumPy kernels (auto/always) or the scalar loop",
    )
    experiments.add_argument(
        "--backend",
        default=None,
        help="kernel compute backend, e.g. numpy or numba (default: $REPRO_BACKEND, else numpy)",
    )
    experiments.add_argument(
        "--scenario-transport",
        choices=("value", "redraw"),
        default=None,
        help=(
            "parallel compare scenario transport (default: value on the "
            "process pool, redraw on a spool; only meaningful with "
            "--workers/--spool)"
        ),
    )
    experiments.add_argument(
        "--spool",
        default=None,
        help=(
            "shared spool directory: run the manager comparisons through "
            "'repro worker' processes instead of the in-process pool"
        ),
    )
    experiments.add_argument(
        "--timeout",
        type=float,
        default=None,
        help=(
            "overall wall-clock bound in seconds for a --spool run "
            "(default: wait forever; set it when no workers may be attached)"
        ),
    )
    experiments.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help=(
            "stream the metric-only experiments in chunks of N cycles "
            "(default: $REPRO_CHUNK, else materialised; the Figure 7 series "
            "always materialises its per-cycle traces)"
        ),
    )

    diagram = commands.add_parser(
        "diagram",
        help="print the speed diagram of one cycle",
        epilog="Defaults: --seed 0 on the QCIF workload with the relaxation manager.",
    )
    diagram.add_argument("--seed", type=int, default=0, help="random seed")

    obs = commands.add_parser(
        "obs",
        help="inspect telemetry exported by REPRO_OBS=1 runs",
        epilog=(
            "Defaults shared by the subcommands: none — telemetry is read "
            "from the directory argument; see docs/observability.md."
        ),
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_commands.add_parser(
        "report",
        help="merge a telemetry directory and print metrics + trace trees",
        epilog=(
            "Defaults: the human-readable renderer (--json emits the merged "
            "report as one JSON document instead).  Reads every *.jsonl file "
            "in DIR, keeps each process's latest cumulative metrics snapshot, "
            "and assembles the span records into per-trace trees."
        ),
    )
    obs_report.add_argument("dir", help="telemetry directory (the run's REPRO_OBS_DIR)")
    obs_report.add_argument(
        "--json", action="store_true", help="emit the merged report as JSON"
    )
    return parser


def _run_info() -> int:
    from repro.analysis import format_table
    from repro.experiments import PAPER_REFERENCE, PAPER_SETUP

    setup_rows = [
        ("actions per cycle", PAPER_SETUP.n_actions),
        ("quality levels", PAPER_SETUP.n_levels),
        ("deadline per cycle", f"{PAPER_SETUP.deadline_seconds:.0f} s"),
        ("frames in the sequence", PAPER_SETUP.n_frames),
        ("macroblocks per frame", PAPER_SETUP.macroblocks_per_frame),
        ("relaxation step set ρ", list(PAPER_SETUP.relaxation_steps)),
    ]
    reference_rows = [
        ("quality-region integers", PAPER_REFERENCE.region_integers),
        ("relaxation integers", PAPER_REFERENCE.relaxation_integers),
        ("overhead, numeric", f"{PAPER_REFERENCE.overhead_numeric_pct} %"),
        ("overhead, regions", f"{PAPER_REFERENCE.overhead_region_pct} %"),
        ("overhead, relaxation", f"< {PAPER_REFERENCE.overhead_relaxation_pct} %"),
    ]
    print(format_table(["parameter", "value"], setup_rows, title="Paper setup (§4.1)"))
    print()
    print(format_table(["quantity", "paper"], reference_rows, title="Paper-reported results (§4.2)"))
    return 0


def _kernel_lowering() -> tuple[str, dict[str, str]]:
    """Probe every registry key's kernel lowering on a tiny workload.

    Returns the active backend name and a ``key -> primitive op`` map for
    the keys whose managers lower to a kernel spec (the rest run through
    the scalar loop).
    """
    from repro.api import available_managers, build_manager
    from repro.api.registry import BuildContext
    from repro.core.backend import get_backend
    from repro.media import small_encoder

    backend = get_backend()
    workload = small_encoder(seed=0, n_frames=1)
    context = BuildContext.create(workload.build_system(), workload.deadlines())
    ops: dict[str, str] = {}
    for key in available_managers():
        spec = build_manager(key, context).lower()
        if spec is not None:
            ops[key] = spec.op
    return backend.name, ops


def _run_managers() -> int:
    from repro.analysis import format_table
    from repro.api import registry_table

    backend_name, ops = _kernel_lowering()
    rows = [
        (key, params, "yes (" + ops[key] + ")" if key in ops else "no", description)
        for key, params, description in registry_table()
    ]
    print(
        format_table(
            ["key", "parameters", "vectorized", "description"],
            rows,
            title=f"Registered Quality Managers (repro.api, backend: {backend_name})",
        )
    )
    print("\nusage: python -m repro run --manager <key>[:param=value,...]")
    return 0


def _session(seed: int, small: bool, n_frames: int):
    from repro.api import Session
    from repro.media import paper_encoder, small_encoder

    # the QCIF workload generates exactly the requested frame sequence; the
    # paper workload is always the full 29-frame CIF sequence (of which the
    # first n_frames cycles are run), matching the pre-facade CLI
    workload = (
        small_encoder(seed=seed, n_frames=n_frames) if small else paper_encoder(seed=seed)
    )
    return Session().system(workload).machine("ipod").seed(seed)


def _run_run(
    manager: str,
    cycles: int,
    seed: int,
    small: bool,
    backend: str | None = None,
    chunk_size: int | None = None,
) -> int:
    from repro.analysis import sparkline

    try:
        session = _session(seed, small, cycles).manager(manager)
        if backend is not None:
            session.backend(backend)
        if chunk_size is not None:
            session.chunk_size(chunk_size)
        result = session.run(cycles=cycles)
    except ValueError as error:  # RegistryError/SessionError/bad manager params
        print(f"error: {error}")
        return 2
    print(result.render())
    if result.is_summary:
        print("\nstreamed run (summary only): no per-cycle series retained")
    else:
        series = result.mean_quality_per_cycle
        print("\naverage quality per cycle:")
        print(
            f"  {result.manager_name:11s} {sparkline(series, width=40)}  mean {series.mean():.2f}"
        )
    print("\nquality histogram (level: actions):")
    for level, count in sorted(result.quality_histogram.items()):
        print(f"  {level}: {count}")
    return 0


def _run_compare(
    frames: int,
    seed: int,
    small: bool,
    managers: str = _DEFAULT_COMPARE,
    backend: str | None = None,
    chunk_size: int | None = None,
) -> int:
    from repro.analysis import memory_report, metrics_report, sparkline

    specs = [spec.strip() for spec in managers.split(",") if spec.strip()]
    try:
        session = _session(seed, small, frames)
        if backend is not None:
            session.backend(backend)
        if chunk_size is not None:
            session.chunk_size(chunk_size)
        print(memory_report(session.compile().report))
        print()
        batch = session.compare(*specs, cycles=frames, seed=seed)
    except ValueError as error:  # RegistryError/SessionError/bad manager params
        print(f"error: {error}")
        return 2
    print(metrics_report(batch.metrics))
    if any(run.is_summary for run in batch.runs.values()):
        print("\nstreamed comparison (summary only): no per-frame series retained")
        return 0
    print("\naverage quality per frame:")
    for name, run in batch.runs.items():
        series = run.mean_quality_per_cycle
        print(f"  {name:11s} {sparkline(series, width=40)}  mean {series.mean():.2f}")
    return 0


def _run_fleet(
    sessions: int,
    managers: str,
    cycles: int,
    seed: int,
    small: bool,
    backend: str | None = None,
    chunk_size: int | None = None,
) -> int:
    import time

    from repro.analysis import metrics_report
    from repro.api import Session

    specs = [spec.strip() for spec in managers.split(",") if spec.strip()]
    if sessions < 1:
        print("error: --sessions must be >= 1")
        return 2
    if not specs:
        print("error: --managers must name at least one registry spec")
        return 2
    try:
        base = _session(seed, small, cycles)
        if backend is not None:
            base.backend(backend)
        members = []
        for index in range(sessions):
            spec = specs[index % len(specs)]
            label = f"s{index:03d}-{spec.split(':', 1)[0]}"
            members.append((label, base.clone().manager(spec)))
        start = time.perf_counter()
        batch = Session.fleet(members, cycles=cycles, seed=seed, chunk_size=chunk_size)
        elapsed = time.perf_counter() - start
    except ValueError as error:  # RegistryError/SessionError/bad manager params
        print(f"error: {error}")
        return 2
    print(metrics_report(batch.metrics))
    total_cycles = batch.total_cycles
    print(
        f"\nfleet throughput: {sessions / elapsed:,.1f} sessions/sec "
        f"({total_cycles / elapsed:,.0f} cycles/sec over "
        f"{sessions} sessions x {cycles} cycles)"
    )
    return 0


def _run_sweep(
    managers: str,
    scenarios: int,
    cycles: int,
    seed: int,
    small: bool,
    workers: int,
    cache_dir: str | None,
    no_cache: bool,
    scenario_transport: str = "redraw",
    spool: str | None = None,
    lease_timeout: float | None = None,
    timeout: float | None = None,
    backend: str | None = None,
    chunk_size: int | None = None,
) -> int:
    import time

    from repro.analysis import format_table, grid_specs, run_session_sweep, sweep_table
    from repro.runtime.plan import spawn_seeds

    if scenarios < 1:
        print("error: --scenarios must be >= 1")
        return 2
    if workers < 0:
        print(f"error: --workers must be >= 0, got {workers}")
        return 2
    specs = [spec.strip() for spec in managers.split(",") if spec.strip()]
    try:
        session = _session(seed, small, cycles)
        if backend is not None:
            session.backend(backend)
        if chunk_size is not None:
            session.chunk_size(chunk_size)
        # an explicit opt-out also keeps the *pool* from using its default
        # cache location — workers then compile locally
        session.artifacts(False if no_cache else (cache_dir if cache_dir is not None else True))
        if spool is not None:
            session.remote(
                spool,
                lease_timeout=lease_timeout,
                timeout=timeout,
                local_workers=workers,
                scenario_transport=scenario_transport,
            )
        elif workers >= 1:
            session.parallel(workers, scenario_transport=scenario_transport)
        grid = grid_specs(
            managers=specs, seeds=spawn_seeds(seed, scenarios), cycles=cycles
        )
        start = time.perf_counter()
        points = run_session_sweep(
            session,
            grid,
            parallel=True if spool is not None else workers >= 1,
            workers=workers if workers >= 1 else None,
        )
        elapsed = time.perf_counter() - start
    except (ValueError, RuntimeError) as error:  # registry/session/sweep errors
        print(f"error: {error}")
        return 2
    headers, rows = sweep_table(points)
    if spool is not None:
        mode = f"spool {spool} ({workers} local worker(s))"
    elif workers >= 1:
        mode = f"{workers} worker(s)"
    else:
        mode = "serial"
    print(
        format_table(
            headers,
            rows,
            title=f"Sweep: {len(grid)} scenarios x {cycles} cycles ({mode})",
        )
    )
    print(f"\ncompleted in {elapsed:.2f} s ({mode})")
    if session.artifact_cache is not None:
        cache = session.artifact_cache
        print(
            f"artifact cache: {cache.directory} "
            f"({len(cache)} artifact(s), session hits={cache.hits}, misses={cache.misses})"
        )
    return 0


def _run_worker(
    spool: str,
    cache_dir: str | None,
    poll: float,
    heartbeat: float,
    max_idle: float | None,
    max_units: int | None,
    worker_id: str | None,
    quiet: bool,
    resident: bool = False,
    max_resident: int = 8,
) -> int:
    common = dict(
        cache_dir=cache_dir,
        poll_interval=poll,
        heartbeat=heartbeat,
        max_idle=max_idle,
        max_units=max_units,
        worker_id=worker_id,
        log=None if quiet else print,
        # SIGTERM drains gracefully: finish or release the current claim
        install_signals=True,
    )
    try:
        if resident:
            from repro.service.resident import resident_worker_main

            executed = resident_worker_main(spool, max_resident=max_resident, **common)
        else:
            from repro.runtime.remote import worker_main

            executed = worker_main(spool, **common)
    except KeyboardInterrupt:  # a worker is killed, not completed
        return 130
    except (ValueError, OSError) as error:
        print(f"error: {error}")
        return 2
    if not quiet:
        print(f"worker exiting after {executed} unit(s)")
    return 0


def _run_service(arguments) -> int:
    try:
        if arguments.service_command == "start":
            from repro.service.daemon import service_start

            return service_start(
                arguments.spool,
                workers=arguments.workers,
                quota=arguments.queue_quota,
                max_resident=arguments.max_resident,
                poll_interval=arguments.poll,
                heartbeat=arguments.heartbeat,
                cache_dir=arguments.cache_dir,
                max_runtime=arguments.max_runtime,
            )
        if arguments.service_command == "status":
            from repro.service.daemon import format_status, service_status

            status = service_status(
                arguments.spool, include_metrics=arguments.metrics
            )
            print(format_status(status))
            return 0
        if arguments.service_command == "drain":
            from repro.service.daemon import service_drain

            return service_drain(
                arguments.spool,
                quota=arguments.queue_quota,
                timeout=arguments.timeout,
                poll_interval=arguments.poll,
            )
    except KeyboardInterrupt:  # the service loop already drained on Ctrl-C
        return 130
    except (ValueError, OSError) as error:
        print(f"error: {error}")
        return 2
    raise AssertionError(
        f"unhandled service command {arguments.service_command!r}"
    )  # pragma: no cover


def _run_experiments(
    fast: bool,
    seed: int,
    workers: int | None = None,
    vectorize: str = "auto",
    scenario_transport: str | None = None,
    spool: str | None = None,
    spool_timeout: float | None = None,
    backend: str | None = None,
    chunk_size: int | None = None,
) -> int:
    from repro.experiments import run_all_experiments

    try:
        result = run_all_experiments(
            fast=fast,
            seed=seed,
            workers=workers,
            vectorize=vectorize,
            backend=backend,
            scenario_transport=scenario_transport,
            spool=spool,
            spool_timeout=spool_timeout,
            chunk_size=chunk_size,
        )
    except (ValueError, RuntimeError) as error:  # bad --workers / sweep failures
        print(f"error: {error}")
        return 2
    print(result.render())
    return 0


def _run_obs(arguments) -> int:
    import json

    from repro.obs.export import build_report, read_events, render_report

    if arguments.obs_command == "report":
        try:
            events = read_events(arguments.dir)
        except OSError as error:
            print(f"error: {error}")
            return 2
        report = build_report(events)
        if arguments.json:
            print(json.dumps(report, sort_keys=True, default=str))
        else:
            print(render_report(report))
        return 0
    raise AssertionError(
        f"unhandled obs command {arguments.obs_command!r}"
    )  # pragma: no cover


def _run_diagram(seed: int) -> int:
    from repro.analysis import render_speed_diagram
    from repro.api import Session
    from repro.core import SpeedDiagram

    session = Session().system("small").seed(seed).manager("relaxation")
    controllers = session.compile()
    diagram = SpeedDiagram(
        session.resolved_system(), session.resolved_deadlines(), td_table=controllers.td_table
    )
    outcome = next(session.stream(1))
    print(render_speed_diagram(diagram, outcome, qualities_to_show=[0, 3, 6]))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    from repro.obs.logconfig import configure_logging

    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        configure_logging(arguments.log_level)
    except ValueError as error:  # a bad $REPRO_LOG value (the flag is validated)
        parser.error(str(error))
    if arguments.command == "info":
        return _run_info()
    if arguments.command == "managers":
        return _run_managers()
    if arguments.command == "run":
        return _run_run(
            arguments.manager,
            arguments.cycles,
            arguments.seed,
            arguments.small,
            arguments.backend,
            arguments.chunk_size,
        )
    if arguments.command == "compare":
        return _run_compare(
            arguments.frames,
            arguments.seed,
            arguments.small,
            arguments.managers,
            arguments.backend,
            arguments.chunk_size,
        )
    if arguments.command == "fleet":
        return _run_fleet(
            arguments.sessions,
            arguments.managers,
            arguments.cycles,
            arguments.seed,
            arguments.small,
            arguments.backend,
            arguments.chunk_size,
        )
    if arguments.command == "sweep":
        return _run_sweep(
            arguments.managers,
            arguments.scenarios,
            arguments.cycles,
            arguments.seed,
            arguments.small,
            arguments.workers,
            arguments.cache_dir,
            arguments.no_cache,
            arguments.scenario_transport,
            arguments.spool,
            arguments.lease_timeout,
            arguments.timeout,
            arguments.backend,
            arguments.chunk_size,
        )
    if arguments.command == "worker":
        return _run_worker(
            arguments.spool,
            arguments.cache_dir,
            arguments.poll,
            arguments.heartbeat,
            arguments.max_idle,
            arguments.max_units,
            arguments.worker_id,
            arguments.quiet,
            arguments.resident,
            arguments.max_resident,
        )
    if arguments.command == "service":
        return _run_service(arguments)
    if arguments.command == "experiments":
        return _run_experiments(
            arguments.fast,
            arguments.seed,
            arguments.workers,
            arguments.vectorize,
            arguments.scenario_transport,
            arguments.spool,
            arguments.timeout,
            arguments.backend,
            arguments.chunk_size,
        )
    if arguments.command == "diagram":
        return _run_diagram(arguments.seed)
    if arguments.command == "obs":
        return _run_obs(arguments)
    raise AssertionError(f"unhandled command {arguments.command!r}")  # pragma: no cover
