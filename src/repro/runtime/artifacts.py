"""Persistent on-disk cache of compiled Quality Managers.

A :class:`~repro.core.compiler.CompiledControllers` is, at its heart, a
handful of dense float64 arrays: the ``t^D`` table, the ``C^wc``/``C^av``
timing tables it was derived from, and the per-step control-relaxation
bounds.  This module serialises exactly those arrays (plus a small JSON
metadata block) to a single ``.npz`` file per artifact, so a fresh process —
a server worker, a sweep-pool worker, a new CLI invocation — can hydrate the
three managers without touching the symbolic compiler at all.

Cache design:

* **content-addressed** — the file name is a SHA-256 over everything the
  compiler output depends on (timing tables, action names, quality set,
  deadlines, policy, relaxation step set, schema version), so two sessions
  compiling the same system share one artifact and a changed input can never
  alias a stale one;
* **versioned** — artifacts live under ``v<N>/`` and carry the schema version
  in their metadata; bumping :data:`ARTIFACT_SCHEMA_VERSION` invalidates the
  whole cache without deleting anything by hand;
* **integrity-checked** — every payload embeds a SHA-256 over its arrays and
  metadata; a truncated or bit-flipped file is rejected (and removed) on
  load and treated as a miss;
* **atomic** — writes go to a temporary file in the same directory followed
  by :func:`os.replace`, so concurrent workers racing to fill the same entry
  can never observe a half-written artifact.

The cache directory defaults to ``$REPRO_CACHE_DIR``, then
``$XDG_CACHE_HOME/repro/compiled``, then ``~/.cache/repro/compiled``.

Only the built-in policies (``mixed``/``safe``/``average``) are cacheable —
a custom policy subclass could compute anything, so its output is never
persisted; :func:`compile_key` returns ``None`` for it and
:meth:`CompiledArtifactCache.fetch_or_compile` silently falls back to
compiling.  The ``extras`` dict of a :class:`CompiledControllers` is likewise
not persisted (entries are arbitrary objects); hydrated artifacts start with
an empty one.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.core.compiler import CompilationReport, CompiledControllers, QualityManagerCompiler
from repro.core.deadlines import DeadlineFunction
from repro.core.manager import MemoryFootprint, NumericQualityManager
from repro.core.policy import (
    AveragePolicy,
    MixedPolicy,
    QualityManagementPolicy,
    SafePolicy,
)
from repro.core.regions import QualityRegionTable, RegionQualityManager
from repro.core.relaxation import (
    DEFAULT_RELAXATION_STEPS,
    RelaxationQualityManager,
    RelaxationTable,
)
from repro.core.system import ParameterizedSystem
from repro.core.tdtable import TDTable
from repro.core.timing import TimingModel, TimingTable
from repro.core.types import Action, InfeasibleSystemError, QualitySet, ScheduledSequence

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactError",
    "ArtifactIntegrityError",
    "CompiledArtifactCache",
    "compile_key",
    "default_cache_dir",
]

#: bump on any incompatible change to the payload layout — all older
#: artifacts become invisible (different directory *and* rejected metadata)
ARTIFACT_SCHEMA_VERSION = 1

_ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: the only policies whose compiled output may be persisted; keyed by the
#: stable name stored in artifact metadata
_CACHEABLE_POLICIES: dict[str, type[QualityManagementPolicy]] = {
    "mixed": MixedPolicy,
    "safe": SafePolicy,
    "average": AveragePolicy,
}


class ArtifactError(RuntimeError):
    """A cache artifact could not be written or read."""


class ArtifactIntegrityError(ArtifactError):
    """An artifact failed its checksum, schema or shape validation."""


def default_cache_dir() -> Path:
    """The artifact cache root honouring ``REPRO_CACHE_DIR`` and XDG."""
    override = os.environ.get(_ENV_CACHE_DIR)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "compiled"


def _policy_cache_name(policy: QualityManagementPolicy) -> str | None:
    """The stable metadata name of a cacheable policy, or ``None``.

    Subclasses are deliberately rejected (``type(...) is`` — not
    ``isinstance``): a subclass may override ``horizon_costs`` and produce
    different tables under the same name.
    """
    for name, cls in _CACHEABLE_POLICIES.items():
        if type(policy) is cls:
            return name
    return None


def _hash_array(digest: "hashlib._Hash", array: np.ndarray) -> None:
    contiguous = np.ascontiguousarray(array)
    digest.update(str(contiguous.dtype).encode())
    digest.update(str(contiguous.shape).encode())
    digest.update(contiguous.tobytes())


def compile_key(
    system: ParameterizedSystem,
    deadlines: DeadlineFunction,
    *,
    policy: QualityManagementPolicy | None = None,
    relaxation_steps: Sequence[int] = DEFAULT_RELAXATION_STEPS,
) -> str | None:
    """Content hash of everything a compiled artifact depends on.

    Returns ``None`` when the inputs are not cacheable (a custom policy):
    callers must then compile without consulting the cache.  The key does not
    include ``require_feasible`` — it changes only whether compilation
    *raises*, never what it produces, and the feasibility check is re-applied
    on every load.
    """
    resolved = policy if policy is not None else MixedPolicy()
    policy_name = _policy_cache_name(resolved)
    if policy_name is None:
        return None
    digest = hashlib.sha256()
    digest.update(f"repro-artifact-v{ARTIFACT_SCHEMA_VERSION}".encode())
    digest.update(policy_name.encode())
    digest.update(json.dumps(system.sequence.names()).encode())
    digest.update(json.dumps(system.sequence.groups()).encode())
    digest.update(f"{system.qualities.minimum}:{system.qualities.maximum}".encode())
    _hash_array(digest, system.worst_case.values)
    _hash_array(digest, system.average.values)
    _hash_array(digest, deadlines.indices)
    _hash_array(digest, deadlines.values)
    steps = tuple(sorted({int(step) for step in relaxation_steps}))
    digest.update(json.dumps(steps).encode())
    return digest.hexdigest()


# --------------------------------------------------------------------------- #
# payload (de)serialisation
# --------------------------------------------------------------------------- #


def _payload_checksum(arrays: dict[str, np.ndarray], meta_json: str) -> str:
    digest = hashlib.sha256()
    for name in sorted(arrays):
        digest.update(name.encode())
        _hash_array(digest, arrays[name])
    digest.update(meta_json.encode())
    return digest.hexdigest()


def _serialize(compiled: CompiledControllers, key: str) -> tuple[dict[str, np.ndarray], str]:
    """The array payload and metadata JSON of one artifact."""
    td = compiled.td_table
    system = td.system
    policy_name = _policy_cache_name(td.policy)
    if policy_name is None:
        raise ArtifactError(
            f"policy {type(td.policy).__name__} is not cacheable; only the "
            f"built-in {sorted(_CACHEABLE_POLICIES)} policies are"
        )
    relaxation = compiled.relaxation.relaxation
    steps = relaxation.steps
    upper = np.stack([relaxation._upper[r] for r in steps])
    lower = np.stack([relaxation._lower[r] for r in steps])
    report = compiled.report
    arrays: dict[str, np.ndarray] = {
        "td_values": td.values,
        "wc_values": system.worst_case.values,
        "av_values": system.average.values,
        "relax_steps": np.asarray(steps, dtype=np.int64),
        "relax_upper": upper,
        "relax_lower": lower,
        "deadline_indices": np.asarray(td.deadlines.indices, dtype=np.int64),
        "deadline_values": np.asarray(td.deadlines.values, dtype=np.float64),
    }
    meta = {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "key": key,
        "policy": policy_name,
        "quality_min": system.qualities.minimum,
        "quality_max": system.qualities.maximum,
        "action_names": system.sequence.names(),
        "action_groups": system.sequence.groups(),
        "report": {
            "n_actions": report.n_actions,
            "n_levels": report.n_levels,
            "relaxation_steps": list(report.relaxation_steps),
            "region_integers": report.region_footprint.integers,
            "region_bytes_per_entry": report.region_footprint.bytes_per_entry,
            "relaxation_integers": report.relaxation_footprint.integers,
            "relaxation_bytes_per_entry": report.relaxation_footprint.bytes_per_entry,
            "td_precompute_seconds": report.td_precompute_seconds,
            "region_precompute_seconds": report.region_precompute_seconds,
            "relaxation_precompute_seconds": report.relaxation_precompute_seconds,
        },
    }
    return arrays, json.dumps(meta, sort_keys=True)


def _deserialize(
    arrays: dict[str, np.ndarray],
    meta: dict[str, Any],
    *,
    require_feasible: bool,
) -> CompiledControllers:
    """Rebuild a :class:`CompiledControllers` from a validated payload.

    The hydrated system carries no scenario sampler — it exists only to give
    the tables their quality set and shape; execution uses the caller's own
    system.
    """
    qualities = QualitySet(int(meta["quality_min"]), int(meta["quality_max"]))
    actions = tuple(
        Action(index=position, name=name, group=group)
        for position, (name, group) in enumerate(
            zip(meta["action_names"], meta["action_groups"]), start=1
        )
    )
    sequence = ScheduledSequence(actions)
    worst = TimingTable(qualities, arrays["wc_values"], name="Cwc", validate=False)
    average = TimingTable(qualities, arrays["av_values"], name="Cav", validate=False)
    system = ParameterizedSystem(sequence, TimingModel(worst, average, None))
    deadlines = DeadlineFunction(
        {
            int(index): float(value)
            for index, value in zip(arrays["deadline_indices"], arrays["deadline_values"])
        }
    )
    policy = _CACHEABLE_POLICIES[meta["policy"]]()
    td = TDTable(system, deadlines, policy, arrays["td_values"])
    if require_feasible and policy.guarantees_safety and td.initial_feasibility_margin() < 0.0:
        raise InfeasibleSystemError(
            "the system cannot meet its deadlines even at the minimal quality: "
            f"t^D(s_0, q_min) = {td.initial_feasibility_margin():.6g} < 0"
        )
    regions = QualityRegionTable(td)
    steps = tuple(int(step) for step in arrays["relax_steps"])
    relaxation_table = RelaxationTable.from_arrays(
        td, steps, list(arrays["relax_upper"]), list(arrays["relax_lower"])
    )
    report_meta = meta["report"]
    report = CompilationReport(
        n_actions=int(report_meta["n_actions"]),
        n_levels=int(report_meta["n_levels"]),
        relaxation_steps=tuple(int(step) for step in report_meta["relaxation_steps"]),
        region_footprint=MemoryFootprint(
            integers=int(report_meta["region_integers"]),
            bytes_per_entry=int(report_meta["region_bytes_per_entry"]),
        ),
        relaxation_footprint=MemoryFootprint(
            integers=int(report_meta["relaxation_integers"]),
            bytes_per_entry=int(report_meta["relaxation_bytes_per_entry"]),
        ),
        td_precompute_seconds=float(report_meta["td_precompute_seconds"]),
        region_precompute_seconds=float(report_meta["region_precompute_seconds"]),
        relaxation_precompute_seconds=float(report_meta["relaxation_precompute_seconds"]),
    )
    return CompiledControllers(
        numeric=NumericQualityManager(td),
        region=RegionQualityManager(regions),
        relaxation=RelaxationQualityManager(regions, relaxation_table),
        td_table=td,
        report=report,
    )


# --------------------------------------------------------------------------- #
# the cache
# --------------------------------------------------------------------------- #


class CompiledArtifactCache:
    """A directory of content-addressed compiled-controller artifacts.

    Thread/process safety comes from atomicity, not locking: loads only ever
    see complete files, and concurrent stores of the same key are idempotent
    (last rename wins, both files are identical by construction).

    Attributes
    ----------
    hits / misses / stores:
        Running counters for this instance (not persisted) — the easiest way
        for tests and benchmarks to assert cache behaviour.
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None) -> None:
        self._root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @property
    def root(self) -> Path:
        """The cache root (artifacts live under ``root/v<schema>/``)."""
        return self._root

    @property
    def directory(self) -> Path:
        """The directory of the current schema version."""
        return self._root / f"v{ARTIFACT_SCHEMA_VERSION}"

    def path_for(self, key: str) -> Path:
        """The artifact file a key maps to (whether or not it exists)."""
        return self.directory / f"{key}.npz"

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.npz"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledArtifactCache(root={str(self._root)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )

    def clear(self) -> int:
        """Delete every artifact of the current schema version; returns the count."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.npz"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - racing cleaner
                    pass
        return removed

    # ------------------------------------------------------------------ #
    # store / load
    # ------------------------------------------------------------------ #
    def store(self, key: str, compiled: CompiledControllers) -> Path:
        """Persist one compiled artifact under ``key`` (atomic, idempotent)."""
        arrays, meta_json = _serialize(compiled, key)
        checksum = _payload_checksum(arrays, meta_json)
        target = self.path_for(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(
            prefix=f".{key[:16]}-", suffix=".npz.tmp", dir=target.parent
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                np.savez(
                    stream,
                    meta=np.array(meta_json),
                    checksum=np.array(checksum),
                    **arrays,
                )
            os.replace(temp_name, target)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        return target

    def load(self, key: str, *, require_feasible: bool = True) -> CompiledControllers | None:
        """Hydrate the artifact for ``key``, or ``None`` on miss.

        Corrupt, truncated or stale-schema artifacts are removed and reported
        as misses — the caller recompiles and overwrites them.
        """
        path = self.path_for(key)
        if not path.is_file():
            self.misses += 1
            return None
        try:
            compiled = self._read(path, key, require_feasible=require_feasible)
        except InfeasibleSystemError:
            # a valid artifact whose system the caller refuses: not corruption
            self.hits += 1
            raise
        except Exception:  # noqa: BLE001 - any read failure is a corrupt artifact
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing cleaner
                pass
            self.misses += 1
            return None
        self.hits += 1
        return compiled

    def _read(self, path: Path, key: str, *, require_feasible: bool) -> CompiledControllers:
        with np.load(path, allow_pickle=False) as payload:
            names = set(payload.files)
            if "meta" not in names or "checksum" not in names:
                raise ArtifactIntegrityError(f"{path}: missing metadata members")
            meta_json = str(payload["meta"][()])
            stored_checksum = str(payload["checksum"][()])
            arrays = {name: payload[name] for name in names - {"meta", "checksum"}}
        if _payload_checksum(arrays, meta_json) != stored_checksum:
            raise ArtifactIntegrityError(f"{path}: checksum mismatch")
        meta = json.loads(meta_json)
        if meta.get("schema_version") != ARTIFACT_SCHEMA_VERSION:
            raise ArtifactIntegrityError(
                f"{path}: schema version {meta.get('schema_version')} != "
                f"{ARTIFACT_SCHEMA_VERSION}"
            )
        if meta.get("key") != key:
            raise ArtifactIntegrityError(f"{path}: key mismatch")
        return _deserialize(arrays, meta, require_feasible=require_feasible)

    # ------------------------------------------------------------------ #
    # the one-call entry point
    # ------------------------------------------------------------------ #
    def fetch_or_compile(
        self,
        system: ParameterizedSystem,
        deadlines: DeadlineFunction,
        *,
        policy: QualityManagementPolicy | None = None,
        relaxation_steps: Sequence[int] = DEFAULT_RELAXATION_STEPS,
        require_feasible: bool = True,
    ) -> tuple[CompiledControllers, bool]:
        """The cached equivalent of :meth:`QualityManagerCompiler.compile`.

        Returns ``(controllers, hit)``.  Uncacheable inputs (custom policy)
        compile directly with ``hit=False`` and are never stored.
        """
        key = compile_key(
            system, deadlines, policy=policy, relaxation_steps=relaxation_steps
        )
        if key is not None:
            cached = self.load(key, require_feasible=require_feasible)
            if cached is not None:
                return cached, True
        compiler = QualityManagerCompiler(
            policy=policy,
            relaxation_steps=relaxation_steps,
            require_feasible=require_feasible,
        )
        compiled = compiler.compile(system, deadlines)
        if key is not None:
            try:
                self.store(key, compiled)
            except OSError:  # pragma: no cover - read-only cache dir
                pass
        return compiled, False
