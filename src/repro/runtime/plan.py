"""Explicit sweep plans: the unit of work the parallel engine executes.

A :class:`SweepPlan` is the de-sugared form of a ``Session.run_many`` /
``Session.compare`` / grid-sweep request: a shared :class:`ExecutionPayload`
(everything a worker needs to reconstruct the execution environment) plus an
ordered tuple of independent :class:`SweepUnit` entries, each carrying its
final label, manager spec, cycle count, seed and — crucially — the offset
into the shared scenario stream that makes parallel execution bit-identical
to the serial baseline.

The offset bookkeeping is what preserves determinism: systems built from
encoder workloads draw their scenarios from a *stateful*
:class:`~repro.media.timing_model.FrameScenarioSampler` that walks through a
frame sequence, so the serial path hands unit ``i`` a sampler that units
``0..i-1`` have already advanced.  The plan records, per unit, how many draws
the serial path would have consumed before it; a worker seeks its own copy of
the sampler to that position before running the unit.

Plans are plain data (fully picklable) and make no scheduling decisions —
sharding, worker counts and failure handling live in
:mod:`repro.runtime.pool`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.api.registry import ManagerSpec
from repro.core.deadlines import DeadlineFunction
from repro.core.policy import QualityManagementPolicy
from repro.core.system import ParameterizedSystem
from repro.core.timing import ActualTimeScenario, ScenarioBatch, supports_replay

__all__ = [
    "PlanError",
    "ExecutionPayload",
    "FleetMemberUnit",
    "SweepUnit",
    "SweepPlan",
    "plan_run_many",
    "plan_compare",
    "plan_compare_redraw",
    "plan_fleet",
    "spawn_seeds",
    "unique_label",
]


class PlanError(ValueError):
    """Invalid sweep-plan construction inputs."""


def unique_label(taken: Any, label: str, index: int) -> str:
    """A variant of ``label`` not yet in ``taken`` (a container of labels).

    Starts from the bare label, then tries ``label-<index>``, ``label-<index+1>``
    ... until free.  Unlike a single ``f"{label}-{index}"`` fallback this can
    never collide with a user-supplied label such as ``"a-1"``.
    """
    if label not in taken:
        return label
    suffix = index
    candidate = f"{label}-{suffix}"
    while candidate in taken:
        suffix += 1
        candidate = f"{label}-{suffix}"
    return candidate


def spawn_seeds(base_seed: int, count: int) -> list[int]:
    """``count`` well-separated child seeds derived from one base seed.

    Uses :meth:`numpy.random.SeedSequence.spawn`, so scenarios of a sweep get
    statistically independent streams while remaining a pure function of
    ``base_seed`` — the same list on every machine and every run.
    """
    if count < 0:
        raise PlanError(f"seed count must be >= 0, got {count}")
    children = np.random.SeedSequence(int(base_seed)).spawn(count)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]


@dataclass(frozen=True)
class ExecutionPayload:
    """Everything a worker process needs to rebuild the execution environment.

    ``system`` is the *base* (undeployed) system — exactly what
    ``Session.resolved_system()`` returns; workers apply ``machine.deploy``
    themselves so that unpicklable rescaled systems never need to cross the
    process boundary.  ``overhead`` is the session's raw overhead setting
    (``None``, a preset name, :class:`~repro.platform.overhead.OverheadParameters`
    or a custom model) and is resolved worker-side with the same rules the
    session uses.  ``cache_dir`` points at the compiled-artifact cache the
    workers hydrate from; ``None`` means each worker compiles locally.
    ``vectorize`` carries the session's engine selection
    (``"auto"``/``"always"``/``"never"``) and ``backend`` its compute-backend
    choice (``None``: resolve worker-side from ``$REPRO_BACKEND``, else
    numpy), so every worker runs its chunk through the same
    vectorised-or-scalar path the serial baseline would.  ``chunk_size``
    (cycles per streamed execution chunk, *not* the pool's units-per-task
    chunking) switches workers to the constant-memory streaming engine:
    units come back as mergeable :class:`~repro.core.streaming.StreamingMetrics`
    summaries instead of per-cycle outcome tuples.
    """

    system: ParameterizedSystem
    deadlines: DeadlineFunction
    policy: QualityManagementPolicy | None
    relaxation_steps: tuple[int, ...]
    require_feasible: bool
    machine: Any = None  # repro.platform.machine.Machine | None
    overhead: Any = None
    cache_dir: str | None = None
    vectorize: str = "auto"
    backend: str | None = None
    chunk_size: int | None = None


@dataclass(frozen=True)
class FleetMemberUnit:
    """One session of a fleet bucket carried inside a single sweep unit.

    Members share the payload's system/deadlines/policy and differ in
    manager, cycle count and seed — the service layer's natural unit of
    consolidation: one claim executes a whole bucket of tenant sessions
    through :func:`repro.core.fleet.run_fleet` and ships back one
    summary per member.
    """

    label: str
    manager: ManagerSpec
    cycles: int
    seed: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.manager, ManagerSpec):
            object.__setattr__(self, "manager", ManagerSpec.parse(self.manager))
        if self.cycles < 1:
            raise PlanError(
                f"fleet member {self.label!r}: cycles must be >= 1, got {self.cycles}"
            )


@dataclass(frozen=True)
class SweepUnit:
    """One independent work unit of a sweep.

    Exactly one of three execution modes applies:

    * ``scenarios`` is ``None``, ``redraw`` is false — the worker draws
      ``cycles`` scenarios from the system's own sampler (seeked to
      ``sampler_offset`` when the sampler supports it) with a fresh
      ``default_rng(seed)``: the ``run_many`` setting, each unit consuming
      its own slice of the shared scenario stream;
    * ``scenarios`` is a :class:`~repro.core.timing.ScenarioBatch` — the
      pre-drawn batch is replayed as-is, shipped to the worker as one
      contiguous tensor (the ``compare`` ship-by-value setting: identical
      inputs for every manager, transport cost ∝ tensor size);
    * ``scenarios`` is ``None``, ``redraw`` is true — the worker re-draws the
      *same* ``cycles``-long scenario window the parent would have drawn
      (seek to ``sampler_offset``, then ``default_rng(seed)``), so every unit
      sees identical inputs while the plan ships **no scenario data at all**
      (the ``compare`` re-draw transport).  Re-draw units share one window:
      they do not consume per-unit slices of the stream, so their ``draws``
      is 0 and the compare layer advances the parent sampler once.
    """

    index: int
    label: str
    manager: ManagerSpec
    cycles: int
    seed: int | None = None
    sampler_offset: int | None = None
    scenarios: ScenarioBatch | None = None
    redraw: bool = False
    fleet: tuple[FleetMemberUnit, ...] | None = None

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise PlanError(f"unit {self.index}: cycles must be >= 1, got {self.cycles}")
        if self.fleet is not None:
            if self.scenarios is not None or self.redraw:
                raise PlanError(
                    f"unit {self.index}: a fleet unit draws per member; it cannot "
                    "carry scenarios or use redraw mode"
                )
            total = sum(member.cycles for member in self.fleet)
            if total != self.cycles:
                raise PlanError(
                    f"unit {self.index}: cycles must equal the fleet total "
                    f"({total}), got {self.cycles}"
                )
        if self.scenarios is not None:
            if not isinstance(self.scenarios, ScenarioBatch):
                # legacy tuple/list of per-cycle scenarios: stack it once
                object.__setattr__(
                    self, "scenarios", ScenarioBatch.coerce(self.scenarios)
                )
            if len(self.scenarios) != self.cycles:
                raise PlanError(
                    f"unit {self.index}: {self.cycles} cycles but "
                    f"{len(self.scenarios)} scenarios"
                )
            if self.redraw:
                raise PlanError(
                    f"unit {self.index}: redraw mode ships no scenarios; "
                    "pass scenarios=None"
                )

    @property
    def draws(self) -> int:
        """Scenario draws this unit consumes from the shared sampler stream."""
        if self.scenarios is not None or self.redraw or self.fleet is not None:
            # fleet members draw from isolated sampler snapshots seeked to the
            # stream's base position — the shared stream itself never advances
            return 0
        return self.cycles


@dataclass(frozen=True)
class SweepPlan:
    """An ordered set of independent work units over one shared payload."""

    payload: ExecutionPayload
    units: tuple[SweepUnit, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for position, unit in enumerate(self.units):
            if unit.index != position:
                raise PlanError(
                    f"units must be indexed consecutively from 0: position "
                    f"{position} holds unit index {unit.index}"
                )

    def __len__(self) -> int:
        return len(self.units)

    @property
    def total_cycles(self) -> int:
        """Cycles executed across all units."""
        return sum(unit.cycles for unit in self.units)

    @property
    def total_draws(self) -> int:
        """Scenario draws the whole plan consumes from the shared stream."""
        return sum(unit.draws for unit in self.units)

    @property
    def labels(self) -> tuple[str, ...]:
        """Unit labels in execution order (unique by construction)."""
        return tuple(unit.label for unit in self.units)

    def chunked(self, chunk_size: int) -> list[tuple[SweepUnit, ...]]:
        """Split the units into contiguous chunks of at most ``chunk_size``."""
        if chunk_size < 1:
            raise PlanError(f"chunk size must be >= 1, got {chunk_size}")
        return [
            self.units[start : start + chunk_size]
            for start in range(0, len(self.units), chunk_size)
        ]

    def default_chunk_size(self, workers: int) -> int:
        """Chunks small enough to balance, large enough to amortise transport."""
        if workers < 1:
            raise PlanError(f"workers must be >= 1, got {workers}")
        return max(1, math.ceil(len(self.units) / (workers * 4)))


def plan_run_many(
    payload: ExecutionPayload,
    entries: Sequence[tuple[str, ManagerSpec, int, int | None]],
    *,
    track_sampler: bool = True,
    scenarios: Sequence[ScenarioBatch] | None = None,
) -> SweepPlan:
    """Build the plan of a ``run_many`` sweep.

    ``entries`` hold ``(label, manager_spec, cycles, seed)`` per scenario in
    execution order; labels are de-duplicated here (the same loop the serial
    path uses), and each unit receives the cumulative draw offset of the
    units before it.  ``track_sampler=False`` drops the offsets (for systems
    whose sampler is stateless or absent).

    By default units ship no scenario data — each worker re-draws its slice
    of the stream (seek to the offset, then ``default_rng(seed)``), exactly
    what the serial loop does.  ``scenarios`` switches the plan to
    ship-by-value: one pre-drawn :class:`~repro.core.timing.ScenarioBatch`
    per entry (the caller drew them in entry order, so the parent sampler
    already stands where the serial run would leave it).
    """
    if scenarios is not None and len(scenarios) != len(entries):
        raise PlanError(
            f"{len(entries)} entries but {len(scenarios)} pre-drawn scenario batches"
        )
    units: list[SweepUnit] = []
    taken: set[str] = set()
    offset = 0
    for index, (label, spec, cycles, seed) in enumerate(entries):
        final = unique_label(taken, label, index)
        taken.add(final)
        units.append(
            SweepUnit(
                index=index,
                label=final,
                manager=spec,
                cycles=int(cycles),
                seed=seed,
                sampler_offset=offset if track_sampler else None,
                scenarios=scenarios[index] if scenarios is not None else None,
            )
        )
        offset += int(cycles)
    return SweepPlan(payload=payload, units=tuple(units))


def plan_compare(
    payload: ExecutionPayload,
    specs: Sequence[ManagerSpec],
    scenarios: ScenarioBatch | Sequence[ActualTimeScenario],
) -> SweepPlan:
    """Build the plan of a manager comparison on pre-drawn scenarios.

    Every unit replays the same :class:`~repro.core.timing.ScenarioBatch`
    (per-cycle sequences are stacked once here), so no unit touches the
    shared sampler stream — the parent already consumed the draws when it
    generated ``scenarios`` — and the plan ships one contiguous tensor per
    unit instead of a pickled tuple of per-cycle objects.  Unit labels are
    provisional (the spec string); the final labels come from the executed
    managers' reporting names, as in the serial path.
    """
    if not len(scenarios):
        raise PlanError("a compare plan needs at least one pre-drawn scenario")
    shared = ScenarioBatch.coerce(scenarios)
    units = tuple(
        SweepUnit(
            index=index,
            label=str(spec),
            manager=spec,
            cycles=len(shared),
            seed=None,
            sampler_offset=None,
            scenarios=shared,
        )
        for index, spec in enumerate(specs)
    )
    return SweepPlan(payload=payload, units=units)


def plan_compare_redraw(
    payload: ExecutionPayload,
    specs: Sequence[ManagerSpec],
    cycles: int,
    seed: int,
) -> SweepPlan:
    """Build a compare plan whose workers re-draw the shared scenarios.

    The ROADMAP's named fix for compare-transport cost: instead of shipping
    the pre-drawn scenario tensor to every worker, each unit records only the
    draw recipe — the scenario-stream offset (0: the window starts where the
    payload system's sampler stands) and the base seed — and the worker
    reproduces the exact batch the parent would have drawn.  Requires a
    system whose sampler is absent or exposes ``seek``/``cursor`` (the
    :class:`~repro.media.timing_model.FrameScenarioSampler` contract);
    anything else is rejected here — a worker running several re-draw units
    could not re-position such a sampler between them, so the units would
    silently compare managers on *different* scenario windows.  The compare
    layer checks the same precondition up front and falls back to
    ship-by-value.
    """
    cycles = int(cycles)
    if cycles < 1:
        raise PlanError(f"a compare plan needs cycles >= 1, got {cycles}")
    sampler = payload.system.timing.scenario_sampler
    if sampler is not None and not supports_replay(sampler):
        raise PlanError(
            "re-draw compare units need a sampler the workers can re-position: "
            f"{type(sampler).__name__} has no seek/cursor interface — ship the "
            "scenarios by value (plan_compare) instead"
        )
    units = tuple(
        SweepUnit(
            index=index,
            label=str(spec),
            manager=spec,
            cycles=cycles,
            seed=int(seed),
            sampler_offset=0,
            scenarios=None,
            redraw=True,
        )
        for index, spec in enumerate(specs)
    )
    return SweepPlan(payload=payload, units=units)


def plan_fleet(
    payload: ExecutionPayload,
    members: Sequence[FleetMemberUnit | tuple],
    *,
    base_seed: int | None = None,
    label: str = "fleet",
) -> SweepPlan:
    """One sweep unit carrying a whole fleet bucket of sessions.

    ``members`` are :class:`FleetMemberUnit` entries (or ``(label, manager,
    cycles)`` / ``(label, manager, cycles, seed)`` tuples); they share the
    payload's system and deadlines and differ in manager, cycle count and
    seed.  Members without a seed get one spawned from ``base_seed`` via
    :func:`spawn_seeds` (defaults to 0), so the unit is self-contained and
    any worker — pool, spool, service — reproduces the same per-member
    scenario streams.  The worker executes the bucket through
    :func:`repro.core.fleet.run_fleet` and ships back one
    :class:`~repro.core.streaming.StreamingMetrics` summary per member.
    """
    coerced: list[FleetMemberUnit] = []
    for member in members:
        if isinstance(member, FleetMemberUnit):
            coerced.append(member)
        else:
            coerced.append(FleetMemberUnit(*member))
    if not coerced:
        raise PlanError("a fleet plan needs at least one member")
    labels = set()
    for member in coerced:
        if member.label in labels:
            raise PlanError(f"duplicate fleet member label {member.label!r}")
        labels.add(member.label)
    if any(member.seed is None for member in coerced):
        spawned = spawn_seeds(0 if base_seed is None else int(base_seed), len(coerced))
        coerced = [
            member
            if member.seed is not None
            else FleetMemberUnit(
                label=member.label,
                manager=member.manager,
                cycles=member.cycles,
                seed=spawned[position],
            )
            for position, member in enumerate(coerced)
        ]
    unit = SweepUnit(
        index=0,
        label=label,
        manager=coerced[0].manager,
        cycles=sum(member.cycles for member in coerced),
        seed=coerced[0].seed,
        sampler_offset=0,
        fleet=tuple(coerced),
    )
    return SweepPlan(payload=payload, units=(unit,))
