"""Explicit sweep plans: the unit of work the parallel engine executes.

A :class:`SweepPlan` is the de-sugared form of a ``Session.run_many`` /
``Session.compare`` / grid-sweep request: a shared :class:`ExecutionPayload`
(everything a worker needs to reconstruct the execution environment) plus an
ordered tuple of independent :class:`SweepUnit` entries, each carrying its
final label, manager spec, cycle count, seed and — crucially — the offset
into the shared scenario stream that makes parallel execution bit-identical
to the serial baseline.

The offset bookkeeping is what preserves determinism: systems built from
encoder workloads draw their scenarios from a *stateful*
:class:`~repro.media.timing_model.FrameScenarioSampler` that walks through a
frame sequence, so the serial path hands unit ``i`` a sampler that units
``0..i-1`` have already advanced.  The plan records, per unit, how many draws
the serial path would have consumed before it; a worker seeks its own copy of
the sampler to that position before running the unit.

Plans are plain data (fully picklable) and make no scheduling decisions —
sharding, worker counts and failure handling live in
:mod:`repro.runtime.pool`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.api.registry import ManagerSpec
from repro.core.deadlines import DeadlineFunction
from repro.core.policy import QualityManagementPolicy
from repro.core.system import ParameterizedSystem
from repro.core.timing import ActualTimeScenario

__all__ = [
    "PlanError",
    "ExecutionPayload",
    "SweepUnit",
    "SweepPlan",
    "plan_run_many",
    "plan_compare",
    "spawn_seeds",
    "unique_label",
]


class PlanError(ValueError):
    """Invalid sweep-plan construction inputs."""


def unique_label(taken: Any, label: str, index: int) -> str:
    """A variant of ``label`` not yet in ``taken`` (a container of labels).

    Starts from the bare label, then tries ``label-<index>``, ``label-<index+1>``
    ... until free.  Unlike a single ``f"{label}-{index}"`` fallback this can
    never collide with a user-supplied label such as ``"a-1"``.
    """
    if label not in taken:
        return label
    suffix = index
    candidate = f"{label}-{suffix}"
    while candidate in taken:
        suffix += 1
        candidate = f"{label}-{suffix}"
    return candidate


def spawn_seeds(base_seed: int, count: int) -> list[int]:
    """``count`` well-separated child seeds derived from one base seed.

    Uses :meth:`numpy.random.SeedSequence.spawn`, so scenarios of a sweep get
    statistically independent streams while remaining a pure function of
    ``base_seed`` — the same list on every machine and every run.
    """
    if count < 0:
        raise PlanError(f"seed count must be >= 0, got {count}")
    children = np.random.SeedSequence(int(base_seed)).spawn(count)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]


@dataclass(frozen=True)
class ExecutionPayload:
    """Everything a worker process needs to rebuild the execution environment.

    ``system`` is the *base* (undeployed) system — exactly what
    ``Session.resolved_system()`` returns; workers apply ``machine.deploy``
    themselves so that unpicklable rescaled systems never need to cross the
    process boundary.  ``overhead`` is the session's raw overhead setting
    (``None``, a preset name, :class:`~repro.platform.overhead.OverheadParameters`
    or a custom model) and is resolved worker-side with the same rules the
    session uses.  ``cache_dir`` points at the compiled-artifact cache the
    workers hydrate from; ``None`` means each worker compiles locally.
    ``vectorize`` carries the session's engine selection
    (``"auto"``/``"always"``/``"never"``) so every worker runs its chunk
    through the same vectorised-or-scalar path the serial baseline would.
    """

    system: ParameterizedSystem
    deadlines: DeadlineFunction
    policy: QualityManagementPolicy | None
    relaxation_steps: tuple[int, ...]
    require_feasible: bool
    machine: Any = None  # repro.platform.machine.Machine | None
    overhead: Any = None
    cache_dir: str | None = None
    vectorize: str = "auto"


@dataclass(frozen=True)
class SweepUnit:
    """One independent work unit of a sweep.

    Exactly one of two execution modes applies:

    * ``scenarios`` is ``None`` — the worker draws ``cycles`` scenarios from
      the system's own sampler (seeked to ``sampler_offset`` when the sampler
      supports it) with a fresh ``default_rng(seed)``;
    * ``scenarios`` is a tuple — the pre-drawn scenarios are replayed as-is
      (the ``compare`` setting: identical inputs for every manager).
    """

    index: int
    label: str
    manager: ManagerSpec
    cycles: int
    seed: int | None = None
    sampler_offset: int | None = None
    scenarios: tuple[ActualTimeScenario, ...] | None = None

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise PlanError(f"unit {self.index}: cycles must be >= 1, got {self.cycles}")
        if self.scenarios is not None and len(self.scenarios) != self.cycles:
            raise PlanError(
                f"unit {self.index}: {self.cycles} cycles but {len(self.scenarios)} scenarios"
            )

    @property
    def draws(self) -> int:
        """Scenario draws this unit consumes from the shared sampler stream."""
        return 0 if self.scenarios is not None else self.cycles


@dataclass(frozen=True)
class SweepPlan:
    """An ordered set of independent work units over one shared payload."""

    payload: ExecutionPayload
    units: tuple[SweepUnit, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for position, unit in enumerate(self.units):
            if unit.index != position:
                raise PlanError(
                    f"units must be indexed consecutively from 0: position "
                    f"{position} holds unit index {unit.index}"
                )

    def __len__(self) -> int:
        return len(self.units)

    @property
    def total_cycles(self) -> int:
        """Cycles executed across all units."""
        return sum(unit.cycles for unit in self.units)

    @property
    def total_draws(self) -> int:
        """Scenario draws the whole plan consumes from the shared stream."""
        return sum(unit.draws for unit in self.units)

    @property
    def labels(self) -> tuple[str, ...]:
        """Unit labels in execution order (unique by construction)."""
        return tuple(unit.label for unit in self.units)

    def chunked(self, chunk_size: int) -> list[tuple[SweepUnit, ...]]:
        """Split the units into contiguous chunks of at most ``chunk_size``."""
        if chunk_size < 1:
            raise PlanError(f"chunk size must be >= 1, got {chunk_size}")
        return [
            self.units[start : start + chunk_size]
            for start in range(0, len(self.units), chunk_size)
        ]

    def default_chunk_size(self, workers: int) -> int:
        """Chunks small enough to balance, large enough to amortise transport."""
        if workers < 1:
            raise PlanError(f"workers must be >= 1, got {workers}")
        return max(1, math.ceil(len(self.units) / (workers * 4)))


def plan_run_many(
    payload: ExecutionPayload,
    entries: Sequence[tuple[str, ManagerSpec, int, int | None]],
    *,
    track_sampler: bool = True,
) -> SweepPlan:
    """Build the plan of a ``run_many`` sweep.

    ``entries`` hold ``(label, manager_spec, cycles, seed)`` per scenario in
    execution order; labels are de-duplicated here (the same loop the serial
    path uses), and each unit receives the cumulative draw offset of the
    units before it.  ``track_sampler=False`` drops the offsets (for systems
    whose sampler is stateless or absent).
    """
    units: list[SweepUnit] = []
    taken: set[str] = set()
    offset = 0
    for index, (label, spec, cycles, seed) in enumerate(entries):
        final = unique_label(taken, label, index)
        taken.add(final)
        units.append(
            SweepUnit(
                index=index,
                label=final,
                manager=spec,
                cycles=int(cycles),
                seed=seed,
                sampler_offset=offset if track_sampler else None,
            )
        )
        offset += int(cycles)
    return SweepPlan(payload=payload, units=tuple(units))


def plan_compare(
    payload: ExecutionPayload,
    specs: Sequence[ManagerSpec],
    scenarios: Sequence[ActualTimeScenario],
) -> SweepPlan:
    """Build the plan of a manager comparison on pre-drawn scenarios.

    Every unit replays the same scenario tuple, so no unit touches the shared
    sampler stream (the parent already consumed the draws when it generated
    ``scenarios``).  Unit labels are provisional (the spec string); the final
    labels come from the executed managers' reporting names, as in the serial
    path.
    """
    if not scenarios:
        raise PlanError("a compare plan needs at least one pre-drawn scenario")
    shared = tuple(scenarios)
    units = tuple(
        SweepUnit(
            index=index,
            label=str(spec),
            manager=spec,
            cycles=len(shared),
            seed=None,
            sampler_offset=None,
            scenarios=shared,
        )
        for index, spec in enumerate(specs)
    )
    return SweepPlan(payload=payload, units=units)
