"""Run-time scaling layer: persistent compiled artifacts and parallel sweeps.

The paper's central claim is that the expensive part of quality management —
building the ``t^D`` table, the quality regions and the control relaxation
regions — happens at *compile time*, leaving only cheap table lookups on the
hot path.  This package extends that separation across process and machine
boundaries:

* :mod:`repro.runtime.artifacts` — a versioned on-disk cache of
  :class:`~repro.core.compiler.CompiledControllers`, keyed by a content hash
  of the compiler inputs.  A warm cache lets a fresh process skip symbolic
  compilation entirely.
* :mod:`repro.runtime.plan` — turns ``run_many`` / ``compare`` / grid-sweep
  inputs into an explicit :class:`~repro.runtime.plan.SweepPlan` of
  independent work units with per-unit seeds, labels and scenario-stream
  offsets.
* :mod:`repro.runtime.pool` — a process-based
  :class:`~repro.runtime.pool.SweepExecutor` that shards a plan across
  workers; workers hydrate their managers from the artifact cache instead of
  recompiling, and parallel results are bit-identical to the serial baseline
  for fixed seeds.
* :mod:`repro.runtime.remote` — the multi-*machine* sibling: a broker-less
  :class:`~repro.runtime.remote.RemoteSweepExecutor` fans units out over a
  shared spool directory (local FS or NFS), ``repro worker`` processes on any
  host claim them via rename-based leases with heartbeat requeue, and the
  parent streams results as they land.  Same plans, same records, same
  bit-identical results.

The serial execution path of :class:`repro.api.Session` remains the default
and the behavioural reference; this layer only changes *where* and *how
often* work happens, never *what* is computed.
"""

from .artifacts import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactError,
    ArtifactIntegrityError,
    CompiledArtifactCache,
    compile_key,
    default_cache_dir,
)
from .plan import (
    ExecutionPayload,
    PlanError,
    SweepPlan,
    SweepUnit,
    plan_compare,
    plan_compare_redraw,
    plan_run_many,
    spawn_seeds,
    unique_label,
)
from .pool import SweepExecutionError, SweepExecutor, SweepOutcome, UnitFailure
from .remote import RemoteSweepExecutor, SpoolLayout, SpoolWorker, worker_main

__all__ = [
    # artifacts
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactError",
    "ArtifactIntegrityError",
    "CompiledArtifactCache",
    "compile_key",
    "default_cache_dir",
    # plan
    "ExecutionPayload",
    "PlanError",
    "SweepPlan",
    "SweepUnit",
    "plan_run_many",
    "plan_compare",
    "plan_compare_redraw",
    "spawn_seeds",
    "unique_label",
    # pool
    "SweepExecutor",
    "SweepExecutionError",
    "SweepOutcome",
    "UnitFailure",
    # remote
    "RemoteSweepExecutor",
    "SpoolLayout",
    "SpoolWorker",
    "worker_main",
]
