"""Multi-machine sweep fan-out over a shared spool directory.

:class:`~repro.runtime.pool.SweepExecutor` shards a
:class:`~repro.runtime.plan.SweepPlan` across *processes on one machine*.
This module extends the same fan-out/fan-in shape across *machines* without a
broker: the only shared infrastructure is a directory — local for same-host
workers, NFS (or any rename-atomic shared filesystem) for a cluster.

How a sweep flows through the spool (the full operational story lives in
``docs/distributed-sweeps.md``):

* the **parent** (:class:`RemoteSweepExecutor`) serialises the plan's shared
  :class:`~repro.runtime.plan.ExecutionPayload` once into ``spool/plans/``,
  copies the compiled-controller ``.npz`` artifacts the plan needs into
  ``spool/artifacts/`` (content-hashed, so the copy is idempotent), and writes
  one tiny file per :class:`~repro.runtime.plan.SweepUnit` into
  ``spool/pending/`` — with the default re-draw scenario transport a unit is
  ~200 bytes: no scenario tensors cross the wire;
* any number of **workers** (``repro worker --spool DIR``, any host) claim
  units by atomically renaming them into ``spool/claimed/``; the claim file's
  mtime is the lease heartbeat (touched by a background thread during
  execution).  Workers hydrate managers from their *local* artifact cache,
  syncing missing artifacts from ``spool/artifacts/`` first, execute through
  the exact :class:`~repro.runtime.pool._WorkerRuntime` the process pool
  uses, and write results atomically into ``spool/done/``;
* the parent **fan-in** streams results as they land (this is what
  ``Session.remote(...)`` + ``run_many(..., stream=True)`` exposes), requeues
  units whose lease expired (a killed worker costs one lease timeout, not the
  sweep) and surfaces per-unit failures exactly like
  :class:`~repro.runtime.pool.SweepExecutor`.

Determinism: workers execute units through the same runtime as the process
pool — per-unit ``default_rng(seed)`` plus sampler ``seek`` offsets — so for
fixed seeds the fan-in result is bit-identical to the serial baseline no
matter how many workers on how many hosts claim the units, in whatever order.
A unit executed twice (requeue racing a slow-but-alive worker) produces the
identical record; the parent consumes whichever lands first.

Failure containment mirrors the pool: a unit that raises becomes a
:class:`~repro.runtime.pool.UnitFailure` (with traceback), a unit whose lease
expires ``max_requeues + 1`` times becomes a synthetic failure — neither
tears down the sweep.
"""

from __future__ import annotations

import dataclasses
import hashlib
import logging
import os
import pickle
import random
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import traceback
import uuid
from pathlib import Path
from typing import Callable, Iterator, Sequence

from repro.obs import export as obs_export
from repro.obs import trace as obs_trace
from repro.obs.logconfig import current_level
from repro.obs.metrics import registry as obs_registry
from repro.obs.state import enabled as obs_enabled

from .artifacts import CompiledArtifactCache, compile_key, default_cache_dir
from .plan import ExecutionPayload, SweepPlan, SweepUnit
from .pool import (
    ProgressCallback,
    SweepExecutionError,
    SweepOutcome,
    _WorkerRuntime,
    collect_outcome,
)

__all__ = [
    "DEFAULT_HEARTBEAT_SECONDS",
    "DEFAULT_LEASE_TIMEOUT",
    "DEFAULT_MAX_REQUEUES",
    "DEFAULT_POLL_INTERVAL",
    "RemoteSweepExecutor",
    "SpoolLayout",
    "SpoolWorker",
    "worker_main",
]

#: seconds without a heartbeat before the parent considers a lease dead
DEFAULT_LEASE_TIMEOUT = 30.0
#: how often parent and workers rescan the spool
DEFAULT_POLL_INTERVAL = 0.2
#: how often an executing worker touches its claim file
DEFAULT_HEARTBEAT_SECONDS = 2.0
#: how many times a unit is requeued after lease expiry before it fails
DEFAULT_MAX_REQUEUES = 2

logger = logging.getLogger("repro.runtime.remote")

_UNIT_SUFFIX = ".unit"
_PLAN_SUFFIX = ".plan"
_RESULT_SUFFIX = ".result"


def _atomic_write_bytes(target: Path, data: bytes) -> None:
    """Write ``data`` to ``target`` via temp-file + rename (crash-atomic)."""
    target.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(prefix=f".{target.name}-", dir=target.parent)
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def _atomic_copy(source: Path, target: Path) -> None:
    """Copy ``source`` to ``target`` atomically (idempotent for equal content)."""
    target.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(prefix=f".{target.name}-", dir=target.parent)
    os.close(handle)
    try:
        shutil.copyfile(source, temp_name)
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


class SpoolLayout:
    """The directory contract of a sweep spool.

    ``plans/`` holds one pickled payload file per submitted plan; ``pending/``
    holds claimable unit files; ``claimed/`` holds leased units (the file
    mtime is the heartbeat); ``done/`` holds result records; ``artifacts/``
    is a :class:`~repro.runtime.artifacts.CompiledArtifactCache` directory
    shared between hosts.  All five live on one filesystem so every
    state transition is a single atomic ``rename``.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.plans = self.root / "plans"
        self.pending = self.root / "pending"
        self.claimed = self.root / "claimed"
        self.done = self.root / "done"
        self.artifacts = self.root / "artifacts"

    def ensure(self) -> "SpoolLayout":
        """Create the spool directories (idempotent) and return self."""
        for directory in (self.plans, self.pending, self.claimed, self.done, self.artifacts):
            directory.mkdir(parents=True, exist_ok=True)
        return self

    def artifact_cache(self) -> CompiledArtifactCache:
        """The shared artifact cache rooted inside the spool."""
        return CompiledArtifactCache(self.artifacts)

    # ------------------------------------------------------------------ #
    # file naming (plan ids are dot-free hex, so split(".") is unambiguous)
    # ------------------------------------------------------------------ #
    @staticmethod
    def unit_name(plan_id: str, index: int, attempt: int) -> str:
        """The pending-file name of one unit attempt."""
        return f"{plan_id}.u{index:06d}.a{attempt}{_UNIT_SUFFIX}"

    @staticmethod
    def parse_unit_name(name: str) -> tuple[str, int, int]:
        """``(plan_id, index, attempt)`` from a pending or claimed file name."""
        stem = name.split(_UNIT_SUFFIX)[0]
        plan_id, index_part, attempt_part = stem.split(".")[:3]
        if not index_part.startswith("u") or not attempt_part.startswith("a"):
            raise ValueError(f"not a spool unit file name: {name!r}")
        return plan_id, int(index_part[1:]), int(attempt_part[1:])

    def plan_path(self, plan_id: str) -> Path:
        """The pickled plan-payload file of one submitted plan."""
        return self.plans / f"{plan_id}{_PLAN_SUFFIX}"

    def result_path(self, plan_id: str, index: int) -> Path:
        """The done-file a unit's result record lands in."""
        return self.done / f"{plan_id}.u{index:06d}{_RESULT_SUFFIX}"


# --------------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------------- #


class _CorruptPlanError(RuntimeError):
    """A plan file exists but cannot be deserialised (torn write, bad host)."""


class _Heartbeat:
    """Background thread touching a claim file so the lease stays alive."""

    def __init__(self, path: Path, interval: float) -> None:
        self._path = path
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                os.utime(self._path, None)
            except FileNotFoundError:  # claim consumed/requeued — stop quietly
                return
            except OSError:  # transient (NFS hiccup): keep the lease alive
                continue

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join(timeout=self._interval + 1.0)


class SpoolWorker:
    """Claims and executes spool units until idle or told to stop.

    One worker executes one unit at a time; run several workers (processes,
    hosts) against the same spool for parallelism.  Each claimed unit is
    executed through the pool's :class:`~repro.runtime.pool._WorkerRuntime`
    — the runtime (and its hydrated managers) is cached per plan, so a
    worker draining a 1,000-unit plan hydrates once.

    Parameters
    ----------
    spool:
        The shared spool directory.
    cache_dir:
        This worker's *local* compiled-artifact cache (default:
        ``$REPRO_CACHE_DIR`` else ``~/.cache/repro/compiled``).  Missing
        artifacts are synced from ``spool/artifacts/`` before hydration.
    poll_interval / heartbeat:
        Pending-scan cadence and claim-touch cadence, in seconds.
    worker_id:
        Lease owner tag (default ``<hostname>-<pid>``); purely diagnostic.
    log:
        Optional ``log(message)`` callable for progress lines.
    """

    def __init__(
        self,
        spool: str | os.PathLike,
        *,
        cache_dir: str | os.PathLike | None = None,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        heartbeat: float = DEFAULT_HEARTBEAT_SECONDS,
        worker_id: str | None = None,
        log: Callable[[str], None] | None = None,
    ) -> None:
        if poll_interval <= 0.0:
            raise ValueError(f"poll_interval must be > 0, got {poll_interval}")
        if heartbeat <= 0.0:
            raise ValueError(f"heartbeat must be > 0, got {heartbeat}")
        self.spool = SpoolLayout(spool).ensure()
        self._cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self._poll = float(poll_interval)
        self._heartbeat = float(heartbeat)
        raw_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.worker_id = raw_id.replace(os.sep, "-").replace(".", "-")
        self._log = log
        self._plans: dict[str, dict] = {}
        self._runtimes: dict[str, _WorkerRuntime] = {}
        self.executed = 0
        self._stop_requested = False

    def _say(self, message: str) -> None:
        if self._log is not None:
            self._log(message)

    # ------------------------------------------------------------------ #
    # graceful shutdown
    # ------------------------------------------------------------------ #
    @property
    def stop_requested(self) -> bool:
        """True once :meth:`request_stop` (or SIGTERM) has been seen."""
        return self._stop_requested

    def request_stop(self) -> None:
        """Ask the run loop to exit at the next safe point.

        Safe to call from a signal handler or another thread: the loop
        checks the flag before claiming, and a claim taken in the race
        window is *released* (renamed back to pending) rather than executed,
        so a drained fleet never strands a unit behind a lease timeout.
        """
        self._stop_requested = True

    def install_signal_handlers(self) -> None:
        """Route SIGTERM to :meth:`request_stop` (graceful drain).

        Only SIGTERM: Ctrl-C keeps its ``KeyboardInterrupt`` semantics (the
        CLI maps it to exit code 130).  A no-op off the main thread, where
        Python forbids installing handlers — threaded test workers call
        :meth:`request_stop` directly instead.
        """
        try:
            signal.signal(signal.SIGTERM, lambda signum, frame: self.request_stop())
        except ValueError:  # not the main thread
            pass

    def release_claim(self, claim: Path) -> bool:
        """Rename a claimed unit back into ``pending/`` (same attempt).

        The graceful-shutdown counterpart of :meth:`claim_one`: a released
        unit is claimable immediately instead of costing the fleet one full
        lease timeout.  Returns False when the claim vanished (consumed or
        requeued under us) — never an error.
        """
        name = claim.name
        cut = name.rfind(_UNIT_SUFFIX)
        if cut < 0:
            return False
        pending_name = name[: cut + len(_UNIT_SUFFIX)]
        try:
            os.rename(claim, self.spool.pending / pending_name)
        except OSError:
            return False
        return True

    # ------------------------------------------------------------------ #
    # claim / plan hydration
    # ------------------------------------------------------------------ #
    def claim_one(self) -> Path | None:
        """Atomically move one pending unit into ``claimed/``, or ``None``.

        Rename is the lock: of N workers racing for the same file exactly one
        rename succeeds; the rest get ``FileNotFoundError`` and try the next
        candidate.
        """
        try:
            candidates = list(self.spool.pending.iterdir())
        except FileNotFoundError:  # spool torn down under us
            return None
        if len(candidates) > 1:
            # start each scan at a random offset: N workers all racing the
            # same first-listed file would cost O(N) failed renames per
            # successful claim (a metadata storm on an NFS spool).  Claim
            # order never affects results, so no sort is needed either.
            offset = random.randrange(len(candidates))
            candidates = candidates[offset:] + candidates[:offset]
        for candidate in candidates:
            if not candidate.name.endswith(_UNIT_SUFFIX):
                continue
            try:
                SpoolLayout.parse_unit_name(candidate.name)
            except ValueError:
                continue  # foreign/garbage file: never claim what we can't run
            target = self.spool.claimed / f"{candidate.name}.{self.worker_id}"
            try:
                os.rename(candidate, target)
            except OSError:  # someone else won the race
                continue
            if obs_enabled():
                obs_registry().inc("spool.claims")
            # rename preserves mtime, so start the lease clock *now* — the
            # pending file may be older than the lease timeout already
            try:
                os.utime(target, None)
            except OSError:
                # transient (NFS hiccup): execute anyway — worst case the
                # parent requeues off the stale mtime and the duplicate
                # attempt resolves against our result file, losing nothing
                pass
            return target
        return None

    def _load_plan(self, plan_id: str) -> dict | None:
        """The plan metadata dict (cached), or ``None`` when withdrawn.

        Raises the underlying :class:`OSError` on a *transient* read failure
        (NFS ``EIO``/``ESTALE``) and :class:`_CorruptPlanError` on a present
        but unreadable file: only a *missing* file means the plan is truly
        withdrawn.  Any other classification would make the worker silently
        discard a claimed unit of a live plan — with no claim left to
        lease-expire, the parent would wait forever.
        """
        if plan_id in self._plans:
            return self._plans[plan_id]
        path = self.spool.plan_path(plan_id)
        try:
            meta = pickle.loads(path.read_bytes())
        except FileNotFoundError:
            return None
        except OSError:
            raise
        except Exception as error:
            # unpickling can raise nearly anything (version skew raises
            # ModuleNotFoundError, torn writes UnpicklingError/EOFError, ...)
            raise _CorruptPlanError(f"plan file {path} is unreadable: {error!r}") from error
        self._plans[plan_id] = meta
        return meta

    def _sync_artifacts(self, keys: Sequence[str]) -> None:
        """Copy artifacts this worker is missing from the spool's shared cache."""
        local = CompiledArtifactCache(self._cache_dir)
        shared = self.spool.artifact_cache()
        for key in keys:
            target = local.path_for(key)
            source = shared.path_for(key)
            if not target.is_file() and source.is_file():
                _atomic_copy(source, target)

    def _runtime_for(self, plan_id: str, meta: dict) -> _WorkerRuntime:
        """The per-plan execution runtime, hydrated from the local cache.

        A plan submitted with artifact caching opted out
        (``worker_cache: False``) compiles locally instead — the worker never
        touches its persistent cache for it.
        """
        if plan_id not in self._runtimes:
            payload: ExecutionPayload = meta["payload"]
            if meta.get("worker_cache", True):
                self._sync_artifacts(meta.get("artifact_keys", ()))
                payload = dataclasses.replace(payload, cache_dir=str(self._cache_dir))
            self._runtimes[plan_id] = _WorkerRuntime(payload)
        return self._runtimes[plan_id]

    def _plan_withdrawn(self, plan_id: str) -> bool:
        """True only on a *confirmed* missing plan file.

        A transient stat failure (NFS hiccup) must not masquerade as
        withdrawal — in doubt the plan is treated as live, and the worst
        case is an orphan result file the parent's cleanup sweeps.
        """
        try:
            self.spool.plan_path(plan_id).stat()
        except FileNotFoundError:
            return True
        except OSError:
            return False
        return False

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _execute_claim(self, claim: Path) -> bool:
        """Run one claimed unit; returns False for an orphan (withdrawn plan)."""
        try:
            plan_id, index, attempt = SpoolLayout.parse_unit_name(claim.name)
        except ValueError:
            # defence in depth: claim_one refuses unparseable names, but a
            # malformed file must cost one claim, never the worker loop
            claim.unlink(missing_ok=True)
            return False
        try:
            meta = self._load_plan(plan_id)
        except OSError:
            # transient plan-read failure (NFS EIO/ESTALE): leave the claim
            # where it is — the parent requeues it after one lease timeout
            return False
        except _CorruptPlanError as error:
            # a present-but-unreadable plan is fatal for the unit but must be
            # *visible*: a failure record unblocks the parent's fan-in
            record = (index, False, repr(error), traceback.format_exc())
            _atomic_write_bytes(
                self.spool.result_path(plan_id, index), pickle.dumps(record)
            )
            claim.unlink(missing_ok=True)
            self.executed += 1
            return True
        if meta is None:
            # plan withdrawn (parent cleaned up): the unit is garbage
            claim.unlink(missing_ok=True)
            return False
        result_path = self.spool.result_path(plan_id, index)
        if result_path.is_file():
            # duplicate attempt already resolved elsewhere
            claim.unlink(missing_ok=True)
            return False
        try:
            unit: SweepUnit = pickle.loads(claim.read_bytes())
        except FileNotFoundError:
            # the parent requeued this claim out from under us (expired
            # lease): the unit is someone else's now, not a failure
            return False
        except OSError:
            # transient read failure (NFS EIO/ESTALE): leave the claim for
            # the lease-expiry requeue instead of recording a false failure
            return False
        except Exception as error:
            # a corrupt/unloadable unit file (torn write, version skew) is
            # permanent — make it a visible failure, never a dead worker
            record = (index, False, repr(error), traceback.format_exc())
        else:
            with _Heartbeat(claim, self._heartbeat):
                record = self._run_unit(plan_id, meta, unit)
        if self._plan_withdrawn(plan_id):
            # the parent withdrew the plan (timeout/closed stream) while we
            # were executing: dropping the record keeps done/ orphan-free
            self._plans.pop(plan_id, None)
            self._runtimes.pop(plan_id, None)
            claim.unlink(missing_ok=True)
            return False
        _atomic_write_bytes(result_path, pickle.dumps(record))
        if self._plan_withdrawn(plan_id):
            # the parent's cleanup raced our write: take the orphan back out
            result_path.unlink(missing_ok=True)
            self._plans.pop(plan_id, None)
            self._runtimes.pop(plan_id, None)
            claim.unlink(missing_ok=True)
            return False
        claim.unlink(missing_ok=True)
        self.executed += 1
        self._say(
            f"[{self.worker_id}] unit {index} attempt {attempt} "
            f"{'ok' if record[1] else 'FAILED'}"
        )
        return True

    def _run_unit(self, plan_id: str, meta: dict, unit: SweepUnit) -> tuple:
        """Execute one unit; exceptions become per-unit failure records.

        Under telemetry, the unit runs inside a span attached to the trace
        context the parent serialised into the plan meta, so worker spans
        join the submitting sweep's trace tree; the span buffer and metrics
        snapshot are flushed to ``REPRO_OBS_DIR`` after every unit.
        """
        try:
            with obs_trace.attach_ids(meta.get("trace")):
                with obs_trace.span(
                    "spool.unit", label=unit.label, index=unit.index, worker=self.worker_id
                ):
                    with obs_trace.span("spool.hydrate", plan=plan_id):
                        runtime = self._runtime_for(plan_id, meta)
                    name, outcomes = runtime.execute(unit)
            record = (unit.index, True, name, outcomes)
            if obs_enabled():
                obs_registry().inc("spool.units.ok")
        except Exception as error:  # noqa: BLE001 - captured and reported
            logger.debug("unit %d of plan %s failed: %r", unit.index, plan_id, error)
            record = (unit.index, False, repr(error), traceback.format_exc())
            if obs_enabled():
                obs_registry().inc("spool.units.failed")
        obs_export.flush()
        return record

    def run(
        self,
        *,
        max_idle: float | None = None,
        max_units: int | None = None,
    ) -> int:
        """Claim-and-execute until idle for ``max_idle`` seconds (or forever).

        ``max_units`` stops after that many executed units (testing hook).
        Returns the number of units executed.
        """
        idle_since = time.monotonic()
        while True:
            if self._stop_requested:
                self._say(f"[{self.worker_id}] stop requested — draining out")
                return self.executed
            if max_units is not None and self.executed >= max_units:
                return self.executed
            claim = self.claim_one()
            if claim is not None:
                if self._stop_requested:
                    # stop arrived in the claim race window: hand the unit
                    # back instead of executing into a shutdown
                    self.release_claim(claim)
                    return self.executed
                try:
                    self._execute_claim(claim)
                except Exception as error:  # noqa: BLE001 - daemon must outlive any unit
                    # truly unexpected (result write failed, ...): the claim
                    # stays put, so the lease requeue retries it elsewhere
                    self._say(f"[{self.worker_id}] claim {claim.name} errored: {error!r}")
                idle_since = time.monotonic()
                continue
            self._on_idle_scan()
            if max_idle is not None and time.monotonic() - idle_since >= max_idle:
                return self.executed
            time.sleep(self._poll)

    def _on_idle_scan(self) -> None:
        """Housekeeping hook between empty pending scans (overridable)."""
        self._evict_stale_plans()

    def _evict_stale_plans(self) -> None:
        """Drop cached runtimes of plans the parent has withdrawn.

        A long-lived worker daemon would otherwise hold one hydrated runtime
        (compiled tables, managers, samplers) per plan it ever executed.
        Called on idle scans: one ``stat`` per cached plan, and a plan still
        in flight is never evicted (its plan file exists until fan-in ends).
        """
        for plan_id in list(self._plans):
            if not self.spool.plan_path(plan_id).is_file():
                self._plans.pop(plan_id, None)
                self._runtimes.pop(plan_id, None)


def worker_main(
    spool: str | os.PathLike,
    *,
    cache_dir: str | os.PathLike | None = None,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    heartbeat: float = DEFAULT_HEARTBEAT_SECONDS,
    max_idle: float | None = None,
    max_units: int | None = None,
    worker_id: str | None = None,
    log: Callable[[str], None] | None = print,
    install_signals: bool = False,
) -> int:
    """The ``repro worker`` entry point; returns the number of executed units.

    ``install_signals=True`` (what the CLI passes) routes SIGTERM to a
    graceful drain: the worker finishes or releases its current claim
    instead of dying mid-unit and costing the fleet a lease timeout.
    """
    worker = SpoolWorker(
        spool,
        cache_dir=cache_dir,
        poll_interval=poll_interval,
        heartbeat=heartbeat,
        worker_id=worker_id,
        log=log,
    )
    if install_signals:
        worker.install_signal_handlers()
    if log is not None:
        log(
            f"[{worker.worker_id}] watching spool {worker.spool.root} "
            f"(poll {poll_interval}s, heartbeat {heartbeat}s, "
            f"max-idle {'∞' if max_idle is None else f'{max_idle}s'})"
        )
    return worker.run(max_idle=max_idle, max_units=max_units)


# --------------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------------- #


class RemoteSweepExecutor:
    """Fan a :class:`SweepPlan` out over a shared spool and stream the fan-in.

    The drop-in distributed sibling of
    :class:`~repro.runtime.pool.SweepExecutor`: :meth:`run` has the same
    signature and returns the same :class:`~repro.runtime.pool.SweepOutcome`;
    :meth:`stream` additionally yields per-unit records as workers finish
    them (completion order, not plan order).

    Parameters
    ----------
    spool:
        Shared spool directory (local FS or NFS).  Created on demand.
    lease_timeout:
        Seconds without a heartbeat before a claimed unit is requeued.  Must
        comfortably exceed the workers' heartbeat cadence plus filesystem
        attribute-cache lag (see ``docs/distributed-sweeps.md`` for NFS
        guidance).
    poll_interval:
        Fan-in rescan cadence in seconds.
    max_requeues:
        Lease expiries tolerated per unit before it becomes a
        :class:`~repro.runtime.pool.UnitFailure`.
    timeout:
        Hard overall wall-clock bound for one plan, enforced on every fan-in
        scan; ``None`` waits forever (only sensible when workers are known
        to be attached).
    local_workers:
        Convenience fan-out: spawn this many ``repro worker`` subprocesses on
        *this* machine for the duration of each run — zero-setup parallelism
        and the self-contained form the tests and benchmarks use.
    worker_cache_dir:
        Local artifact cache directory handed to spawned local workers
        (default: their own ``$REPRO_CACHE_DIR`` resolution).
    source_cache:
        The artifact cache whose ``.npz`` files are pushed into
        ``spool/artifacts/`` at submit time (default: the default cache
        location).
    sync_artifacts:
        ``False`` disables the compiled-artifact machinery end to end — the
        parent pushes nothing into ``spool/artifacts/`` and workers compile
        locally instead of touching their persistent cache (the spool
        equivalent of ``Session.artifacts(False)`` / ``--no-cache``).
    """

    def __init__(
        self,
        spool: str | os.PathLike,
        *,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        max_requeues: int = DEFAULT_MAX_REQUEUES,
        timeout: float | None = None,
        local_workers: int = 0,
        worker_cache_dir: str | os.PathLike | None = None,
        source_cache: CompiledArtifactCache | None = None,
        sync_artifacts: bool = True,
    ) -> None:
        if lease_timeout <= 0.0:
            raise ValueError(f"lease_timeout must be > 0, got {lease_timeout}")
        if poll_interval <= 0.0:
            raise ValueError(f"poll_interval must be > 0, got {poll_interval}")
        if max_requeues < 0:
            raise ValueError(f"max_requeues must be >= 0, got {max_requeues}")
        if timeout is not None and timeout <= 0.0:
            raise ValueError(f"timeout must be > 0 (or None), got {timeout}")
        if local_workers < 0:
            raise ValueError(f"local_workers must be >= 0, got {local_workers}")
        self.spool = SpoolLayout(spool).ensure()
        self._lease_timeout = float(lease_timeout)
        self._poll = float(poll_interval)
        self._max_requeues = int(max_requeues)
        self._timeout = timeout
        self._local_workers = int(local_workers)
        self._worker_cache_dir = worker_cache_dir
        self._source_cache = source_cache
        self._sync_artifacts = bool(sync_artifacts)

    # ------------------------------------------------------------------ #
    # submit
    # ------------------------------------------------------------------ #
    def submit(self, plan: SweepPlan) -> str:
        """Write a plan into the spool; returns its id.

        The payload is stored once with ``cache_dir`` stripped (a parent-side
        path means nothing on another host — workers substitute their own
        local cache), the needed artifacts are pushed into the shared
        ``spool/artifacts/`` cache, and each unit becomes one pending file.
        """
        plan_id = uuid.uuid4().hex[:12]
        artifact_keys = self._push_artifacts(plan.payload) if self._sync_artifacts else []
        payload = dataclasses.replace(plan.payload, cache_dir=None)
        try:
            payload_bytes = pickle.dumps(payload)
        except Exception as error:  # pickle raises many concrete types
            raise SweepExecutionError(
                (),
                "the execution payload is not picklable and cannot be spooled to "
                f"remote workers ({error!r}); use a module-level scenario sampler "
                "class, or run the sweep serially",
            ) from error
        meta = {
            "plan_id": plan_id,
            "payload": payload,
            # content hash of the payload: resident workers key warm runtimes
            # on this, so identical repeat sweeps skip hydration entirely
            "payload_key": hashlib.sha256(payload_bytes).hexdigest(),
            "artifact_keys": artifact_keys,
            # False = artifact caching explicitly opted out: workers compile
            # locally instead of touching their persistent cache
            "worker_cache": self._sync_artifacts,
            "n_units": len(plan.units),
        }
        if obs_enabled():
            # the parent's active span, if any: workers attach their unit
            # spans to it so one sweep yields one trace tree across hosts
            trace_ids = obs_trace.propagation()
            if trace_ids is not None:
                meta["trace"] = trace_ids
            obs_registry().inc("spool.plans_submitted")
        try:
            _atomic_write_bytes(self.spool.plan_path(plan_id), pickle.dumps(meta))
            self._write_units(plan, plan_id)
        except BaseException:
            # never leave a half-submitted plan (or its temp files) for
            # workers to chew on
            self._cleanup(plan_id)
            raise
        return plan_id

    def _write_units(self, plan: SweepPlan, plan_id: str) -> None:
        """Materialise the plan's units as claimable pending files.

        Overridable: the service queue frontend enqueues units into a
        priority queue instead of dropping them straight into ``pending/``.
        """
        for unit in plan.units:
            name = SpoolLayout.unit_name(plan_id, unit.index, attempt=0)
            _atomic_write_bytes(self.spool.pending / name, pickle.dumps(unit))

    def _push_artifacts(self, payload: ExecutionPayload) -> list[str]:
        """Copy the compiled artifacts the plan needs into the shared cache.

        Only the payload's default-step artifact is pushed (the one
        ``Session`` pre-warms); units whose manager spec demands another step
        set compile worker-side, exactly like the process pool.
        """
        key = compile_key(
            payload.system,
            payload.deadlines,
            policy=payload.policy,
            relaxation_steps=payload.relaxation_steps,
        )
        if key is None:
            return []
        if self._source_cache is not None:
            source = self._source_cache
        elif payload.cache_dir is not None:
            source = CompiledArtifactCache(payload.cache_dir)
        else:
            source = CompiledArtifactCache()
        source_path = source.path_for(key)
        if not source_path.is_file():
            return []
        shared_path = self.spool.artifact_cache().path_for(key)
        if not shared_path.is_file():
            _atomic_copy(source_path, shared_path)
        return [key]

    # ------------------------------------------------------------------ #
    # fan-in
    # ------------------------------------------------------------------ #
    def stream(
        self,
        plan: SweepPlan,
        *,
        progress: ProgressCallback | None = None,
    ) -> Iterator[tuple]:
        """Submit the plan and yield result records as workers finish units.

        Yields the pool's record shape — ``(index, True, manager_name,
        outcomes)`` or ``(index, False, error_repr, traceback)`` — in
        completion order.  Requeues expired leases between scans; cleans the
        plan out of the spool when the iterator closes (including early
        ``break``/``close()``).
        """
        if not plan.units:
            return
        outstanding = {unit.index for unit in plan.units}
        total = len(plan.units)
        done_count = 0
        deadline = None if self._timeout is None else time.monotonic() + self._timeout
        plan_id = None
        dead_scans = 0
        workers: list[subprocess.Popen] = []
        try:
            plan_id = self.submit(plan)
            workers = self._spawn_local_workers()
            while outstanding:
                self._on_scan()
                drained = self._drain_done(plan_id, outstanding)
                drained.extend(self._requeue_expired(plan_id, outstanding))
                if drained:
                    dead_scans = 0  # progress: external workers are alive
                for record in drained:
                    done_count += 1
                    if progress is not None:
                        progress(done_count, total, plan.units[record[0]])
                    yield record
                if not outstanding:
                    return
                # a hard overall bound: checked every scan, not only idle ones
                if deadline is not None and time.monotonic() > deadline:
                    raise SweepExecutionError(
                        (),
                        f"remote sweep timed out after {self._timeout}s with "
                        f"{len(outstanding)} of {total} unit(s) outstanding — "
                        "are workers attached to the spool, and fast enough? "
                        f"(spool: {self.spool.root})",
                    )
                if not drained:
                    dead_scans = (
                        dead_scans + 1 if self._local_workers_dead(workers, plan_id) else 0
                    )
                    if dead_scans >= 3:  # debounced: not a claim-transition blip
                        codes = [worker.returncode for worker in workers]
                        raise SweepExecutionError(
                            (),
                            f"all {len(workers)} local worker(s) exited "
                            f"(codes {codes}) with {len(outstanding)} of "
                            f"{total} unit(s) outstanding and no live claims "
                            f"— check the spool permissions and `repro worker "
                            f"--spool {self.spool.root}` by hand",
                        )
                    time.sleep(self._poll)
        finally:
            self._stop_local_workers(workers)
            if plan_id is not None:
                self._cleanup(plan_id)

    def run(
        self,
        plan: SweepPlan,
        *,
        progress: ProgressCallback | None = None,
        on_error: str = "raise",
    ) -> SweepOutcome:
        """Execute the whole plan and collect a :class:`SweepOutcome`.

        Same contract as :meth:`repro.runtime.pool.SweepExecutor.run`:
        ``on_error="raise"`` (default) raises :class:`SweepExecutionError`
        after the sweep drains if any unit failed, ``"capture"`` returns the
        failures in the outcome.
        """
        if on_error not in ("raise", "capture"):
            raise ValueError(f"on_error must be 'raise' or 'capture', got {on_error!r}")
        records = list(self.stream(plan, progress=progress))
        obs_export.flush()
        return collect_outcome(plan, records, on_error=on_error)

    # ------------------------------------------------------------------ #
    # fan-in internals
    # ------------------------------------------------------------------ #
    def _on_scan(self) -> None:
        """Per-scan hook before drain/requeue (overridable).

        The service executor pumps its dispatch queue here, so quota slots
        freed by finished units refill within one fan-in scan.
        """

    def _drain_done(self, plan_id: str, outstanding: set[int]) -> list[tuple]:
        """Collect and consume finished result files of this plan.

        One directory listing per scan (not one stat per outstanding unit):
        on a big plan over NFS, per-unit ``stat`` calls would be a sustained
        metadata storm against the share.
        """
        records: list[tuple] = []
        prefix = f"{plan_id}.u"
        try:
            entries = list(self.spool.done.iterdir())
        except FileNotFoundError:
            return records
        for path in entries:
            name = path.name
            if not (name.startswith(prefix) and name.endswith(_RESULT_SUFFIX)):
                continue
            try:
                index = int(name[len(prefix) : -len(_RESULT_SUFFIX)])
            except ValueError:  # foreign file shaped like ours
                continue
            if index not in outstanding:
                continue
            try:
                record = pickle.loads(path.read_bytes())
            except (OSError, pickle.UnpicklingError, EOFError):
                continue  # half-visible on a laggy share: retry next scan
            outstanding.discard(index)
            try:
                path.unlink(missing_ok=True)
            except OSError:  # transient (NFS ESTALE): cleanup sweeps it later
                pass
            records.append(record)
        if records and obs_enabled():
            obs_registry().inc("spool.results_drained", len(records))
        return records

    def _requeue_expired(self, plan_id: str, outstanding: set[int]) -> list[tuple]:
        """Requeue dead leases; returns synthetic failure records for units
        that exhausted their requeue budget."""
        failures: list[tuple] = []
        now: float | None = None  # probe lazily: most scans have no claims
        prefix = f"{plan_id}.u"
        try:
            claims = list(self.spool.claimed.iterdir())
        except FileNotFoundError:
            return failures
        for claim in claims:
            if not claim.name.startswith(prefix):
                continue
            if now is None:
                now = self._spool_now()
            try:
                _, index, attempt = SpoolLayout.parse_unit_name(claim.name)
                age = now - claim.stat().st_mtime
            except (ValueError, OSError):  # foreign file / consumed under us
                continue
            if index not in outstanding or age <= self._lease_timeout:
                continue
            if self.spool.result_path(plan_id, index).is_file():
                # a frozen-then-resumed worker just delivered after all:
                # prefer the real record (next drain picks it up)
                try:
                    claim.unlink(missing_ok=True)
                except OSError:  # transient: retried next scan
                    pass
                continue
            if attempt >= self._max_requeues:
                try:
                    claim.unlink(missing_ok=True)
                except OSError:  # transient: the failure still stands
                    pass
                outstanding.discard(index)
                logger.warning(
                    "unit %d of plan %s failed after %d expired lease(s)",
                    index, plan_id, attempt + 1,
                )
                if obs_enabled():
                    obs_registry().inc("spool.lease_failures")
                failures.append(
                    (
                        index,
                        False,
                        f"lease expired {attempt + 1} time(s) without a result "
                        f"(last worker: {claim.name.split('.')[-1]!r}) — "
                        "worker died or lease_timeout is shorter than the unit",
                        "",
                    )
                )
                continue
            target = self._requeue_target(plan_id, index, attempt + 1)
            try:
                os.rename(claim, target)
            except OSError:  # the worker finished or died mid-scan; next pass
                continue
            logger.info(
                "requeued unit %d of plan %s (attempt %d, lease age %.1fs)",
                index, plan_id, attempt + 1, age,
            )
            if obs_enabled():
                obs_registry().inc("spool.requeues")
        return failures

    def _requeue_target(self, plan_id: str, index: int, attempt: int) -> Path:
        """Where an expired lease's next attempt goes (overridable).

        The base executor requeues straight into ``pending/``; the service
        executor requeues through its priority queue so quota and fairness
        also govern retries.
        """
        return self.spool.pending / SpoolLayout.unit_name(plan_id, index, attempt)

    def _local_workers_dead(self, workers: list[subprocess.Popen], plan_id: str) -> bool:
        """True when spawned workers *crashed* and nothing else is working.

        Deliberately narrow, because a false positive aborts a healthy
        sweep: every spawned worker must have exited, at least one with a
        nonzero code (an idle-out via the ``--max-idle`` safety net exits
        0 and is legitimate in mixed deployments), and no live claim for
        this plan may exist (an external ``repro worker`` mid-unit shows up
        as a claim).
        """
        if not workers or any(worker.poll() is None for worker in workers):
            return False
        if all(worker.returncode == 0 for worker in workers):
            return False
        prefix = f"{plan_id}.u"
        try:
            claims = any(
                path.name.startswith(prefix) for path in self.spool.claimed.iterdir()
            )
        except OSError:
            return False
        return not claims

    def _spool_now(self) -> float:
        """The current time in the *spool filesystem's* clock.

        Lease ages compare against claim mtimes, which an NFS server stamps
        with *its* clock — measuring them against the parent's ``time.time``
        would mis-expire every healthy lease under cross-host clock skew.
        Touching a probe file and reading its mtime puts both sides of the
        comparison on the same time base; a plain local clock is the
        fallback when the probe cannot be written.
        """
        probe = self.spool.claimed / f".clock-probe-{os.getpid()}"
        try:
            probe.touch()
            return probe.stat().st_mtime
        except OSError:
            return time.time()

    def _cleanup(self, plan_id: str) -> None:
        """Remove every spool file belonging to one plan (artifacts stay).

        Also sweeps aged-out hidden temp files (``.<name>-XXXX``) from every
        spool directory (including ``plans/`` and the ``artifacts/`` version
        subdirectories): a process killed between ``mkstemp`` and
        ``os.replace`` leaks one, and nothing else ever matches it by plan
        prefix.  An hour of age keeps us safely clear of any in-flight
        atomic write.
        """
        self.spool.plan_path(plan_id).unlink(missing_ok=True)
        (self.spool.claimed / f".clock-probe-{os.getpid()}").unlink(missing_ok=True)
        horizon = time.time() - 3600.0
        for directory in self._sweep_directories():
            try:
                entries = list(directory.iterdir())
            except FileNotFoundError:
                continue
            for path in entries:
                if self._plan_file(path.name, plan_id) and directory is not self.spool.plans:
                    path.unlink(missing_ok=True)
                elif path.name.startswith("."):
                    # a temp file naming this plan is ours and dead for sure
                    # (nothing is mid-write once cleanup runs — including an
                    # aborted submit, which calls us on its failure path);
                    # other hidden files only go once safely aged out
                    try:
                        if plan_id in path.name:
                            path.unlink(missing_ok=True)
                        elif path.is_file() and path.stat().st_mtime < horizon:
                            path.unlink(missing_ok=True)
                    except OSError:  # consumed under us
                        pass

    @staticmethod
    def _plan_file(name: str, plan_id: str) -> bool:
        """True when a (non-hidden) spool file belongs to ``plan_id``."""
        return name.startswith(f"{plan_id}.")

    def _sweep_directories(self) -> list[Path]:
        """Every directory :meth:`_cleanup` sweeps (overridable)."""
        directories = [
            self.spool.pending,
            self.spool.claimed,
            self.spool.done,
            self.spool.plans,
            self.spool.artifacts,
        ]
        try:
            directories.extend(
                child for child in self.spool.artifacts.iterdir() if child.is_dir()
            )
        except OSError:
            pass
        return directories

    # ------------------------------------------------------------------ #
    # local worker convenience
    # ------------------------------------------------------------------ #
    def _spawn_local_workers(self) -> list[subprocess.Popen]:
        """Start ``local_workers`` ``repro worker`` subprocesses on this host."""
        if self._local_workers == 0:
            return []
        import repro

        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        command = [
            sys.executable,
            "-m",
            "repro",
            # workers inherit the parent's logging story (satellite of the
            # --log-level / REPRO_LOG wiring); REPRO_OBS* flows via env
            "--log-level",
            current_level(),
            "worker",
            "--spool",
            str(self.spool.root),
            "--poll",
            str(self._poll),
            # always a fraction of the lease, whatever the poll interval —
            # a heartbeat slower than the lease would requeue healthy workers
            "--heartbeat",
            str(max(0.05, min(self._lease_timeout / 4.0, DEFAULT_HEARTBEAT_SECONDS))),
            # safety net: if the parent dies hard (its finally never runs),
            # convenience workers must not poll the spool forever
            "--max-idle",
            str(max(300.0, 10.0 * self._lease_timeout)),
        ]
        if self._worker_cache_dir is not None:
            command += ["--cache-dir", str(self._worker_cache_dir)]
        command += self._worker_extra_args()
        return [
            subprocess.Popen(
                command,
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            for _ in range(self._local_workers)
        ]

    def _worker_extra_args(self) -> list[str]:
        """Extra ``repro worker`` CLI flags for spawned locals (overridable)."""
        return []

    @staticmethod
    def _stop_local_workers(workers: list[subprocess.Popen]) -> None:
        for worker in workers:
            worker.terminate()
        for worker in workers:
            try:
                worker.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
                worker.kill()
                worker.wait(timeout=10.0)
