"""Process-based sweep execution: shard a :class:`SweepPlan` across workers.

Workers are cheap because they never compile: each worker process hydrates
the symbolic tables from the :mod:`compiled-artifact cache
<repro.runtime.artifacts>` (one ``.npz`` read instead of a symbolic
compilation) and rebuilds its managers from them via the ordinary registry.
Only when no cache directory is configured — or the policy is not cacheable —
does a worker fall back to compiling locally, once, for all its units.

Determinism contract: for fixed seeds the outcome of every unit is
bit-identical to what the serial baseline produces, because each unit (a)
gets its own ``numpy.random.default_rng(seed)`` exactly like the serial loop
and (b) seeks the (per-process copy of the) scenario sampler to the position
the serial execution order would have left it in.  The executor only decides
*where* units run, never *what* they compute.

Failure handling captures per-unit exceptions (with tracebacks) instead of
tearing down the pool: one infeasible scenario in a 10,000-unit sweep should
cost one unit, not the sweep.  ``on_error="raise"`` (the default) re-raises
them collectively after the sweep drains; ``on_error="capture"`` returns them
in the :class:`SweepOutcome`.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.api.registry import BuildContext, build_manager
from repro.obs import export as obs_export
from repro.obs import trace as obs_trace
from repro.obs.metrics import registry as obs_registry
from repro.obs.state import enabled as obs_enabled
from repro.core.compiler import CompiledControllers, QualityManagerCompiler
from repro.core.engine import run_cycles_batch
from repro.core.streaming import run_cycles_streamed
from repro.core.system import CycleOutcome
from repro.core.timing import supports_replay

from .artifacts import CompiledArtifactCache
from .plan import ExecutionPayload, SweepPlan, SweepUnit

__all__ = [
    "ProgressCallback",
    "SweepExecutionError",
    "SweepExecutor",
    "SweepOutcome",
    "UnitFailure",
    "collect_outcome",
]

#: ``progress(completed_units, total_units, unit)`` — called from the parent
#: process (never from a worker) each time a unit finishes
ProgressCallback = Callable[[int, int, SweepUnit], None]


@dataclass(frozen=True)
class UnitFailure:
    """One work unit that raised instead of producing outcomes."""

    index: int
    label: str
    error: str
    traceback: str

    def __str__(self) -> str:  # pragma: no cover - message formatting
        return f"unit {self.index} ({self.label!r}): {self.error}"

    @property
    def traceback_summary(self) -> str:
        """The tail of the captured traceback: raising frame + exception line.

        Empty for synthetic failures (e.g. lease expiry) that carry no
        traceback.
        """
        lines = [line.strip() for line in self.traceback.splitlines() if line.strip()]
        return " | ".join(lines[-3:])

    def describe(self) -> str:
        """``__str__`` plus the traceback summary, for fan-in error messages."""
        summary = self.traceback_summary
        return f"{self} [{summary}]" if summary else str(self)


class SweepExecutionError(RuntimeError):
    """Raised when sweep units failed and ``on_error="raise"`` (the default)."""

    def __init__(self, failures: Sequence[UnitFailure], message: str | None = None) -> None:
        self.failures = tuple(failures)
        if message is None:
            detail = "; ".join(failure.describe() for failure in self.failures[:3])
            more = len(self.failures) - 3
            if more > 0:
                detail += f"; ... and {more} more"
            message = f"{len(self.failures)} sweep unit(s) failed: {detail}"
        super().__init__(message)


@dataclass(frozen=True)
class SweepOutcome:
    """Everything a sweep produced, keyed by unit index.

    ``manager_names`` holds each executed manager's reporting name (needed by
    ``compare``, whose final labels are manager names, not spec strings).
    When the plan's payload carries a streaming ``chunk_size``, each entry of
    ``outcomes`` is a :class:`~repro.core.streaming.StreamingMetrics` summary
    instead of a tuple of :class:`~repro.core.system.CycleOutcome` traces.
    """

    plan: SweepPlan
    outcomes: dict[int, tuple[CycleOutcome, ...]] = field(default_factory=dict)
    manager_names: dict[int, str] = field(default_factory=dict)
    failures: tuple[UnitFailure, ...] = ()

    @property
    def ok(self) -> bool:
        """True when every unit completed."""
        return not self.failures


# --------------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------------- #


class _WorkerRuntime:
    """Per-process execution environment rebuilt from an :class:`ExecutionPayload`."""

    def __init__(self, payload: ExecutionPayload) -> None:
        # resolved lazily to avoid importing the api package before fork
        from repro.api.session import resolve_overhead_model

        self._payload = payload
        self._base_system = payload.system
        machine = payload.machine
        self._exec_system = (
            machine.deploy(self._base_system) if machine is not None else self._base_system
        )
        self._overhead_model = resolve_overhead_model(machine, payload.overhead)
        self._sampler = self._base_system.timing.scenario_sampler
        self._base_cursor = getattr(self._sampler, "cursor", None)
        self._cache = (
            CompiledArtifactCache(payload.cache_dir) if payload.cache_dir is not None else None
        )
        self._compiled: dict[tuple[int, ...], CompiledControllers] = {}

    def _compile(self, *, steps_override: Sequence[int] | None = None) -> CompiledControllers:
        key = (
            tuple(steps_override)
            if steps_override is not None
            else tuple(self._payload.relaxation_steps)
        )
        if key not in self._compiled:
            if self._cache is not None:
                compiled, _ = self._cache.fetch_or_compile(
                    self._base_system,
                    self._payload.deadlines,
                    policy=self._payload.policy,
                    relaxation_steps=key,
                    require_feasible=self._payload.require_feasible,
                )
            else:
                compiled = QualityManagerCompiler(
                    policy=self._payload.policy,
                    relaxation_steps=key,
                    require_feasible=self._payload.require_feasible,
                ).compile(self._base_system, self._payload.deadlines)
            self._compiled[key] = compiled
        return self._compiled[key]

    def _context(self) -> BuildContext:
        return BuildContext(
            system=self._base_system,
            deadlines=self._payload.deadlines,
            policy=self._payload.policy,
            relaxation_steps=tuple(self._payload.relaxation_steps),
            compile=self._compile,
        )

    def _check_unit_scenarios(self, unit: SweepUnit) -> None:
        """Reject shipped scenario tensors drawn for a different system.

        Everything else about a unit's scenarios is already enforced by
        construction (``SweepUnit`` coerces and length-checks the batch,
        ``ScenarioBatch`` fixes the dtype and re-validates on unpickle) —
        but only the worker knows the *hydrated* system, so the per-cycle
        footprint is checked here: a mismatched tensor would otherwise
        surface as a deep NumPy broadcast or indexing error from inside the
        engine instead of a clear per-unit failure.
        """
        expected = (len(self._exec_system.qualities), self._exec_system.n_actions)
        tensor = unit.scenarios.tensor
        if tensor.shape[1:] != expected:
            raise ValueError(
                f"unit {unit.index} ({unit.label!r}): scenario tensor has "
                f"per-cycle shape {tensor.shape[1:]}, but the hydrated system "
                f"expects (levels, actions) = {expected}"
            )

    def execute(self, unit: SweepUnit) -> tuple[str, object]:
        """Run one unit and return ``(manager_name, outcomes-or-summary)``.

        Units run through :func:`~repro.core.engine.run_cycles_batch`: each
        shard executes its chunk vectorised when the unit's manager lowers to
        a decision kernel, and through the scalar loop otherwise — in both
        cases bit-identical to the serial baseline.  Shipped scenario batches
        are validated against the hydrated system first; draw and re-draw
        units position the sampler stream and draw their own batch.

        With a payload ``chunk_size`` the unit runs through the streaming
        engine instead: the second element is a
        :class:`~repro.core.streaming.StreamingMetrics` summary (constant
        worker memory, a few hundred bytes over the wire) whose metrics are
        bit-identical to the materialised outcomes.
        """
        if unit.fleet is not None:
            return self._execute_fleet(unit)
        manager = build_manager(unit.manager, self._context())
        vectorize = getattr(self._payload, "vectorize", "auto")
        backend = getattr(self._payload, "backend", None)
        chunk_size = getattr(self._payload, "chunk_size", None)
        if unit.scenarios is not None:
            self._check_unit_scenarios(unit)
            if chunk_size is not None:
                summary = run_cycles_streamed(
                    self._exec_system,
                    manager,
                    scenarios=unit.scenarios,
                    deadlines=self._payload.deadlines,
                    chunk_size=chunk_size,
                    overhead_model=self._overhead_model,
                    vectorize=vectorize,
                    backend=backend,
                )
                return manager.name, summary
            outcomes = run_cycles_batch(
                self._exec_system,
                manager,
                scenarios=unit.scenarios,
                overhead_model=self._overhead_model,
                vectorize=vectorize,
                backend=backend,
            )
            return manager.name, outcomes
        if (
            unit.sampler_offset is not None
            and self._base_cursor is not None
            and supports_replay(self._sampler)
        ):
            self._sampler.seek(self._base_cursor + unit.sampler_offset)
        if chunk_size is not None:
            summary = run_cycles_streamed(
                self._exec_system,
                manager,
                unit.cycles,
                deadlines=self._payload.deadlines,
                chunk_size=chunk_size,
                rng=np.random.default_rng(unit.seed),
                overhead_model=self._overhead_model,
                vectorize=vectorize,
                backend=backend,
            )
            return manager.name, summary
        outcomes = run_cycles_batch(
            self._exec_system,
            manager,
            unit.cycles,
            rng=np.random.default_rng(unit.seed),
            overhead_model=self._overhead_model,
            vectorize=vectorize,
            backend=backend,
        )
        return manager.name, outcomes

    def _fleet_member_system(self):
        """An execution system one fleet member may draw from privately.

        Stateless (or absent) samplers are side-effect free, so members
        share the hydrated system directly.  A stateful replayable sampler
        is snapshotted per member — pickled from the *base* system (the
        deployed one may not pickle) and seeked to the claim's base cursor —
        so every member draws exactly the stream a solo unit at offset 0
        would, independent of bucket order and of earlier claims.
        """
        if self._sampler is None or not supports_replay(self._sampler):
            return self._exec_system
        base = pickle.loads(pickle.dumps(self._base_system))
        sampler = base.timing.scenario_sampler
        if self._base_cursor is not None and supports_replay(sampler):
            sampler.seek(self._base_cursor)
        machine = self._payload.machine
        return machine.deploy(base) if machine is not None else base

    def _execute_fleet(self, unit: SweepUnit) -> tuple[str, object]:
        """Run a whole fleet bucket as one claim.

        Returns ``("fleet", ((label, manager_name, summary), ...))`` — one
        :class:`~repro.core.streaming.StreamingMetrics` per member, in
        member order, bit-identical to running each member as its own solo
        unit.  Re-execution after a crash rebuilds the same members from the
        same payload, so a requeued claim fans in identically.
        """
        from repro.core.fleet import FleetMember, run_fleet

        context = self._context()
        members = []
        for record in unit.fleet:
            members.append(
                FleetMember(
                    label=record.label,
                    system=self._fleet_member_system(),
                    manager=build_manager(record.manager, context),
                    deadlines=self._payload.deadlines,
                    cycles=record.cycles,
                    seed=record.seed,
                    chunk_size=getattr(self._payload, "chunk_size", None),
                    overhead_model=self._overhead_model,
                    vectorize=getattr(self._payload, "vectorize", "auto"),
                    backend=getattr(self._payload, "backend", None),
                )
            )
        summaries = run_fleet(members)
        return "fleet", tuple(
            (member.label, member.manager.name, summary)
            for member, summary in zip(members, summaries)
        )


_RUNTIME: _WorkerRuntime | None = None
_TRACE: tuple[str, str] | None = None


def _init_worker(
    payload: ExecutionPayload, trace_ids: tuple[str, str] | None = None
) -> None:
    global _RUNTIME, _TRACE
    _RUNTIME = _WorkerRuntime(payload)
    _TRACE = trace_ids


def _execute_record(runtime: _WorkerRuntime, unit: SweepUnit) -> tuple:
    """Run one unit under a span and return its result/failure record."""
    try:
        with obs_trace.span("pool.unit", label=unit.label, index=unit.index):
            name, outcomes = runtime.execute(unit)
    except Exception as error:  # noqa: BLE001 - captured and reported
        if obs_enabled():
            obs_registry().inc("pool.units.failed")
        return (unit.index, False, repr(error), traceback.format_exc())
    if obs_enabled():
        obs_registry().inc("pool.units.ok")
    return (unit.index, True, name, outcomes)


def _run_chunk(units: tuple[SweepUnit, ...]) -> list[tuple]:
    """Execute a chunk in the worker; exceptions become per-unit records."""
    assert _RUNTIME is not None, "worker used before initialisation"
    # adopt the parent's trace context so unit spans join the sweep's tree
    with obs_trace.attach_ids(_TRACE):
        records = [_execute_record(_RUNTIME, unit) for unit in units]
    obs_export.flush()
    return records


# --------------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------------- #


def collect_outcome(plan: SweepPlan, records: Sequence[tuple], *, on_error: str) -> SweepOutcome:
    """Fan per-unit records into one :class:`SweepOutcome`.

    The single fan-in shared by every executor (the process pool here, the
    spool transport in :mod:`repro.runtime.remote`): records are the
    ``(index, True, manager_name, outcomes)`` / ``(index, False, error,
    traceback)`` tuples workers produce, in any order.  ``on_error="raise"``
    raises a collective :class:`SweepExecutionError` when any unit failed.
    """
    outcomes: dict[int, tuple[CycleOutcome, ...]] = {}
    names: dict[int, str] = {}
    failures: list[UnitFailure] = []
    for index, success, head, tail in records:
        if success:
            names[index], outcomes[index] = head, tail
        else:
            failures.append(
                UnitFailure(
                    index=index,
                    label=plan.units[index].label,
                    error=head,
                    traceback=tail,
                )
            )
    failures.sort(key=lambda failure: failure.index)
    result = SweepOutcome(
        plan=plan, outcomes=outcomes, manager_names=names, failures=tuple(failures)
    )
    if failures and on_error == "raise":
        raise SweepExecutionError(failures)
    return result


class SweepExecutor:
    """Executes :class:`SweepPlan` objects, serially or across processes.

    Parameters
    ----------
    max_workers:
        Process count; defaults to ``os.cpu_count()``.  With one worker the
        plan runs in-process (no pool) against a pickle-isolated copy of the
        payload, so parent state is never mutated in either mode.
    chunk_size:
        Units shipped per task; defaults to
        :meth:`SweepPlan.default_chunk_size` (≈ 4 chunks per worker, which
        balances stragglers against transport overhead).
    mp_context:
        Multiprocessing start-method name (``"fork"``/``"spawn"``/...);
        defaults to the platform default.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        chunk_size: int | None = None,
        mp_context: str | None = None,
    ) -> None:
        if max_workers is not None and int(max_workers) < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self._max_workers = int(max_workers) if max_workers is not None else (os.cpu_count() or 1)
        if chunk_size is not None and int(chunk_size) < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self._chunk_size = int(chunk_size) if chunk_size is not None else None
        self._mp_context = mp_context

    @property
    def max_workers(self) -> int:
        """The configured worker count."""
        return self._max_workers

    def run(
        self,
        plan: SweepPlan,
        *,
        progress: ProgressCallback | None = None,
        on_error: str = "raise",
    ) -> SweepOutcome:
        """Execute every unit of the plan and collect the results.

        ``on_error="raise"`` raises :class:`SweepExecutionError` after the
        sweep drains if any unit failed; ``"capture"`` returns the failures in
        the outcome instead.
        """
        if on_error not in ("raise", "capture"):
            raise ValueError(f"on_error must be 'raise' or 'capture', got {on_error!r}")
        if not plan.units:
            return SweepOutcome(plan=plan)
        payload_bytes = self._pickle_payload(plan.payload)
        if self._max_workers == 1 or len(plan.units) == 1:
            records = self._run_inline(plan, payload_bytes, progress)
        else:
            records = self._run_pool(plan, progress)
        obs_export.flush()
        return collect_outcome(plan, records, on_error=on_error)

    @staticmethod
    def _pickle_payload(payload: ExecutionPayload) -> bytes:
        try:
            return pickle.dumps(payload)
        except Exception as error:  # pickle raises many concrete types
            raise SweepExecutionError(
                (),
                "the execution payload is not picklable and cannot be shipped to "
                f"workers ({error!r}); systems built from an EncoderWorkload (and "
                "their rescaled()/truncated() derivatives) are picklable, but a "
                "custom closure/lambda scenario sampler is not — use a module-level "
                "sampler class, or run the sweep serially",
            ) from error

    def _run_inline(
        self,
        plan: SweepPlan,
        payload_bytes: bytes,
        progress: ProgressCallback | None,
    ) -> list[tuple]:
        # the pickle round-trip gives the same isolation as a worker process:
        # the parent's sampler/caches are never touched by plan execution
        runtime = _WorkerRuntime(pickle.loads(payload_bytes))
        records: list[tuple] = []
        for done, unit in enumerate(plan.units, start=1):
            records.append(_execute_record(runtime, unit))
            if progress is not None:
                progress(done, len(plan.units), unit)
        return records

    def _run_pool(self, plan: SweepPlan, progress: ProgressCallback | None) -> list[tuple]:
        chunk_size = (
            self._chunk_size
            if self._chunk_size is not None
            else plan.default_chunk_size(self._max_workers)
        )
        chunks = plan.chunked(chunk_size)
        workers = min(self._max_workers, len(chunks))
        context = (
            multiprocessing.get_context(self._mp_context)
            if self._mp_context is not None
            else multiprocessing.get_context()
        )
        records: list[tuple] = []
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(plan.payload, obs_trace.propagation()),
            ) as pool:
                futures = [pool.submit(_run_chunk, chunk) for chunk in chunks]
                done = 0
                for future in as_completed(futures):
                    for record in future.result():
                        records.append(record)
                        done += 1
                        if progress is not None:
                            progress(done, len(plan.units), plan.units[record[0]])
        except BrokenProcessPool as error:
            raise SweepExecutionError(
                (), f"the worker pool died mid-sweep ({error!r}); see worker stderr"
            ) from error
        return records
