"""Baseline quality/overload managers from related work.

Used as comparison points against the paper's mixed-policy Quality Manager:

* :class:`ConstantQualityManager` — no adaptation at all;
* :func:`safe_only_manager` / :func:`average_only_manager` — ablations of the
  mixed policy's two ingredients;
* :class:`SkipQualityManager` — skip-over overload handling (Koren & Shasha);
* :class:`FeedbackQualityManager` — PID feedback scheduling (Lu et al.);
* :class:`ElasticQualityManager` — worst-case utilisation compression
  (Buttazzo et al.).
"""

from .constant import ConstantQualityManager
from .elastic import ElasticQualityManager
from .feedback import FeedbackQualityManager
from .policy_managers import average_only_manager, safe_only_manager
from .skip import SkipQualityManager

__all__ = [
    "ConstantQualityManager",
    "ElasticQualityManager",
    "FeedbackQualityManager",
    "SkipQualityManager",
    "safe_only_manager",
    "average_only_manager",
]
