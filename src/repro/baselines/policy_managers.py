"""Ablation managers built from the non-mixed policies.

The mixed policy ``C^D = C^av + δ_max`` is the paper's answer to the tension
between safety and smoothness; these managers isolate its two ingredients:

* the *safe-only* manager uses ``C^sf`` (worst case for the next action,
  minimal quality for the rest) — always safe, but the quality collapses
  towards the end of each cycle;
* the *average-only* manager uses ``C^av`` alone — smooth, optimistic, and
  *unsafe* when actual times exceed the average.

Both reuse the numeric manager machinery with a different ``t^D`` table.
"""

from __future__ import annotations

from repro.core.deadlines import DeadlineFunction
from repro.core.manager import NumericQualityManager
from repro.core.policy import AveragePolicy, SafePolicy
from repro.core.system import ParameterizedSystem
from repro.core.tdtable import compute_td_table

__all__ = ["safe_only_manager", "average_only_manager"]


def safe_only_manager(
    system: ParameterizedSystem, deadlines: DeadlineFunction
) -> NumericQualityManager:
    """A numeric Quality Manager applying the safe (worst-case) policy ``C^sf``."""
    table = compute_td_table(system, deadlines, SafePolicy())
    manager = NumericQualityManager(table)
    manager.name = "safe-only"
    return manager


def average_only_manager(
    system: ParameterizedSystem, deadlines: DeadlineFunction
) -> NumericQualityManager:
    """A numeric Quality Manager applying the optimistic average policy ``C^av``.

    Provided purely as an ablation baseline: it does *not* guarantee the
    deadlines and the experiments show it missing them on heavy frames.
    """
    table = compute_td_table(system, deadlines, AveragePolicy(), require_feasible=False)
    manager = NumericQualityManager(table)
    manager.name = "average-only"
    return manager
